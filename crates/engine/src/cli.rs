//! Declarative flag-table argument parsing for the `eproc` CLI.
//!
//! The binary used to carry three ad-hoc flag loops (one for the
//! common execution flags, one shared by `compare`/`scale`'s grid
//! flags, and `merge`'s bespoke loop), each with its own notion of
//! "unknown flag" and its own value validation. This module replaces
//! all three with one table-driven parser:
//!
//! - every flag the CLI knows is declared **once** in a [`FlagDef`]
//!   table (name, aliases, arity, and the phrase used in error
//!   messages);
//! - each subcommand passes the subset of flag names it honours, and
//!   every other *known* flag is rejected by name ("flag `--shard`
//!   does not apply to `merge`") instead of falling through scattered
//!   special cases;
//! - value errors share one wording — ``flag `--x` expects <what>`` —
//!   always naming the offending token.
//!
//! The parser is purely lexical: it pairs flags with raw values and
//! collects positionals in order. Typed interpretation (integers,
//! spec grammars, paths) happens in the caller via the `expect_*`
//! helpers below, so every subcommand reports malformed values with
//! the same phrasing.

use std::fmt;

/// How many value tokens a flag consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// A bare switch (`--progress`).
    Switch,
    /// Exactly one value token. The string is the phrase used in error
    /// messages: ``flag `--json` expects a path``.
    Value(&'static str),
    /// An optional trailing unsigned integer (`--resample [W]`): the
    /// next token is consumed iff it parses as one, so a following
    /// flag or positional is left untouched.
    OptionalInt,
}

/// One flag the CLI knows, declared once for every subcommand.
#[derive(Debug, Clone, Copy)]
pub struct FlagDef {
    /// Canonical spelling (`--process`); [`Parsed`] reports this name
    /// even when an alias was typed.
    pub name: &'static str,
    /// Accepted alternative spellings (`--processes`).
    pub aliases: &'static [&'static str],
    /// Value shape.
    pub arity: Arity,
}

impl FlagDef {
    fn matches(&self, token: &str) -> bool {
        self.name == token || self.aliases.contains(&token)
    }
}

/// A usage error: malformed flags or values. The CLI maps every one of
/// these to exit code 2 (`EX_USAGE`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError {
    message: String,
}

impl UsageError {
    /// A free-form usage error.
    pub fn new(message: impl Into<String>) -> UsageError {
        UsageError {
            message: message.into(),
        }
    }

    /// The uniform value-error wording: ``flag `--x` expects <what>``,
    /// naming the offending token when there is one.
    pub fn expects(flag: &str, what: &str, got: Option<&str>) -> UsageError {
        match got {
            Some(tok) => UsageError::new(format!("flag `{flag}` expects {what}, got {tok:?}")),
            None => UsageError::new(format!("flag `{flag}` expects {what}")),
        }
    }
}

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for UsageError {}

/// The lexical result of [`parse_args`]: flags (canonical name + raw
/// value) in command-line order, positionals in order, and whether
/// `--help`/`-h` appeared anywhere.
#[derive(Debug, Default, Clone)]
pub struct Parsed {
    /// Flag occurrences in order, keyed by canonical name.
    pub flags: Vec<(&'static str, Option<String>)>,
    /// Non-flag tokens in order.
    pub positionals: Vec<String>,
    /// `--help` / `-h` was present.
    pub help: bool,
}

impl Parsed {
    /// Last value of `name`, if the flag appeared with a value.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether `name` appeared at all.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| *n == name)
    }
}

/// Parses `args` for subcommand `cmd` against the full flag `table`,
/// honouring only the canonical names in `accepts`.
///
/// Rejections, in order of specificity: a known-but-foreign flag
/// ("does not apply to"), an unknown `-`-prefixed token, and a missing
/// value for a [`Arity::Value`] flag (a following token that is itself
/// a known flag counts as missing, so `--json --threads 4` fails here
/// rather than after the experiment has run).
pub fn parse_args(
    cmd: &str,
    table: &[FlagDef],
    accepts: &[&str],
    args: impl Iterator<Item = String>,
) -> Result<Parsed, UsageError> {
    let mut parsed = Parsed::default();
    let mut args = args.peekable();
    while let Some(token) = args.next() {
        if token == "--help" || token == "-h" {
            parsed.help = true;
            continue;
        }
        let def = table.iter().find(|d| d.matches(&token));
        match def {
            Some(def) => {
                if !accepts.contains(&def.name) {
                    return Err(UsageError::new(format!(
                        "flag `{}` does not apply to `{cmd}`",
                        def.name
                    )));
                }
                let value = match def.arity {
                    Arity::Switch => None,
                    Arity::Value(what) => {
                        let next_is_flag = args.peek().is_some_and(|t| {
                            t == "-h" || t == "--help" || table.iter().any(|d| d.matches(t))
                        });
                        match args.next() {
                            Some(v) if !next_is_flag && !v.is_empty() => Some(v),
                            _ => return Err(UsageError::expects(def.name, what, None)),
                        }
                    }
                    Arity::OptionalInt => match args.peek().and_then(|v| v.parse::<u64>().ok()) {
                        Some(_) => args.next(),
                        None => None,
                    },
                };
                parsed.flags.push((def.name, value));
            }
            None if token.starts_with('-') => {
                return Err(UsageError::new(format!("unknown flag {token:?}")));
            }
            None => parsed.positionals.push(token),
        }
    }
    Ok(parsed)
}

/// Parses an unsigned integer value with the uniform error wording.
pub fn expect_u64(flag: &str, raw: &str) -> Result<u64, UsageError> {
    raw.parse()
        .map_err(|_| UsageError::expects(flag, "an unsigned integer", Some(raw)))
}

/// Parses a count (unsigned integer `>= 1`).
pub fn expect_count(flag: &str, raw: &str) -> Result<usize, UsageError> {
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(UsageError::expects(
            flag,
            "an integer of at least 1",
            Some(raw),
        )),
    }
}

/// Parses a finite, strictly positive number (seconds, factors).
pub fn expect_positive_f64(flag: &str, raw: &str) -> Result<f64, UsageError> {
    match raw.parse::<f64>() {
        Ok(v) if v.is_finite() && v > 0.0 => Ok(v),
        _ => Err(UsageError::expects(flag, "a positive number", Some(raw))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: &[FlagDef] = &[
        FlagDef {
            name: "--json",
            aliases: &[],
            arity: Arity::Value("a path"),
        },
        FlagDef {
            name: "--process",
            aliases: &["--processes"],
            arity: Arity::Value("a process list"),
        },
        FlagDef {
            name: "--progress",
            aliases: &[],
            arity: Arity::Switch,
        },
        FlagDef {
            name: "--resample",
            aliases: &[],
            arity: Arity::OptionalInt,
        },
        FlagDef {
            name: "--shard",
            aliases: &[],
            arity: Arity::Value("<i>/<k>, e.g. 0/4"),
        },
    ];

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(String::from)
    }

    #[test]
    fn collects_flags_values_and_positionals_in_order() {
        let p = parse_args(
            "run",
            TABLE,
            &["--json", "--progress", "--resample"],
            argv("spec --progress --json out.json --resample 3 extra"),
        )
        .unwrap();
        assert_eq!(p.positionals, ["spec", "extra"]);
        assert_eq!(p.value_of("--json"), Some("out.json"));
        assert_eq!(p.value_of("--resample"), Some("3"));
        assert!(p.has("--progress"));
        assert!(!p.help);
    }

    #[test]
    fn aliases_report_the_canonical_name() {
        let p = parse_args("compare", TABLE, &["--process"], argv("--processes srw")).unwrap();
        assert_eq!(p.value_of("--process"), Some("srw"));
    }

    #[test]
    fn foreign_known_flags_are_rejected_by_name() {
        let err = parse_args("merge", TABLE, &["--json"], argv("--shard 0/2")).unwrap_err();
        assert_eq!(err.to_string(), "flag `--shard` does not apply to `merge`");
        // The alias spelling is reported under the canonical name too.
        let err = parse_args("merge", TABLE, &["--json"], argv("--processes srw")).unwrap_err();
        assert_eq!(
            err.to_string(),
            "flag `--process` does not apply to `merge`"
        );
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = parse_args("run", TABLE, &["--json"], argv("--frobnicate")).unwrap_err();
        assert_eq!(err.to_string(), "unknown flag \"--frobnicate\"");
    }

    #[test]
    fn missing_values_fail_eagerly_with_uniform_wording() {
        let err = parse_args("run", TABLE, &["--json"], argv("--json")).unwrap_err();
        assert_eq!(err.to_string(), "flag `--json` expects a path");
        // A following known flag counts as a missing value.
        let err = parse_args(
            "run",
            TABLE,
            &["--json", "--progress"],
            argv("--json --progress"),
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "flag `--json` expects a path");
    }

    #[test]
    fn optional_int_leaves_non_integers_untouched() {
        let p = parse_args(
            "run",
            TABLE,
            &["--resample", "--progress"],
            argv("--resample --progress"),
        )
        .unwrap();
        assert_eq!(p.value_of("--resample"), None);
        assert!(p.has("--resample"));
        assert!(p.has("--progress"));
    }

    #[test]
    fn help_is_recognised_anywhere() {
        let p = parse_args("run", TABLE, &[], argv("-h")).unwrap();
        assert!(p.help);
    }

    #[test]
    fn typed_helpers_name_the_offending_token() {
        assert_eq!(
            expect_u64("--seed", "abc").unwrap_err().to_string(),
            "flag `--seed` expects an unsigned integer, got \"abc\""
        );
        assert_eq!(
            expect_count("--threads", "0").unwrap_err().to_string(),
            "flag `--threads` expects an integer of at least 1, got \"0\""
        );
        assert_eq!(
            expect_positive_f64("--max-wall", "-2")
                .unwrap_err()
                .to_string(),
            "flag `--max-wall` expects a positive number, got \"-2\""
        );
        assert_eq!(expect_u64("--seed", "7").unwrap(), 7);
        assert_eq!(expect_count("--threads", "4").unwrap(), 4);
        assert_eq!(expect_positive_f64("--max-wall", "1.5").unwrap(), 1.5);
    }
}
