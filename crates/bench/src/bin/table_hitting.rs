//! **T-hit**: Lemma 6 and Corollary 9 — stationary hitting times against
//! their spectral bounds, exactly (linear solves) on mid-size graphs.
//!
//! `E_π(H_v) ≤ 1/((1−λ_max) π_v)` and `E_π(H_S) ≤ 2m/(d(S)(1−λ_max))`.
//! The ratio column shows how much slack the bound leaves on each family.

use eproc_bench::{rng_for, save_table, Config};
use eproc_graphs::{generators, Graph};
use eproc_spectral::dense::SymMatrix;
use eproc_spectral::hitting::{hitting_from_stationary, set_hitting_from_stationary};
use eproc_spectral::stationary_distribution;
use eproc_stats::{SeedSequence, TextTable};
use eproc_theory::{corollary9_set_hitting_bound, lemma6_hitting_bound};

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Lemma 6 / Corollary 9: worst-vertex stationary hitting times vs bounds\n");
    let mut table = TextTable::new(vec![
        "graph",
        "n",
        "gap",
        "max E_pi(H_v)",
        "Lemma 6 bound",
        "ratio",
        "E_pi(H_S) |S|=4",
        "Cor. 9 bound",
    ]);
    let mut graph_rng = rng_for(seeds.derive(&[0]));
    let graphs: Vec<(String, Graph)> = vec![
        (
            "random 4-regular(200)".into(),
            generators::connected_random_regular(200, 4, &mut graph_rng).unwrap(),
        ),
        (
            "random 6-regular(200)".into(),
            generators::connected_random_regular(200, 6, &mut graph_rng).unwrap(),
        ),
        ("torus 10x9".into(), generators::torus2d(10, 9)),
        ("lollipop(16,8)".into(), generators::lollipop(16, 8)),
        ("petersen".into(), generators::petersen()),
        ("figure-eight(7)".into(), generators::figure_eight(7)),
    ];
    for (name, g) in &graphs {
        let lambda = SymMatrix::from_graph(g, false).lambda_max_walk();
        if lambda >= 1.0 - 1e-9 {
            // Bipartite: Lemma 6 applies to the lazy chain; skip here
            // (all listed graphs are non-bipartite by construction).
            continue;
        }
        let gap = 1.0 - lambda;
        let pi = stationary_distribution(g);
        let mut worst_ratio_v = 0;
        let mut worst = (0.0f64, 0.0f64);
        for v in g.vertices() {
            let h = hitting_from_stationary(g, v).expect("connected");
            let b = lemma6_hitting_bound(pi[v], gap);
            assert!(h <= b + 1e-6, "{name}: Lemma 6 violated at {v}");
            if h > worst.0 {
                worst = (h, b);
                worst_ratio_v = v;
            }
        }
        let _ = worst_ratio_v;
        let set: Vec<usize> = (0..4).map(|i| i * (g.n() / 4)).collect();
        let d_s: usize = set.iter().map(|&v| g.degree(v)).sum();
        let h_s = set_hitting_from_stationary(g, &set).expect("connected");
        let b_s = corollary9_set_hitting_bound(g.m(), d_s, gap);
        assert!(h_s <= b_s + 1e-6, "{name}: Corollary 9 violated");
        table.push_row(vec![
            name.clone(),
            g.n().to_string(),
            format!("{gap:.4}"),
            format!("{:.1}", worst.0),
            format!("{:.1}", worst.1),
            format!("{:.3}", worst.0 / worst.1),
            format!("{h_s:.1}"),
            format!("{b_s:.1}"),
        ]);
    }
    println!("{table}");
    let p = save_table("table_hitting", &table).expect("write csv");
    println!("csv: {}", p.display());
}
