//! End-to-end vertex cover on fixed medium graphs: the E-process's Θ(n)
//! against the SRW's Θ(n log n).

use criterion::{criterion_group, criterion_main, Criterion};
use eproc_bench::rng_for;
use eproc_core::cover::{run_cover, CoverTarget};
use eproc_core::rule::UniformRule;
use eproc_core::srw::SimpleRandomWalk;
use eproc_core::EProcess;
use eproc_graphs::generators;

fn bench_cover(c: &mut Criterion) {
    let mut graph_rng = rng_for(1);
    let regular = generators::connected_random_regular(1_024, 4, &mut graph_rng).unwrap();
    let torus = generators::torus2d(32, 32);
    let mut group = c.benchmark_group("cover_small");
    group.sample_size(20);

    group.bench_function("eprocess_regular_n1024", |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = EProcess::new(&regular, 0, UniformRule::new());
            std::hint::black_box(run_cover(&mut w, CoverTarget::Vertices, u64::MAX, &mut rng))
        })
    });
    group.bench_function("srw_regular_n1024", |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = SimpleRandomWalk::new(&regular, 0);
            std::hint::black_box(run_cover(&mut w, CoverTarget::Vertices, u64::MAX, &mut rng))
        })
    });
    group.bench_function("eprocess_torus_32x32", |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = EProcess::new(&torus, 0, UniformRule::new());
            std::hint::black_box(run_cover(&mut w, CoverTarget::Vertices, u64::MAX, &mut rng))
        })
    });
    group.bench_function("eprocess_edge_cover_torus_32x32", |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = EProcess::new(&torus, 0, UniformRule::new());
            std::hint::black_box(run_cover(&mut w, CoverTarget::Edges, u64::MAX, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cover);
criterion_main!(benches);
