//! Rule A does not matter — even adversarially.
//!
//! Theorem 1's bound is "independent of the rule used to select the order
//! of the unvisited edges, which could, for example, be chosen on-line by
//! an adversary". This example races the uniform rule against three
//! adversaries on an even-degree expander and checks Observation 10
//! (blue phases return to their start vertex) along the way.
//!
//! Run with: `cargo run --release --example adversarial_explorer`

use eproc::core::cover::run_to_vertex_cover;
use eproc::core::rule::{AdversarialRule, EdgeRule, GreedyAdversary, RuleContext, UniformRule};
use eproc::core::{EProcess, StepKind, WalkProcess};
use eproc::graphs::generators;
use eproc::graphs::Graph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn race<A: EdgeRule>(name: &str, g: &Graph, rule: A, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut walk = EProcess::new(g, 0, rule);
    let cover = run_to_vertex_cover(&mut walk, g, &mut rng).expect("connected");
    println!(
        "  {name:<22} CV = {:>8} steps   CV/n = {:.2}",
        cover.steps,
        cover.steps as f64 / g.n() as f64
    );
}

fn main() {
    let n = 10_000;
    let mut rng = SmallRng::seed_from_u64(7);
    let g = generators::connected_random_regular(n, 6, &mut rng).expect("generator");
    println!("Even-degree expander: random 6-regular graph, n = {n}\n");
    println!("Vertex cover time under different rules A (Theorem 1 says all Θ(n)):");

    race("uniform", &g, UniformRule::new(), 1);
    race("degree-greedy adversary", &g, GreedyAdversary, 2);
    // An adversary that always returns fire toward the most recently
    // compacted slot (a worst-case-looking deterministic whim).
    race(
        "last-slot adversary",
        &g,
        AdversarialRule::new(|ctx: &RuleContext<'_>| ctx.live_arcs.len() - 1),
        3,
    );
    // An adversary alternating between extremes based on the step parity.
    race(
        "alternating adversary",
        &g,
        AdversarialRule::new(|ctx: &RuleContext<'_>| {
            if ctx.step.is_multiple_of(2) {
                0
            } else {
                ctx.live_arcs.len() - 1
            }
        }),
        4,
    );

    // Observation 10 spot-check: the first blue phase returns to its start.
    println!("\nObservation 10 check (blue phases return to the start vertex):");
    let mut walk = EProcess::new(&g, 123, UniformRule::new());
    let mut rng = SmallRng::seed_from_u64(5);
    let mut steps = 0u64;
    while walk.in_blue_phase() {
        let s = walk.advance(&mut rng);
        assert_eq!(s.kind, StepKind::Blue);
        steps += 1;
    }
    println!(
        "  first blue phase: {steps} blue steps, ended at vertex {} (started at 123) ✓",
        walk.current()
    );
    assert_eq!(walk.current(), 123, "Observation 10 violated!");
}
