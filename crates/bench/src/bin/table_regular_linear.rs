//! **T-cor2**: Corollaries 2 and 4 — linear vertex cover and near-linear
//! edge cover on random even-regular graphs.
//!
//! `CV(E)/n` should be flat across `n` for `r ∈ {4, 6}` (Corollary 2);
//! `CE(E)/n` may grow, but slower than any fixed power of `log n`
//! (Corollary 4: `O(ωn)` for any `ω → ∞`).

use eproc_bench::{edge_cover_runs, mean_vertex_cover_steps, rng_for, save_table, Config, Scale};
use eproc_core::rule::UniformRule;
use eproc_core::EProcess;
use eproc_graphs::generators;
use eproc_stats::{SeedSequence, Summary, TextTable};

const REPS: usize = 5;

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Corollary 2/4: CV(E)/n flat and CE(E)/n sub-logarithmic for r = 4, 6\n");
    let mut table = TextTable::new(vec!["r", "n", "CV/n", "CE/n", "CE/(n ln n)"]);
    let sizes: Vec<usize> = match config.scale {
        Scale::Quick => vec![1_000, 2_000, 4_000, 8_000, 16_000, 32_000],
        Scale::Paper => vec![16_000, 32_000, 64_000, 128_000, 256_000],
    };
    for &r in &[4usize, 6] {
        for &n in &sizes {
            let mut graph_rng = rng_for(seeds.derive(&[r as u64, n as u64]));
            let g = generators::connected_random_regular(n, r, &mut graph_rng).unwrap();
            let cap = (1_000.0 * n as f64 * (n as f64).ln()) as u64;
            let mut rng = rng_for(seeds.derive(&[r as u64, n as u64, 7]));
            let (cv, d1) = mean_vertex_cover_steps(
                |_| EProcess::new(&g, 0, UniformRule::new()),
                REPS,
                cap,
                &mut rng,
            );
            let ce_runs = edge_cover_runs(
                |_| EProcess::new(&g, 0, UniformRule::new()),
                REPS,
                cap,
                &mut rng,
            );
            let ce: Vec<u64> = ce_runs
                .iter()
                .filter_map(|x| x.steps_to_edge_cover)
                .collect();
            assert_eq!(d1, REPS);
            assert_eq!(ce.len(), REPS);
            let ce_mean = Summary::from_u64(&ce).mean;
            table.push_row(vec![
                r.to_string(),
                n.to_string(),
                format!("{:.3}", cv / n as f64),
                format!("{:.3}", ce_mean / n as f64),
                format!("{:.4}", ce_mean / (n as f64 * (n as f64).ln())),
            ]);
        }
    }
    println!("{table}");
    let p = save_table("table_regular_linear", &table).expect("write csv");
    println!("csv: {}", p.display());
}
