//! Wall-clock cost of per-trial graph resampling vs the shared-graph
//! mode, on the small cubic ensemble the `cubicensemble` builtin sweeps.
//!
//! Resampling generates one graph per trial group instead of one per
//! family, but generation is distributed across the worker pool exactly
//! like the walks (the work unit becomes a *(family, group)* block), and
//! every process in a cell reuses the block's sample — so the end-to-end
//! slowdown should stay within ~1.2× of shared-graph wall-clock rather
//! than paying the full generator cost serially. This bench measures
//! both modes on identical specs and writes
//! `target/experiments/BENCH_ensemble.json`; read it next to
//! `generator_throughput`, which prices the raw generators.

use eproc_bench::output_dir;
use eproc_engine::executor::{run, RunOptions};
use eproc_engine::spec::{
    CapSpec, ExperimentSpec, GraphSpec, ProcessSpec, ResamplePlan, RuleSpec, Target,
};
use std::time::Instant;

const SAMPLES: usize = 5;

/// Minimum seconds over `SAMPLES` timed runs — the least-interference
/// estimate when comparing variants on a shared machine.
fn best_secs<F: FnMut()>(mut f: F) -> f64 {
    (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn ensemble_spec(resample: Option<ResamplePlan>) -> ExperimentSpec {
    ExperimentSpec {
        name: "ensemble-overhead".into(),
        description: "resample overhead bench".into(),
        graphs: vec![
            GraphSpec::Regular { n: 2_000, d: 3 },
            GraphSpec::Regular { n: 2_000, d: 4 },
        ],
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials: 6,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(5_000.0),
        resample,
    }
}

fn timed(spec: &ExperimentSpec, opts: &RunOptions) -> f64 {
    run(spec, opts).expect("warm-up run");
    best_secs(|| {
        run(spec, opts).expect("timed run");
    })
}

fn main() {
    let opts = RunOptions {
        base_seed: 12345,
        ..RunOptions::auto()
    };
    let shared_spec = ensemble_spec(None);
    // Two resampling shapes: per-trial (each trial its own graph — the
    // maximal-generation worst case) and grouped (2 walks per graph ×
    // 2 processes = 4 walks per sample, the `cubicensemble` builtin's
    // configuration, which is where the ~1.2x target lives).
    let per_trial_spec = ensemble_spec(Some(ResamplePlan::per_trial()));
    let grouped_plan = ResamplePlan { walks_per_graph: 2 };
    let grouped_spec = ensemble_spec(Some(grouped_plan));
    let families = shared_spec.graphs.len();
    let per_trial_graphs = families * ResamplePlan::per_trial().groups(per_trial_spec.trials);
    let grouped_graphs = families * grouped_plan.groups(grouped_spec.trials);

    let shared_secs = timed(&shared_spec, &opts);
    let per_trial_secs = timed(&per_trial_spec, &opts);
    let grouped_secs = timed(&grouped_spec, &opts);
    let per_trial_overhead = per_trial_secs / shared_secs;
    let grouped_overhead = grouped_secs / shared_secs;

    println!(
        "ensemble_overhead/shared:    {:>8.2} ms ({families} graphs built per run)",
        shared_secs * 1e3
    );
    println!(
        "ensemble_overhead/grouped:   {:>8.2} ms ({grouped_graphs} graphs, 2 walks x 2 processes each; {grouped_overhead:.2}x, target ~1.2x)",
        grouped_secs * 1e3
    );
    println!(
        "ensemble_overhead/per_trial: {:>8.2} ms ({per_trial_graphs} graphs, 1 walk x 2 processes each; {per_trial_overhead:.2}x)",
        per_trial_secs * 1e3
    );

    let json = format!(
        "{{\n  \"bench\": \"ensemble_overhead\",\n  \
         \"spec\": \"2x random cubic/quartic n=2000, 2 processes, 6 trials\",\n  \
         \"samples\": {},\n  \
         \"threads\": {},\n  \
         \"graphs_per_run_shared\": {},\n  \
         \"graphs_per_run_grouped\": {},\n  \
         \"graphs_per_run_per_trial\": {},\n  \
         \"shared_secs\": {:.6},\n  \
         \"grouped_secs\": {:.6},\n  \
         \"per_trial_secs\": {:.6},\n  \
         \"resample_overhead\": {:.4},\n  \
         \"per_trial_overhead\": {:.4}\n}}\n",
        SAMPLES,
        opts.threads,
        families,
        grouped_graphs,
        per_trial_graphs,
        shared_secs,
        grouped_secs,
        per_trial_secs,
        grouped_overhead,
        per_trial_overhead,
    );
    let dir = output_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = dir.join("BENCH_ensemble.json");
    std::fs::write(&path, json).expect("write snapshot");
    println!("json: {}", path.display());
}
