//! The title experiment: exploring a *high girth even degree expander* in
//! linear time.
//!
//! Constructs the LPS Ramanujan graph `X^{5,17}` (6-regular, 4896
//! vertices, girth ≥ 6 — reference [11] of the paper), verifies its
//! credentials (degree, girth, Ramanujan spectral bound), and runs the
//! E-process to vertex and edge cover, comparing against Theorem 1 /
//! Theorem 3.
//!
//! Run with: `cargo run --release --example high_girth_expander`

use eproc::core::cover::{run_cover, CoverTarget};
use eproc::core::rule::UniformRule;
use eproc::core::EProcess;
use eproc::graphs::generators::{self, LpsParams};
use eproc::graphs::properties::{bipartite, connectivity, degrees, girth};
use eproc::spectral::lanczos::lanczos;
use eproc::theory;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let (p, q) = (5, 17);
    let params = LpsParams::new(p, q).expect("valid parameters");
    println!("Constructing the LPS Ramanujan graph X^({p},{q})...");
    let g = generators::lps_ramanujan(p, q).expect("construction");
    println!("  n = {} (formula: {})", g.n(), params.vertex_count());
    println!("  degree = {} (even!)", g.degree(0));
    assert!(degrees::is_even_degree(&g));
    assert!(connectivity::is_connected(&g));

    let girth_bound = params.girth_lower_bound();
    let measured_girth = girth::girth_at_most(&g, 24).expect("LPS graphs have short-ish cycles");
    println!("  girth = {measured_girth} (theory: >= {girth_bound:.2})");

    let spec = lanczos(&g, 140);
    let ramanujan = theory::ramanujan_lambda_bound(p as usize);
    println!(
        "  lambda_2 = {:.4} (Ramanujan bound: {ramanujan:.4})",
        spec.lambda_2()
    );
    assert!(
        spec.lambda_2() <= ramanujan + 1e-6,
        "Ramanujan property violated"
    );
    let gap = if bipartite::is_bipartite(&g) {
        println!("  bipartite: using the lazy-walk gap (paper §2.1)");
        (1.0 - spec.lambda_2()) / 2.0
    } else {
        1.0 - spec.lambda_max()
    };
    println!("  eigenvalue gap = {gap:.4}\n");

    let mut rng = SmallRng::seed_from_u64(99);
    let mut walk = EProcess::new(&g, 0, UniformRule::new());
    let run = run_cover(&mut walk, CoverTarget::Both, u64::MAX >> 1, &mut rng);
    let cv = run.steps_to_vertex_cover.expect("covers");
    let ce = run.steps_to_edge_cover.expect("covers");

    println!("E-process on X^({p},{q}):");
    println!(
        "  vertex cover: {cv} steps  (CV/n = {:.2})",
        cv as f64 / g.n() as f64
    );
    println!(
        "  edge cover  : {ce} steps  (CE/m = {:.2})",
        ce as f64 / g.m() as f64
    );

    let t1 = theory::theorem1_vertex_cover_bound(g.n(), measured_girth as f64, gap);
    let t3 = theory::theorem3_edge_cover_bound(g.m(), g.n(), measured_girth, 6, gap);
    println!("\nTheory:");
    println!(
        "  Theorem 1 expression: {t1:.0} (measured/bound = {:.3})",
        cv as f64 / t1
    );
    println!(
        "  Theorem 3 expression: {t3:.0} (measured/bound = {:.3})",
        ce as f64 / t3
    );
    println!("\nBoth covers are linear in the graph size — the title, realised.");
}
