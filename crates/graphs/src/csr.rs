//! Compressed-sparse-row representation of an undirected multigraph.
//!
//! Terminology used throughout the workspace:
//!
//! * A **vertex** is a `usize` in `0..n`.
//! * An **edge** is an undirected pair `{u, v}`, `u != v`, identified by a
//!   stable [`EdgeId`] in `0..m`. Parallel edges are allowed (the
//!   configuration model produces them) and get distinct ids; self-loops are
//!   rejected at construction.
//! * An **arc** is one of the two directed copies of an edge, identified by
//!   an [`ArcId`] in `0..2m`. Arcs are grouped contiguously by source vertex
//!   (CSR layout), so "the ports of `v`" are the slice
//!   `arc_range(v)`. The E-process, rotor-router and the locally fair
//!   explorers all operate on ports/arcs while marking *edges*.

use crate::error::GraphError;
use std::fmt;
use std::ops::Range;

/// Index of a vertex, `0..n`.
pub type Vertex = usize;
/// Index of an undirected edge, `0..m`.
pub type EdgeId = usize;
/// Index of a directed arc (half-edge), `0..2m`; arcs are grouped by source.
pub type ArcId = usize;

/// A finite undirected multigraph in CSR form with stable edge and arc ids.
///
/// Construction is via [`Graph::from_edges`], [`crate::GraphBuilder`], or one
/// of the [`crate::generators`]. The representation is immutable after
/// construction: walk processes keep their own mutable bookkeeping (visited
/// bitmaps, rotor positions, ...) *outside* the graph, so a single graph can
/// back many concurrent simulations.
///
/// # Example
///
/// ```
/// use eproc_graphs::Graph;
///
/// // A triangle with a pendant vertex.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])?;
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert_eq!(g.degree(2), 3);
/// assert_eq!(g.neighbors(3).collect::<Vec<_>>(), vec![2]);
/// # Ok::<(), eproc_graphs::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets: arcs of vertex `v` are `arc_targets[offsets[v]..offsets[v+1]]`.
    offsets: Vec<usize>,
    /// Target vertex of each arc.
    arc_targets: Vec<u32>,
    /// Edge id of each arc.
    arc_edges: Vec<u32>,
    /// Endpoints `(u, v)` of each edge, in the order supplied at construction.
    edge_endpoints: Vec<(u32, u32)>,
    /// The two arc ids of each edge: `edge_arcs[e].0` leaves `endpoints.0`,
    /// `edge_arcs[e].1` leaves `endpoints.1`.
    edge_arcs: Vec<(u32, u32)>,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list.
    ///
    /// Edge ids are assigned in list order. Parallel edges are allowed and
    /// kept (multigraph semantics).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] if `u == v` for some edge.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Result<Graph, GraphError> {
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::VertexOutOfRange { vertex: u, n });
            }
            if v >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { vertex: u });
            }
        }
        let m = edges.len();
        let mut degree = vec![0usize; n];
        for &(u, v) in edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in degree.iter().take(n) {
            acc += d;
            offsets.push(acc);
        }
        debug_assert_eq!(acc, 2 * m);
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut arc_targets = vec![0u32; 2 * m];
        let mut arc_edges = vec![0u32; 2 * m];
        let mut edge_arcs = vec![(0u32, 0u32); m];
        let mut edge_endpoints = Vec::with_capacity(m);
        for (e, &(u, v)) in edges.iter().enumerate() {
            let au = cursor[u];
            cursor[u] += 1;
            arc_targets[au] = v as u32;
            arc_edges[au] = e as u32;
            let av = cursor[v];
            cursor[v] += 1;
            arc_targets[av] = u as u32;
            arc_edges[av] = e as u32;
            edge_arcs[e] = (au as u32, av as u32);
            edge_endpoints.push((u as u32, v as u32));
        }
        Ok(Graph {
            offsets,
            arc_targets,
            arc_edges,
            edge_endpoints,
            edge_arcs,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (counting parallel edges separately).
    #[inline]
    pub fn m(&self) -> usize {
        self.edge_endpoints.len()
    }

    /// Degree of `v` (parallel edges counted with multiplicity).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The contiguous range of arc ids leaving `v` (its *ports*).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn arc_range(&self, v: Vertex) -> Range<ArcId> {
        self.offsets[v]..self.offsets[v + 1]
    }

    /// Target vertex of arc `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= 2m`.
    #[inline]
    pub fn arc_target(&self, a: ArcId) -> Vertex {
        self.arc_targets[a] as Vertex
    }

    /// Edge id of arc `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= 2m`.
    #[inline]
    pub fn arc_edge(&self, a: ArcId) -> EdgeId {
        self.arc_edges[a] as EdgeId
    }

    /// The two arc ids of edge `e`: the first leaves `endpoints(e).0`, the
    /// second leaves `endpoints(e).1`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    #[inline]
    pub fn edge_arcs(&self, e: EdgeId) -> (ArcId, ArcId) {
        let (a, b) = self.edge_arcs[e];
        (a as ArcId, b as ArcId)
    }

    /// Endpoints `(u, v)` of edge `e` in construction order.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (Vertex, Vertex) {
        let (u, v) = self.edge_endpoints[e];
        (u as Vertex, v as Vertex)
    }

    /// The endpoint of `e` that is not `v`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m` or `v` is not an endpoint of `e` (debug builds).
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: Vertex) -> Vertex {
        let (a, b) = self.endpoints(e);
        debug_assert!(
            v == a || v == b,
            "vertex {v} is not an endpoint of edge {e}"
        );
        if v == a {
            b
        } else {
            a
        }
    }

    /// Iterator over the neighbors of `v`, with multiplicity for parallel
    /// edges, in port order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.arc_targets[self.arc_range(v)]
            .iter()
            .map(|&t| t as Vertex)
    }

    /// Issues an early load of `v`'s CSR port row — the offset word and
    /// the leading `arc_targets` / `arc_edges` entries — discarding the
    /// values through [`std::hint::black_box`].
    ///
    /// This is the crate's safe-code stand-in for a prefetch hint
    /// (`#![forbid(unsafe_code)]` rules out the intrinsic): the loads
    /// cannot be optimised away, so the row's cache lines are requested
    /// *now* and their memory latency overlaps whatever the caller does
    /// next. The interleaved multi-trial driver calls this for the lane it
    /// will advance next while the current lane's step executes.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn prefetch_ports(&self, v: Vertex) {
        let lo = self.offsets[v];
        if let (Some(&t), Some(&e)) = (self.arc_targets.get(lo), self.arc_edges.get(lo)) {
            std::hint::black_box(t);
            std::hint::black_box(e);
        }
    }

    /// Iterator over `(arc, target, edge)` triples of the ports of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn ports(&self, v: Vertex) -> impl Iterator<Item = (ArcId, Vertex, EdgeId)> + '_ {
        self.arc_range(v)
            .map(move |a| (a, self.arc_target(a), self.arc_edge(a)))
    }

    /// Iterator over all edges as `(edge, u, v)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Vertex, Vertex)> + '_ {
        self.edge_endpoints
            .iter()
            .enumerate()
            .map(|(e, &(u, v))| (e, u as Vertex, v as Vertex))
    }

    /// Iterator over all vertices, `0..n`.
    pub fn vertices(&self) -> Range<Vertex> {
        0..self.n()
    }

    /// Sum of all degrees, `2m`.
    #[inline]
    pub fn total_degree(&self) -> usize {
        2 * self.m()
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree, or 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// `true` if some edge `{u, v}` exists (linear in `min(deg u, deg v)`).
    ///
    /// # Panics
    ///
    /// Panics if `u >= n` or `v >= n`.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let (small, other) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(small).any(|w| w == other)
    }

    /// Number of parallel edges between `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n` or `v >= n`.
    pub fn edge_multiplicity(&self, u: Vertex, v: Vertex) -> usize {
        let (small, other) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(small).filter(|&w| w == other).count()
    }

    /// `true` if the graph contains at least one pair of parallel edges.
    pub fn has_parallel_edges(&self) -> bool {
        let mut seen: Vec<(u32, u32)> = self
            .edge_endpoints
            .iter()
            .map(|&(u, v)| if u <= v { (u, v) } else { (v, u) })
            .collect();
        seen.sort_unstable();
        seen.windows(2).any(|w| w[0] == w[1])
    }

    /// The edge list `(u, v)` in edge-id order; useful for round-tripping,
    /// serialization, and building modified copies.
    pub fn edge_list(&self) -> Vec<(Vertex, Vertex)> {
        self.edge_endpoints
            .iter()
            .map(|&(u, v)| (u as Vertex, v as Vertex))
            .collect()
    }

    /// Returns a copy of the graph with an extra vertex-disjoint validation
    /// pass; used by property tests.
    ///
    /// # Errors
    ///
    /// Propagates any [`GraphError`] from reconstruction (none are expected
    /// for a well-formed graph).
    pub fn rebuilt(&self) -> Result<Graph, GraphError> {
        Graph::from_edges(self.n(), &self.edge_list())
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph {{ n: {}, m: {} }}", self.n(), self.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_pendant();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.total_degree(), 8);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        let mut n2: Vec<_> = g.neighbors(2).collect();
        n2.sort_unstable();
        assert_eq!(n2, vec![0, 1, 3]);
    }

    #[test]
    fn arcs_and_edges_are_consistent() {
        let g = triangle_plus_pendant();
        for e in 0..g.m() {
            let (u, v) = g.endpoints(e);
            let (au, av) = g.edge_arcs(e);
            assert_eq!(g.arc_edge(au), e);
            assert_eq!(g.arc_edge(av), e);
            assert_eq!(g.arc_target(au), v);
            assert_eq!(g.arc_target(av), u);
            assert!(g.arc_range(u).contains(&au));
            assert!(g.arc_range(v).contains(&av));
        }
    }

    #[test]
    fn ports_cover_all_arcs_exactly_once() {
        let g = triangle_plus_pendant();
        let mut seen = vec![false; 2 * g.m()];
        for v in g.vertices() {
            for (a, target, e) in g.ports(v) {
                assert!(!seen[a], "arc {a} appears twice");
                seen[a] = true;
                assert_eq!(g.arc_target(a), target);
                assert_eq!(g.arc_edge(a), e);
                assert_eq!(g.other_endpoint(e, v), target);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rejects_self_loop() {
        let err = Graph::from_edges(3, &[(0, 0)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: 0 });
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Graph::from_edges(3, &[(0, 3)]).unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 3, n: 3 });
    }

    #[test]
    fn parallel_edges_are_kept() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.edge_multiplicity(0, 1), 2);
        assert!(g.has_parallel_edges());
    }

    #[test]
    fn simple_graph_has_no_parallel_edges() {
        assert!(!triangle_plus_pendant().has_parallel_edges());
    }

    #[test]
    fn has_edge_works_both_directions() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        let g = Graph::from_edges(5, &[]).unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn edge_list_round_trips() {
        let g = triangle_plus_pendant();
        let h = g.rebuilt().unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn debug_is_nonempty() {
        let g = triangle_plus_pendant();
        assert_eq!(format!("{g:?}"), "Graph { n: 4, m: 4 }");
    }

    #[test]
    fn graph_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Graph>();
    }
}
