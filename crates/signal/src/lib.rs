//! A minimal async-signal-safe SIGINT/SIGTERM latch.
//!
//! The `eproc` CLI wants exactly one thing from POSIX signals: when the
//! user presses Ctrl-C (or the scheduler sends SIGTERM), flip a boolean
//! that the work-stealing executor polls between blocks, so in-flight
//! work drains, a final checkpoint is written, and the process exits
//! cleanly with a "resumable" status instead of dying mid-write.
//!
//! This is the only crate in the workspace that is not
//! `#![forbid(unsafe_code)]`: registering a signal handler requires two
//! `extern "C"` calls (`signal`, plus `raise` for the self-test). The
//! unsafe surface is kept deliberately tiny and the handler body is
//! async-signal-safe — it performs a single relaxed store into a
//! `static AtomicBool` and nothing else (no allocation, no locks, no
//! formatting).
//!
//! On non-Unix targets [`install`] is a no-op that still hands back the
//! latch, so callers need no platform gates of their own.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide interruption latch. `false` until a handled signal
/// arrives; never reset (a latched interruption stays latched).
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{AtomicBool, Ordering, INTERRUPTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // `signal(2)` and `raise(3)` from libc, which std already links.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        #[cfg(test)]
        fn raise(sig: i32) -> i32;
    }

    /// The registered handler: one relaxed store, nothing else. Every
    /// operation here must be async-signal-safe.
    extern "C" fn on_signal(_signum: i32) {
        INTERRUPTED.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() -> &'static AtomicBool {
        // Idempotent: re-registering the same handler is harmless, so no
        // once-guard is needed.
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
        &INTERRUPTED
    }

    #[cfg(test)]
    pub(super) fn raise_sigint() {
        unsafe {
            raise(SIGINT);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::{AtomicBool, INTERRUPTED};

    pub(super) fn install() -> &'static AtomicBool {
        // No signal(2) on this target; the latch simply never fires.
        &INTERRUPTED
    }
}

/// Registers handlers for SIGINT and SIGTERM (on Unix; a no-op
/// elsewhere) and returns the shared latch they flip.
///
/// Safe to call more than once. The returned reference is `'static`, so
/// it can be handed to scoped worker threads without lifetime plumbing.
pub fn install() -> &'static AtomicBool {
    imp::install()
}

/// Reports whether a handled signal has arrived since [`install`].
///
/// Always `false` if [`install`] was never called (or on non-Unix
/// targets, where no handler exists to flip the latch).
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(unix)]
    fn sigint_flips_the_latch() {
        let latch = install();
        assert!(!latch.load(Ordering::Relaxed));
        imp::raise_sigint();
        assert!(interrupted());
        assert!(latch.load(Ordering::Relaxed));
    }

    #[test]
    #[cfg(not(unix))]
    fn install_is_a_quiet_no_op() {
        let latch = install();
        assert!(!latch.load(Ordering::Relaxed));
        assert!(!interrupted());
    }
}
