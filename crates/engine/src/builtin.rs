//! Built-in experiment specs reproducing the paper's headline tables.
//!
//! These are consumed by the `eproc` CLI (`eproc run <name>`) and by the
//! thin `table_*` wrapper binaries in `eproc-bench`. Every spec is a pure
//! function of the [`Scale`], so `quick` and `paper` runs of the same name
//! are distinct but individually reproducible.
//!
//! A builtin name is just a spelling: under the artifact cache it
//! reduces to the same normal form as the equivalent expanded
//! `--graph`/`--process` flags ([`ExperimentSpec::canonicalize`]), so
//! both spellings share one [`SpecDigest`](crate::digest::SpecDigest)
//! cache entry. `eproc list --canonical` prints each builtin's
//! canonical line and digest.

use crate::spec::{
    CapSpec, ExperimentSpec, GraphSpec, MetricSpec, ProcessSpec, ResamplePlan, RuleSpec, Scale,
    SweepRange, SweepStep, Target,
};

/// Names of all built-in specs, in display order.
pub fn names() -> Vec<&'static str> {
    vec![
        "comparison",
        "theorem1",
        "rules",
        "lowerbound",
        "hypercube",
        "blanket",
        "phases",
        "hitting",
        "worststart",
        "lgood",
        "cubicensemble",
        "odddegree",
        "scaling-even",
        "scaling-srw",
    ]
}

/// Names of the size-sweep builtins — the specs `eproc scale` fits
/// growth laws to. They also run under `eproc run` (as plain ensembles,
/// without the fits).
pub fn scaling_names() -> Vec<&'static str> {
    vec!["scaling-even", "scaling-srw"]
}

/// Resolves a built-in spec by name at the given scale.
pub fn spec(name: &str, scale: Scale) -> Option<ExperimentSpec> {
    match name {
        "comparison" => Some(comparison(scale)),
        "theorem1" => Some(theorem1(scale)),
        "rules" => Some(rules(scale)),
        "lowerbound" => Some(lowerbound(scale)),
        "hypercube" => Some(hypercube(scale)),
        "blanket" => Some(blanket(scale)),
        "phases" => Some(phases(scale)),
        "hitting" => Some(hitting(scale)),
        "worststart" => Some(worststart(scale)),
        "lgood" => Some(lgood(scale)),
        "cubicensemble" => Some(cubicensemble(scale)),
        "odddegree" => Some(odddegree(scale)),
        "scaling-even" => Some(scaling_even(scale)),
        "scaling-srw" => Some(scaling_srw(scale)),
        _ => None,
    }
}

/// **T-cmp** — the E-process against every related process from §1 (SRW,
/// rotor-router, RWC(2), Oldest-First, Least-Used-First) on an even-degree
/// expander, a torus and a random geometric graph.
pub fn comparison(scale: Scale) -> ExperimentSpec {
    let (reg_n, side, geo_n) = match scale {
        Scale::Quick => (4_096, 32, 2_000),
        Scale::Paper => (65_536, 128, 20_000),
    };
    ExperimentSpec {
        name: "comparison".into(),
        description: "E-process vs related processes from §1: mean vertex cover time".into(),
        graphs: vec![
            GraphSpec::Regular { n: reg_n, d: 4 },
            GraphSpec::Torus { w: side, h: side },
            GraphSpec::Geometric {
                n: geo_n,
                radius_factor: 1.5,
            },
        ],
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
            ProcessSpec::RotorRouter,
            ProcessSpec::Rwc { d: 2 },
            ProcessSpec::OldestFirst,
            ProcessSpec::LeastUsedFirst,
        ],
        trials: 5,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(50_000.0),
        resample: None,
    }
}

/// **T-thm1** — Theorem 1's `CV = O(n + n log n / (ℓ(1−λmax)))` sweep over
/// even-degree random regular graphs and LPS Ramanujan graphs. The engine
/// measures the cover times; the `table_theorem1` wrapper adds the
/// spectral-gap and bound columns.
pub fn theorem1(scale: Scale) -> ExperimentSpec {
    let regular_sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 4_000, 16_000],
        Scale::Paper => vec![4_000, 16_000, 64_000, 256_000],
    };
    let lps_params: Vec<(u64, u64)> = match scale {
        Scale::Quick => vec![(5, 13), (5, 17)],
        Scale::Paper => vec![(5, 13), (5, 17), (5, 29)],
    };
    let mut graphs = Vec::new();
    for &d in &[4usize, 6] {
        for &n in &regular_sizes {
            graphs.push(GraphSpec::Regular { n, d });
        }
    }
    for &(p, q) in &lps_params {
        graphs.push(GraphSpec::Lps { p, q });
    }
    ExperimentSpec {
        name: "theorem1".into(),
        description: "Theorem 1: E-process cover time on even-degree expanders".into(),
        graphs,
        processes: vec![ProcessSpec::EProcess {
            rule: RuleSpec::Uniform,
        }],
        trials: 5,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(500.0),
        resample: None,
    }
}

/// **T-rules** — rule independence: the E-process under every rule `A`
/// (uniform, first/last port, round-robin, two adversaries) covers in
/// `Θ(n)` on even-degree expanders.
pub fn rules(scale: Scale) -> ExperimentSpec {
    let reg_n = match scale {
        Scale::Quick => 4_000,
        Scale::Paper => 64_000,
    };
    ExperimentSpec {
        name: "rules".into(),
        description: "Theorem 1 rule independence: every rule A covers in Θ(n)".into(),
        graphs: vec![
            GraphSpec::Regular { n: reg_n, d: 4 },
            GraphSpec::Lps { p: 5, q: 13 },
        ],
        processes: RuleSpec::all()
            .into_iter()
            .map(|rule| ProcessSpec::EProcess { rule })
            .collect(),
        trials: 5,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(2_000.0),
        resample: None,
    }
}

/// **T-lb** — Theorem 5 flavour: the weighted random walk (whose cover
/// time is `Ω(n log n)`) against the E-process and SRW on even-degree
/// random regular graphs.
pub fn lowerbound(scale: Scale) -> ExperimentSpec {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 2_000, 4_000],
        Scale::Paper => vec![4_000, 16_000, 64_000],
    };
    ExperimentSpec {
        name: "lowerbound".into(),
        description: "Theorem 5 flavour: weighted SRW Ω(n log n) vs E-process Θ(n)".into(),
        graphs: sizes
            .into_iter()
            .map(|n| GraphSpec::Regular { n, d: 4 })
            .collect(),
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
            ProcessSpec::WeightedSrw,
        ],
        trials: 5,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(5_000.0),
        resample: None,
    }
}

/// **T-hyp** — edge cover on hypercubes, where the paper's edge-cover
/// sandwich (3) is tight while the Orenshtein–Shinkar bound (2) is not.
pub fn hypercube(scale: Scale) -> ExperimentSpec {
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![6, 8, 10],
        Scale::Paper => vec![10, 12, 14],
    };
    ExperimentSpec {
        name: "hypercube".into(),
        description: "Edge cover time of the E-process and SRW on hypercubes".into(),
        graphs: dims
            .into_iter()
            .map(|dim| GraphSpec::Hypercube { dim })
            .collect(),
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials: 5,
        target: Target::EdgeCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(50_000.0),
        resample: None,
    }
}

/// **T-bl** — equation (4): the blanket-time route to edge cover. The
/// blanket target stops each trial; a `cover` metric on the **same walk**
/// also yields `CV` and `CE`, so the `table_blanket` wrapper can print
/// `τ_bl(1/2)`, `CV(SRW)` and `CE(E)` from one ensemble.
pub fn blanket(scale: Scale) -> ExperimentSpec {
    let (reg_n, torus_side, hyp) = match scale {
        Scale::Quick => (2_000, 24, 9),
        Scale::Paper => (16_000, 64, 12),
    };
    ExperimentSpec {
        name: "blanket".into(),
        description: "Eq. (4): blanket time τ_bl(1/2), CV and CE from one walk per trial".into(),
        graphs: vec![
            GraphSpec::Regular { n: reg_n, d: 4 },
            GraphSpec::Torus {
                w: torus_side,
                h: torus_side,
            },
            GraphSpec::Hypercube { dim: hyp },
        ],
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials: 3,
        target: Target::Blanket { delta: 0.5 },
        metrics: vec![MetricSpec::Cover],
        start: 0,
        cap: CapSpec::Absolute(500_000_000),
        resample: None,
    }
}

/// **T-phase** — the blue/red phase structure behind the proofs, plus the
/// §5 isolated-star census, measured in one pass per trial on random
/// `r`-regular graphs for `r ∈ {3,4,5,6}`.
pub fn phases(scale: Scale) -> ExperimentSpec {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![4_000, 16_000, 64_000],
        Scale::Paper => vec![16_000, 64_000, 256_000],
    };
    let mut graphs = Vec::new();
    for &r in &[3usize, 4, 5, 6] {
        for &n in &sizes {
            graphs.push(GraphSpec::Regular { n, d: r });
        }
    }
    ExperimentSpec {
        name: "phases".into(),
        description: "Blue/red phase structure and §5 star census of the E-process".into(),
        graphs,
        processes: vec![ProcessSpec::EProcess {
            rule: RuleSpec::Uniform,
        }],
        trials: 5,
        target: Target::EdgeCover,
        metrics: vec![MetricSpec::Phases, MetricSpec::BlueCensus],
        start: 0,
        cap: CapSpec::NLogN(2_000.0),
        resample: None,
    }
}

/// **T-hit** — empirical first-visit (hitting) times of the canonical far
/// vertex `n-1` for the SRW on the Lemma 6 / Corollary 9 graph zoo; the
/// `table_hitting` wrapper adds the exact linear-solve values and the
/// spectral bounds.
pub fn hitting(scale: Scale) -> ExperimentSpec {
    let trials = match scale {
        Scale::Quick => 10,
        Scale::Paper => 50,
    };
    ExperimentSpec {
        name: "hitting".into(),
        description: "Empirical hitting times H(0 → n-1) on the spectral-bound graph zoo".into(),
        graphs: vec![
            GraphSpec::Regular { n: 200, d: 4 },
            GraphSpec::Regular { n: 200, d: 6 },
            GraphSpec::Torus { w: 10, h: 9 },
            GraphSpec::Lollipop {
                clique: 16,
                path: 8,
            },
            GraphSpec::Petersen,
            GraphSpec::FigureEight { len: 7 },
        ],
        processes: vec![ProcessSpec::Srw],
        trials,
        target: Target::VertexCover,
        metrics: vec![MetricSpec::Hitting { vertex: None }],
        start: 0,
        cap: CapSpec::Auto,
        resample: None,
    }
}

/// **T-wstart** — one cell of the start-vertex sensitivity sweep: the
/// E-process and SRW from a fixed start. The `table_worst_start` wrapper
/// re-runs this spec once per start vertex (setting
/// [`ExperimentSpec::start`]) and takes the max over starts — the paper's
/// `C_V = max_v C_v`.
pub fn worststart(scale: Scale) -> ExperimentSpec {
    let trials = match scale {
        Scale::Quick => 8,
        Scale::Paper => 24,
    };
    ExperimentSpec {
        name: "worststart".into(),
        description: "Start-vertex sensitivity: CV = max_v C_v building block".into(),
        graphs: vec![
            GraphSpec::Regular { n: 128, d: 4 },
            GraphSpec::Torus { w: 12, h: 12 },
            GraphSpec::Lollipop {
                clique: 24,
                path: 24,
            },
        ],
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::Auto,
        resample: None,
    }
}

/// **T-lgood** — the ensemble half of the `ℓ`-goodness landscape: the
/// E-process cover time on the random even-regular sweep whose greedy
/// `ℓ` upper bounds and §4.1 (P2) predictions the `table_lgood` wrapper
/// computes per graph.
pub fn lgood(scale: Scale) -> ExperimentSpec {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 4_000, 16_000],
        Scale::Paper => vec![4_000, 16_000, 64_000, 256_000],
    };
    let mut graphs = Vec::new();
    for &r in &[4usize, 6] {
        for &n in &sizes {
            graphs.push(GraphSpec::Regular { n, d: r });
        }
    }
    ExperimentSpec {
        name: "lgood".into(),
        description: "l-goodness sweep: E-process cover time on even-regular graphs".into(),
        graphs,
        processes: vec![ProcessSpec::EProcess {
            rule: RuleSpec::Uniform,
        }],
        trials: 3,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(500.0),
        resample: None,
    }
}

/// **T-cubic** — the Cooper–Frieze–Johansson scenario: cover time of
/// walk processes on the **ensemble** of random cubic (3-regular)
/// graphs, with a fresh graph sampled per trial group so the cell
/// statistics estimate the whp-over-the-graph claim rather than
/// conditioning on one sample. Two walks per graph split the variance
/// into its across-graph and within-graph components.
pub fn cubicensemble(scale: Scale) -> ExperimentSpec {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![500, 1_000, 2_000],
        Scale::Paper => vec![4_000, 16_000, 64_000],
    };
    ExperimentSpec {
        name: "cubicensemble".into(),
        description: "Random cubic graph ensemble: cover time whp over the graph (CFJ scenario)"
            .into(),
        graphs: sizes
            .into_iter()
            .map(|n| GraphSpec::Regular { n, d: 3 })
            .collect(),
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials: 6,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(5_000.0),
        resample: Some(ResamplePlan { walks_per_graph: 2 }),
    }
}

/// **T-odd** — the Johansson scenario: the E-process on random regular
/// graphs of **odd** degree `r ∈ {3, 5, 7}`, outside the paper's
/// even-degree assumption, resampled per trial group. Odd degree breaks
/// the Eulerian local structure behind Theorem 1, so the interesting
/// quantity is exactly the across-graph ensemble behaviour.
pub fn odddegree(scale: Scale) -> ExperimentSpec {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 4_000],
        Scale::Paper => vec![16_000, 64_000],
    };
    let mut graphs = Vec::new();
    for &r in &[3usize, 5, 7] {
        for &n in &sizes {
            graphs.push(GraphSpec::Regular { n, d: r });
        }
    }
    ExperimentSpec {
        name: "odddegree".into(),
        description: "Odd-degree random regular ensemble: E-process cover time for r in {3,5,7}"
            .into(),
        graphs,
        processes: vec![ProcessSpec::EProcess {
            rule: RuleSpec::Uniform,
        }],
        trials: 6,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(2_000.0),
        resample: Some(ResamplePlan { walks_per_graph: 2 }),
    }
}

fn regular_sweep(range: SweepRange, d: usize) -> Vec<GraphSpec> {
    range
        .points()
        .expect("builtin sweep ranges are well-formed")
        .into_iter()
        .map(|n| GraphSpec::Regular { n, d })
        .collect()
}

/// **T-scale-even** — the paper's headline growth law, end to end: the
/// E-process on random 4-regular graphs swept across decades of `n`,
/// each size resampled per trial group. `eproc scale scaling-even` fits
/// the steps/`C_V`/`C_E` series against `c·m`, `a+b·m` and `c·n ln n` —
/// the linear models must win (Theorem 1: `Θ(m)` cover on even-degree
/// expanders).
pub fn scaling_even(scale: Scale) -> ExperimentSpec {
    let range = match scale {
        Scale::Quick => SweepRange {
            start: 500,
            end: 8_000,
            step: SweepStep::Factor(2),
        },
        Scale::Paper => SweepRange {
            start: 4_000,
            end: 256_000,
            step: SweepStep::Factor(2),
        },
    };
    ExperimentSpec {
        name: "scaling-even".into(),
        description: "Scaling law: E-process on random 4-regular graphs covers in Θ(m)".into(),
        graphs: regular_sweep(range, 4),
        processes: vec![ProcessSpec::EProcess {
            rule: RuleSpec::Uniform,
        }],
        trials: 4,
        target: Target::VertexCover,
        metrics: vec![MetricSpec::Cover],
        start: 0,
        cap: CapSpec::NLogN(500.0),
        resample: Some(ResamplePlan { walks_per_graph: 2 }),
    }
}

/// **T-scale-srw** — the `n log n` contrast on the same even-degree
/// family: SRW next to the E-process across the sweep, so one
/// `eproc scale scaling-srw` artifact shows the linear law for the
/// E-process and `c·n ln n` winning for the SRW (cf. the
/// Cooper–Frieze–Johansson / Johansson asymptotics for odd degree).
pub fn scaling_srw(scale: Scale) -> ExperimentSpec {
    let range = match scale {
        Scale::Quick => SweepRange {
            start: 250,
            end: 8_000,
            step: SweepStep::Factor(2),
        },
        Scale::Paper => SweepRange {
            start: 4_000,
            end: 256_000,
            step: SweepStep::Factor(2),
        },
    };
    ExperimentSpec {
        name: "scaling-srw".into(),
        description: "Scaling contrast: SRW grows as c·n ln n where the E-process stays linear"
            .into(),
        graphs: regular_sweep(range, 4),
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials: 6,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(50.0),
        resample: Some(ResamplePlan { walks_per_graph: 2 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_and_validates() {
        for name in names() {
            for scale in [Scale::Quick, Scale::Paper] {
                let s = spec(name, scale).unwrap_or_else(|| panic!("missing spec {name}"));
                assert_eq!(s.name, name);
                s.validate()
                    .unwrap_or_else(|e| panic!("spec {name} invalid: {e}"));
                assert!(!s.description.is_empty());
            }
        }
        assert!(spec("nonsense", Scale::Quick).is_none());
    }

    #[test]
    fn comparison_matches_legacy_table_grid() {
        let s = comparison(Scale::Quick);
        assert_eq!(s.graphs.len(), 3);
        assert_eq!(s.processes.len(), 6);
        assert_eq!(s.trials, 5);
        assert_eq!(s.total_jobs(), 90);
    }

    #[test]
    fn rules_covers_all_rules() {
        let s = rules(Scale::Quick);
        assert_eq!(s.processes.len(), RuleSpec::all().len());
    }

    #[test]
    fn ensemble_specs_resample_random_families() {
        let resampled = ["cubicensemble", "odddegree", "scaling-even", "scaling-srw"];
        for name in resampled {
            let s = spec(name, Scale::Quick).unwrap();
            let plan = s.resample.expect("ensemble specs resample");
            assert!(plan.walks_per_graph >= 2, "{name} must split variance");
            assert!(
                s.graphs.iter().all(|g| g.is_randomized()),
                "{name} must sweep randomized families"
            );
        }
        // Every legacy spec stays in shared-graph mode: goldens are pinned.
        for name in names() {
            if !resampled.contains(&name) {
                assert!(spec(name, Scale::Quick).unwrap().resample.is_none());
            }
        }
        let odd = odddegree(Scale::Quick);
        assert!(odd
            .graphs
            .iter()
            .all(|g| matches!(g, GraphSpec::Regular { d, .. } if d % 2 == 1)));
    }

    #[test]
    fn scaling_builtins_sweep_enough_sizes_for_model_selection() {
        for name in scaling_names() {
            assert!(names().contains(&name), "{name} must be listed");
            for scale in [Scale::Quick, Scale::Paper] {
                let s = spec(name, scale).unwrap();
                let sizes: Vec<usize> =
                    s.graphs.iter().map(|g| g.vertex_count().unwrap()).collect();
                assert!(
                    sizes.len() >= eproc_stats::scaling::MIN_SWEEP_POINTS,
                    "{name} at {scale:?} has only {} sizes",
                    sizes.len()
                );
                assert!(
                    sizes.windows(2).all(|w| w[0] * 2 == w[1]),
                    "{name} must sweep geometrically: {sizes:?}"
                );
                assert!(
                    s.graphs
                        .iter()
                        .all(|g| matches!(g, GraphSpec::Regular { d: 4, .. })),
                    "{name} sweeps the even-degree d=4 family"
                );
            }
        }
    }

    #[test]
    fn every_builtin_canonicalizes_to_a_reparsable_line() {
        // The cache executes the canonical form of whatever it keys, so
        // every builtin's normal form must survive the CLI-line round
        // trip and stay stable under repeated canonicalization.
        for scale in [Scale::Quick, Scale::Paper] {
            for name in names() {
                let canonical = spec(name, scale).unwrap().canonicalize();
                let reparsed = ExperimentSpec::parse_cli(&canonical.to_cli())
                    .unwrap_or_else(|e| panic!("{name} ({scale:?}): {e}"));
                assert_eq!(reparsed, canonical, "{name} ({scale:?})");
                assert_eq!(canonical.canonicalize(), canonical, "{name} ({scale:?})");
                assert!(canonical.name.starts_with("spec-"), "{}", canonical.name);
            }
        }
    }

    #[test]
    fn paper_scale_is_strictly_larger() {
        let q = comparison(Scale::Quick);
        let p = comparison(Scale::Paper);
        let size = |g: &GraphSpec| match *g {
            GraphSpec::Regular { n, .. } => n,
            GraphSpec::Torus { w, h } => w * h,
            GraphSpec::Geometric { n, .. } => n,
            _ => 0,
        };
        for (a, b) in q.graphs.iter().zip(&p.graphs) {
            assert!(size(a) < size(b));
        }
    }
}
