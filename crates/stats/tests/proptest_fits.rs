//! Property tests for the fallible fit APIs: every degenerate input
//! class must map to its typed [`FitError`] (never a panic), and valid
//! inputs must agree with the panicking wrappers.

use eproc_stats::regression::{
    fit_linear, try_fit_c_nlogn, try_fit_linear, try_fit_proportional, FitError,
};
use eproc_stats::scaling::{fit_growth_models, GrowthModel, ScalingPoint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn identical_x_yields_degenerate_error(x in -1000i64..1000, len in 2usize..20, seed in 0u64..1000) {
        let xs = vec![x as f64; len];
        let ys: Vec<f64> = (0..len).map(|i| (seed + i as u64) as f64).collect();
        prop_assert_eq!(try_fit_linear(&xs, &ys), Err(FitError::DegenerateX));
        if x == 0 {
            prop_assert_eq!(try_fit_proportional(&xs, &ys), Err(FitError::DegenerateX));
        }
    }

    #[test]
    fn length_mismatch_is_typed(a in 0usize..10, b in 0usize..10) {
        prop_assume!(a != b);
        let xs = vec![1.0; a];
        let ys = vec![1.0; b];
        prop_assert_eq!(
            try_fit_linear(&xs, &ys),
            Err(FitError::LengthMismatch { x: a, y: b })
        );
        prop_assert_eq!(
            try_fit_proportional(&xs, &ys),
            Err(FitError::LengthMismatch { x: a, y: b })
        );
    }

    #[test]
    fn small_n_is_typed(small in 0usize..2, len in 1usize..10, pos in 0usize..10) {
        let pos = pos % len;
        let mut ns: Vec<usize> = (0..len).map(|i| 100 + i).collect();
        ns[pos] = small;
        let ys = vec![1.0; len];
        prop_assert_eq!(try_fit_c_nlogn(&ns, &ys), Err(FitError::SmallN { n: small }));
    }

    #[test]
    fn non_finite_input_is_typed(len in 2usize..10, pos in 0usize..10, kind in 0usize..3) {
        let pos = pos % len;
        let xs: Vec<f64> = (0..len).map(|i| (i + 1) as f64).collect();
        let mut ys: Vec<f64> = (0..len).map(|i| 2.0 * (i + 1) as f64).collect();
        ys[pos] = match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        prop_assert_eq!(try_fit_linear(&xs, &ys), Err(FitError::NonFinite));
        prop_assert_eq!(try_fit_proportional(&xs, &ys), Err(FitError::NonFinite));
    }

    #[test]
    fn valid_input_matches_panicking_wrapper(
        slope in -50i64..50,
        intercept in -1000i64..1000,
        len in 2usize..20,
    ) {
        let xs: Vec<f64> = (0..len).map(|i| (i * i + i + 1) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept as f64 + slope as f64 * x).collect();
        let fit = try_fit_linear(&xs, &ys).unwrap();
        prop_assert_eq!(fit, fit_linear(&xs, &ys));
        prop_assert!((fit.slope - slope as f64).abs() < 1e-6);
    }

    #[test]
    fn growth_model_selection_never_panics_on_few_points(len in 0usize..3) {
        let points: Vec<ScalingPoint> = (0..len)
            .map(|i| ScalingPoint { n: 100 << i, m: 200 << i, y: (i + 1) as f64 })
            .collect();
        prop_assert_eq!(
            fit_growth_models(&points),
            Err(FitError::TooFewPoints { needed: 3, got: len })
        );
    }

    #[test]
    fn growth_model_selection_recovers_planted_linear_law(c in 1u32..50, len in 3usize..8) {
        let points: Vec<ScalingPoint> = (0..len)
            .map(|i| {
                let n = 500usize << i;
                ScalingPoint { n, m: 2 * n, y: c as f64 * (2 * n) as f64 }
            })
            .collect();
        let sel = fit_growth_models(&points).unwrap();
        prop_assert_eq!(sel.preferred, GrowthModel::ProportionalEdges);
        let fit = sel.preferred_fit();
        prop_assert!((fit.fit.slope - c as f64).abs() < 1e-9);
    }

    #[test]
    fn growth_model_selection_recovers_planted_nlogn_law(tenths in 5u32..40, len in 3usize..8) {
        let c = tenths as f64 / 10.0;
        let points: Vec<ScalingPoint> = (0..len)
            .map(|i| {
                let n = 500usize << i;
                ScalingPoint { n, m: 2 * n, y: c * n as f64 * (n as f64).ln() }
            })
            .collect();
        let sel = fit_growth_models(&points).unwrap();
        prop_assert_eq!(sel.preferred, GrowthModel::NLogN);
        prop_assert!((sel.preferred_fit().fit.slope - c).abs() < 1e-9);
    }
}
