//! Crash-safe execution: checkpointing, graceful interruption, and
//! deterministic block retry — the `--checkpoint` / `--resume` /
//! `--max-wall` / `--retry-blocks` engine entry point.
//!
//! # The cancellation path
//!
//! [`run_recoverable`] runs a resampled spec on the same work-stealing
//! pool as [`crate::executor::run`] — scoped worker threads claiming
//! *(family, group)* blocks off a shared atomic index — with one
//! addition: before claiming each block, a worker polls a stop latch.
//! The latch trips when (a) an armed cancellation flag (SIGINT/SIGTERM
//! via `eproc-signal`, or any caller-owned [`AtomicBool`]) is set,
//! (b) the `max_wall` deadline passes, or (c) another worker's block
//! failed permanently. Tripping is *graceful*: claimed blocks drain to
//! completion (a block is all-or-nothing — partial blocks are never
//! persisted), workers then exit, the main thread writes a final
//! checkpoint, and the caller gets [`RunOutcome::Interrupted`] naming
//! what stopped the run and how much of it completed.
//!
//! Completed blocks stream back to the main thread over a channel, so
//! periodic checkpoints ([`CheckpointPlan::every`]) are written off the
//! workers' critical path, atomically ([`RunCheckpoint::save`]). A
//! resumed run seeds its block table from the checkpoint, schedules only
//! the remainder, and aggregates through the executor's own
//! `aggregate_cells` — identical floating-point operations and sketch
//! compactions in identical order — so the final report is **byte-identical to an
//! uninterrupted run at any thread count** (pinned by the `recovery`
//! proptests and the CI `cmp` smoke).
//!
//! Block failures are isolated by `catch_unwind` (see
//! [`crate::executor::BlockError`]) and retried deterministically:
//! attempt `k` re-runs the same [`eproc_stats::SeedSequence`]-derived
//! seeds, so a retry that succeeds contributes bit-identical
//! accumulators. The [`FaultPlan`] harness injects panics and
//! graph-generation failures at exact *(family, group, attempt)*
//! coordinates to prove all of the above under test.

use crate::checkpoint::{CheckpointError, RunCheckpoint};
use crate::executor::validate_vertices;
use crate::executor::{
    aggregate_cells, panic_message, run_block, run_block_isolated, BlockAgg, BlockError,
    BlockResult, CellInputs, EngineError, ExperimentReport, RunOptions, Telemetry,
};
use crate::fault::{FaultKind, FaultPlan};
use crate::persist::RunHeader;
use crate::spec::{ExperimentSpec, SpecError};
use eproc_graphs::GraphError;
use eproc_telemetry::{EventKind, NullSink, Stopwatch, TelemetrySink};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Where and how often to checkpoint a run.
#[derive(Debug, Clone)]
pub struct CheckpointPlan {
    /// Checkpoint file path (written atomically on every update).
    pub path: PathBuf,
    /// Write a checkpoint after every `every` newly completed blocks
    /// (clamped to at least 1). A final checkpoint is always written on
    /// interruption or failure regardless of the cadence.
    pub every: usize,
}

/// Crash-safety options for [`run_recoverable`]. The default
/// ([`RecoveryOptions::none`]) disables every feature, making
/// `run_recoverable` equivalent to [`crate::executor::run`].
#[derive(Default)]
pub struct RecoveryOptions<'a> {
    /// Periodic checkpointing, if any.
    pub checkpoint: Option<CheckpointPlan>,
    /// A previously written checkpoint to resume from: its blocks are
    /// loaded, validated against the spec, and not re-run.
    pub resume: Option<RunCheckpoint>,
    /// Wall-clock budget: the run interrupts itself gracefully once this
    /// much time has passed (checked between blocks).
    pub max_wall: Option<Duration>,
    /// How many times a failed block is deterministically re-run before
    /// its error becomes the run's error. `0` = fail on first error.
    pub retry_blocks: usize,
    /// Deterministic fault injection (testing); empty = disabled.
    pub faults: FaultPlan,
    /// External cancellation flag, polled between blocks — wire
    /// `eproc_signal::install()` here for SIGINT/SIGTERM handling.
    pub cancel: Option<&'a AtomicBool>,
}

impl RecoveryOptions<'_> {
    /// All features off.
    pub fn none() -> RecoveryOptions<'static> {
        RecoveryOptions::default()
    }
}

/// How a recoverable run ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// Every block ran; the report is byte-identical to
    /// [`crate::executor::run`]'s for the same `(spec, base_seed)`.
    Completed(ExperimentReport),
    /// The run was interrupted (signal, cancellation flag, or deadline)
    /// before every block completed, and drained gracefully.
    Interrupted {
        /// What stopped the run: `"signal"` (cancellation flag) or
        /// `"deadline"` (`max_wall`).
        reason: String,
        /// Blocks completed across this run *and* any resumed prefix.
        completed: usize,
        /// Total blocks in the run.
        total: usize,
        /// Where the final checkpoint was written, when checkpointing
        /// was configured — resume from here.
        checkpoint: Option<PathBuf>,
    },
}

/// A recoverable-run failure.
#[derive(Debug)]
pub enum RecoveryError {
    /// The underlying engine failed: bad spec, or a block error that
    /// survived every retry.
    Engine(EngineError),
    /// The resume checkpoint was rejected (wrong run, malformed).
    Checkpoint(CheckpointError),
    /// A checkpoint could not be written. The run stops: silently
    /// dropping durability the user asked for would defeat the point.
    Io(std::io::Error),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Engine(e) => write!(f, "{e}"),
            RecoveryError::Checkpoint(e) => write!(f, "{e}"),
            RecoveryError::Io(e) => write!(f, "writing checkpoint: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Engine(e) => Some(e),
            RecoveryError::Checkpoint(e) => Some(e),
            RecoveryError::Io(e) => Some(e),
        }
    }
}

impl From<EngineError> for RecoveryError {
    fn from(e: EngineError) -> RecoveryError {
        RecoveryError::Engine(e)
    }
}

impl From<SpecError> for RecoveryError {
    fn from(e: SpecError) -> RecoveryError {
        RecoveryError::Engine(EngineError::Spec(e))
    }
}

impl From<CheckpointError> for RecoveryError {
    fn from(e: CheckpointError) -> RecoveryError {
        RecoveryError::Checkpoint(e)
    }
}

/// [`run_recoverable_with_sink`] without telemetry.
///
/// # Errors
///
/// As [`run_recoverable_with_sink`].
pub fn run_recoverable(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    rec: &RecoveryOptions<'_>,
) -> Result<RunOutcome, RecoveryError> {
    run_recoverable_with_sink(spec, opts, rec, &NullSink)
}

/// Executes a resampled spec crash-safely: periodic atomic checkpoints,
/// graceful interruption on a cancellation flag or deadline, per-block
/// panic isolation with deterministic retries, and resumption from a
/// prior checkpoint. See the module docs for the full semantics.
///
/// # Errors
///
/// [`RecoveryError::Engine`] for invalid specs — including any spec
/// **without** a resample plan: shared-graph runs have no per-block
/// streaming to checkpoint (the same restriction as `--shard`) — and
/// for block failures that survive `retry_blocks` retries.
/// [`RecoveryError::Checkpoint`] when the resume checkpoint does not
/// match the spec. [`RecoveryError::Io`] when a checkpoint cannot be
/// written. On block failure, a final checkpoint of the completed
/// blocks is still written before the error returns.
///
/// # Panics
///
/// Panics if `opts.threads == 0`.
pub fn run_recoverable_with_sink(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    rec: &RecoveryOptions<'_>,
    sink: &dyn TelemetrySink,
) -> Result<RunOutcome, RecoveryError> {
    assert!(opts.threads > 0, "need at least one worker thread");
    spec.validate().map_err(EngineError::Spec)?;
    let Some(plan) = spec.resample else {
        return Err(RecoveryError::Engine(EngineError::Spec(SpecError::new(
            "crash-safe execution (--checkpoint / --resume / --max-wall / --retry-blocks) \
             requires a resampled run (--resample / a `~` family marker): shared-graph runs \
             have no independent per-block streams to checkpoint",
        ))));
    };
    validate_vertices(spec, None)?;
    let tel = Telemetry::new(sink);
    let header = RunHeader::from_spec(spec, opts.base_seed, plan);
    let total_blocks = header.total_blocks();
    let group_count = header.group_count;
    let n_proc = spec.processes.len();
    let metric_columns = spec.metric_columns();
    let n_cols = metric_columns.len();
    let trials = spec.trials;
    let w = plan.walks_per_graph;

    // Seed the block table from the resume checkpoint, if any.
    let mut blocks: Vec<Option<BlockAgg>> = vec![None; total_blocks];
    let mut dims: Vec<Option<(usize, usize)>> = vec![None; spec.graphs.len()];
    if let Some(resume) = &rec.resume {
        resume.validate_against(&header)?;
        for b in &resume.blocks {
            blocks[b.block] = Some(b.clone());
        }
        for &(gi, n, m) in &resume.rep_dims {
            if gi >= dims.len() {
                return Err(CheckpointError::new(format!(
                    "checkpoint reports dimensions for family {gi}, outside the grid"
                ))
                .into());
            }
            dims[gi] = Some((n, m));
        }
    }
    let remaining: Vec<usize> = (0..total_blocks).filter(|&b| blocks[b].is_none()).collect();
    let mut completed = total_blocks - remaining.len();

    if tel.live {
        let remaining_trials: u64 = remaining
            .iter()
            .map(|b| {
                let group = b % group_count;
                let chunk = ((group + 1) * w).min(trials) - group * w;
                (chunk * n_proc) as u64
            })
            .sum();
        tel.emit(EventKind::RunStarted {
            name: spec.name.clone(),
            graphs: spec.graphs.len(),
            processes: n_proc,
            trials,
            blocks: remaining.len(),
            total_trials: remaining_trials,
            workers: opts.threads.min(remaining.len().max(1)),
            resampled: true,
            shard: None,
        });
    }

    let deadline = rec.max_wall.map(|d| Instant::now() + d);
    let stop = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    let workers = opts.threads.min(remaining.len().max(1));
    let checkpoint_every = rec.checkpoint.as_ref().map(|c| c.every.max(1));

    enum WorkerMsg {
        Done(BlockResult),
        Failed(EngineError),
    }
    let (send, recv) = mpsc::channel::<WorkerMsg>();

    let mut block_error: Option<EngineError> = None;
    let mut io_error: Option<std::io::Error> = None;
    let mut trials_run = 0u64;
    let mut steps_run = 0u64;
    let mut since_checkpoint = 0usize;

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let send = send.clone();
            let stop = &stop;
            let next = &next;
            let remaining = &remaining;
            let tel = &tel;
            let faults = &rec.faults;
            let retry_blocks = rec.retry_blocks;
            scope.spawn(move || {
                loop {
                    // The graceful-interruption poll point: claimed
                    // blocks always drain, unclaimed work stays undone.
                    if stop.load(Ordering::Relaxed)
                        || rec.cancel.is_some_and(|c| c.load(Ordering::Relaxed))
                        || deadline.is_some_and(|d| Instant::now() >= d)
                    {
                        break;
                    }
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= remaining.len() {
                        break;
                    }
                    let block = remaining[idx];
                    match run_block_with_retries(
                        spec,
                        opts.base_seed,
                        block,
                        worker,
                        n_cols,
                        tel,
                        faults,
                        retry_blocks,
                    ) {
                        Ok(result) => {
                            // Send failure = the receiver is gone, which
                            // only happens when the run is being torn
                            // down; just stop.
                            if send.send(WorkerMsg::Done(result)).is_err() {
                                break;
                            }
                        }
                        Err(e) => {
                            // Permanent block failure: trip the latch so
                            // peers drain, and report the error. The pool
                            // itself stays healthy — no unwinding.
                            stop.store(true, Ordering::Relaxed);
                            let _ = send.send(WorkerMsg::Failed(e));
                            break;
                        }
                    }
                }
            });
        }
        // The workers hold the only remaining senders: the receive loop
        // below ends exactly when the last worker exits.
        drop(send);

        for msg in recv.iter() {
            match msg {
                WorkerMsg::Done(result) => {
                    trials_run += result.trials;
                    steps_run += result.steps;
                    if let Some((gi, n, m)) = result.rep {
                        dims[gi] = Some((n, m));
                    }
                    let slot = result.agg.block;
                    blocks[slot] = Some(result.agg);
                    completed += 1;
                    since_checkpoint += 1;
                    if let (Some(every), Some(cp)) = (checkpoint_every, rec.checkpoint.as_ref()) {
                        if since_checkpoint >= every && io_error.is_none() {
                            since_checkpoint = 0;
                            match write_checkpoint(&header, &dims, &blocks, cp, completed, &tel) {
                                Ok(()) => {}
                                Err(e) => {
                                    // Durability is gone; stop the run
                                    // rather than pretend it is not.
                                    io_error = Some(e);
                                    stop.store(true, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
                WorkerMsg::Failed(e) => {
                    if block_error.is_none() {
                        block_error = Some(e);
                    }
                }
            }
        }
    });

    // Final checkpoint: on interruption or failure the completed prefix
    // must be on disk; on completion the report itself is the artifact.
    let all_done = completed == total_blocks;
    if !all_done {
        if let Some(cp) = rec.checkpoint.as_ref() {
            if io_error.is_none() {
                if let Err(e) = write_checkpoint(&header, &dims, &blocks, cp, completed, &tel) {
                    io_error = Some(e);
                }
            }
        }
    }

    if let Some(e) = io_error {
        return Err(RecoveryError::Io(e));
    }
    if let Some(e) = block_error {
        return Err(RecoveryError::Engine(e));
    }

    if !all_done {
        let reason = if rec.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            "signal"
        } else {
            "deadline"
        };
        if tel.live {
            tel.emit(EventKind::RunInterrupted {
                reason: reason.to_string(),
                completed,
                total: total_blocks,
            });
            tel.emit(EventKind::RunFinished {
                wall_ns: tel.clock.elapsed_ns(),
                total_trials: trials_run,
                total_steps: steps_run,
            });
        }
        return Ok(RunOutcome::Interrupted {
            reason: reason.to_string(),
            completed,
            total: total_blocks,
            checkpoint: rec.checkpoint.as_ref().map(|c| c.path.clone()),
        });
    }

    let agg = tel.live.then(Stopwatch::start);
    let rep_dims: Vec<(usize, usize)> = dims
        .iter()
        .map(|dim| dim.expect("every family ran its group-0 block"))
        .collect();
    let block_aggs: Vec<BlockAgg> = blocks
        .into_iter()
        .map(|b| b.expect("every block completed"))
        .collect();
    let cells = aggregate_cells(
        &CellInputs {
            graphs: &header.graphs,
            processes: &header.processes,
            metric_columns: &metric_columns,
            trials,
            group_count,
            base_seed: opts.base_seed,
            resampled: true,
        },
        &rep_dims,
        &block_aggs,
    );
    if let Some(agg) = agg {
        tel.emit(EventKind::AggregationMerged {
            blocks: total_blocks,
            cells: cells.len(),
            agg_ns: agg.elapsed_ns(),
        });
        tel.emit(EventKind::RunFinished {
            wall_ns: tel.clock.elapsed_ns(),
            total_trials: trials_run,
            total_steps: steps_run,
        });
    }
    Ok(RunOutcome::Completed(ExperimentReport {
        name: spec.name.clone(),
        description: spec.description.clone(),
        target: spec.target,
        trials,
        base_seed: opts.base_seed,
        resample: spec.resample,
        cells,
    }))
}

/// Assembles and atomically writes a checkpoint of the completed blocks,
/// emitting one `checkpoint_written` event when telemetry is live.
fn write_checkpoint(
    header: &RunHeader,
    dims: &[Option<(usize, usize)>],
    blocks: &[Option<BlockAgg>],
    cp: &CheckpointPlan,
    completed: usize,
    tel: &Telemetry<'_>,
) -> std::io::Result<()> {
    let clock = tel.live.then(Stopwatch::start);
    let checkpoint = RunCheckpoint {
        header: header.clone(),
        rep_dims: dims
            .iter()
            .enumerate()
            .filter_map(|(gi, d)| d.map(|(n, m)| (gi, n, m)))
            .collect(),
        // `blocks` is indexed canonically, so the filtered list is
        // already in canonical order.
        blocks: blocks.iter().flatten().cloned().collect(),
    };
    let bytes = checkpoint.save(&cp.path)?;
    if let Some(clock) = clock {
        tel.emit(EventKind::CheckpointWritten {
            blocks: completed,
            total: header.total_blocks(),
            bytes,
            checkpoint_ns: clock.elapsed_ns(),
        });
    }
    Ok(())
}

/// Runs one block with fault injection and deterministic retries:
/// attempt `k` derives the exact same seeds as attempt 0, so a
/// successful retry contributes bit-identical accumulators. Emits one
/// `block_retried` event per failed attempt that will be retried.
#[allow(clippy::too_many_arguments)]
fn run_block_with_retries(
    spec: &ExperimentSpec,
    base_seed: u64,
    block: usize,
    worker: usize,
    n_cols: usize,
    tel: &Telemetry<'_>,
    faults: &FaultPlan,
    retry_blocks: usize,
) -> Result<BlockResult, EngineError> {
    let mut attempt = 0;
    loop {
        let result =
            run_block_attempt(spec, base_seed, block, worker, n_cols, tel, faults, attempt);
        match result {
            Ok(r) => return Ok(r),
            Err(e) if attempt < retry_blocks => {
                if tel.live {
                    let plan = spec.resample.expect("resample block requires a plan");
                    let groups = plan.groups(spec.trials);
                    tel.emit(EventKind::BlockRetried {
                        block,
                        family: spec.graphs[block / groups].label(),
                        group: block % groups,
                        worker,
                        attempt,
                        error: e.to_string(),
                    });
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// One block attempt: the plain isolated runner when no faults are
/// armed (the zero-cost default), otherwise the same run wrapped so the
/// scheduled fault fires inside the `catch_unwind` boundary — injected
/// panics exercise the exact isolation path real panics take.
#[allow(clippy::too_many_arguments)]
fn run_block_attempt(
    spec: &ExperimentSpec,
    base_seed: u64,
    block: usize,
    worker: usize,
    n_cols: usize,
    tel: &Telemetry<'_>,
    faults: &FaultPlan,
    attempt: usize,
) -> Result<BlockResult, EngineError> {
    if faults.is_empty() {
        return run_block_isolated(spec, base_seed, block, worker, n_cols, None, tel);
    }
    let plan = spec.resample.expect("resample block requires a plan");
    let groups = plan.groups(spec.trials);
    let gi = block / groups;
    let group = block % groups;
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        match faults.at(gi, group, attempt) {
            Some(FaultKind::Panic) => {
                panic!("injected fault: panic at (family {gi}, group {group}, attempt {attempt})")
            }
            Some(FaultKind::GraphFail) => Err(EngineError::Block {
                graph: spec.graphs[gi].label(),
                group,
                worker,
                source: BlockError::Graph(GraphError::RetriesExhausted {
                    generator: "fault-injection",
                    attempts: 1,
                    what: format!(
                        "an injected failure at (family {gi}, group {group}, attempt {attempt})"
                    ),
                }),
            }),
            None => run_block(spec, base_seed, block, worker, n_cols, None, tel),
        }
    }))
    .unwrap_or_else(|payload| {
        Err(EngineError::Block {
            graph: spec.graphs[gi].label(),
            group,
            worker,
            source: BlockError::Panic(panic_message(payload)),
        })
    })
}
