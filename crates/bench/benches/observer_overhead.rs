//! Steps/second of the E-process with 0 vs 3 attached observers.
//!
//! The observer pipeline claims near-zero per-step overhead: feeding
//! cover + blanket + phase observers from one walk must stay cheap
//! relative to the walk's own bookkeeping. Both attachment shapes are
//! measured — the monomorphized tuple `ObserverSet` the engine kernel
//! uses, and the dyn-slice fallback (`run_observed_dyn`) — and a
//! machine-readable snapshot goes to
//! `target/experiments/BENCH_observer.json` so CI can record the perf
//! trajectory across commits. (`BENCH_walk.json`, from the `walk_kernel`
//! bench, tracks the kernel-vs-baseline speedup itself.)

use criterion::black_box;
use eproc_bench::{output_dir, rng_for};
use eproc_core::cover::CoverTarget;
use eproc_core::observe::{
    run_observed, run_observed_dyn, BlanketObserver, CoverObserver, Observer, PhaseObserver,
    StopWhen,
};
use eproc_core::rule::UniformRule;
use eproc_core::{EProcess, WalkProcess};
use eproc_graphs::generators;
use eproc_graphs::Graph;
use std::time::Instant;

const STEPS: u64 = 200_000;
const SAMPLES: usize = 7;

/// Median seconds over `SAMPLES` timed runs of `f`.
fn median_secs<F: FnMut()>(mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn bare_walk(g: &Graph) -> f64 {
    median_secs(|| {
        let mut rng = rng_for(2);
        let mut w = EProcess::new(g, 0, UniformRule::new());
        for _ in 0..STEPS {
            black_box(w.advance_rng(&mut rng));
        }
    })
}

/// Three observers attached through the monomorphized tuple kernel, as
/// the engine executor runs trials. Observers are constructed once and
/// re-armed per run, matching the executor's scratch reuse.
fn observed_walk_mono(g: &Graph) -> f64 {
    let mut cover = CoverObserver::new(CoverTarget::Both);
    let mut blanket = BlanketObserver::new(0.4).expect("valid delta");
    let mut phases = PhaseObserver::new();
    median_secs(move || {
        let mut rng = rng_for(2);
        let mut w = EProcess::new(g, 0, UniformRule::new());
        let run = run_observed(
            &mut w,
            &mut (&mut cover, &mut blanket, &mut phases),
            StopWhen::Cap,
            STEPS,
            &mut rng,
        );
        black_box(run);
    })
}

/// The same three observers through the dyn-slice fallback driver.
fn observed_walk_dyn(g: &Graph) -> f64 {
    let mut cover = CoverObserver::new(CoverTarget::Both);
    let mut blanket = BlanketObserver::new(0.4).expect("valid delta");
    let mut phases = PhaseObserver::new();
    median_secs(move || {
        let mut rng = rng_for(2);
        let mut w = EProcess::new(g, 0, UniformRule::new());
        let mut observers: [&mut dyn Observer; 3] =
            black_box([&mut cover, &mut blanket, &mut phases]);
        let run = run_observed_dyn(&mut w, &mut observers, StopWhen::Cap, STEPS, &mut rng);
        black_box(run);
    })
}

fn main() {
    let mut graph_rng = rng_for(1);
    let g = generators::connected_random_regular(10_000, 4, &mut graph_rng).unwrap();
    let bare = bare_walk(&g);
    let mono = observed_walk_mono(&g);
    let dyn_ = observed_walk_dyn(&g);
    let bare_rate = STEPS as f64 / bare;
    let mono_rate = STEPS as f64 / mono;
    let dyn_rate = STEPS as f64 / dyn_;
    println!(
        "observer_overhead/bare_eprocess: {:.0} ns/iter  {:.2} Msteps/s",
        bare * 1e9 / STEPS as f64,
        bare_rate / 1e6
    );
    println!(
        "observer_overhead/three_observers_mono: {:.0} ns/iter  {:.2} Msteps/s  ({:.2}x slowdown)",
        mono * 1e9 / STEPS as f64,
        mono_rate / 1e6,
        bare_rate / mono_rate
    );
    println!(
        "observer_overhead/three_observers_dyn:  {:.0} ns/iter  {:.2} Msteps/s  ({:.2}x slowdown)",
        dyn_ * 1e9 / STEPS as f64,
        dyn_rate / 1e6,
        bare_rate / dyn_rate
    );
    // Key continuity: `steps_per_sec_3_observers` / `slowdown` have
    // recorded the dyn-slice driver since the file was introduced, so
    // they keep that meaning; the monomorphized kernel gets new `_mono`
    // keys alongside.
    let json = format!(
        "{{\n  \"bench\": \"observer_overhead\",\n  \"graph\": \"random 4-regular n={}\",\n  \
         \"steps_per_run\": {},\n  \"samples\": {},\n  \
         \"steps_per_sec_0_observers\": {:.0},\n  \
         \"steps_per_sec_3_observers\": {:.0},\n  \
         \"steps_per_sec_3_observers_mono\": {:.0},\n  \
         \"slowdown\": {:.4},\n  \
         \"slowdown_mono\": {:.4}\n}}\n",
        g.n(),
        STEPS,
        SAMPLES,
        bare_rate,
        dyn_rate,
        mono_rate,
        bare_rate / dyn_rate,
        bare_rate / mono_rate
    );
    let dir = output_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = dir.join("BENCH_observer.json");
    std::fs::write(&path, json).expect("write snapshot");
    println!("json: {}", path.display());
}
