//! **T-thm1**: Theorem 1 on even-degree expanders.
//!
//! `CV(E-process) = O(n + n log n / (ℓ(1−λmax)))`. For each graph we
//! measure `λmax` (Lanczos; lazy gap on bipartite graphs, per §2.1),
//! take the paper's `ℓ` estimate (P2 bound for random regular graphs,
//! girth for LPS), and report the measured-cover / bound ratio, which
//! should stay bounded by a modest constant across the sweep.
//!
//! The ensemble (the cover-time measurements) runs on the parallel
//! `eproc-engine`; this wrapper only adds the per-graph spectral-gap and
//! theory-bound columns the engine deliberately does not know about.

use eproc_bench::{engine_scale, save_table, Config};
use eproc_engine::builtin;
use eproc_engine::executor::{build_graphs, run_on_graphs};
use eproc_engine::spec::GraphSpec;
use eproc_graphs::properties::{bipartite, girth};
use eproc_graphs::Graph;
use eproc_spectral::lanczos::lanczos;
use eproc_stats::TextTable;
use eproc_theory::{p2_l_good_bound, theorem1_vertex_cover_bound};

fn effective_gap(g: &Graph) -> f64 {
    let res = lanczos(g, 120.min(g.n() - 1));
    if bipartite::is_bipartite(g) {
        (1.0 - res.lambda_2()) / 2.0 // lazy walk gap
    } else {
        1.0 - res.lambda_max()
    }
}

/// The paper's `ℓ` estimate for a graph family: the P2 bound for random
/// regular graphs, the girth for LPS Ramanujan graphs.
fn l_estimate(spec: &GraphSpec, g: &Graph) -> f64 {
    match *spec {
        GraphSpec::Regular { n, d } => p2_l_good_bound(n, d),
        _ => girth::girth_at_most(g, 24).unwrap_or(24) as f64,
    }
}

fn main() {
    let config = Config::from_args();
    println!("Theorem 1: CV(E) vs n + n*ln(n)/(l*(1-lambda_max)) on even-degree expanders\n");
    let spec = builtin::spec("theorem1", engine_scale(config.scale)).expect("builtin exists");
    let opts = config.engine_opts();
    // Build the graphs once: the ensemble and the per-graph enrichment
    // columns below both use them.
    let graphs = build_graphs(&spec, opts.base_seed).expect("theorem1 graphs");
    let report = run_on_graphs(&spec, &opts, &graphs).expect("theorem1 ensemble");

    let mut table = TextTable::new(vec![
        "graph", "n", "gap", "l est", "CV mean", "bound", "CV/bound", "CV/n",
    ]);
    for (gi, (gspec, g)) in spec.graphs.iter().zip(&graphs).enumerate() {
        let cell = &report.cells[gi * spec.processes.len()];
        assert_eq!(cell.completed, cell.trials, "cover runs must finish");
        let gap = effective_gap(g);
        let l = l_estimate(gspec, g);
        let bound = theorem1_vertex_cover_bound(g.n(), l, gap);
        let mean = cell.steps.mean();
        table.push_row(vec![
            gspec.label(),
            g.n().to_string(),
            format!("{gap:.3}"),
            format!("{l:.2}"),
            format!("{mean:.0}"),
            format!("{bound:.0}"),
            format!("{:.3}", mean / bound),
            format!("{:.2}", mean / g.n() as f64),
        ]);
    }
    println!("{table}");
    let p = save_table("table_theorem1", &table).expect("write csv");
    println!("csv: {}", p.display());
}
