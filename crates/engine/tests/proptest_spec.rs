//! Property tests for the spec grammar: `parse` and `to_cli` must be
//! exact inverses for every variant, and strict parsing must reject
//! malformed input rather than silently dropping it.

use eproc_engine::builtin;
use eproc_engine::digest::{spec_digest, ArtifactKind};
use eproc_engine::spec::{
    CapSpec, ExperimentSpec, GraphSpec, MetricSpec, ProcessSpec, ResamplePlan, RuleSpec, Scale,
    SweepRange, SweepStep, Target, MAX_SWEEP_POINTS,
};
use proptest::prelude::*;

/// Strategy: an arbitrary [`GraphSpec`] covering every variant. The
/// variant selector and the parameter draws are independent so shrinking
/// stays meaningful.
fn arb_graph_spec() -> impl Strategy<Value = GraphSpec> {
    (0usize..10, 1usize..10_000, 1usize..64, 1u64..1_000).prop_map(|(variant, n, small, prime)| {
        match variant {
            0 => GraphSpec::Regular {
                n: n.max(small + 1),
                d: small,
            },
            1 => GraphSpec::Lps {
                p: prime,
                q: prime + 4,
            },
            2 => GraphSpec::Geometric {
                n,
                // Factors with an exact decimal representation survive the
                // float round trip through `format!("{}")` + `parse`.
                radius_factor: (small as f64) / 4.0,
            },
            3 => GraphSpec::Hypercube {
                dim: (small % 20) + 1,
            },
            4 => GraphSpec::Torus {
                w: small + 2,
                h: (n % 50) + 2,
            },
            5 => GraphSpec::Cycle { n: n + 2 },
            6 => GraphSpec::Complete { n: small + 1 },
            7 => GraphSpec::Lollipop {
                clique: small,
                path: n % 100,
            },
            8 => GraphSpec::Petersen,
            _ => GraphSpec::FigureEight { len: small + 2 },
        }
    })
}

fn arb_process_spec() -> impl Strategy<Value = ProcessSpec> {
    (0usize..14, 1usize..8).prop_map(|(variant, d)| match variant {
        0 => ProcessSpec::EProcess {
            rule: RuleSpec::Uniform,
        },
        1 => ProcessSpec::EProcess {
            rule: RuleSpec::FirstPort,
        },
        2 => ProcessSpec::EProcess {
            rule: RuleSpec::LastPort,
        },
        3 => ProcessSpec::EProcess {
            rule: RuleSpec::RoundRobin,
        },
        4 => ProcessSpec::EProcess {
            rule: RuleSpec::GreedyAdversary,
        },
        5 => ProcessSpec::EProcess {
            rule: RuleSpec::Spiteful,
        },
        6 => ProcessSpec::Srw,
        7 => ProcessSpec::LazySrw,
        8 => ProcessSpec::WeightedSrw,
        9 => ProcessSpec::RotorRouter,
        10 => ProcessSpec::Rwc { d },
        11 => ProcessSpec::OldestFirst,
        12 => ProcessSpec::LeastUsedFirst,
        _ => ProcessSpec::VProcess,
    })
}

/// Strategy: a valid [`SweepRange`] whose end is exactly the last point,
/// so the expected point count is known in closed form.
fn arb_sweep_range() -> impl Strategy<Value = SweepRange> {
    (1usize..10_000, 2usize..6, 1usize..7, 1usize..500, 0usize..2).prop_map(
        |(start, factor, npoints, stride, kind)| match kind {
            0 => SweepRange {
                start,
                end: start * factor.pow(npoints as u32 - 1),
                step: SweepStep::Factor(factor),
            },
            _ => SweepRange {
                start,
                end: start + stride * (npoints - 1),
                step: SweepStep::Stride(stride),
            },
        },
    )
}

fn expected_points(r: &SweepRange) -> usize {
    match r.step {
        SweepStep::Factor(f) => {
            let mut k = 0;
            let mut cur = r.start;
            while cur <= r.end {
                k += 1;
                cur *= f;
            }
            k
        }
        SweepStep::Stride(d) => (r.end - r.start) / d + 1,
    }
}

fn arb_metric_spec() -> impl Strategy<Value = MetricSpec> {
    (0usize..5, 1usize..1_000, 1u32..99).prop_map(|(variant, v, delta)| match variant {
        0 => MetricSpec::Cover,
        1 => MetricSpec::Blanket {
            delta: delta as f64 / 100.0,
        },
        2 => MetricSpec::Phases,
        3 => MetricSpec::BlueCensus,
        _ => MetricSpec::Hitting {
            vertex: if v % 2 == 0 { None } else { Some(v) },
        },
    })
}

fn arb_target() -> impl Strategy<Value = Target> {
    (0usize..4, 1u32..99).prop_map(|(variant, delta)| match variant {
        0 => Target::VertexCover,
        1 => Target::EdgeCover,
        2 => Target::BothCover,
        // Hundredths have exact shortest-round-trip decimal forms.
        _ => Target::Blanket {
            delta: delta as f64 / 100.0,
        },
    })
}

fn arb_cap() -> impl Strategy<Value = CapSpec> {
    (0usize..3, 1usize..64, 1u64..1_000_000).prop_map(|(variant, q, abs)| match variant {
        0 => CapSpec::Auto,
        1 => CapSpec::NLogN(q as f64 / 4.0),
        _ => CapSpec::Absolute(abs),
    })
}

/// Strategy: a full [`ExperimentSpec`] with arbitrary (possibly
/// duplicated, unsorted) grids — the input space canonicalization must
/// collapse into the normal form.
fn arb_experiment_spec() -> impl Strategy<Value = ExperimentSpec> {
    (
        (
            proptest::collection::vec(arb_graph_spec(), 1..4),
            proptest::collection::vec(arb_process_spec(), 1..4),
            1usize..16,
            arb_target(),
        ),
        (
            proptest::collection::vec(arb_metric_spec(), 0..3),
            0usize..8,
            arb_cap(),
            0usize..7,
        ),
    )
        .prop_map(
            |((graphs, processes, trials, target), (metrics, start, cap, resample))| {
                ExperimentSpec {
                    name: "arbitrary".into(),
                    description: "proptest-generated".into(),
                    graphs,
                    processes,
                    trials,
                    target,
                    metrics,
                    start,
                    cap,
                    // 0 encodes "no resampling"; 1..7 is walks-per-graph.
                    resample: (resample > 0).then_some(ResamplePlan {
                        walks_per_graph: resample,
                    }),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn graph_spec_round_trips(spec in arb_graph_spec()) {
        let cli = spec.to_cli();
        prop_assert_eq!(GraphSpec::parse(&cli).unwrap(), spec.clone());
        // The resample-marked form parses to the same spec with the flag.
        if let Some((kind, args)) = cli.split_once(':') {
            let marked = format!("{kind}:~{args}");
            let (parsed, resample) = GraphSpec::parse_with_resample(&marked).unwrap();
            prop_assert_eq!(parsed, spec);
            prop_assert!(resample);
        }
    }

    #[test]
    fn graph_spec_rejects_trailing_junk(spec in arb_graph_spec(), junk in 0usize..1_000) {
        let cli = spec.to_cli();
        // Appending one more argument always exceeds the family's arity.
        let with_junk = if cli.contains(':') {
            format!("{cli},{junk}")
        } else {
            format!("{cli}:{junk}")
        };
        prop_assert!(
            GraphSpec::parse(&with_junk).is_err(),
            "trailing argument accepted: {}",
            with_junk
        );
    }

    #[test]
    fn process_spec_round_trips(spec in arb_process_spec()) {
        let cli = spec.to_cli();
        prop_assert_eq!(ProcessSpec::parse(&cli).unwrap(), spec);
    }

    #[test]
    fn metric_spec_round_trips(spec in arb_metric_spec()) {
        let cli = spec.to_cli();
        prop_assert_eq!(MetricSpec::parse(&cli).unwrap(), spec);
    }

    #[test]
    fn sweep_range_round_trips(range in arb_sweep_range()) {
        let cli = range.to_cli();
        prop_assert_eq!(SweepRange::parse(&cli).unwrap(), range);
        let points = range.points().unwrap();
        prop_assert_eq!(points.len(), expected_points(&range));
        prop_assert_eq!(points[0], range.start);
        prop_assert!(points.iter().all(|&p| p >= range.start && p <= range.end));
        prop_assert!(points.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        prop_assert!(points.len() <= MAX_SWEEP_POINTS);
    }

    #[test]
    fn descending_sweep_ranges_are_rejected(lo in 1usize..10_000, delta in 1usize..10_000) {
        let s = format!("{}..{},x2", lo + delta, lo);
        prop_assert!(SweepRange::parse(&s).is_err(), "accepted descending {}", s);
    }

    #[test]
    fn non_advancing_or_empty_sweeps_are_rejected(lo in 1usize..10_000) {
        prop_assert!(SweepRange::parse(&format!("{lo}..{},x1", lo * 4)).is_err());
        prop_assert!(SweepRange::parse(&format!("{lo}..{},+0", lo * 4)).is_err());
        prop_assert!(SweepRange::parse(&format!("0..{lo},x2")).is_err());
        prop_assert!(SweepRange::parse("").is_err());
    }

    #[test]
    fn overflowing_sweep_sizes_are_rejected(digits in 20usize..40) {
        // A size literal with 20+ digits overflows usize on every target.
        let huge = "9".repeat(digits);
        prop_assert!(SweepRange::parse(&format!("1..{huge},x2")).is_err());
        prop_assert!(SweepRange::parse(&format!("{huge}..{huge},x2")).is_err());
    }

    #[test]
    fn swept_graph_specs_expand_sizes(range in arb_sweep_range(), d in 3usize..7) {
        let s = format!("regular:~{{{}}},{d}", range.to_cli());
        let (specs, resample, parsed) = GraphSpec::parse_with_sweep(&s).unwrap();
        prop_assert!(resample);
        prop_assert_eq!(parsed.unwrap(), range);
        let points = range.points().unwrap();
        prop_assert_eq!(specs.len(), points.len());
        for (spec, &n) in specs.iter().zip(&points) {
            prop_assert_eq!(spec.clone(), GraphSpec::Regular { n, d });
        }
    }

    #[test]
    fn canonicalization_is_a_fixed_point(spec in arb_experiment_spec()) {
        // parse(to_cli(canonicalize(s))) == canonicalize(s), as full
        // struct equality: the derived name and description round-trip
        // too, because both sides recompute them from the same line.
        let canonical = spec.canonicalize();
        let reparsed = ExperimentSpec::parse_cli(&canonical.to_cli()).unwrap();
        prop_assert_eq!(&reparsed, &canonical);
        // Idempotence: a second canonicalization changes nothing.
        prop_assert_eq!(canonical.canonicalize(), canonical);
    }

    #[test]
    fn digest_is_invariant_under_grid_order(
        spec in arb_experiment_spec(),
        rot_g in 0usize..4,
        rot_p in 0usize..4,
        rot_m in 0usize..4,
        seed in 0u64..1_000,
    ) {
        // Any permutation of the grids describes the same experiment
        // and must key the same cache entry.
        let mut shuffled = spec.clone();
        let g = shuffled.graphs.len();
        shuffled.graphs.rotate_left(rot_g % g);
        let p = shuffled.processes.len();
        shuffled.processes.rotate_left(rot_p % p);
        if !shuffled.metrics.is_empty() {
            let m = shuffled.metrics.len();
            shuffled.metrics.rotate_left(rot_m % m);
        }
        let q = [0.5, 0.9, 0.99];
        prop_assert_eq!(
            spec_digest(&spec, seed, &q, ArtifactKind::Ensemble),
            spec_digest(&shuffled, seed, &q, ArtifactKind::Ensemble)
        );
        // ...but the seed and the artifact kind are part of the key.
        prop_assert_ne!(
            spec_digest(&spec, seed, &q, ArtifactKind::Ensemble),
            spec_digest(&spec, seed + 1, &q, ArtifactKind::Ensemble)
        );
        prop_assert_ne!(
            spec_digest(&spec, seed, &q, ArtifactKind::Ensemble),
            spec_digest(&spec, seed, &q, ArtifactKind::Scaling)
        );
    }

    #[test]
    fn validated_randomized_specs_build(n in 3usize..40) {
        // Validation admitting a spec implies the generator succeeds.
        let d = 3 + (n % 2); // keep n*d even: odd n forces d = 4
        let spec = GraphSpec::Regular { n: n.max(d + 1), d };
        prop_assert!(spec.validate().is_ok(), "{:?}", spec);
        let g = spec.build(n as u64).unwrap();
        prop_assert_eq!(g.n(), n.max(d + 1));
    }
}

/// Every builtin digests identically whether named (`eproc run <name>`)
/// or spelled out as expanded flags (`eproc compare --graph … --process
/// …` with the canonical line): the two spellings must share one cache
/// entry at both scales.
#[test]
fn builtin_name_and_expanded_flag_spellings_digest_identically() {
    let quantiles = [0.5, 0.9, 0.99];
    for scale in [Scale::Quick, Scale::Paper] {
        for name in builtin::names() {
            let by_name = builtin::spec(name, scale).expect("listed specs exist");
            let expanded = ExperimentSpec::parse_cli(&by_name.canonicalize().to_cli())
                .unwrap_or_else(|e| panic!("{name}: canonical line must reparse: {e}"));
            for kind in [ArtifactKind::Ensemble, ArtifactKind::Scaling] {
                assert_eq!(
                    spec_digest(&by_name, 12345, &quantiles, kind),
                    spec_digest(&expanded, 12345, &quantiles, kind),
                    "{name} ({scale:?}, {kind:?}): spellings must share a digest"
                );
            }
        }
    }
}
