//! Rendering [`ExperimentReport`]s: aligned text tables, CSV and JSON.
//!
//! All emitters are pure functions of the report, so two runs that produce
//! the same aggregates produce byte-identical artifacts — the property the
//! engine's determinism test pins down across thread counts.

use crate::executor::{ExperimentReport, VarianceSplit};
use crate::scaling::ScalingReport;
use eproc_stats::{OnlineStats, QuantileSketch, TextTable};
use std::path::{Path, PathBuf};

/// The quantiles reported when the user does not pass `--quantiles`:
/// the median and the two upper-tail probes (p90, p99) that summarise
/// how heavy a cover-time distribution's tail is.
pub const DEFAULT_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// Renders a quantile's column/key label: `0.5` → `p50`, `0.99` → `p99`,
/// `0.999` → `p99.9`. Four decimal places of the percentage are kept, so
/// every distinct `--quantiles` value the CLI accepts gets a distinct
/// label.
pub fn quantile_label(q: f64) -> String {
    let pct = format!("{:.4}", q * 100.0);
    format!("p{}", pct.trim_end_matches('0').trim_end_matches('.'))
}

/// A sketch's `q`-quantile as a JSON token: `null` for an empty sketch
/// (no completed trials) or a non-finite estimate.
fn json_quantile(sketch: &QuantileSketch, q: f64) -> String {
    match sketch.quantile(q) {
        Ok(v) => json_num(v),
        Err(_) => "null".into(),
    }
}

/// The single source of truth for the normalised `mean/n` and
/// `mean/(n ln n)` columns, shared by the text table and the JSON
/// emitter: `mean/n` needs `n >= 1`, and `mean/(n ln n)` needs `n >= 3`
/// — `n ln n` is 0 at `n = 1` (a division yielding ±inf/NaN, which is
/// not valid JSON) and within rounding noise of `n` at `n = 2`, so both
/// renderings degrade to `-`/`null` there.
fn normalised_means(cell: &crate::executor::CellSummary) -> (Option<f64>, Option<f64>) {
    if cell.completed == 0 {
        return (None, None);
    }
    let mean = cell.steps.mean();
    let nf = cell.n as f64;
    (
        (cell.n >= 1).then(|| mean / nf),
        (cell.n >= 3).then(|| mean / (nf * nf.ln())),
    )
}

/// [`to_text_table_with`] at the default p50/p90/p99 quantiles.
pub fn to_text_table(report: &ExperimentReport) -> TextTable {
    to_text_table_with(report, &DEFAULT_QUANTILES)
}

/// Renders the aggregate table shown by the CLI and the `table_*` wrappers.
///
/// Columns: graph, n, process, `done/trials`, mean/std/min/max of the
/// steps-to-target distribution, one sketched quantile column per entry
/// of `quantiles` (p50/p90/p99 by default; see
/// [`QuantileSketch`]'s rank-error guarantee), the normalised `mean/n`
/// and `mean/(n ln n)` (the paper's two candidate growth laws; dashed
/// out where degenerate, i.e. `n <= 2`), the mean blue-step
/// fraction — plus one dynamic column (the per-cell mean) for
/// every metric the spec requested. Under resampling, three more
/// columns decompose the steps column: `graphs` (distinct samples),
/// `sd(across)` (std dev of per-graph means) and `sd(within)`
/// (walk-to-walk std dev on a fixed graph).
pub fn to_text_table_with(report: &ExperimentReport, quantiles: &[f64]) -> TextTable {
    let resampled = report.resample.is_some();
    let mut headers = vec![
        "graph".to_string(),
        "n".into(),
        "process".into(),
        "done".into(),
        "mean".into(),
        "std".into(),
        "min".into(),
        "max".into(),
    ];
    headers.extend(quantiles.iter().map(|&q| quantile_label(q)));
    headers.extend(["mean/n".to_string(), "mean/(n ln n)".into(), "blue%".into()]);
    if resampled {
        headers.push("graphs".into());
        headers.push("sd(across)".into());
        headers.push("sd(within)".into());
    }
    if let Some(cell) = report.cells.first() {
        headers.extend(cell.metrics.iter().map(|m| m.name.clone()));
    }
    let mut table = TextTable::new(headers);
    for cell in &report.cells {
        let done = format!("{}/{}", cell.completed, cell.trials);
        let (raw_over_n, raw_over_nlogn) = normalised_means(cell);
        let (mean, std, min, max, over_n, over_nlogn) = if cell.completed > 0 {
            let mean = cell.steps.mean();
            (
                format!("{mean:.0}"),
                format!("{:.1}", cell.steps.std_dev()),
                format!("{:.0}", cell.steps.min().expect("completed > 0")),
                format!("{:.0}", cell.steps.max().expect("completed > 0")),
                raw_over_n.map_or("-".into(), |v| format!("{v:.2}")),
                raw_over_nlogn.map_or("-".into(), |v| format!("{v:.3}")),
            )
        } else {
            let dash = || "-".to_string();
            (dash(), dash(), dash(), dash(), dash(), dash())
        };
        let blue = if cell.blue_fraction.count() > 0 {
            format!("{:.1}", 100.0 * cell.blue_fraction.mean())
        } else {
            "-".into()
        };
        let mut row = vec![
            cell.graph.clone(),
            cell.n.to_string(),
            cell.process.clone(),
            done,
            mean,
            std,
            min,
            max,
        ];
        row.extend(quantiles.iter().map(|&q| {
            cell.steps_sketch
                .quantile(q)
                .map_or("-".into(), |v| format!("{v:.0}"))
        }));
        row.extend([over_n, over_nlogn, blue]);
        if resampled {
            match &cell.steps_split {
                Some(split) => {
                    row.push(split.graph_samples.to_string());
                    row.push(if split.graph_samples >= 2 {
                        format!("{:.1}", split.across.std_dev())
                    } else {
                        "-".into()
                    });
                    row.push(match split.within_variance {
                        Some(v) => format!("{:.1}", v.sqrt()),
                        None => "-".into(),
                    });
                }
                None => row.extend(["-".to_string(), "-".into(), "-".into()]),
            }
        }
        for metric in &cell.metrics {
            row.push(if metric.stats.count() > 0 {
                format!("{:.1}", metric.stats.mean())
            } else {
                "-".into()
            });
        }
        table.push_row(row);
    }
    table
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// One `variance_components` entry: the column's pooled variance next to
/// its across-graph / within-graph decomposition. Components that cannot
/// be estimated from the data (a single graph sample, no replicate
/// walks) serialise as `null` rather than a misleading `0`.
fn json_split(split: &VarianceSplit, pooled: &OnlineStats) -> String {
    let pooled = if pooled.count() > 0 {
        json_num(pooled.variance())
    } else {
        "null".into()
    };
    let across = if split.graph_samples >= 2 {
        json_num(split.across.variance())
    } else {
        "null".into()
    };
    let within = match split.within_variance {
        Some(v) => json_num(v),
        None => "null".into(),
    };
    format!(
        "{{\"graph_samples\": {}, \"pooled_variance\": {pooled}, \
         \"across_graph_variance\": {across}, \"within_graph_variance\": {within}}}",
        split.graph_samples
    )
}

/// Serialises the report as deterministic JSON (stable key order, no
/// timestamps), suitable for artifact diffing across runs. Quantiles
/// default to p50/p90/p99.
pub fn to_json(report: &ExperimentReport) -> String {
    to_json_with(report, None, &DEFAULT_QUANTILES)
}

/// [`to_json_with`] at the default p50/p90/p99 quantiles.
pub fn to_json_with_scaling(report: &ExperimentReport, scaling: Option<&ScalingReport>) -> String {
    to_json_with(report, scaling, &DEFAULT_QUANTILES)
}

/// Like [`to_json`], but with an explicit quantile list (the CLI's
/// `--quantiles`) and, when `scaling` is given, a `growth_laws` array —
/// one entry per (process × series) with the sweep points, every
/// candidate model's constants, `R²` and residual score, and the
/// preferred model. Each cell carries a `quantiles` object with one
/// entry per column (`steps` plus each metric), estimated from the
/// mergeable sketches — `null` where the column is empty. Non-finite
/// statistics serialise as `null`, never as bare `inf`/`NaN` tokens.
pub fn to_json_with(
    report: &ExperimentReport,
    scaling: Option<&ScalingReport>,
    quantiles: &[f64],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"experiment\": \"{}\",\n",
        json_escape(&report.name)
    ));
    out.push_str(&format!(
        "  \"description\": \"{}\",\n",
        json_escape(&report.description)
    ));
    out.push_str(&format!(
        "  \"target\": \"{}\",\n",
        json_escape(&report.target.label())
    ));
    out.push_str(&format!("  \"trials\": {},\n", report.trials));
    out.push_str(&format!("  \"base_seed\": {},\n", report.base_seed));
    if let Some(plan) = report.resample {
        out.push_str(&format!(
            "  \"resample\": {{\"walks_per_graph\": {}}},\n",
            plan.walks_per_graph
        ));
    }
    out.push_str("  \"cells\": [\n");
    for (i, cell) in report.cells.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"graph\": \"{}\",\n",
            json_escape(&cell.graph)
        ));
        out.push_str(&format!("      \"n\": {},\n", cell.n));
        out.push_str(&format!("      \"m\": {},\n", cell.m));
        out.push_str(&format!(
            "      \"process\": \"{}\",\n",
            json_escape(&cell.process)
        ));
        out.push_str(&format!("      \"trials\": {},\n", cell.trials));
        out.push_str(&format!("      \"completed\": {},\n", cell.completed));
        if cell.completed > 0 {
            out.push_str(&format!(
                "      \"mean_steps\": {},\n",
                json_num(cell.steps.mean())
            ));
            out.push_str(&format!(
                "      \"std_dev\": {},\n",
                json_num(cell.steps.std_dev())
            ));
            out.push_str(&format!(
                "      \"min_steps\": {},\n",
                json_num(cell.steps.min().expect("completed > 0"))
            ));
            out.push_str(&format!(
                "      \"max_steps\": {},\n",
                json_num(cell.steps.max().expect("completed > 0"))
            ));
            let (over_n, over_nlogn) = normalised_means(cell);
            let emit = |v: Option<f64>| v.map_or("null".to_string(), json_num);
            out.push_str(&format!("      \"mean_over_n\": {},\n", emit(over_n)));
            out.push_str(&format!(
                "      \"mean_over_n_log_n\": {},\n",
                emit(over_nlogn)
            ));
        } else {
            out.push_str("      \"mean_steps\": null,\n");
            out.push_str("      \"std_dev\": null,\n");
            out.push_str("      \"min_steps\": null,\n");
            out.push_str("      \"max_steps\": null,\n");
            out.push_str("      \"mean_over_n\": null,\n");
            out.push_str("      \"mean_over_n_log_n\": null,\n");
        }
        let blue = if cell.blue_fraction.count() > 0 {
            json_num(cell.blue_fraction.mean())
        } else {
            "null".into()
        };
        out.push_str(&format!("      \"mean_blue_fraction\": {blue},\n"));
        let quantile_obj = |sketch: &QuantileSketch| -> String {
            let mut obj = String::from("{");
            for (k, &q) in quantiles.iter().enumerate() {
                if k > 0 {
                    obj.push_str(", ");
                }
                obj.push_str(&format!(
                    "\"{}\": {}",
                    quantile_label(q),
                    json_quantile(sketch, q)
                ));
            }
            obj.push('}');
            obj
        };
        out.push_str("      \"quantiles\": {\n");
        out.push_str(&format!(
            "        \"steps\": {}",
            quantile_obj(&cell.steps_sketch)
        ));
        for metric in &cell.metrics {
            out.push_str(&format!(
                ",\n        \"{}\": {}",
                json_escape(&metric.name),
                quantile_obj(&metric.sketch)
            ));
        }
        out.push_str("\n      },\n");
        if let Some(split) = &cell.steps_split {
            out.push_str("      \"variance_components\": {\n");
            out.push_str(&format!(
                "        \"steps\": {}",
                json_split(split, &cell.steps)
            ));
            for metric in &cell.metrics {
                if let Some(msplit) = &metric.split {
                    out.push_str(&format!(
                        ",\n        \"{}\": {}",
                        json_escape(&metric.name),
                        json_split(msplit, &metric.stats)
                    ));
                }
            }
            out.push_str("\n      },\n");
        }
        out.push_str("      \"metrics\": {");
        for (j, metric) in cell.metrics.iter().enumerate() {
            out.push_str(if j == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("        \"{}\": ", json_escape(&metric.name)));
            if metric.stats.count() > 0 {
                out.push_str(&format!(
                    "{{\"count\": {}, \"mean\": {}, \"std\": {}, \"min\": {}, \"max\": {}}}",
                    metric.stats.count(),
                    json_num(metric.stats.mean()),
                    json_num(metric.stats.std_dev()),
                    json_num(metric.stats.min().expect("count > 0")),
                    json_num(metric.stats.max().expect("count > 0")),
                ));
            } else {
                out.push_str("null");
            }
        }
        if cell.metrics.is_empty() {
            out.push_str("}\n");
        } else {
            out.push_str("\n      }\n");
        }
        out.push_str(if i + 1 < report.cells.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    match scaling {
        None => out.push_str("  ]\n}\n"),
        Some(scaling) => {
            out.push_str("  ],\n");
            out.push_str("  \"growth_laws\": [\n");
            for (i, series) in scaling.series.iter().enumerate() {
                out.push_str("    {\n");
                out.push_str(&format!(
                    "      \"family\": \"{}\",\n",
                    json_escape(&series.family)
                ));
                out.push_str(&format!(
                    "      \"process\": \"{}\",\n",
                    json_escape(&series.process)
                ));
                out.push_str(&format!(
                    "      \"series\": \"{}\",\n",
                    json_escape(&series.series)
                ));
                out.push_str("      \"points\": [");
                for (j, p) in series.points.iter().enumerate() {
                    out.push_str(if j == 0 { "" } else { ", " });
                    out.push_str(&format!(
                        "{{\"n\": {}, \"m\": {}, \"mean\": {}}}",
                        p.n,
                        p.m,
                        json_num(p.y)
                    ));
                }
                out.push_str("],\n");
                out.push_str("      \"models\": [\n");
                for (j, mf) in series.selection.fits.iter().enumerate() {
                    out.push_str(&format!(
                        "        {{\"model\": \"{}\", \"params\": {}, \"intercept\": {}, \
                         \"slope\": {}, \"r_squared\": {}, \"ssr\": {}, \"aic\": {}, \
                         \"preferred\": {}}}{}\n",
                        json_escape(mf.model.label()),
                        mf.model.params(),
                        json_num(mf.fit.intercept),
                        json_num(mf.fit.slope),
                        json_num(mf.fit.r_squared),
                        json_num(mf.ssr),
                        json_num(mf.aic),
                        mf.model == series.selection.preferred,
                        if j + 1 < series.selection.fits.len() {
                            ","
                        } else {
                            ""
                        },
                    ));
                }
                out.push_str("      ],\n");
                out.push_str(&format!(
                    "      \"preferred\": \"{}\"\n",
                    json_escape(series.selection.preferred.label())
                ));
                out.push_str(if i + 1 < scaling.series.len() {
                    "    },\n"
                } else {
                    "    }\n"
                });
            }
            out.push_str("  ]\n}\n");
        }
    }
    out
}

/// Renders the growth-law table of a sweep analysis: one row per
/// (family × process × series × candidate model) with the fitted
/// constants, `R²` and residual score, and a `<-` marker on each
/// series' preferred model.
pub fn scaling_table(scaling: &ScalingReport) -> TextTable {
    let mut table = TextTable::new(vec![
        "family".to_string(),
        "process".into(),
        "series".into(),
        "model".into(),
        "intercept".into(),
        "slope".into(),
        "R^2".into(),
        "score".into(),
        "preferred".into(),
    ]);
    let fmt_num = |x: f64, digits: usize| -> String {
        if x.is_finite() {
            format!("{x:.digits$}")
        } else {
            "-".into()
        }
    };
    for series in &scaling.series {
        for mf in &series.selection.fits {
            table.push_row(vec![
                series.family.clone(),
                series.process.clone(),
                series.series.clone(),
                mf.model.label().to_string(),
                if mf.model.params() > 1 {
                    fmt_num(mf.fit.intercept, 1)
                } else {
                    "-".into()
                },
                fmt_num(mf.fit.slope, 4),
                fmt_num(mf.fit.r_squared, 5),
                fmt_num(mf.aic, 1),
                if mf.model == series.selection.preferred {
                    "<-".into()
                } else {
                    String::new()
                },
            ]);
        }
    }
    table
}

/// Default artifact directory: `<workspace>/target/experiments/`.
pub fn default_artifact_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("target");
    dir.push("experiments");
    dir
}

/// Writes the JSON artifact to `path` (or
/// `target/experiments/eproc_<name>.json` when `None`), creating parent
/// directories. The write is atomic (temp sibling + rename,
/// [`eproc_telemetry::write_atomic`]): a crash mid-write never leaves a
/// truncated artifact. Returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_json(report: &ExperimentReport, path: Option<&Path>) -> std::io::Result<PathBuf> {
    save_json_with(report, None, &DEFAULT_QUANTILES, path)
}

/// Like [`save_json`], but writes the artifact with its `growth_laws`
/// section (see [`to_json_with_scaling`]).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_json_with_scaling(
    report: &ExperimentReport,
    scaling: &ScalingReport,
    path: Option<&Path>,
) -> std::io::Result<PathBuf> {
    save_json_with(report, Some(scaling), &DEFAULT_QUANTILES, path)
}

/// The fully general artifact writer behind [`save_json`] and
/// [`save_json_with_scaling`]: explicit quantile list (the CLI's
/// `--quantiles`) and optional `growth_laws` section (see
/// [`to_json_with`]).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_json_with(
    report: &ExperimentReport,
    scaling: Option<&ScalingReport>,
    quantiles: &[f64],
    path: Option<&Path>,
) -> std::io::Result<PathBuf> {
    let path = match path {
        Some(p) => p.to_path_buf(),
        None => default_artifact_dir().join(format!("eproc_{}.json", report.name)),
    };
    eproc_telemetry::write_atomic(&path, &to_json_with(report, scaling, quantiles))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run, RunOptions};
    use crate::spec::{
        CapSpec, ExperimentSpec, GraphSpec, MetricSpec, ProcessSpec, RuleSpec, Target,
    };

    fn demo_report() -> ExperimentReport {
        let spec = ExperimentSpec {
            name: "demo".into(),
            description: "report unit test".into(),
            graphs: vec![GraphSpec::Cycle { n: 16 }],
            processes: vec![
                ProcessSpec::EProcess {
                    rule: RuleSpec::Uniform,
                },
                ProcessSpec::Srw,
            ],
            trials: 2,
            target: Target::VertexCover,
            metrics: vec![],
            start: 0,
            cap: CapSpec::Auto,
            resample: None,
        };
        run(
            &spec,
            &RunOptions {
                threads: 1,
                base_seed: 9,
            },
        )
        .unwrap()
    }

    #[test]
    fn table_has_one_row_per_cell() {
        let report = demo_report();
        let table = to_text_table(&report);
        assert_eq!(table.len(), report.cells.len());
        let rendered = table.to_string();
        assert!(rendered.contains("e-process(uniform)"));
        assert!(rendered.contains("mean/(n ln n)"));
    }

    #[test]
    fn json_is_valid_enough_and_deterministic() {
        let report = demo_report();
        let a = to_json(&report);
        let b = to_json(&report);
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.trim_end().ends_with('}'));
        assert!(a.contains("\"experiment\": \"demo\""));
        assert!(a.contains("\"mean_steps\": 15"));
        // Balanced braces and brackets (cheap structural check).
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(2.5), "2.5");
    }

    #[test]
    fn incomplete_cells_serialise_as_null() {
        let spec = ExperimentSpec {
            name: "capped".into(),
            description: String::new(),
            graphs: vec![GraphSpec::Cycle { n: 16 }],
            processes: vec![ProcessSpec::Srw],
            trials: 1,
            target: Target::VertexCover,
            metrics: vec![],
            start: 0,
            cap: CapSpec::Absolute(1),
            resample: None,
        };
        let report = run(
            &spec,
            &RunOptions {
                threads: 1,
                base_seed: 1,
            },
        )
        .unwrap();
        let json = to_json(&report);
        assert!(json.contains("\"mean_steps\": null"));
        let table = to_text_table(&report).to_string();
        assert!(table.contains("0/1"));
    }

    #[test]
    fn metric_columns_render_in_table_and_json() {
        let spec = ExperimentSpec {
            name: "metrics".into(),
            description: String::new(),
            graphs: vec![GraphSpec::Cycle { n: 12 }],
            processes: vec![ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            }],
            trials: 2,
            target: Target::VertexCover,
            metrics: vec![MetricSpec::Cover, MetricSpec::Phases],
            start: 0,
            cap: CapSpec::Auto,
            resample: None,
        };
        let report = run(
            &spec,
            &RunOptions {
                threads: 1,
                base_seed: 2,
            },
        )
        .unwrap();
        let table = to_text_table(&report).to_string();
        for col in [
            "cover.c_v",
            "cover.c_e",
            "phases.first_blue",
            "phases.closed",
        ] {
            assert!(table.contains(col), "missing column {col}\n{table}");
        }
        let json = to_json(&report);
        assert!(json.contains("\"cover.c_v\": {\"count\": 2, \"mean\": 11"));
        assert!(json.contains("\"phases.closed\": {\"count\": 2, \"mean\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn save_json_writes_artifact() {
        let report = demo_report();
        let dir = std::env::temp_dir().join("eproc_engine_report_test");
        let path = dir.join("demo.json");
        let written = save_json(&report, Some(&path)).unwrap();
        assert_eq!(written, path);
        let content = std::fs::read_to_string(&written).unwrap();
        assert_eq!(content, to_json(&report));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
