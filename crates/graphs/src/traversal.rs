//! Breadth-first and depth-first traversal primitives.
//!
//! These are deliberately small and allocation-explicit: the property
//! algorithms (connectivity, girth, diameter, ℓ-goodness) each drive their
//! own traversal with extra per-vertex state, so the building blocks here
//! return plain `Vec`s rather than hiding state in iterators.

use crate::csr::{Graph, Vertex};

/// Distance label for vertices not reached by a truncated BFS.
pub const UNREACHED: u32 = u32::MAX;

/// BFS distances from `start`; unreachable vertices get [`UNREACHED`].
///
/// # Panics
///
/// Panics if `start >= g.n()`.
///
/// # Example
///
/// ```
/// use eproc_graphs::{Graph, traversal};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2)])?;
/// let d = traversal::bfs_distances(&g, 0);
/// assert_eq!(d[2], 2);
/// assert_eq!(d[3], traversal::UNREACHED);
/// # Ok::<(), eproc_graphs::GraphError>(())
/// ```
pub fn bfs_distances(g: &Graph, start: Vertex) -> Vec<u32> {
    bfs_distances_bounded(g, start, u32::MAX)
}

/// BFS distances from `start`, exploring only vertices at distance
/// `<= radius`; all others get [`UNREACHED`].
///
/// # Panics
///
/// Panics if `start >= g.n()`.
pub fn bfs_distances_bounded(g: &Graph, start: Vertex, radius: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHED; g.n()];
    dist[start] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        if du >= radius {
            continue;
        }
        for w in g.neighbors(u) {
            if dist[w] == UNREACHED {
                dist[w] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Vertices visited by a BFS from `start`, in visit order.
///
/// # Panics
///
/// Panics if `start >= g.n()`.
pub fn bfs_order(g: &Graph, start: Vertex) -> Vec<Vertex> {
    let mut seen = vec![false; g.n()];
    seen[start] = true;
    let mut order = vec![start];
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        for w in g.neighbors(u) {
            if !seen[w] {
                seen[w] = true;
                order.push(w);
            }
        }
    }
    order
}

/// Vertices visited by an iterative DFS from `start`, in preorder.
///
/// # Panics
///
/// Panics if `start >= g.n()`.
pub fn dfs_preorder(g: &Graph, start: Vertex) -> Vec<Vertex> {
    let mut seen = vec![false; g.n()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if seen[u] {
            continue;
        }
        seen[u] = true;
        order.push(u);
        // Push in reverse port order so the lowest port is explored first.
        let range = g.arc_range(u);
        for a in range.rev() {
            let w = g.arc_target(a);
            if !seen[w] {
                stack.push(w);
            }
        }
    }
    order
}

/// A BFS tree: `parent_arc[v]` is the arc used to first reach `v`
/// (`None` for the root and unreached vertices), plus distances.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// Distance from the root, [`UNREACHED`] where not reached.
    pub dist: Vec<u32>,
    /// The arc along which each vertex was discovered.
    pub parent_arc: Vec<Option<usize>>,
}

/// Computes the full BFS tree rooted at `start`.
///
/// # Panics
///
/// Panics if `start >= g.n()`.
pub fn bfs_tree(g: &Graph, start: Vertex) -> BfsTree {
    let mut dist = vec![UNREACHED; g.n()];
    let mut parent_arc = vec![None; g.n()];
    dist[start] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for (a, w, _) in g.ports(u) {
            if dist[w] == UNREACHED {
                dist[w] = dist[u] + 1;
                parent_arc[w] = Some(a);
                queue.push_back(w);
            }
        }
    }
    BfsTree { dist, parent_arc }
}

/// Reconstructs the vertex path from the BFS root to `v` (inclusive), or
/// `None` if `v` was not reached.
pub fn path_from_root(g: &Graph, tree: &BfsTree, v: Vertex) -> Option<Vec<Vertex>> {
    if tree.dist[v] == UNREACHED {
        return None;
    }
    let mut path = vec![v];
    let mut cur = v;
    while let Some(a) = tree.parent_arc[cur] {
        // The parent is the source of arc `a`; recover it from the edge.
        let e = g.arc_edge(a);
        let parent = g.other_endpoint(e, cur);
        path.push(parent);
        cur = parent;
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn two_triangles_bridge() -> Graph {
        // 0-1-2 triangle, 3-4-5 triangle, bridge 2-3.
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn distances_on_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_bfs_stops() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let d = bfs_distances_bounded(&g, 0, 2);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], UNREACHED);
        assert_eq!(d[4], UNREACHED);
    }

    #[test]
    fn bfs_order_visits_component() {
        let g = two_triangles_bridge();
        let order = bfs_order(&g, 0);
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn bfs_order_stays_in_component() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(bfs_order(&g, 0), vec![0, 1]);
        assert_eq!(bfs_order(&g, 3), vec![3, 2]);
    }

    #[test]
    fn dfs_preorder_visits_component_once() {
        let g = two_triangles_bridge();
        let order = dfs_preorder(&g, 0);
        assert_eq!(order.len(), 6);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn dfs_lowest_port_first() {
        // Star with center 0; ports in edge order 1, 2, 3.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(dfs_preorder(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_tree_paths() {
        let g = two_triangles_bridge();
        let tree = bfs_tree(&g, 0);
        assert_eq!(tree.dist[5], 3);
        let p = path_from_root(&g, &tree, 5).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&5));
        assert_eq!(p.len() as u32, tree.dist[5] + 1);
        // Consecutive path vertices are adjacent.
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn path_from_root_unreachable_is_none() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let tree = bfs_tree(&g, 0);
        assert!(path_from_root(&g, &tree, 2).is_none());
    }
}
