//! **T-cmp**: the E-process against every related process from §1:
//! simple random walk, rotor-router (Propp machine), RWC(2)
//! (Avin–Krishnamachari), Oldest-First and Least-Used-First locally fair
//! exploration — vertex cover times on an even-degree expander, a torus
//! and a random geometric graph.

use eproc_bench::{mean_vertex_cover_steps, rng_for, save_table, Config, Scale};
use eproc_core::choice::RandomWalkWithChoice;
use eproc_core::fair::{LeastUsedFirst, OldestFirst};
use eproc_core::rotor::RotorRouter;
use eproc_core::rule::UniformRule;
use eproc_core::srw::SimpleRandomWalk;
use eproc_core::EProcess;
use eproc_graphs::properties::connectivity;
use eproc_graphs::{generators, Graph};
use eproc_stats::{SeedSequence, TextTable};

const REPS: usize = 5;

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Process comparison: mean vertex cover time (CV), {REPS} runs each\n");
    let mut table =
        TextTable::new(vec!["graph", "n", "process", "CV mean", "CV/n", "CV/(n ln n)"]);

    let (reg_n, side, geo_n) = match config.scale {
        Scale::Quick => (4_096, 32, 2_000),
        Scale::Paper => (65_536, 128, 20_000),
    };
    let mut graph_rng = rng_for(seeds.derive(&[0]));
    let regular = generators::connected_random_regular(reg_n, 4, &mut graph_rng).unwrap();
    let torus = generators::torus2d(side, side);
    // Radius chosen above the connectivity threshold sqrt(ln n / (pi n)).
    let radius = (2.0 * (geo_n as f64).ln() / (std::f64::consts::PI * geo_n as f64)).sqrt();
    let geometric = loop {
        let gg = generators::random_geometric(geo_n, radius * 1.5, &mut graph_rng).unwrap();
        if connectivity::is_connected(&gg.graph) {
            break gg.graph;
        }
    };
    let graphs: Vec<(&str, &Graph)> = vec![
        ("random 4-regular", &regular),
        ("torus", &torus),
        ("geometric", &geometric),
    ];

    for (name, g) in graphs {
        let n = g.n();
        let nf = n as f64;
        let cap = (50_000.0 * nf * nf.ln()) as u64;
        let mut rng = rng_for(seeds.derive(&[2, n as u64]));
        let mut row = |process: &str, mean: f64| {
            table.push_row(vec![
                name.into(),
                n.to_string(),
                process.into(),
                format!("{mean:.0}"),
                format!("{:.2}", mean / nf),
                format!("{:.3}", mean / (nf * nf.ln())),
            ]);
        };
        let (m, d) = mean_vertex_cover_steps(
            |_| EProcess::new(g, 0, UniformRule::new()),
            REPS,
            cap,
            &mut rng,
        );
        assert_eq!(d, REPS);
        row("E-process", m);
        let (m, d) =
            mean_vertex_cover_steps(|_| SimpleRandomWalk::new(g, 0), REPS, cap, &mut rng);
        assert_eq!(d, REPS);
        row("SRW", m);
        let (m, d) = mean_vertex_cover_steps(|_| RotorRouter::new(g, 0), REPS, cap, &mut rng);
        assert_eq!(d, REPS);
        row("rotor-router", m);
        let (m, d) = mean_vertex_cover_steps(
            |_| RandomWalkWithChoice::new(g, 0, 2),
            REPS,
            cap,
            &mut rng,
        );
        assert_eq!(d, REPS);
        row("RWC(2)", m);
        let (m, d) = mean_vertex_cover_steps(|_| OldestFirst::new(g, 0), REPS, cap, &mut rng);
        assert_eq!(d, REPS);
        row("Oldest-First", m);
        let (m, d) = mean_vertex_cover_steps(|_| LeastUsedFirst::new(g, 0), REPS, cap, &mut rng);
        assert_eq!(d, REPS);
        row("Least-Used-First", m);
    }
    println!("{table}");
    let p = save_table("table_comparison", &table).expect("write csv");
    println!("csv: {}", p.display());
}
