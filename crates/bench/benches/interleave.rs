//! Interleaved multi-trial kernel vs running the same trials one at a
//! time, on a CSR far too large for cache.
//!
//! The engine's resample blocks run `W` independent same-cell trials.
//! Sequentially, each trial streams the whole graph through cache on its
//! own, and every step stalls on a random CSR row fetch. The
//! interleaved kernel ([`run_observed_interleaved`]) gives `W` lanes one
//! step each in rotation, issuing the *next* lane's row load before the
//! current lane steps, so the fetches overlap — same trajectories, same
//! RNG streams (asserted before timing), better memory-level
//! parallelism.
//!
//! The graph is a random 4-regular graph with `n = 1_000_000`: ~1M
//! vertices of CSR rows (well past L2) walked uniformly at random, the
//! shape the engine's large resampled ensembles actually run. Widths 1,
//! 4 and 8 are timed both ways at a fixed step cap. Writes
//! `target/experiments/BENCH_interleave.json`; the acceptance floor for
//! the interleave PR was ≥1.3× aggregate steps/sec at `W >= 4`.

use criterion::black_box;
use eproc_bench::{output_dir, rng_for};
use eproc_core::interleave::{run_observed_interleaved, Lane};
use eproc_core::observe::{run_observed, CoverObserver, StopWhen};
use eproc_core::rule::UniformRule;
use eproc_core::EProcess;
use eproc_graphs::{generators, Graph};
use rand::rngs::SmallRng;
use std::time::Instant;

const N: usize = 1_000_000;
const DEGREE: usize = 4;
const STEPS_PER_LANE: u64 = 1_000_000;
const SAMPLES: usize = 3;
const WIDTHS: [usize; 3] = [1, 4, 8];

/// Minimum seconds over `SAMPLES` timed runs — the least-interference
/// estimate (noise only ever adds time).
fn best_secs<F: FnMut()>(mut f: F) -> f64 {
    (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Lane `i`'s walk: starts spread across the vertex range so the lanes
/// touch disjoint regions at first, its own seeded RNG stream.
fn walk_for(g: &Graph, i: usize, width: usize) -> (EProcess<'_, UniformRule>, SmallRng) {
    let start = (i * (g.n() / width.max(1))) % g.n();
    (
        EProcess::new(g, start, UniformRule::new()),
        rng_for(1_000 + i as u64),
    )
}

/// No-op observer set: the bench times the bare step loop, the shape the
/// memory-latency win actually targets.
type NoObservers = [CoverObserver; 0];

/// Runs the `width` trials one at a time to `cap` steps each; returns
/// their final vertices (for the equivalence check).
fn run_sequential(g: &Graph, width: usize, cap: u64) -> Vec<usize> {
    (0..width)
        .map(|i| {
            let (mut walk, mut rng) = walk_for(g, i, width);
            let mut obs: NoObservers = [];
            let run = run_observed(&mut walk, &mut obs, StopWhen::Cap, cap, &mut rng);
            black_box(run.final_vertex)
        })
        .collect()
}

/// Runs the same `width` trials through the interleaved kernel; returns
/// the same per-lane final vertices.
fn run_interleaved(g: &Graph, width: usize, cap: u64) -> Vec<usize> {
    let mut obs: Vec<NoObservers> = (0..width).map(|_| []).collect();
    let mut lanes: Vec<Lane<'_, _, NoObservers, SmallRng>> = obs
        .iter_mut()
        .enumerate()
        .map(|(i, o)| {
            let (walk, rng) = walk_for(g, i, width);
            Lane::new(walk, o, rng)
        })
        .collect();
    let runs = run_observed_interleaved(&mut lanes, StopWhen::Cap, cap);
    black_box(runs.into_iter().map(|r| r.final_vertex).collect())
}

fn rate(width: usize, secs: f64) -> f64 {
    (width as u64 * STEPS_PER_LANE) as f64 / secs
}

fn main() {
    let mut graph_rng = rng_for(7);
    let g = generators::connected_random_regular(N, DEGREE, &mut graph_rng).unwrap();

    // The two paths must walk identical trajectories before their speeds
    // are worth comparing.
    for width in WIDTHS {
        assert_eq!(
            run_sequential(&g, width, 20_000),
            run_interleaved(&g, width, 20_000),
            "interleaved kernel diverged from sequential at width {width}"
        );
    }

    let mut lines = String::new();
    for width in WIDTHS {
        let seq = rate(
            width,
            best_secs(|| {
                black_box(run_sequential(&g, width, STEPS_PER_LANE));
            }),
        );
        let inter = rate(
            width,
            best_secs(|| {
                black_box(run_interleaved(&g, width, STEPS_PER_LANE));
            }),
        );
        let speedup = inter / seq;
        println!(
            "interleave/w{width}: sequential {:.2} Msteps/s, interleaved {:.2} Msteps/s ({speedup:.2}x)",
            seq / 1e6,
            inter / 1e6
        );
        lines.push_str(&format!(
            "    {{\"width\": {width}, \"steps_per_sec_sequential\": {seq:.0}, \
             \"steps_per_sec_interleaved\": {inter:.0}, \"speedup\": {speedup:.4}}}{}\n",
            if width == *WIDTHS.last().unwrap() {
                ""
            } else {
                ","
            }
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"interleave\",\n  \
         \"graph\": \"random {DEGREE}-regular n={N}\",\n  \
         \"steps_per_lane\": {STEPS_PER_LANE},\n  \"samples\": {SAMPLES},\n  \
         \"target_speedup_at_w4\": 1.3,\n  \"series\": [\n{lines}  ]\n}}\n"
    );
    let dir = output_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = dir.join("BENCH_interleave.json");
    std::fs::write(&path, json).expect("write snapshot");
    println!("json: {}", path.display());
}
