//! Total-variation mixing by explicit distribution evolution.
//!
//! Lemma 7 of the paper: `T = K log n / (1 − λ_max)` with `K ≥ 6` gives
//! `max_{u,x} |P^t_u(x) − π_x| ≤ n^{-3}` for `t ≥ T`. This module measures
//! actual mixing so the spectral prediction can be compared against ground
//! truth on small graphs.

use crate::transition::{apply_transition, stationary_distribution};
use eproc_graphs::{Graph, Vertex};

/// Total-variation distance `½ Σ_v |p_v − q_v|`.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Distribution of the walk started at `start` after `t` steps.
///
/// # Panics
///
/// Panics if `start >= g.n()`.
pub fn distribution_at(g: &Graph, start: Vertex, t: usize, lazy: bool) -> Vec<f64> {
    let mut rho = vec![0.0; g.n()];
    rho[start] = 1.0;
    for _ in 0..t {
        rho = apply_transition(g, &rho, lazy);
    }
    rho
}

/// Worst-case (over start vertices) TV distance to stationarity at time
/// `t`. `O(n · t · m)` — use on small graphs.
pub fn worst_tv_at(g: &Graph, t: usize, lazy: bool) -> f64 {
    let pi = stationary_distribution(g);
    g.vertices()
        .map(|u| tv_distance(&distribution_at(g, u, t, lazy), &pi))
        .fold(0.0, f64::max)
}

/// Smallest `t ≤ max_t` with worst-case TV distance `≤ eps`, or `None` if
/// the walk has not mixed by `max_t` (periodic chains never mix — use
/// `lazy = true` for bipartite graphs, as the paper does).
pub fn mixing_time(g: &Graph, eps: f64, lazy: bool, max_t: usize) -> Option<usize> {
    let pi = stationary_distribution(g);
    let mut rhos: Vec<Vec<f64>> = g
        .vertices()
        .map(|u| {
            let mut r = vec![0.0; g.n()];
            r[u] = 1.0;
            r
        })
        .collect();
    for t in 0..=max_t {
        let worst = rhos.iter().map(|r| tv_distance(r, &pi)).fold(0.0, f64::max);
        if worst <= eps {
            return Some(t);
        }
        if t < max_t {
            for r in &mut rhos {
                *r = apply_transition(g, r, lazy);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::SymMatrix;
    use eproc_graphs::generators;

    #[test]
    fn tv_basics() {
        assert_eq!(tv_distance(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(tv_distance(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert!((tv_distance(&[0.7, 0.3], &[0.3, 0.7]) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_mixes_in_one_step() {
        // From any vertex of K_n, one step is uniform over the other n-1;
        // TV to π = 1/n: small but not zero; by t=2 it is tiny.
        let g = generators::complete(10);
        let t = mixing_time(&g, 0.12, false, 10).unwrap();
        assert!(t <= 1, "K10 mixes almost immediately, got {t}");
    }

    #[test]
    fn even_cycle_never_mixes_without_laziness() {
        let g = generators::cycle(6);
        assert_eq!(mixing_time(&g, 0.25, false, 200), None);
        assert!(mixing_time(&g, 0.25, true, 200).is_some());
    }

    #[test]
    fn mixing_time_monotone_in_eps() {
        let g = generators::petersen();
        let loose = mixing_time(&g, 0.3, true, 500).unwrap();
        let tight = mixing_time(&g, 0.01, true, 500).unwrap();
        assert!(loose <= tight);
    }

    #[test]
    fn lemma7_spectral_bound_dominates_measured_mixing() {
        // T = 6 log n / (1 − λ_max) must bring worst-case pointwise error
        // below n^{-3}; pointwise error is bounded by TV, so check TV at T
        // against the (weaker) threshold.
        for g in [
            generators::petersen(),
            generators::lollipop(4, 2),
            generators::torus2d(3, 3),
        ] {
            let lmax = SymMatrix::from_graph(&g, true).lambda_max_walk();
            let n = g.n() as f64;
            let t = (6.0 * n.ln() / (1.0 - lmax)).ceil() as usize;
            let worst = worst_tv_at(&g, t, true);
            assert!(
                worst <= 1.0 / n.powi(2),
                "Lemma 7 time T = {t} leaves TV = {worst} on n = {n}"
            );
        }
    }

    #[test]
    fn distribution_conserves_mass() {
        let g = generators::torus2d(4, 3);
        let rho = distribution_at(&g, 0, 17, false);
        assert!((rho.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }
}
