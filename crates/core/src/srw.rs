//! Simple, lazy and weighted random walks.

use crate::process::{Step, StepKind, WalkProcess};
use eproc_graphs::{Graph, Vertex};
use rand::{Rng, RngCore};

/// The simple random walk: moves to a uniformly random neighbour each step.
#[derive(Debug, Clone)]
pub struct SimpleRandomWalk<'g> {
    g: &'g Graph,
    current: Vertex,
    steps: u64,
}

impl<'g> SimpleRandomWalk<'g> {
    /// Creates a walk at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= g.n()`.
    pub fn new(g: &'g Graph, start: Vertex) -> SimpleRandomWalk<'g> {
        assert!(start < g.n(), "start vertex {start} out of range");
        SimpleRandomWalk {
            g,
            current: start,
            steps: 0,
        }
    }
}

impl<'g> WalkProcess for SimpleRandomWalk<'g> {
    fn graph(&self) -> &Graph {
        self.g
    }

    fn current(&self) -> Vertex {
        self.current
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn advance(&mut self, mut rng: &mut dyn RngCore) -> Step {
        self.advance_rng(&mut rng)
    }

    fn advance_rng<R: RngCore>(&mut self, rng: &mut R) -> Step {
        let v = self.current;
        let d = self.g.degree(v);
        assert!(d > 0, "random walk stuck at isolated vertex {v}");
        let arc = self.g.arc_range(v).start + rng.gen_range(0..d);
        let to = self.g.arc_target(arc);
        self.current = to;
        self.steps += 1;
        Step {
            from: v,
            to,
            edge: Some(self.g.arc_edge(arc)),
            kind: StepKind::Red,
        }
    }
}

/// The lazy random walk: stays put with probability 1/2, else moves like
/// the SRW. The paper's standard fix for periodicity on bipartite graphs
/// (§2.1): the lazy spectrum is `(1 + λ_i)/2 ≥ 0`.
#[derive(Debug, Clone)]
pub struct LazyRandomWalk<'g> {
    g: &'g Graph,
    current: Vertex,
    steps: u64,
}

impl<'g> LazyRandomWalk<'g> {
    /// Creates a lazy walk at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= g.n()`.
    pub fn new(g: &'g Graph, start: Vertex) -> LazyRandomWalk<'g> {
        assert!(start < g.n(), "start vertex {start} out of range");
        LazyRandomWalk {
            g,
            current: start,
            steps: 0,
        }
    }
}

impl<'g> WalkProcess for LazyRandomWalk<'g> {
    fn graph(&self) -> &Graph {
        self.g
    }

    fn current(&self) -> Vertex {
        self.current
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn advance(&mut self, mut rng: &mut dyn RngCore) -> Step {
        self.advance_rng(&mut rng)
    }

    fn advance_rng<R: RngCore>(&mut self, rng: &mut R) -> Step {
        let v = self.current;
        self.steps += 1;
        if rng.gen_bool(0.5) {
            return Step {
                from: v,
                to: v,
                edge: None,
                kind: StepKind::Red,
            };
        }
        let d = self.g.degree(v);
        assert!(d > 0, "random walk stuck at isolated vertex {v}");
        let arc = self.g.arc_range(v).start + rng.gen_range(0..d);
        let to = self.g.arc_target(arc);
        self.current = to;
        Step {
            from: v,
            to,
            edge: Some(self.g.arc_edge(arc)),
            kind: StepKind::Red,
        }
    }
}

/// A reversible weighted random walk: transition probability from `x` to a
/// neighbour along edge `e` is `w(e) / Σ_{e' ∋ x} w(e')` (§2.2 of the
/// paper). Theorem 5's `Ω(n log n)` cover-time lower bound applies to any
/// such walk.
#[derive(Debug, Clone)]
pub struct WeightedRandomWalk<'g> {
    g: &'g Graph,
    current: Vertex,
    steps: u64,
    /// Per-vertex cumulative weights over the ports of the vertex.
    cumulative: Vec<f64>,
}

impl<'g> WeightedRandomWalk<'g> {
    /// Creates a weighted walk with per-edge weights `w` (`w.len() == m`,
    /// all weights `> 0`).
    ///
    /// # Panics
    ///
    /// Panics if `start >= g.n()`, `w.len() != g.m()`, or any weight is
    /// not finite and positive.
    pub fn new(g: &'g Graph, start: Vertex, w: &[f64]) -> WeightedRandomWalk<'g> {
        assert!(start < g.n(), "start vertex {start} out of range");
        assert_eq!(w.len(), g.m(), "need one weight per edge");
        assert!(
            w.iter().all(|&x| x.is_finite() && x > 0.0),
            "edge weights must be positive and finite"
        );
        let mut cumulative = vec![0.0f64; 2 * g.m()];
        for v in g.vertices() {
            let mut acc = 0.0;
            for a in g.arc_range(v) {
                acc += w[g.arc_edge(a)];
                cumulative[a] = acc;
            }
        }
        WeightedRandomWalk {
            g,
            current: start,
            steps: 0,
            cumulative,
        }
    }
}

impl<'g> WalkProcess for WeightedRandomWalk<'g> {
    fn graph(&self) -> &Graph {
        self.g
    }

    fn current(&self) -> Vertex {
        self.current
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn advance(&mut self, mut rng: &mut dyn RngCore) -> Step {
        self.advance_rng(&mut rng)
    }

    fn advance_rng<R: RngCore>(&mut self, rng: &mut R) -> Step {
        let v = self.current;
        let range = self.g.arc_range(v);
        assert!(
            !range.is_empty(),
            "random walk stuck at isolated vertex {v}"
        );
        let total = self.cumulative[range.end - 1];
        let target = rng.gen_range(0.0..total);
        // Binary search the cumulative weights within the vertex range.
        let slice = &self.cumulative[range.clone()];
        let offset = slice.partition_point(|&c| c <= target);
        let arc = (range.start + offset).min(range.end - 1);
        let to = self.g.arc_target(arc);
        self.current = to;
        self.steps += 1;
        Step {
            from: v,
            to,
            edge: Some(self.g.arc_edge(arc)),
            kind: StepKind::Red,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn srw_moves_to_neighbors() {
        let g = generators::petersen();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut w = SimpleRandomWalk::new(&g, 0);
        for _ in 0..100 {
            let s = w.advance(&mut rng);
            assert!(g.has_edge(s.from, s.to));
            assert_eq!(s.kind, StepKind::Red);
            assert_eq!(w.current(), s.to);
        }
        assert_eq!(w.steps(), 100);
    }

    #[test]
    fn srw_visits_uniformly_on_regular_graph() {
        // Empirical occupation on a cycle is near uniform.
        let g = generators::cycle(8);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut w = SimpleRandomWalk::new(&g, 0);
        let mut counts = vec![0u64; g.n()];
        let t = 80_000;
        for _ in 0..t {
            counts[w.advance(&mut rng).to as usize] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / t as f64;
            assert!((freq - 0.125).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn lazy_walk_holds_half_the_time() {
        let g = generators::cycle(5);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut w = LazyRandomWalk::new(&g, 0);
        let t = 20_000;
        let holds = (0..t)
            .filter(|_| {
                let s = w.advance(&mut rng);
                s.from == s.to
            })
            .count();
        let frac = holds as f64 / t as f64;
        assert!((frac - 0.5).abs() < 0.02, "hold fraction {frac}");
    }

    #[test]
    fn lazy_hold_has_no_edge() {
        let g = generators::cycle(4);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut w = LazyRandomWalk::new(&g, 0);
        for _ in 0..50 {
            let s = w.advance(&mut rng);
            assert_eq!(s.edge.is_none(), s.from == s.to);
        }
    }

    #[test]
    fn weighted_walk_with_uniform_weights_matches_srw_distribution() {
        let g = generators::complete(4);
        let mut rng = SmallRng::seed_from_u64(5);
        let w = vec![1.0; g.m()];
        let mut walk = WeightedRandomWalk::new(&g, 0, &w);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..30_000 {
            let s = walk.advance(&mut rng);
            if s.from == 0 {
                *counts.entry(s.to).or_insert(0u64) += 1;
            }
        }
        let total: u64 = counts.values().sum();
        for (_, &c) in counts.iter() {
            let f = c as f64 / total as f64;
            assert!((f - 1.0 / 3.0).abs() < 0.03, "freq {f}");
        }
    }

    #[test]
    fn weighted_walk_biases_toward_heavy_edge() {
        // Triangle with one heavy edge from vertex 0.
        let g = generators::cycle(3);
        let mut weights = vec![1.0; 3];
        // Edge 0 joins (0,1) by construction of cycle().
        weights[0] = 9.0;
        let mut rng = SmallRng::seed_from_u64(6);
        let mut walk = WeightedRandomWalk::new(&g, 0, &weights);
        let mut to1 = 0u64;
        let mut total = 0u64;
        for _ in 0..60_000 {
            let s = walk.advance(&mut rng);
            if s.from == 0 {
                total += 1;
                if s.to == 1 {
                    to1 += 1;
                }
            }
        }
        let f = to1 as f64 / total as f64;
        // Edge (0,1) weight 9 vs edge (2,0) weight 1: expect 0.9.
        assert!((f - 0.9).abs() < 0.02, "freq {f}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_rejects_bad_weights() {
        let g = generators::cycle(3);
        let _ = WeightedRandomWalk::new(&g, 0, &[1.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "one weight per edge")]
    fn weighted_rejects_wrong_length() {
        let g = generators::cycle(3);
        let _ = WeightedRandomWalk::new(&g, 0, &[1.0, 1.0]);
    }
}
