//! Phase segmentation of E-process trajectories.
//!
//! The paper's whole analysis is phase-based: maximal runs of blue
//! transitions (walks on unvisited edges) alternate with red runs (the
//! embedded simple random walk). This module defines the [`Phase`] and
//! [`PhaseTrace`] data types and the statistics the proofs reason about —
//! phase counts, lengths, and the Observation-10 closure property. The
//! segmentation itself is performed by
//! [`crate::observe::PhaseObserver`] on the shared single-pass driver;
//! [`trace_phases`] is the thin compatibility wrapper.

use crate::eprocess::rule::EdgeRule;
use crate::eprocess::EProcess;
use crate::observe::{run_observed, PhaseObserver, StopWhen};
use crate::process::{StepKind, WalkProcess};
use eproc_graphs::Vertex;
use rand::RngCore;

/// One maximal run of same-coloured transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Blue (unvisited-edge walk) or red (embedded SRW).
    pub kind: StepKind,
    /// Vertex occupied when the phase began.
    pub start_vertex: Vertex,
    /// Vertex occupied when the phase ended.
    pub end_vertex: Vertex,
    /// Number of transitions in the phase.
    pub length: u64,
}

/// Trajectory-level phase statistics of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTrace {
    /// All phases in order.
    pub phases: Vec<Phase>,
    /// Total steps taken.
    pub steps: u64,
}

impl PhaseTrace {
    /// Number of blue phases.
    pub fn blue_phase_count(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| p.kind == StepKind::Blue)
            .count()
    }

    /// Number of red phases.
    pub fn red_phase_count(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| p.kind == StepKind::Red)
            .count()
    }

    /// Length of the first blue phase (0 if none — cannot happen on a
    /// graph with edges, since all edges start unvisited).
    pub fn first_blue_length(&self) -> u64 {
        self.phases
            .iter()
            .find(|p| p.kind == StepKind::Blue)
            .map_or(0, |p| p.length)
    }

    /// Lengths of all blue phases.
    pub fn blue_lengths(&self) -> Vec<u64> {
        self.phases
            .iter()
            .filter(|p| p.kind == StepKind::Blue)
            .map(|p| p.length)
            .collect()
    }

    /// Total blue steps (`t_B` of Observation 12).
    pub fn total_blue(&self) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.kind == StepKind::Blue)
            .map(|p| p.length)
            .sum()
    }

    /// `true` if every *closed* blue phase ended at its start vertex
    /// (Observation 10; the final phase is exempt if the run was truncated
    /// mid-phase).
    pub fn blue_phases_closed(&self) -> bool {
        let last = self.phases.len().saturating_sub(1);
        self.phases
            .iter()
            .enumerate()
            .filter(|&(i, p)| p.kind == StepKind::Blue && i != last)
            .all(|(_, p)| p.start_vertex == p.end_vertex)
    }
}

/// Runs a fresh E-process until every edge is visited (or `max_steps`),
/// recording the phase structure.
///
/// Thin wrapper: attaches a [`PhaseObserver`] to the shared
/// [`run_observed`] driver (the observer's edge bitmap reproduces the
/// legacy `unvisited_edge_count() > 0` stop condition exactly, since the
/// E-process marks edges visited precisely when they are traversed).
///
/// # Panics
///
/// Panics if the walk has already taken steps.
pub fn trace_phases<A: EdgeRule>(
    walk: &mut EProcess<'_, A>,
    max_steps: u64,
    mut rng: &mut dyn RngCore,
) -> PhaseTrace {
    assert_eq!(walk.steps(), 0, "phase tracing requires a fresh walk");
    let mut observer = PhaseObserver::new();
    run_observed(
        walk,
        &mut (&mut observer,),
        StopWhen::AllSatisfied,
        max_steps,
        &mut rng,
    );
    observer.trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eprocess::rule::UniformRule;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cycle_is_one_blue_phase() {
        let g = generators::cycle(9);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let trace = trace_phases(&mut walk, 10_000, &mut rng);
        assert_eq!(trace.phases.len(), 1);
        assert_eq!(trace.blue_phase_count(), 1);
        assert_eq!(trace.first_blue_length(), 9);
        assert!(trace.blue_phases_closed());
        assert_eq!(trace.total_blue(), 9);
    }

    #[test]
    fn phases_alternate_colours() {
        let g = generators::torus2d(5, 5);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let trace = trace_phases(&mut walk, 1_000_000, &mut rng);
        for pair in trace.phases.windows(2) {
            assert_ne!(pair[0].kind, pair[1].kind, "phases must alternate");
        }
        assert_eq!(trace.phases[0].kind, StepKind::Blue, "all edges start blue");
    }

    #[test]
    fn observation10_via_trace() {
        for seed in 0..10 {
            let g = generators::hypercube(4);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut walk = EProcess::new(&g, 3, UniformRule::new());
            let trace = trace_phases(&mut walk, 1_000_000, &mut rng);
            assert!(trace.blue_phases_closed(), "seed {seed}");
            assert!(trace.total_blue() <= g.m() as u64);
        }
    }

    #[test]
    fn phase_lengths_sum_to_steps() {
        let g = generators::figure_eight(5);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let trace = trace_phases(&mut walk, 1_000_000, &mut rng);
        let sum: u64 = trace.phases.iter().map(|p| p.length).sum();
        assert_eq!(sum, trace.steps);
        assert_eq!(sum, walk.steps());
    }

    #[test]
    fn truncation_respected() {
        let g = generators::torus2d(6, 6);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let trace = trace_phases(&mut walk, 5, &mut rng);
        assert_eq!(trace.steps, 5);
        assert_eq!(
            trace.total_blue(),
            5,
            "first 5 steps are blue on a fresh even graph"
        );
    }

    #[test]
    fn phase_boundaries_are_consistent() {
        let g = generators::complete(7);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut walk = EProcess::new(&g, 2, UniformRule::new());
        let trace = trace_phases(&mut walk, 1_000_000, &mut rng);
        // Consecutive phases share a boundary vertex.
        for pair in trace.phases.windows(2) {
            assert_eq!(pair[0].end_vertex, pair[1].start_vertex);
        }
        assert_eq!(trace.phases[0].start_vertex, 2);
    }
}
