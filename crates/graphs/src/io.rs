//! Plain-text graph serialisation.
//!
//! A minimal, line-oriented edge-list format so generated workloads can be
//! saved, diffed and re-loaded (e.g. to rerun an experiment on the exact
//! graph sample that produced a table row):
//!
//! ```text
//! # comments and blank lines are ignored
//! n <vertex count>
//! <u> <v>
//! <u> <v>
//! ```

use crate::csr::Graph;
use crate::error::GraphError;
use std::fmt::Write as _;

/// Serialises the graph in the edge-list format above (edge order is
/// preserved, so the round-trip is exact including edge ids).
pub fn to_edge_list_text(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + 12 * g.m());
    let _ = writeln!(out, "n {}", g.n());
    for (_, u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Parses the edge-list format produced by [`to_edge_list_text`].
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] on malformed lines, a missing `n`
/// header, or vertex ids that fail [`Graph::from_edges`] validation.
pub fn from_edge_list_text(text: &str) -> Result<Graph, GraphError> {
    let mut n: Option<usize> = None;
    let mut edges = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |what: &str| GraphError::InvalidParameter {
            reason: format!("line {}: {what}: {line:?}", lineno + 1),
        };
        if let Some(rest) = line.strip_prefix("n ") {
            if n.is_some() {
                return Err(bad("duplicate n header"));
            }
            n = Some(rest.trim().parse().map_err(|_| bad("bad vertex count"))?);
            continue;
        }
        let mut parts = line.split_whitespace();
        let u: usize = parts
            .next()
            .ok_or_else(|| bad("missing endpoint"))?
            .parse()
            .map_err(|_| bad("bad endpoint"))?;
        let v: usize = parts
            .next()
            .ok_or_else(|| bad("missing endpoint"))?
            .parse()
            .map_err(|_| bad("bad endpoint"))?;
        if parts.next().is_some() {
            return Err(bad("trailing tokens"));
        }
        edges.push((u, v));
    }
    let n = n.ok_or(GraphError::InvalidParameter {
        reason: "missing `n <count>` header".into(),
    })?;
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_preserves_everything() {
        let g = generators::petersen();
        let text = to_edge_list_text(&g);
        let h = from_edge_list_text(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn round_trip_multigraph() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (1, 2)]).unwrap();
        let h = from_edge_list_text(&to_edge_list_text(&g)).unwrap();
        assert_eq!(g, h);
        assert!(h.has_parallel_edges());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a triangle\n\nn 3\n0 1\n# middle comment\n1 2\n2 0\n";
        let g = from_edge_list_text(text).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn isolated_vertices_survive() {
        let g = Graph::from_edges(5, &[(0, 1)]).unwrap();
        let h = from_edge_list_text(&to_edge_list_text(&g)).unwrap();
        assert_eq!(h.n(), 5);
        assert_eq!(h.degree(4), 0);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_edge_list_text("0 1\n").is_err(), "missing header");
        assert!(from_edge_list_text("n 3\n0\n").is_err(), "missing endpoint");
        assert!(
            from_edge_list_text("n 3\n0 1 2\n").is_err(),
            "trailing tokens"
        );
        assert!(
            from_edge_list_text("n 3\nn 3\n").is_err(),
            "duplicate header"
        );
        assert!(from_edge_list_text("n 2\n0 5\n").is_err(), "out of range");
        assert!(from_edge_list_text("n x\n").is_err(), "bad count");
    }

    #[test]
    fn empty_graph() {
        let g = from_edge_list_text("n 0\n").unwrap();
        assert_eq!(g.n(), 0);
    }
}
