//! Minimal in-tree stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to a crate registry, so this crate
//! implements the subset of the criterion API the workspace's benches use:
//! [`Criterion`], [`Criterion::benchmark_group`] with `throughput` /
//! `sample_size` / `bench_function` / `finish`, [`BenchmarkId`],
//! [`Throughput`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Timing is a simple median-of-samples measurement printed to stdout —
//! good enough for relative comparisons, with none of criterion's
//! statistics, plotting or history.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Runs one benchmark's timing loop.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, recording nanoseconds per call (median over samples).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the per-call cost.
        let warmup_start = Instant::now();
        black_box(f());
        let estimate = warmup_start.elapsed().max(Duration::from_nanos(1));
        // Aim each sample at ~20ms, capped to keep total time bounded.
        let per_sample = ((Duration::from_millis(20).as_nanos() / estimate.as_nanos()).max(1)
            as u64)
            .min(10_000);
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            times.push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        self.last_ns_per_iter = times[times.len() / 2];
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Criterion {
        run_one(&id.to_string(), 10, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Finishes the group (reporting is per-benchmark; this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        last_ns_per_iter: f64::NAN,
    };
    f(&mut b);
    let ns = b.last_ns_per_iter;
    let rate = match throughput {
        Some(Throughput::Elements(k)) => {
            format!("  {:.1} Melem/s", k as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(k)) => {
            format!(
                "  {:.1} MiB/s",
                k as f64 / ns * 1e3 * 1e6 / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    if ns.is_nan() {
        println!("{label}: no measurement (Bencher::iter never called)");
    } else {
        println!("{label}: {ns:.0} ns/iter{rate}");
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_settings_chain() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10)).sample_size(3);
        g.bench_function(BenchmarkId::new("f", 42), |b| {
            b.iter(|| black_box((0..100u64).sum::<u64>()))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("walk", 100).to_string(), "walk/100");
    }
}
