//! Run checkpoints: the crash-safe persistence behind `--checkpoint` /
//! `--resume` (checkpoint format `eproc-checkpoint`, version 2 — the
//! version bump added per-block quantile sketches to the codec).
//!
//! A checkpoint is a prefix of a run: the canonical run header
//! identifying the `(spec, base_seed)` run plus every *completed*
//! *(family, group)* block's streamed accumulators, persisted bit-exactly
//! through the same `persist` codec shard artifacts use. Because
//! each block is a pure function of `(spec, base_seed, block)`, a resumed
//! run recomputes exactly the missing blocks and recombines through the
//! executor's own aggregation — so the final artifact is **byte-identical
//! to an uninterrupted run**, at any thread count, no matter where the
//! original run died.
//!
//! Checkpoints are written atomically ([`eproc_telemetry::write_atomic`]):
//! a crash mid-checkpoint leaves the previous complete checkpoint in
//! place, never a truncated document.

use crate::executor::BlockAgg;
use crate::persist::{
    json, parse_blocks, parse_rep_dims, write_blocks, write_rep_dims, PersistError, RunHeader,
};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// A checkpoint failure: an unreadable or malformed checkpoint file, or
/// a resume attempt against a spec that does not match the checkpoint's
/// run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    message: String,
}

impl CheckpointError {
    pub(crate) fn new(message: impl Into<String>) -> CheckpointError {
        CheckpointError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CheckpointError {}

impl From<PersistError> for CheckpointError {
    fn from(e: PersistError) -> CheckpointError {
        CheckpointError::new(e.to_string())
    }
}

/// A persisted prefix of a resampled run: the run's identity plus every
/// completed block, bit-exact. Produced periodically by
/// [`crate::recovery::run_recoverable`] and consumed by `--resume`.
#[derive(Debug, Clone)]
pub struct RunCheckpoint {
    /// The run this checkpoint belongs to.
    pub(crate) header: RunHeader,
    /// `(family, n, m)` of the group-0 samples completed so far.
    pub(crate) rep_dims: Vec<(usize, usize, usize)>,
    /// Completed blocks' aggregates, sorted by canonical block index.
    pub(crate) blocks: Vec<BlockAgg>,
}

impl RunCheckpoint {
    /// How many blocks the checkpoint holds.
    pub fn completed_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total canonical block count of the checkpointed run.
    pub fn total_blocks(&self) -> usize {
        self.header.total_blocks()
    }

    /// Checks that this checkpoint belongs to the run described by
    /// `expected` (the spec + base seed about to be resumed), naming the
    /// first disagreeing field otherwise.
    pub(crate) fn validate_against(&self, expected: &RunHeader) -> Result<(), CheckpointError> {
        if let Some(field) = self.header.first_mismatch(expected) {
            return Err(CheckpointError::new(format!(
                "checkpoint does not match the spec being resumed: {field} differs \
                 (the checkpoint comes from a different run)"
            )));
        }
        for b in &self.blocks {
            if b.block >= self.header.total_blocks() {
                return Err(CheckpointError::new(format!(
                    "checkpoint carries block {}, outside the run's {} blocks",
                    b.block,
                    self.header.total_blocks()
                )));
            }
        }
        Ok(())
    }

    /// Serialises the checkpoint as deterministic strict JSON, floats as
    /// IEEE-754 bit patterns — `from_json(to_json())` is the identity
    /// down to the last bit.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format\": \"eproc-checkpoint\",");
        let _ = writeln!(out, "  \"version\": 2,");
        self.header.write_fields(&mut out);
        write_rep_dims(&mut out, &self.rep_dims);
        write_blocks(&mut out, &self.blocks);
        out
    }

    /// Writes the checkpoint to `path` atomically (temp sibling +
    /// rename), creating parent directories; returns the byte size
    /// written (reported in `checkpoint_written` telemetry).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on failure `path` still holds the
    /// previous complete checkpoint, if any.
    pub fn save(&self, path: &Path) -> std::io::Result<u64> {
        let text = self.to_json();
        eproc_telemetry::write_atomic(path, &text)?;
        Ok(text.len() as u64)
    }

    /// Reads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] for unreadable files or malformed checkpoints.
    pub fn load(path: &Path) -> Result<RunCheckpoint, CheckpointError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CheckpointError::new(format!("reading {}: {e}", path.display())))?;
        RunCheckpoint::from_json(&text)
            .map_err(|e| CheckpointError::new(format!("{}: {e}", path.display())))
    }

    /// Parses a [`RunCheckpoint::to_json`] document, bit-exactly.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] describing the first structural problem.
    pub fn from_json(text: &str) -> Result<RunCheckpoint, CheckpointError> {
        let value = json::parse(text)?;
        let root = value.as_obj("checkpoint")?;
        let format = root.str_field("format")?;
        if format != "eproc-checkpoint" {
            return Err(CheckpointError::new(format!(
                "not a run checkpoint (format {format:?})"
            )));
        }
        let version = root.u64_field("version")?;
        if version != 2 {
            return Err(CheckpointError::new(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let header = RunHeader::parse(&root)?;
        let rep_dims = parse_rep_dims(&root)?;
        let mut blocks = parse_blocks(&root)?;
        blocks.sort_by_key(|b| b.block);
        let duplicate = blocks.windows(2).find(|w| w[0].block == w[1].block);
        if let Some(w) = duplicate {
            return Err(CheckpointError::new(format!(
                "block {} appears more than once",
                w[0].block
            )));
        }
        Ok(RunCheckpoint {
            header,
            rep_dims,
            blocks,
        })
    }
}
