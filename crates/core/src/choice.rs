//! The random walk with choice, RWC(d) (Avin & Krishnamachari).
//!
//! Related work in §1 of the paper: at each step the walk samples `d`
//! neighbours uniformly at random (with replacement) and moves to the
//! least-visited among them, breaking ties uniformly. `RWC(1)` degenerates
//! to the SRW.

use crate::process::{Step, StepKind, WalkProcess};
use eproc_graphs::{Graph, Vertex};
use rand::{Rng, RngCore};

/// The RWC(d) process, tracking per-vertex visit counts.
#[derive(Debug, Clone)]
pub struct RandomWalkWithChoice<'g> {
    g: &'g Graph,
    current: Vertex,
    steps: u64,
    d: usize,
    visits: Vec<u64>,
}

impl<'g> RandomWalkWithChoice<'g> {
    /// Creates an RWC(`d`) walk at `start` (`d >= 1`). The start vertex
    /// counts as visited once.
    ///
    /// # Panics
    ///
    /// Panics if `start >= g.n()` or `d == 0`.
    pub fn new(g: &'g Graph, start: Vertex, d: usize) -> RandomWalkWithChoice<'g> {
        assert!(start < g.n(), "start vertex {start} out of range");
        assert!(d >= 1, "RWC requires d >= 1");
        let mut visits = vec![0u64; g.n()];
        visits[start] = 1;
        RandomWalkWithChoice {
            g,
            current: start,
            steps: 0,
            d,
            visits,
        }
    }

    /// Number of choices sampled per step.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Visit count of `v` (arrivals, including the initial placement).
    ///
    /// # Panics
    ///
    /// Panics if `v >= g.n()`.
    pub fn visit_count(&self, v: Vertex) -> u64 {
        self.visits[v]
    }
}

impl<'g> WalkProcess for RandomWalkWithChoice<'g> {
    fn graph(&self) -> &Graph {
        self.g
    }

    fn current(&self) -> Vertex {
        self.current
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn advance(&mut self, mut rng: &mut dyn RngCore) -> Step {
        self.advance_rng(&mut rng)
    }

    fn advance_rng<R: RngCore>(&mut self, rng: &mut R) -> Step {
        let v = self.current;
        let deg = self.g.degree(v);
        assert!(deg > 0, "RWC stuck at isolated vertex {v}");
        let base = self.g.arc_range(v).start;
        // Sample d candidate arcs with replacement; keep the least-visited
        // target; ties resolved in favour of the later sample with
        // probability 1/(ties so far + 1), i.e. uniformly among tied.
        let mut best_arc = base + rng.gen_range(0..deg);
        let mut best_visits = self.visits[self.g.arc_target(best_arc)];
        let mut ties = 1u64;
        for _ in 1..self.d {
            let arc = base + rng.gen_range(0..deg);
            let visits = self.visits[self.g.arc_target(arc)];
            if visits < best_visits {
                best_arc = arc;
                best_visits = visits;
                ties = 1;
            } else if visits == best_visits {
                ties += 1;
                if rng.gen_range(0..ties) == 0 {
                    best_arc = arc;
                }
            }
        }
        let to = self.g.arc_target(best_arc);
        self.visits[to] += 1;
        self.current = to;
        self.steps += 1;
        Step {
            from: v,
            to,
            edge: Some(self.g.arc_edge(best_arc)),
            kind: StepKind::Red,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn moves_along_edges_and_counts_visits() {
        let g = generators::torus2d(4, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut w = RandomWalkWithChoice::new(&g, 0, 2);
        assert_eq!(w.d(), 2);
        assert_eq!(w.visit_count(0), 1);
        let mut arrivals = 0u64;
        for _ in 0..500 {
            let s = w.advance(&mut rng);
            assert!(g.has_edge(s.from, s.to));
            arrivals += 1;
        }
        let total: u64 = (0..g.n()).map(|v| w.visit_count(v)).sum();
        assert_eq!(total, arrivals + 1);
    }

    #[test]
    fn rwc1_is_simple_random_walk_distribution() {
        // With d = 1 the candidate is a single uniform neighbor.
        let g = generators::star(4);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut w = RandomWalkWithChoice::new(&g, 0, 1);
        let mut counts = vec![0u64; g.n()];
        for _ in 0..30_000 {
            let s = w.advance(&mut rng);
            if s.from == 0 {
                counts[s.to] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        for (leaf, &count) in counts.iter().enumerate().skip(1) {
            let f = count as f64 / total as f64;
            assert!((f - 1.0 / 3.0).abs() < 0.02, "leaf {leaf} freq {f}");
        }
    }

    #[test]
    fn choice_prefers_unvisited_neighbor() {
        // From the center of a star with one heavily visited leaf, RWC(3)
        // should rarely choose that leaf.
        let g = generators::star(5);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut w = RandomWalkWithChoice::new(&g, 0, 3);
        w.visits[1] = 1_000_000; // leaf 1 pre-poisoned far beyond reach
        let mut to_poisoned = 0u64;
        let mut from_center = 0u64;
        for _ in 0..2_000 {
            let s = w.advance(&mut rng);
            if s.from == 0 {
                from_center += 1;
                if s.to == 1 {
                    to_poisoned += 1;
                }
            }
        }
        let f = to_poisoned as f64 / from_center as f64;
        // The poisoned leaf is chosen only if all 3 samples hit it:
        // (1/4)³ ≈ 0.016.
        assert!(f < 0.05, "poisoned leaf frequency {f}");
    }

    #[test]
    fn reduces_cover_variance_on_cycle() {
        // Sanity: RWC(2) covers the cycle; no assertion on speed, just
        // that the harnessed walk terminates reasonably.
        let g = generators::cycle(30);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut w = RandomWalkWithChoice::new(&g, 0, 2);
        let mut seen = vec![false; g.n()];
        seen[0] = true;
        let mut remaining = g.n() - 1;
        let mut t = 0u64;
        while remaining > 0 {
            let s = w.advance(&mut rng);
            if !seen[s.to] {
                seen[s.to] = true;
                remaining -= 1;
            }
            t += 1;
            assert!(t < 1_000_000);
        }
    }

    #[test]
    #[should_panic(expected = "d >= 1")]
    fn zero_choices_rejected() {
        let g = generators::cycle(3);
        let _ = RandomWalkWithChoice::new(&g, 0, 0);
    }
}
