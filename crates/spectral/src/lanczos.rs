//! Lanczos iteration for the walk spectrum of large sparse graphs.
//!
//! Tridiagonalises the symmetrised walk operator `S` on the orthogonal
//! complement of the principal eigenvector (full reorthogonalisation — the
//! Krylov dimensions used here are small, ≤ 200, so the `O(k²n)` cost is
//! acceptable and numerical drift is not). Extremal Ritz values converge to
//! `λ_2` and `λ_n` long before the subspace is exhausted, making this the
//! preferred method for the `table_spectral` experiment on graphs with
//! `10^4`–`10^5` vertices.

use crate::dense::SymMatrix;
use crate::transition::{apply_symmetric, principal_eigenvector};
use eproc_graphs::Graph;

/// Result of a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Ritz values (approximate eigenvalues of the deflated operator),
    /// sorted descending. The first entry approximates `λ_2`, the last
    /// `λ_n`.
    pub ritz_values: Vec<f64>,
    /// Krylov dimension actually reached (early breakdown means the
    /// invariant subspace was exhausted — the values are then exact).
    pub dimension: usize,
}

impl LanczosResult {
    /// Estimate of `λ_2` (largest non-principal eigenvalue).
    pub fn lambda_2(&self) -> f64 {
        *self.ritz_values.first().expect("at least one Ritz value")
    }

    /// Estimate of `λ_n` (smallest eigenvalue).
    pub fn lambda_n(&self) -> f64 {
        *self.ritz_values.last().expect("at least one Ritz value")
    }

    /// Estimate of `λ_max = max(λ_2, |λ_n|)`.
    pub fn lambda_max(&self) -> f64 {
        self.lambda_2().max(self.lambda_n().abs())
    }
}

/// Runs `steps` Lanczos iterations on the deflated walk operator of a
/// connected graph.
///
/// `steps` is clamped to `n - 1`. Typical use: `steps = 100` gives
/// extremal eigenvalues to ~1e-8 on expanders.
///
/// # Panics
///
/// Panics if the graph has no edges or fewer than 2 vertices.
pub fn lanczos(g: &Graph, steps: usize) -> LanczosResult {
    assert!(
        g.m() > 0 && g.n() >= 2,
        "lanczos requires a graph with edges"
    );
    let n = g.n();
    let k = steps.clamp(1, n - 1);
    let phi = principal_eigenvector(g);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut alphas: Vec<f64> = Vec::with_capacity(k);
    let mut betas: Vec<f64> = Vec::with_capacity(k);

    let mut v = seed_vector(n, &phi);
    let mut beta_prev = 0.0f64;
    let mut v_prev: Vec<f64> = vec![0.0; n];
    for _ in 0..k {
        let mut w = apply_symmetric(g, &v, false);
        // Deflate the principal direction and reorthogonalise.
        project_out(&mut w, &phi);
        let alpha = dot(&w, &v);
        for i in 0..n {
            w[i] -= alpha * v[i] + beta_prev * v_prev[i];
        }
        for b in &basis {
            let c = dot(&w, b);
            for i in 0..n {
                w[i] -= c * b[i];
            }
        }
        alphas.push(alpha);
        basis.push(v.clone());
        let beta = norm2(&w);
        if beta < 1e-12 {
            break; // invariant subspace exhausted: Ritz values exact
        }
        betas.push(beta);
        for x in &mut w {
            *x /= beta;
        }
        v_prev = std::mem::replace(&mut v, w);
        beta_prev = beta;
    }
    // Eigenvalues of the tridiagonal (alphas, betas) matrix.
    let dim = alphas.len();
    let mut t = SymMatrix::zeros(dim);
    for (i, &a) in alphas.iter().enumerate() {
        t.set(i, i, a);
    }
    for (i, &b) in betas.iter().take(dim.saturating_sub(1)).enumerate() {
        t.set(i, i + 1, b);
    }
    LanczosResult {
        ritz_values: t.eigenvalues(),
        dimension: dim,
    }
}

fn seed_vector(n: usize, phi: &[f64]) -> Vec<f64> {
    let mut state = 0x853c49e6748fea9bu64;
    let mut x: Vec<f64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();
    project_out(&mut x, phi);
    let norm = norm2(&x);
    for v in &mut x {
        *v /= norm;
    }
    x
}

fn project_out(x: &mut [f64], phi: &[f64]) {
    let c = dot(x, phi);
    for (xi, pi) in x.iter_mut().zip(phi) {
        *xi -= c * pi;
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::SymMatrix;
    use crate::power::{spectral_gap, PowerOptions};
    use eproc_graphs::generators;

    #[test]
    fn exact_on_small_cycle() {
        let g = generators::cycle(10);
        let res = lanczos(&g, 9);
        let exact = SymMatrix::from_graph(&g, false).eigenvalues();
        assert!(
            (res.lambda_2() - exact[1]).abs() < 1e-8,
            "{} vs {}",
            res.lambda_2(),
            exact[1]
        );
        assert!((res.lambda_n() - exact[9]).abs() < 1e-8);
    }

    #[test]
    fn agrees_with_jacobi_on_named_graphs() {
        for g in [
            generators::petersen(),
            generators::lollipop(5, 4),
            generators::torus2d(3, 4),
        ] {
            let res = lanczos(&g, g.n() - 1);
            let exact = SymMatrix::from_graph(&g, false).eigenvalues();
            assert!((res.lambda_2() - exact[1]).abs() < 1e-7);
            assert!((res.lambda_n() - exact[g.n() - 1]).abs() < 1e-7);
        }
    }

    #[test]
    fn agrees_with_power_iteration_on_random_regular() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let g = generators::connected_random_regular(300, 6, &mut rng).unwrap();
        let lz = lanczos(&g, 120);
        let pw = spectral_gap(&g, PowerOptions::default());
        assert!(
            (lz.lambda_2() - pw.lambda_2).abs() < 1e-5,
            "{} vs {}",
            lz.lambda_2(),
            pw.lambda_2
        );
        assert!(
            (lz.lambda_n() - pw.lambda_n).abs() < 1e-5,
            "{} vs {}",
            lz.lambda_n(),
            pw.lambda_n
        );
    }

    #[test]
    fn truncated_run_brackets_spectrum() {
        let g = generators::hypercube(6);
        let res = lanczos(&g, 30);
        // Ritz values interlace: λ2 estimate from below, λn from above.
        let exact_l2 = 1.0 - 2.0 / 6.0;
        assert!(res.lambda_2() <= exact_l2 + 1e-9);
        assert!(
            res.lambda_2() > exact_l2 - 0.05,
            "30 steps should nearly converge"
        );
        assert!(res.lambda_n() >= -1.0 - 1e-9);
    }

    #[test]
    fn breakdown_on_tiny_graph_is_exact() {
        let g = generators::complete(3);
        let res = lanczos(&g, 50);
        assert!(res.dimension <= 2);
        // K3: eigenvalues 1, -1/2, -1/2; deflated spectrum is {-1/2}.
        for &rv in &res.ritz_values {
            assert!((rv + 0.5).abs() < 1e-9, "ritz {rv}");
        }
    }
}
