//! The interleaved multi-trial driver must be a pure optimisation: for
//! any graph, process, lane width and seeds, every lane of
//! [`run_observed_interleaved`] must produce the **identical `Step`
//! stream**, the identical [`ObservedRun`], identical observer outputs
//! and identical RNG consumption as running that trial alone through the
//! sequential [`run_observed`] kernel. Seeded cases pin every process
//! kind × every width the executor uses; the proptest sweeps random
//! graphs × processes × widths × seeds.

use eproc_core::choice::RandomWalkWithChoice;
use eproc_core::cover::CoverTarget;
use eproc_core::fair::LeastUsedFirst;
use eproc_core::interleave::{run_observed_interleaved, Lane};
use eproc_core::observe::{run_observed, CoverObserver, Metrics, ObservedRun, Observer, StopWhen};
use eproc_core::rotor::RotorRouter;
use eproc_core::rule::UniformRule;
use eproc_core::srw::{LazyRandomWalk, SimpleRandomWalk};
use eproc_core::vprocess::VProcess;
use eproc_core::{EProcess, Step, WalkProcess};
use eproc_graphs::{generators, Graph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Records the raw step stream; always satisfied so it never extends the
/// run beyond the real observers' stop condition.
#[derive(Debug, Default)]
struct StepRecorder {
    steps: Vec<Step>,
}

impl Observer for StepRecorder {
    fn begin(&mut self, _g: &Graph, _start: usize) {
        self.steps.clear();
    }

    fn on_step(&mut self, _t: u64, step: &Step) {
        self.steps.push(*step);
    }

    fn satisfied(&self) -> bool {
        true
    }

    fn finish(&mut self) -> Metrics {
        Metrics::Hitting(eproc_core::observe::HittingMetrics {
            target: 0,
            steps_to_hit: None,
        })
    }
}

fn build_walk<'g>(g: &'g Graph, which: usize) -> Box<dyn WalkProcess + 'g> {
    match which % 7 {
        0 => Box::new(EProcess::new(g, 0, UniformRule::new())),
        1 => Box::new(SimpleRandomWalk::new(g, 0)),
        2 => Box::new(LazyRandomWalk::new(g, 0)),
        3 => Box::new(RotorRouter::new(g, 0)),
        4 => Box::new(RandomWalkWithChoice::new(g, 0, 2)),
        5 => Box::new(LeastUsedFirst::new(g, 0)),
        _ => Box::new(VProcess::new(g, 0)),
    }
}

/// The seed lane `i` of a width-`w` set runs on — distinct per lane so
/// the test exercises lanes that finish at different times.
fn lane_seed(base: u64, i: usize) -> u64 {
    base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))
}

/// Runs `w` trials of process `which` both ways — one at a time through
/// the sequential kernel, then all at once through the interleaved
/// driver — and asserts per-lane equality of step streams, runs, cover
/// metrics, final walk state and RNG consumption.
fn assert_interleave_equivalence(
    g: &Graph,
    which: usize,
    w: usize,
    base_seed: u64,
    stop: StopWhen,
    cap: u64,
) {
    struct SoloResult {
        run: ObservedRun,
        steps: Vec<Step>,
        cover: Metrics,
        walk_steps: u64,
        walk_current: usize,
        next_draw: u64,
    }
    let solo: Vec<SoloResult> = (0..w)
        .map(|i| {
            let mut rng = SmallRng::seed_from_u64(lane_seed(base_seed, i));
            let mut walk = build_walk(g, which);
            let mut cover = CoverObserver::new(CoverTarget::Both);
            let mut rec = StepRecorder::default();
            let run = run_observed(&mut walk, &mut (&mut cover, &mut rec), stop, cap, &mut rng);
            SoloResult {
                run,
                steps: rec.steps,
                cover: cover.finish(),
                walk_steps: walk.steps(),
                walk_current: walk.current(),
                next_draw: rng.next_u64(),
            }
        })
        .collect();

    let mut banks: Vec<(CoverObserver, StepRecorder)> = (0..w)
        .map(|_| {
            (
                CoverObserver::new(CoverTarget::Both),
                StepRecorder::default(),
            )
        })
        .collect();
    let mut lanes: Vec<Lane<'_, _, _, SmallRng>> = banks
        .iter_mut()
        .enumerate()
        .map(|(i, bank)| {
            Lane::new(
                build_walk(g, which),
                bank,
                SmallRng::seed_from_u64(lane_seed(base_seed, i)),
            )
        })
        .collect();
    let runs = run_observed_interleaved(&mut lanes, stop, cap);

    assert_eq!(runs.len(), w);
    for (i, (lane, expect)) in lanes.into_iter().zip(&solo).enumerate() {
        let (walk, mut rng) = lane.into_parts();
        assert_eq!(
            runs[i], expect.run,
            "ObservedRun diverged (process {which}, lane {i}/{w})"
        );
        assert_eq!(
            walk.steps(),
            expect.walk_steps,
            "walk step count diverged (process {which}, lane {i}/{w})"
        );
        assert_eq!(walk.current(), expect.walk_current);
        assert_eq!(
            rng.next_u64(),
            expect.next_draw,
            "RNG consumption diverged (process {which}, lane {i}/{w})"
        );
    }
    for (i, ((mut cover, rec), expect)) in banks.into_iter().zip(&solo).enumerate() {
        assert_eq!(
            rec.steps, expect.steps,
            "Step stream diverged (process {which}, lane {i}/{w})"
        );
        assert_eq!(
            cover.finish(),
            expect.cover,
            "cover metrics diverged (process {which}, lane {i}/{w})"
        );
    }
}

#[test]
fn seeded_equivalence_all_processes_times_all_widths() {
    let mut graph_rng = SmallRng::seed_from_u64(1);
    let g = generators::connected_random_regular(60, 4, &mut graph_rng).unwrap();
    for which in 0..7 {
        for w in [1usize, 2, 4, 8] {
            assert_interleave_equivalence(&g, which, w, 11, StopWhen::AllSatisfied, 10_000_000);
        }
    }
}

#[test]
fn seeded_equivalence_under_truncation() {
    let g = generators::torus2d(6, 6);
    for cap in [0u64, 1, 17, 500] {
        for which in 0..7 {
            assert_interleave_equivalence(&g, which, 4, 9, StopWhen::Cap, cap);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random graph shape × process × width × seed: every interleaved
    /// lane's `Step` stream, `ObservedRun` and RNG consumption equal the
    /// sequential kernel's for the same per-lane seed.
    #[test]
    fn interleaved_lanes_match_sequential_kernel(
        shape in 0usize..4,
        which in 0usize..7,
        width in 0usize..4,
        graph_seed in 0u64..300,
        run_seed in 0u64..300,
    ) {
        let w = [1usize, 2, 4, 8][width];
        let g = match shape {
            0 => {
                let mut rng = SmallRng::seed_from_u64(graph_seed);
                generators::connected_random_regular(40, 4, &mut rng).unwrap()
            }
            1 => {
                let mut rng = SmallRng::seed_from_u64(graph_seed);
                generators::connected_random_regular(30, 3, &mut rng).unwrap()
            }
            2 => generators::hypercube(4),
            _ => generators::torus2d(5, 4),
        };
        assert_interleave_equivalence(&g, which, w, run_seed, StopWhen::AllSatisfied, 10_000_000);
        assert_interleave_equivalence(&g, which, w, run_seed, StopWhen::Cap, 64);
    }
}
