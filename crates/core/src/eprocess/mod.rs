//! The E-process (edge-process) engine.
//!
//! §1 of the paper: *"Initially all edges of `G` are marked as unvisited. At
//! each step the edge-process makes a transition to a neighbour of the
//! currently occupied vertex as follows: If there are unvisited edges
//! incident with the current vertex pick one, make a transition along this
//! edge and mark the edge as visited. If there are no unvisited edges
//! incident with the current vertex, move to a u.a.r. neighbour using a
//! simple random walk. We assume there is a rule `A`, which tells the walk
//! how to choose among unvisited edges."*
//!
//! The engine keeps, per vertex, a compacted "live prefix" of the unvisited
//! incident arcs with positional back-pointers, so that marking an edge
//! visited (which removes it at *both* endpoints) and choosing uniformly
//! among unvisited edges are both `O(1)`. Each step is therefore `O(1)`
//! (plus whatever the rule itself costs), which is what makes the
//! paper-scale Figure 1 runs (`n` up to 5·10⁵) practical.

pub mod rule;

use crate::bitset::BitSet;
use crate::process::{Step, StepKind, WalkProcess};
use eproc_graphs::{ArcId, EdgeId, Graph, Vertex};
use rand::{Rng, RngCore};
use rule::{EdgeRule, RuleContext, UniformRule};

/// The E-process: a walk preferring unvisited edges, with pluggable rule
/// `A` for choosing among them.
///
/// See the [module documentation](self) for the definition. With
/// [`UniformRule`] this is exactly the *greedy random walk* of
/// Orenshtein–Shinkar (reference \[13\] of the paper) — the alias
/// [`GreedyRandomWalk`] is provided for that reading.
#[derive(Debug, Clone)]
pub struct EProcess<'g, A> {
    g: &'g Graph,
    rule: A,
    current: Vertex,
    start: Vertex,
    steps: u64,
    blue_steps: u64,
    red_steps: u64,
    visited_edge: BitSet,
    unvisited_edges: usize,
    /// Arc ids grouped by source vertex; within each vertex's range the
    /// first `live[v]` entries are the unvisited (blue) arcs.
    slots: Vec<ArcId>,
    /// `pos[a]` = current index of arc `a` inside `slots`.
    pos: Vec<u32>,
    /// Number of unvisited arcs at each vertex (= blue degree).
    live: Vec<u32>,
}

/// The greedy random walk of Orenshtein–Shinkar: the E-process whose rule
/// `A` picks an unvisited edge uniformly at random.
pub type GreedyRandomWalk<'g> = EProcess<'g, UniformRule>;

impl<'g, A: EdgeRule> EProcess<'g, A> {
    /// Creates an E-process at `start` with all edges unvisited.
    ///
    /// # Panics
    ///
    /// Panics if `start >= g.n()`.
    pub fn new(g: &'g Graph, start: Vertex, rule: A) -> EProcess<'g, A> {
        assert!(start < g.n(), "start vertex {start} out of range");
        let slots: Vec<ArcId> = (0..2 * g.m()).collect();
        let pos: Vec<u32> = (0..2 * g.m() as u32).collect();
        let live: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
        EProcess {
            g,
            rule,
            current: start,
            start,
            steps: 0,
            blue_steps: 0,
            red_steps: 0,
            visited_edge: BitSet::with_len(g.m()),
            unvisited_edges: g.m(),
            slots,
            pos,
            live,
        }
    }

    /// The start vertex.
    pub fn start(&self) -> Vertex {
        self.start
    }

    /// Number of blue (unvisited-edge) transitions so far — `t_B` in
    /// Observation 12, which guarantees `t_B <= m`.
    pub fn blue_steps(&self) -> u64 {
        self.blue_steps
    }

    /// Number of red (random-walk) transitions so far — `t_R`.
    pub fn red_steps(&self) -> u64 {
        self.red_steps
    }

    /// `true` if edge `e` has been traversed.
    ///
    /// # Panics
    ///
    /// Panics if `e >= g.m()`.
    pub fn edge_visited(&self, e: EdgeId) -> bool {
        self.visited_edge.get(e)
    }

    /// The per-edge visited bitmap (red edges are `true`), word-packed so
    /// that per-trial resets touch `m / 64` words. The [`crate::blue`]
    /// analytics consume it directly.
    pub fn visited_edges(&self) -> &BitSet {
        &self.visited_edge
    }

    /// Number of still-unvisited (blue) edges.
    pub fn unvisited_edge_count(&self) -> usize {
        self.unvisited_edges
    }

    /// Blue degree of `v`: the number of unvisited edges incident with it.
    ///
    /// # Panics
    ///
    /// Panics if `v >= g.n()`.
    pub fn blue_degree(&self, v: Vertex) -> usize {
        self.live[v] as usize
    }

    /// `true` if the next transition will be blue (the current vertex has
    /// unvisited incident edges).
    pub fn in_blue_phase(&self) -> bool {
        self.live[self.current] > 0
    }

    /// The unvisited arcs at the current vertex (what rule `A` sees).
    pub fn live_arcs(&self) -> &[ArcId] {
        let r = self.g.arc_range(self.current);
        &self.slots[r.start..r.start + self.live[self.current] as usize]
    }

    /// Access to the rule, e.g. to inspect adversary state.
    pub fn rule(&self) -> &A {
        &self.rule
    }

    /// Resets the process to a fresh state at `start` — all edges
    /// unvisited, counters zeroed, rule state re-armed via
    /// [`EdgeRule::reset`] — reusing the existing allocations. The edge
    /// bitmap is word-packed, so the per-reset cost is `m / 64` word
    /// writes plus the `O(m)` slot/pos rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `start >= g.n()`.
    pub fn reset(&mut self, start: Vertex) {
        assert!(start < self.g.n(), "start vertex {start} out of range");
        self.current = start;
        self.start = start;
        self.steps = 0;
        self.blue_steps = 0;
        self.red_steps = 0;
        self.visited_edge.clear();
        self.unvisited_edges = self.g.m();
        self.rule.reset();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            *slot = i;
        }
        for (i, p) in self.pos.iter_mut().enumerate() {
            *p = i as u32;
        }
        for (v, live) in self.live.iter_mut().enumerate() {
            *live = self.g.degree(v) as u32;
        }
    }

    /// Marks edge `e` visited, unlinking both of its arcs from the live
    /// prefixes of their endpoints in `O(1)`.
    fn mark_visited(&mut self, e: EdgeId) {
        debug_assert!(!self.visited_edge.get(e));
        self.visited_edge.set(e);
        self.unvisited_edges -= 1;
        let (a0, a1) = self.g.edge_arcs(e);
        let (u, v) = self.g.endpoints(e);
        self.unlink(a0, u);
        self.unlink(a1, v);
    }

    fn unlink(&mut self, arc: ArcId, src: Vertex) {
        let p = self.pos[arc] as usize;
        let live = self.live[src] as usize;
        let base = self.g.arc_range(src).start;
        debug_assert!(
            p >= base && p < base + live,
            "arc {arc} not in the live prefix of vertex {src}"
        );
        let last = base + live - 1;
        let moved = self.slots[last];
        self.slots[p] = moved;
        self.slots[last] = arc;
        self.pos[moved] = p as u32;
        self.pos[arc] = last as u32;
        self.live[src] -= 1;
    }
}

impl<'g, A: EdgeRule> WalkProcess for EProcess<'g, A> {
    fn graph(&self) -> &Graph {
        self.g
    }

    fn current(&self) -> Vertex {
        self.current
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn advance(&mut self, mut rng: &mut dyn RngCore) -> Step {
        self.advance_rng(&mut rng)
    }

    fn advance_rng<R: RngCore>(&mut self, rng: &mut R) -> Step {
        let v = self.current;
        // One offsets fetch serves both the degree and the arc base.
        let range = self.g.arc_range(v);
        let (base, degree) = (range.start, range.len());
        assert!(degree > 0, "E-process stuck at isolated vertex {v}");
        let live = self.live[v] as usize;
        let (arc, kind) = if live > 0 {
            let ctx = RuleContext {
                graph: self.g,
                vertex: v,
                live_arcs: &self.slots[base..base + live],
                step: self.steps,
            };
            let idx = self.rule.choose_rng(&ctx, rng);
            assert!(
                idx < live,
                "rule chose index {idx} among {live} unvisited edges"
            );
            (self.slots[base + idx], StepKind::Blue)
        } else {
            (self.slots[base + rng.gen_range(0..degree)], StepKind::Red)
        };
        let e = self.g.arc_edge(arc);
        let to = self.g.arc_target(arc);
        if kind == StepKind::Blue {
            self.mark_visited(e);
            self.blue_steps += 1;
        } else {
            self.red_steps += 1;
        }
        self.current = to;
        self.steps += 1;
        Step {
            from: v,
            to,
            edge: Some(e),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rule::{AdversarialRule, FirstPortRule, RoundRobinRule, UniformRule};
    use super::*;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run_steps<A: EdgeRule>(
        walk: &mut EProcess<'_, A>,
        k: usize,
        rng: &mut SmallRng,
    ) -> Vec<Step> {
        (0..k).map(|_| walk.advance(rng)).collect()
    }

    #[test]
    fn initial_state() {
        let g = generators::cycle(5);
        let walk = EProcess::new(&g, 2, UniformRule::new());
        assert_eq!(walk.current(), 2);
        assert_eq!(walk.start(), 2);
        assert_eq!(walk.steps(), 0);
        assert_eq!(walk.unvisited_edge_count(), 5);
        assert_eq!(walk.blue_degree(2), 2);
        assert!(walk.in_blue_phase());
        assert_eq!(walk.live_arcs().len(), 2);
    }

    #[test]
    fn first_steps_are_blue_until_exhaustion() {
        let g = generators::cycle(6);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        // On a cycle the blue walk traverses the whole cycle: 6 blue steps.
        let steps = run_steps(&mut walk, 6, &mut rng);
        assert!(steps.iter().all(|s| s.kind == StepKind::Blue));
        assert_eq!(walk.unvisited_edge_count(), 0);
        assert_eq!(
            walk.current(),
            0,
            "Observation 10: blue phase returns to start"
        );
        // Everything after is red.
        let steps = run_steps(&mut walk, 10, &mut rng);
        assert!(steps.iter().all(|s| s.kind == StepKind::Red));
        assert_eq!(walk.blue_steps(), 6);
        assert_eq!(walk.red_steps(), 10);
    }

    #[test]
    fn marking_is_consistent_at_both_endpoints() {
        let g = generators::figure_eight(4);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        for _ in 0..g.m() {
            let s = walk.advance(&mut rng);
            let e = s.edge.unwrap();
            assert!(walk.edge_visited(e));
            // Blue degrees always equal the count of unvisited incident edges.
            for v in g.vertices() {
                let expect = g
                    .ports(v)
                    .filter(|&(_, _, e)| !walk.edge_visited(e))
                    .count();
                assert_eq!(walk.blue_degree(v), expect, "vertex {v} after step {:?}", s);
            }
        }
        assert_eq!(walk.unvisited_edge_count(), 0);
    }

    #[test]
    fn blue_steps_bounded_by_m() {
        // Observation 12: t_B <= m, always.
        let g = generators::torus2d(4, 4);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut walk = EProcess::new(&g, 3, UniformRule::new());
        for _ in 0..10_000 {
            walk.advance(&mut rng);
        }
        assert!(walk.blue_steps() <= g.m() as u64);
        assert_eq!(walk.blue_steps() + walk.red_steps(), walk.steps());
    }

    #[test]
    fn first_port_rule_is_deterministic() {
        let g = generators::torus2d(3, 3);
        let mut rng1 = SmallRng::seed_from_u64(3);
        let mut rng2 = SmallRng::seed_from_u64(4); // different RNG!
        let mut w1 = EProcess::new(&g, 0, FirstPortRule);
        let mut w2 = EProcess::new(&g, 0, FirstPortRule);
        // Blue phases use no randomness under FirstPortRule: identical
        // trajectories until the first red step.
        for _ in 0..g.m() {
            if !w1.in_blue_phase() || !w2.in_blue_phase() {
                break;
            }
            let s1 = w1.advance(&mut rng1);
            let s2 = w2.advance(&mut rng2);
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn adversarial_rule_sees_true_state() {
        let g = generators::complete(5);
        let mut rng = SmallRng::seed_from_u64(5);
        // Adversary always picks the last live arc.
        let rule = AdversarialRule::new(|ctx: &RuleContext<'_>| ctx.live_arcs.len() - 1);
        let mut walk = EProcess::new(&g, 0, rule);
        for _ in 0..g.m() {
            assert!(
                walk.in_blue_phase(),
                "K5 is Eulerian: one blue phase covers all edges"
            );
            walk.advance(&mut rng);
        }
        assert_eq!(walk.unvisited_edge_count(), 0);
        assert_eq!(walk.current(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_start_panics() {
        let g = generators::cycle(4);
        let _ = EProcess::new(&g, 9, UniformRule::new());
    }

    #[test]
    fn reset_restores_fresh_state() {
        let g = generators::torus2d(4, 4);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut walk = EProcess::new(&g, 3, UniformRule::new());
        for _ in 0..100 {
            walk.advance(&mut rng);
        }
        walk.reset(7);
        assert_eq!(walk.current(), 7);
        assert_eq!(walk.start(), 7);
        assert_eq!(walk.steps(), 0);
        assert_eq!(walk.unvisited_edge_count(), g.m());
        for v in g.vertices() {
            assert_eq!(walk.blue_degree(v), g.degree(v));
        }
        // A reset walk with the same RNG stream behaves like a fresh one.
        let mut fresh = EProcess::new(&g, 7, UniformRule::new());
        let mut rng_a = SmallRng::seed_from_u64(17);
        let mut rng_b = SmallRng::seed_from_u64(17);
        for _ in 0..200 {
            assert_eq!(walk.advance(&mut rng_a), fresh.advance(&mut rng_b));
        }
    }

    #[test]
    fn reset_rearms_rule_state() {
        let g = generators::torus2d(4, 4);
        let mut rng = SmallRng::seed_from_u64(11);
        // Round-robin carries per-vertex counters: a reset walk must
        // replay the exact trajectory of a freshly built process.
        let mut walk = EProcess::new(&g, 0, RoundRobinRule::new(g.n()));
        for _ in 0..50 {
            walk.advance(&mut rng);
        }
        walk.reset(0);
        let mut fresh = EProcess::new(&g, 0, RoundRobinRule::new(g.n()));
        let mut rng_a = SmallRng::seed_from_u64(21);
        let mut rng_b = SmallRng::seed_from_u64(21);
        for _ in 0..100 {
            assert_eq!(walk.advance(&mut rng_a), fresh.advance(&mut rng_b));
        }
        // Adversarial rule: the decision counter re-zeroes on reset.
        let mut adv = EProcess::new(&g, 0, AdversarialRule::new(|_: &RuleContext<'_>| 0));
        for _ in 0..10 {
            adv.advance(&mut rng);
        }
        assert!(adv.rule().decisions() > 0);
        adv.reset(0);
        assert_eq!(adv.rule().decisions(), 0);
    }

    #[test]
    fn odd_degree_graph_still_runs() {
        // The E-process is defined on any graph; only the theorems need
        // even degree. On Petersen the blue phase may strand edges.
        let g = generators::petersen();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        for _ in 0..5000 {
            walk.advance(&mut rng);
        }
        assert_eq!(
            walk.unvisited_edge_count(),
            0,
            "SRW fallback eventually finds all edges"
        );
    }
}
