//! Point–line incidence graphs of projective planes `PG(2, q)`.
//!
//! For a prime `q`, the incidence graph of the projective plane of order
//! `q` is `(q+1)`-regular, bipartite, has `n = 2(q² + q + 1)` vertices and
//! **girth exactly 6** — a second explicitly constructible family of
//! high-girth even-degree graphs (for odd `q`) alongside the LPS graphs,
//! used by the `table_cages` experiment. For `q = 2` this is the Heawood
//! graph (the (3,6)-cage); `q = 3` gives the 4-regular girth-6 incidence
//! graph on 26 vertices.

use crate::csr::Graph;
use crate::error::GraphError;

/// Builds the point–line incidence graph of `PG(2, q)` for a prime `q`.
///
/// Points are vertices `0 .. q²+q+1`, lines are `q²+q+1 .. 2(q²+q+1)`;
/// a point is joined to every line through it.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `q` is not a prime in `2..=31`
/// (sizes beyond that are impractical for the experiments here).
///
/// # Example
///
/// ```
/// use eproc_graphs::generators::projective_plane_incidence;
/// use eproc_graphs::properties::girth;
///
/// let heawood = projective_plane_incidence(2)?;
/// assert_eq!(heawood.n(), 14);
/// assert_eq!(girth::girth(&heawood), Some(6));
/// # Ok::<(), eproc_graphs::GraphError>(())
/// ```
pub fn projective_plane_incidence(q: u64) -> Result<Graph, GraphError> {
    if !(2..=31).contains(&q) || !is_prime(q) {
        return Err(GraphError::InvalidParameter {
            reason: format!("q = {q} must be a prime in 2..=31"),
        });
    }
    // Canonical representatives of projective points over F_q³: the first
    // nonzero coordinate is 1.
    let mut reps: Vec<[u64; 3]> = Vec::new();
    reps.push([1, 0, 0]);
    for x in 0..q {
        reps.push([x, 1, 0]);
    }
    for x in 0..q {
        for y in 0..q {
            reps.push([x, y, 1]);
        }
    }
    let count = (q * q + q + 1) as usize;
    debug_assert_eq!(reps.len(), count);
    // Lines of PG(2,q) are also triples (by duality): point p lies on line
    // l iff <p, l> = 0 (mod q).
    let mut edges = Vec::with_capacity(count * (q as usize + 1));
    for (pi, p) in reps.iter().enumerate() {
        for (li, l) in reps.iter().enumerate() {
            let dot = (p[0] * l[0] + p[1] * l[1] + p[2] * l[2]) % q;
            if dot == 0 {
                edges.push((pi, count + li));
            }
        }
    }
    Graph::from_edges(2 * count, &edges)
}

fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{bipartite, connectivity, degrees, girth};

    #[test]
    fn heawood_graph() {
        let g = projective_plane_incidence(2).unwrap();
        assert_eq!(g.n(), 14);
        assert_eq!(g.m(), 21);
        assert!(degrees::is_regular(&g, 3));
        assert!(bipartite::is_bipartite(&g));
        assert!(connectivity::is_connected(&g));
        assert_eq!(girth::girth(&g), Some(6), "Heawood is the (3,6)-cage");
    }

    #[test]
    fn q3_even_degree_girth6() {
        let g = projective_plane_incidence(3).unwrap();
        assert_eq!(g.n(), 26);
        assert!(degrees::is_regular(&g, 4));
        assert!(degrees::is_even_degree(&g));
        assert_eq!(girth::girth(&g), Some(6));
        assert!(connectivity::is_connected(&g));
        assert!(!g.has_parallel_edges());
    }

    #[test]
    fn q5_and_q7() {
        for (q, deg) in [(5u64, 6usize), (7, 8)] {
            let g = projective_plane_incidence(q).unwrap();
            let count = (q * q + q + 1) as usize;
            assert_eq!(g.n(), 2 * count);
            assert!(degrees::is_regular(&g, deg), "q = {q}");
            assert_eq!(girth::girth(&g), Some(6), "q = {q}");
            assert!(connectivity::is_connected(&g));
        }
    }

    #[test]
    fn axioms_of_the_plane() {
        // Any two distinct points lie on exactly one common line.
        let q = 3u64;
        let g = projective_plane_incidence(q).unwrap();
        let count = (q * q + q + 1) as usize;
        for p1 in 0..count {
            for p2 in (p1 + 1)..count {
                let lines1: std::collections::HashSet<_> = g.neighbors(p1).collect();
                let common = g.neighbors(p2).filter(|l| lines1.contains(l)).count();
                assert_eq!(common, 1, "points {p1},{p2} share {common} lines");
            }
        }
    }

    #[test]
    fn invalid_q_rejected() {
        assert!(projective_plane_incidence(1).is_err());
        assert!(projective_plane_incidence(4).is_err()); // prime powers unsupported
        assert!(projective_plane_incidence(6).is_err());
        assert!(projective_plane_incidence(37).is_err()); // out of range
    }
}
