//! The single-pass observer pipeline: one walk, every metric.
//!
//! Every quantity the paper reports — vertex/edge cover times (Theorem 1,
//! Corollary 2), blanket time, the blue/red phase structure of §3–§5, the
//! blue-subgraph star census behind the `n/8` prediction, and hitting
//! times — is a function of the *same* step stream. This module factors
//! that observation into code: an [`Observer`] consumes each
//! [`Step`] of a trajectory and produces [`Metrics`] at the end, and the
//! generic driver [`run_observed`] advances the walk **once** while feeding
//! every attached observer, so a trial wanting several metrics no longer
//! re-walks the graph once per metric.
//!
//! The legacy entry points ([`crate::cover::run_cover`],
//! [`crate::cover::blanket_time`], [`crate::segments::trace_phases`]) are
//! kept as thin wrappers over this pipeline.
//!
//! Observers are **reusable**: [`Observer::begin`] re-arms an observer for
//! a fresh trajectory, resizing (not reallocating) its scratch buffers, so
//! ensemble executors can amortise the `vec![false; n]` bitmaps across
//! thousands of trials.
//!
//! # Example
//!
//! ```
//! use eproc_core::observe::{run_observed, CoverObserver, Observer, PhaseObserver, StopWhen};
//! use eproc_core::cover::CoverTarget;
//! use eproc_core::{EProcess, rule::UniformRule};
//! use eproc_graphs::generators;
//! use rand::SeedableRng;
//!
//! let g = generators::torus2d(6, 6);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let mut walk = EProcess::new(&g, 0, UniformRule::new());
//! let mut cover = CoverObserver::new(CoverTarget::Both);
//! let mut phases = PhaseObserver::new();
//! // One trajectory feeds both observers.
//! let run = run_observed(
//!     &mut walk,
//!     &mut [&mut cover, &mut phases],
//!     StopWhen::AllSatisfied,
//!     1_000_000,
//!     &mut rng,
//! );
//! let cm = cover.cover_metrics();
//! assert_eq!(cm.steps_to_edge_cover, Some(run.steps));
//! assert_eq!(phases.trace().total_blue(), g.m() as u64);
//! ```

use crate::cover::{CoverError, CoverTarget};
use crate::process::{Step, StepKind, WalkProcess};
use crate::segments::{Phase, PhaseTrace};
use eproc_graphs::{Graph, Vertex};
use rand::RngCore;

/// Everything a [`CoverObserver`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverMetrics {
    /// Step at which the last vertex was first visited, if vertex cover
    /// completed within the run.
    pub steps_to_vertex_cover: Option<u64>,
    /// Step at which the last edge was first traversed, if edge cover
    /// completed within the run.
    pub steps_to_edge_cover: Option<u64>,
    /// Blue (unvisited-edge) transitions observed.
    pub blue_steps: u64,
    /// Red transitions observed.
    pub red_steps: u64,
    /// Distinct vertices visited (including the start).
    pub vertices_visited: usize,
    /// Distinct edges traversed.
    pub edges_visited: usize,
}

/// What a [`BlanketObserver`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlanketMetrics {
    /// First step `t` (a multiple of `n`) at which every vertex `v` had
    /// been visited at least `δ π_v t` times; `None` if never within the
    /// run.
    pub steps_to_blanket: Option<u64>,
}

/// What a [`BlueCensusObserver`] measures (cf.
/// [`crate::blue::track_isolated_stars`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlueCensusMetrics {
    /// Vertices that at some point became isolated blue star centers,
    /// sorted.
    pub ever_star_centers: Vec<Vertex>,
    /// Steps until vertex cover (`None` if the run ended first).
    pub steps_to_vertex_cover: Option<u64>,
}

/// What a [`HittingObserver`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HittingMetrics {
    /// The vertex whose first-visit time is measured.
    pub target: Vertex,
    /// Step of the first visit (`Some(0)` if the walk starts there).
    pub steps_to_hit: Option<u64>,
}

/// The result of one observer, produced by [`Observer::finish`].
#[derive(Debug, Clone, PartialEq)]
pub enum Metrics {
    /// Cover-time measurements.
    Cover(CoverMetrics),
    /// Blanket-time measurement.
    Blanket(BlanketMetrics),
    /// Blue/red phase segmentation.
    Phases(PhaseTrace),
    /// Isolated blue star census.
    BlueCensus(BlueCensusMetrics),
    /// First-visit (hitting) time of a fixed vertex.
    Hitting(HittingMetrics),
}

/// A per-step metric accumulator fed by [`run_observed`].
///
/// Lifecycle: `begin` (re-)arms the observer for a trajectory starting at
/// `start` on `g`; `on_step` is called once per transition with the
/// 1-based step index; `satisfied` reports whether this observer's
/// measurement has resolved (used by [`StopWhen::AllSatisfied`]);
/// `finish` extracts the metrics (and may drain accumulated state).
/// After `finish`, `begin` may be called again — buffers are reused, not
/// reallocated.
pub trait Observer {
    /// Re-arms the observer for a fresh trajectory on `g` starting at
    /// `start` (which counts as visited).
    fn begin(&mut self, g: &Graph, start: Vertex);

    /// Consumes one transition; `t` is the 1-based step index within the
    /// current run.
    fn on_step(&mut self, t: u64, step: &Step);

    /// `true` once this observer's measurement has resolved.
    fn satisfied(&self) -> bool;

    /// Snapshots the metrics accumulated since the last `begin`.
    fn finish(&mut self) -> Metrics;
}

/// When [`run_observed`] stops (the step cap always applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopWhen {
    /// Stop as soon as every attached observer is satisfied.
    AllSatisfied,
    /// Run until the step cap regardless of observer satisfaction.
    Cap,
}

/// Trajectory-level facts returned by [`run_observed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedRun {
    /// Steps taken in this run (= the cap if the stop condition was not
    /// reached).
    pub steps: u64,
    /// Where the walk stopped.
    pub final_vertex: Vertex,
}

/// Advances `walk` once per step, feeding every observer, until `stop`
/// resolves or `cap` steps elapse.
///
/// This single driver replaces the bodies of the legacy loops
/// `run_cover`, `blanket_time` and `trace_phases`: attach the matching
/// observers and every metric is measured from **one** trajectory. The
/// walk may have already taken steps; observers are `begin`-armed at the
/// walk's current position and all counters are relative to this call.
pub fn run_observed<W: WalkProcess + ?Sized>(
    walk: &mut W,
    observers: &mut [&mut dyn Observer],
    stop: StopWhen,
    cap: u64,
    rng: &mut dyn RngCore,
) -> ObservedRun {
    {
        let g = walk.graph();
        let start = walk.current();
        for obs in observers.iter_mut() {
            obs.begin(g, start);
        }
    }
    let mut t = 0u64;
    while t < cap {
        let done = match stop {
            StopWhen::AllSatisfied => observers.iter().all(|o| o.satisfied()),
            StopWhen::Cap => false,
        };
        if done {
            break;
        }
        let step = walk.advance(rng);
        t += 1;
        for obs in observers.iter_mut() {
            obs.on_step(t, &step);
        }
    }
    ObservedRun {
        steps: t,
        final_vertex: walk.current(),
    }
}

/// Tracks vertex and edge cover (and the blue/red split) of a trajectory.
#[derive(Debug, Clone)]
pub struct CoverObserver {
    target: CoverTarget,
    n: usize,
    m: usize,
    vertex_seen: Vec<bool>,
    edge_seen: Vec<bool>,
    vertices_visited: usize,
    edges_visited: usize,
    steps_to_vertex_cover: Option<u64>,
    steps_to_edge_cover: Option<u64>,
    blue_steps: u64,
    red_steps: u64,
}

impl CoverObserver {
    /// Creates an unarmed observer for `target`; buffers are sized by
    /// [`Observer::begin`].
    pub fn new(target: CoverTarget) -> CoverObserver {
        CoverObserver {
            target,
            n: 0,
            m: 0,
            vertex_seen: Vec::new(),
            edge_seen: Vec::new(),
            vertices_visited: 0,
            edges_visited: 0,
            steps_to_vertex_cover: None,
            steps_to_edge_cover: None,
            blue_steps: 0,
            red_steps: 0,
        }
    }

    /// Typed access to the accumulated metrics.
    pub fn cover_metrics(&self) -> CoverMetrics {
        CoverMetrics {
            steps_to_vertex_cover: self.steps_to_vertex_cover,
            steps_to_edge_cover: self.steps_to_edge_cover,
            blue_steps: self.blue_steps,
            red_steps: self.red_steps,
            vertices_visited: self.vertices_visited,
            edges_visited: self.edges_visited,
        }
    }
}

impl Observer for CoverObserver {
    fn begin(&mut self, g: &Graph, start: Vertex) {
        self.n = g.n();
        self.m = g.m();
        self.vertex_seen.clear();
        self.vertex_seen.resize(self.n, false);
        self.edge_seen.clear();
        self.edge_seen.resize(self.m, false);
        self.vertex_seen[start] = true;
        self.vertices_visited = 1;
        self.edges_visited = 0;
        self.steps_to_vertex_cover = if self.vertices_visited == self.n {
            Some(0)
        } else {
            None
        };
        self.steps_to_edge_cover = if self.m == 0 { Some(0) } else { None };
        self.blue_steps = 0;
        self.red_steps = 0;
    }

    fn on_step(&mut self, t: u64, step: &Step) {
        match step.kind {
            StepKind::Blue => self.blue_steps += 1,
            StepKind::Red => self.red_steps += 1,
        }
        if !self.vertex_seen[step.to] {
            self.vertex_seen[step.to] = true;
            self.vertices_visited += 1;
            if self.vertices_visited == self.n {
                self.steps_to_vertex_cover = Some(t);
            }
        }
        if let Some(e) = step.edge {
            if !self.edge_seen[e] {
                self.edge_seen[e] = true;
                self.edges_visited += 1;
                if self.edges_visited == self.m {
                    self.steps_to_edge_cover = Some(t);
                }
            }
        }
    }

    fn satisfied(&self) -> bool {
        match self.target {
            CoverTarget::Vertices => self.steps_to_vertex_cover.is_some(),
            CoverTarget::Edges => self.steps_to_edge_cover.is_some(),
            CoverTarget::Both => {
                self.steps_to_vertex_cover.is_some() && self.steps_to_edge_cover.is_some()
            }
        }
    }

    fn finish(&mut self) -> Metrics {
        Metrics::Cover(self.cover_metrics())
    }
}

/// Measures the Ding–Lee–Peres blanket time `τ_bl(δ)`: the first step `t`
/// at which every vertex `v` has been visited at least `δ π_v t` times.
/// The condition is checked every `n` steps, so the result has additive
/// granularity `n`.
#[derive(Debug, Clone)]
pub struct BlanketObserver {
    delta: f64,
    pi: Vec<f64>,
    visits: Vec<u64>,
    check_every: u64,
    steps_to_blanket: Option<u64>,
}

impl BlanketObserver {
    /// Creates an unarmed observer.
    ///
    /// # Errors
    ///
    /// Returns [`CoverError::InvalidDelta`] if `delta ∉ (0, 1)`.
    pub fn new(delta: f64) -> Result<BlanketObserver, CoverError> {
        if !(delta > 0.0 && delta < 1.0) {
            return Err(CoverError::InvalidDelta(delta));
        }
        Ok(BlanketObserver {
            delta,
            pi: Vec::new(),
            visits: Vec::new(),
            check_every: 1,
            steps_to_blanket: None,
        })
    }

    /// The measured blanket time, if reached.
    pub fn steps_to_blanket(&self) -> Option<u64> {
        self.steps_to_blanket
    }
}

impl Observer for BlanketObserver {
    fn begin(&mut self, g: &Graph, start: Vertex) {
        let n = g.n();
        let two_m = g.total_degree() as f64;
        self.pi.clear();
        self.pi
            .extend(g.vertices().map(|v| g.degree(v) as f64 / two_m));
        self.visits.clear();
        self.visits.resize(n, 0);
        self.visits[start] = 1;
        self.check_every = n.max(1) as u64;
        self.steps_to_blanket = None;
    }

    fn on_step(&mut self, t: u64, step: &Step) {
        self.visits[step.to] += 1;
        if self.steps_to_blanket.is_none() && t.is_multiple_of(self.check_every) {
            let tf = t as f64;
            let ok = self
                .visits
                .iter()
                .zip(&self.pi)
                .all(|(&v, &p)| v as f64 >= self.delta * p * tf);
            if ok {
                self.steps_to_blanket = Some(t);
            }
        }
    }

    fn satisfied(&self) -> bool {
        self.steps_to_blanket.is_some()
    }

    fn finish(&mut self) -> Metrics {
        Metrics::Blanket(BlanketMetrics {
            steps_to_blanket: self.steps_to_blanket,
        })
    }
}

/// Segments the trajectory into maximal same-coloured [`Phase`]s (the
/// blue/red structure of §3–§5). Satisfied once every edge has been
/// traversed, matching the legacy `trace_phases` stop condition.
#[derive(Debug, Clone, Default)]
pub struct PhaseObserver {
    m: usize,
    edge_seen: Vec<bool>,
    edges_visited: usize,
    phases: Vec<Phase>,
    current: Option<Phase>,
    steps: u64,
}

impl PhaseObserver {
    /// Creates an unarmed observer.
    pub fn new() -> PhaseObserver {
        PhaseObserver::default()
    }

    /// The accumulated trace (closes the in-flight phase), leaving the
    /// observer intact.
    pub fn trace(&self) -> PhaseTrace {
        let mut phases = self.phases.clone();
        if let Some(cur) = self.current {
            phases.push(cur);
        }
        PhaseTrace {
            phases,
            steps: self.steps,
        }
    }
}

impl Observer for PhaseObserver {
    fn begin(&mut self, g: &Graph, _start: Vertex) {
        self.m = g.m();
        self.edge_seen.clear();
        self.edge_seen.resize(self.m, false);
        self.edges_visited = 0;
        self.phases.clear();
        self.current = None;
        self.steps = 0;
    }

    fn on_step(&mut self, _t: u64, step: &Step) {
        self.steps += 1;
        if let Some(e) = step.edge {
            if !self.edge_seen[e] {
                self.edge_seen[e] = true;
                self.edges_visited += 1;
            }
        }
        match self.current.as_mut() {
            Some(phase) if phase.kind == step.kind => {
                phase.length += 1;
                phase.end_vertex = step.to;
            }
            _ => {
                if let Some(done) = self.current.take() {
                    self.phases.push(done);
                }
                self.current = Some(Phase {
                    kind: step.kind,
                    start_vertex: step.from,
                    end_vertex: step.to,
                    length: 1,
                });
            }
        }
    }

    fn satisfied(&self) -> bool {
        self.edges_visited == self.m
    }

    /// Drains the accumulated phases instead of cloning them (the trace
    /// can hold tens of thousands of phases on paper-scale odd-degree
    /// graphs); re-arm with [`Observer::begin`] before reuse, or use
    /// [`PhaseObserver::trace`] for a non-consuming snapshot.
    fn finish(&mut self) -> Metrics {
        let mut phases = std::mem::take(&mut self.phases);
        if let Some(cur) = self.current.take() {
            phases.push(cur);
        }
        Metrics::Phases(PhaseTrace {
            phases,
            steps: self.steps,
        })
    }
}

/// Tracks isolated blue star formation over a whole run — the §5 census
/// behind the `n/8` prediction for random 3-regular graphs — from the
/// step stream alone (its own visited bitmaps and blue degrees), so it
/// composes with any walk in one pass. Event-driven: consuming the edge
/// `{a, b}` can only complete stars centred at unvisited blue-neighbours
/// of `a` or `b`, an `O(Δ²)` check per step.
///
/// Satisfied at vertex cover, matching the legacy
/// [`crate::blue::track_isolated_stars`] run length.
#[derive(Debug, Clone)]
pub struct BlueCensusObserver<'g> {
    g: &'g Graph,
    vertex_seen: Vec<bool>,
    edge_seen: Vec<bool>,
    blue_deg: Vec<usize>,
    is_star: Vec<bool>,
    ever: Vec<Vertex>,
    remaining: usize,
    steps_to_vertex_cover: Option<u64>,
}

impl<'g> BlueCensusObserver<'g> {
    /// Creates an unarmed observer bound to `g` (the census needs
    /// adjacency access on every star check).
    pub fn new(g: &'g Graph) -> BlueCensusObserver<'g> {
        BlueCensusObserver {
            g,
            vertex_seen: Vec::new(),
            edge_seen: Vec::new(),
            blue_deg: Vec::new(),
            is_star: Vec::new(),
            ever: Vec::new(),
            remaining: 0,
            steps_to_vertex_cover: None,
        }
    }

    /// `true` if the blue component around the unvisited vertex `v` is
    /// exactly its star.
    fn is_isolated_star_at(&self, v: Vertex) -> bool {
        for (_, w, e) in self.g.ports(v) {
            if self.edge_seen[e] {
                return false;
            }
            let w_blue_to_v = self
                .g
                .ports(w)
                .filter(|&(_, t, f)| !self.edge_seen[f] && t == v)
                .count();
            if self.blue_deg[w] != w_blue_to_v {
                return false;
            }
        }
        true
    }
}

impl Observer for BlueCensusObserver<'_> {
    fn begin(&mut self, g: &Graph, start: Vertex) {
        debug_assert!(
            std::ptr::eq(self.g, g),
            "BlueCensusObserver armed on a different graph"
        );
        let n = self.g.n();
        self.vertex_seen.clear();
        self.vertex_seen.resize(n, false);
        self.edge_seen.clear();
        self.edge_seen.resize(self.g.m(), false);
        self.blue_deg.clear();
        self.blue_deg
            .extend(self.g.vertices().map(|v| self.g.degree(v)));
        self.is_star.clear();
        self.is_star.resize(n, false);
        self.ever.clear();
        self.vertex_seen[start] = true;
        self.remaining = n - 1;
        self.steps_to_vertex_cover = if self.remaining == 0 { Some(0) } else { None };
    }

    fn on_step(&mut self, t: u64, step: &Step) {
        if !self.vertex_seen[step.to] {
            self.vertex_seen[step.to] = true;
            self.remaining -= 1;
            if self.remaining == 0 {
                self.steps_to_vertex_cover = Some(t);
            }
        }
        let Some(e) = step.edge else { return };
        if self.edge_seen[e] {
            return;
        }
        // A blue edge was consumed: update the blue subgraph and check the
        // only vertices whose star status can have changed.
        self.edge_seen[e] = true;
        let (a, b) = self.g.endpoints(e);
        self.blue_deg[a] -= 1;
        self.blue_deg[b] -= 1;
        for end in [a, b] {
            for (_, cand, f) in self.g.ports(end) {
                if self.edge_seen[f] || self.vertex_seen[cand] || self.is_star[cand] {
                    continue;
                }
                if self.is_isolated_star_at(cand) {
                    self.is_star[cand] = true;
                    self.ever.push(cand);
                }
            }
        }
    }

    fn satisfied(&self) -> bool {
        self.steps_to_vertex_cover.is_some()
    }

    fn finish(&mut self) -> Metrics {
        let mut ever = self.ever.clone();
        ever.sort_unstable();
        Metrics::BlueCensus(BlueCensusMetrics {
            ever_star_centers: ever,
            steps_to_vertex_cover: self.steps_to_vertex_cover,
        })
    }
}

/// Which vertex a [`HittingObserver`] waits for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitTarget {
    /// A fixed vertex id.
    Vertex(Vertex),
    /// The highest-numbered vertex, `n - 1` (a convenient canonical
    /// "far" vertex that exists on every non-empty graph).
    LastVertex,
}

/// Records the first-visit (hitting) time of one target vertex.
#[derive(Debug, Clone)]
pub struct HittingObserver {
    target_spec: HitTarget,
    target: Vertex,
    steps_to_hit: Option<u64>,
}

impl HittingObserver {
    /// Creates an unarmed observer; the concrete vertex is resolved at
    /// [`Observer::begin`].
    pub fn new(target: HitTarget) -> HittingObserver {
        HittingObserver {
            target_spec: target,
            target: 0,
            steps_to_hit: None,
        }
    }

    /// The measured hitting time, if the target was reached.
    pub fn steps_to_hit(&self) -> Option<u64> {
        self.steps_to_hit
    }
}

impl Observer for HittingObserver {
    fn begin(&mut self, g: &Graph, start: Vertex) {
        self.target = match self.target_spec {
            HitTarget::Vertex(v) => {
                assert!(v < g.n(), "hitting target {v} out of range");
                v
            }
            HitTarget::LastVertex => g.n() - 1,
        };
        self.steps_to_hit = if start == self.target { Some(0) } else { None };
    }

    fn on_step(&mut self, t: u64, step: &Step) {
        if self.steps_to_hit.is_none() && step.to == self.target {
            self.steps_to_hit = Some(t);
        }
    }

    fn satisfied(&self) -> bool {
        self.steps_to_hit.is_some()
    }

    fn finish(&mut self) -> Metrics {
        Metrics::Hitting(HittingMetrics {
            target: self.target,
            steps_to_hit: self.steps_to_hit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blue::track_isolated_stars;
    use crate::eprocess::rule::UniformRule;
    use crate::eprocess::EProcess;
    use crate::srw::SimpleRandomWalk;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn one_walk_feeds_many_observers() {
        let g = generators::hypercube(4);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let mut cover = CoverObserver::new(CoverTarget::Both);
        let mut blanket = BlanketObserver::new(0.3).unwrap();
        let mut phases = PhaseObserver::new();
        let mut census = BlueCensusObserver::new(&g);
        let mut hit = HittingObserver::new(HitTarget::LastVertex);
        let run = run_observed(
            &mut walk,
            &mut [&mut cover, &mut blanket, &mut phases, &mut census, &mut hit],
            StopWhen::AllSatisfied,
            10_000_000,
            &mut rng,
        );
        // The walk advanced exactly once per observed step.
        assert_eq!(walk.steps(), run.steps);
        let cm = cover.cover_metrics();
        assert_eq!(cm.vertices_visited, g.n());
        assert_eq!(cm.edges_visited, g.m());
        assert!(blanket.steps_to_blanket().unwrap() <= run.steps);
        assert_eq!(phases.trace().total_blue(), cm.blue_steps);
        assert!(hit.steps_to_hit().unwrap() <= cm.steps_to_vertex_cover.unwrap());
        assert!(matches!(census.finish(), Metrics::BlueCensus(_)));
    }

    #[test]
    fn observers_are_reusable_across_runs() {
        let g = generators::cycle(12);
        let mut cover = CoverObserver::new(CoverTarget::Vertices);
        for seed in 0..3 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut walk = EProcess::new(&g, 0, UniformRule::new());
            let run = run_observed(
                &mut walk,
                &mut [&mut cover],
                StopWhen::AllSatisfied,
                1_000_000,
                &mut rng,
            );
            assert_eq!(run.steps, 11);
            assert_eq!(cover.cover_metrics().steps_to_vertex_cover, Some(11));
        }
    }

    #[test]
    fn stop_when_cap_runs_to_the_cap() {
        let g = generators::complete(6);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut walk = SimpleRandomWalk::new(&g, 0);
        let mut cover = CoverObserver::new(CoverTarget::Vertices);
        let run = run_observed(&mut walk, &mut [&mut cover], StopWhen::Cap, 500, &mut rng);
        assert_eq!(run.steps, 500);
    }

    #[test]
    fn blanket_observer_rejects_bad_delta() {
        assert_eq!(
            BlanketObserver::new(1.5).unwrap_err(),
            CoverError::InvalidDelta(1.5)
        );
        assert!(BlanketObserver::new(0.0).is_err());
        assert!(BlanketObserver::new(0.5).is_ok());
    }

    #[test]
    fn census_observer_matches_walk_introspection() {
        // The observer reconstructs the blue subgraph from the step stream
        // alone; it must agree with the legacy routine that reads the
        // E-process internals, on the same trajectory (same seed).
        let mut seed_rng = SmallRng::seed_from_u64(7);
        let g = generators::connected_random_regular(300, 3, &mut seed_rng).unwrap();
        for seed in 0..3 {
            let mut rng_a = SmallRng::seed_from_u64(100 + seed);
            let mut walk_a = EProcess::new(&g, 0, UniformRule::new());
            let legacy = track_isolated_stars(&mut walk_a, 10_000_000, &mut rng_a);

            let mut rng_b = SmallRng::seed_from_u64(100 + seed);
            let mut walk_b = EProcess::new(&g, 0, UniformRule::new());
            let mut census = BlueCensusObserver::new(&g);
            let run = run_observed(
                &mut walk_b,
                &mut [&mut census],
                StopWhen::AllSatisfied,
                10_000_000,
                &mut rng_b,
            );
            let Metrics::BlueCensus(m) = census.finish() else {
                unreachable!()
            };
            assert_eq!(m.ever_star_centers, legacy.ever_star_centers);
            assert_eq!(m.steps_to_vertex_cover, legacy.steps_to_vertex_cover);
            assert_eq!(run.steps, legacy.steps);
        }
    }

    #[test]
    fn hitting_observer_start_is_zero() {
        let g = generators::cycle(8);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut walk = SimpleRandomWalk::new(&g, 3);
        let mut hit = HittingObserver::new(HitTarget::Vertex(3));
        let run = run_observed(
            &mut walk,
            &mut [&mut hit],
            StopWhen::AllSatisfied,
            1_000,
            &mut rng,
        );
        assert_eq!(run.steps, 0);
        assert_eq!(hit.steps_to_hit(), Some(0));
    }
}
