//! The common interface implemented by every walk process.

use eproc_graphs::{EdgeId, Graph, Vertex};
use rand::RngCore;

/// How a step chose its edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// The process traversed an edge it preferred as *unvisited* — a
    /// **blue** transition in the paper's re-colouring picture. Only
    /// processes that prefer unvisited edges emit this.
    Blue,
    /// Any other transition (the embedded random walk of the E-process,
    /// every SRW step, rotor steps, lazy holds, …) — **red**.
    Red,
}

/// One transition of a walk process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Vertex the walk left.
    pub from: Vertex,
    /// Vertex the walk arrived at (equals `from` for a lazy hold).
    pub to: Vertex,
    /// The edge traversed; `None` only for lazy holds.
    pub edge: Option<EdgeId>,
    /// Blue/red classification (see [`StepKind`]).
    pub kind: StepKind,
}

/// A vertex-to-vertex exploration process on a fixed graph.
///
/// All processes in this crate (E-process, SRW, rotor-router, RWC(d),
/// locally fair explorers) implement this trait, so the cover-time harness
/// in [`crate::cover`] and the experiment drivers are generic.
///
/// Implementations borrow the graph; all mutable exploration state lives in
/// the process value, so many processes can run on one graph concurrently.
///
/// # The two step entry points
///
/// [`advance`](WalkProcess::advance) is the object-safe method (`&mut dyn
/// RngCore`), usable through `Box<dyn WalkProcess>`.
/// [`advance_rng`](WalkProcess::advance_rng) is the monomorphized fast
/// path: generic over the RNG, so a kernel holding a concrete process and
/// a concrete RNG compiles to one flat, fully inlined loop with no
/// per-step virtual dispatch. The default implementation forwards to
/// `advance`, so third-party processes keep working unchanged; every
/// process in this crate overrides it with the real step body (and
/// implements `advance` as the thin dyn adapter). Both entry points draw
/// the **identical RNG sequence** — the sampling helpers in `rand` are
/// shared generic code — so seeded trajectories are the same whichever
/// path ran them.
pub trait WalkProcess {
    /// The graph being explored.
    fn graph(&self) -> &Graph;

    /// The currently occupied vertex.
    fn current(&self) -> Vertex;

    /// Number of steps taken so far.
    fn steps(&self) -> u64;

    /// Performs one transition. Deterministic processes ignore `rng`.
    ///
    /// # Panics
    ///
    /// Implementations panic if the current vertex has degree 0 (the walk
    /// is stuck; the paper's graphs are connected so this cannot occur).
    fn advance(&mut self, rng: &mut dyn RngCore) -> Step;

    /// Monomorphized variant of [`advance`](WalkProcess::advance): same
    /// transition, same RNG draw sequence, but statically dispatched on
    /// the RNG type so the whole step inlines into the caller's loop.
    ///
    /// The default forwards to the dyn method (correct for any
    /// implementation, at dyn cost); in-crate processes override it.
    ///
    /// # Panics
    ///
    /// As [`advance`](WalkProcess::advance).
    fn advance_rng<R: RngCore>(&mut self, rng: &mut R) -> Step
    where
        Self: Sized,
    {
        self.advance(rng)
    }
}

impl<W: WalkProcess + ?Sized> WalkProcess for &mut W {
    fn graph(&self) -> &Graph {
        (**self).graph()
    }

    fn current(&self) -> Vertex {
        (**self).current()
    }

    fn steps(&self) -> u64 {
        (**self).steps()
    }

    fn advance(&mut self, rng: &mut dyn RngCore) -> Step {
        (**self).advance(rng)
    }
}

impl<W: WalkProcess + ?Sized> WalkProcess for Box<W> {
    fn graph(&self) -> &Graph {
        (**self).graph()
    }

    fn current(&self) -> Vertex {
        (**self).current()
    }

    fn steps(&self) -> u64 {
        (**self).steps()
    }

    fn advance(&mut self, rng: &mut dyn RngCore) -> Step {
        (**self).advance(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_kind_is_copy_and_eq() {
        let k = StepKind::Blue;
        let l = k;
        assert_eq!(k, l);
        assert_ne!(StepKind::Blue, StepKind::Red);
    }

    #[test]
    fn step_debug_nonempty() {
        let s = Step {
            from: 0,
            to: 1,
            edge: Some(2),
            kind: StepKind::Red,
        };
        assert!(format!("{s:?}").contains("from"));
    }
}
