//! Live terminal progress, rendered to stderr.

use crate::counters::Counters;
use crate::event::{Event, EventKind};
use crate::sink::TelemetrySink;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Minimum event-clock nanoseconds between two renders: progress is for
/// humans, so ~8 frames a second is plenty and keeps stderr readable
/// when blocks complete thousands of times a second.
const RENDER_INTERVAL_NS: u64 = 125_000_000;

/// A [`TelemetrySink`] that renders one live status line to stderr —
/// blocks done/total, trials and steps throughput, ETA — overwriting
/// itself with `\r` and finishing with a newline on `run_finished`.
///
/// All rates derive from the event stream's own `t_ns` clock, so the
/// sink needs no clock of its own and renders identically under test.
#[derive(Debug, Default)]
pub struct ProgressSink {
    totals: Counters,
    total_blocks: AtomicU64,
    /// `t_ns` of the last render (0 = never rendered).
    last_render_ns: AtomicU64,
    /// Width of the longest line rendered so far, for `\r` clearing.
    width: Mutex<usize>,
}

impl ProgressSink {
    /// A fresh progress renderer (targets stderr).
    pub fn new() -> ProgressSink {
        ProgressSink::default()
    }

    fn render(&self, t_ns: u64, finished: bool) {
        let line = render_line(
            self.totals.blocks.load(Ordering::Relaxed),
            self.total_blocks.load(Ordering::Relaxed),
            self.totals.trials.load(Ordering::Relaxed),
            self.totals.steps.load(Ordering::Relaxed),
            t_ns,
            finished,
        );
        let mut width = self.width.lock().expect("progress mutex poisoned");
        let pad = width.saturating_sub(line.len());
        *width = (*width).max(line.len());
        eprint!("\r{line}{}", " ".repeat(pad));
        if finished {
            eprintln!();
        }
    }
}

impl TelemetrySink for ProgressSink {
    fn emit(&self, event: &Event) {
        match &event.kind {
            EventKind::RunStarted { blocks, .. } => {
                self.total_blocks.store(*blocks as u64, Ordering::Relaxed);
                self.render(event.t_ns, false);
            }
            EventKind::BlockCompleted {
                trials,
                steps,
                gen_ns,
                walk_ns,
                gen_attempts,
                ..
            } => {
                self.totals
                    .record_block(*trials, *steps, *gen_ns, *walk_ns, *gen_attempts);
                // Throttle: only the thread that advances last_render_ns
                // past the interval draws, so concurrent workers never
                // interleave partial lines.
                let last = self.last_render_ns.load(Ordering::Relaxed);
                if event.t_ns.saturating_sub(last) >= RENDER_INTERVAL_NS
                    && self
                        .last_render_ns
                        .compare_exchange(last, event.t_ns, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    self.render(event.t_ns, false);
                }
            }
            EventKind::RunFinished { wall_ns, .. } => self.render(*wall_ns, true),
            _ => {}
        }
    }
}

/// Formats a count with a thousands-friendly suffix (`1234` → `1.2k`).
fn human_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

/// Formats seconds as `12.3s` / `4m08s` / `2h09m`.
fn human_secs(secs: f64) -> String {
    if !secs.is_finite() {
        return "?".into();
    }
    if secs < 60.0 {
        format!("{secs:.1}s")
    } else if secs < 3600.0 {
        format!("{}m{:02.0}s", (secs / 60.0).floor(), secs % 60.0)
    } else {
        format!(
            "{}h{:02.0}m",
            (secs / 3600.0).floor(),
            (secs % 3600.0) / 60.0
        )
    }
}

/// Pure renderer for the status line — separated from the sink so the
/// format is unit-testable without capturing stderr.
fn render_line(
    done: u64,
    total: u64,
    trials: u64,
    steps: u64,
    t_ns: u64,
    finished: bool,
) -> String {
    let secs = t_ns as f64 / 1e9;
    let rates = if secs > 0.0 {
        format!(
            "{} trials/s · {} steps/s",
            human_count(trials as f64 / secs),
            human_count(steps as f64 / secs)
        )
    } else {
        "-".into()
    };
    let tail = if finished {
        format!("done in {}", human_secs(secs))
    } else if secs > 0.0 && done > 0 && total > done {
        let eta = secs * (total - done) as f64 / done as f64;
        format!("ETA {}", human_secs(eta))
    } else {
        "ETA ?".into()
    };
    format!(
        "blocks {done}/{total} · {} trials · {rates} · {tail}",
        human_count(trials as f64)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shows_progress_and_eta() {
        // 2 of 8 blocks in 2 seconds: 6 blocks left at 1 block/s = 6s.
        let line = render_line(2, 8, 10, 2_000_000, 2_000_000_000, false);
        assert!(line.starts_with("blocks 2/8"), "{line}");
        assert!(line.contains("ETA 6.0s"), "{line}");
        assert!(line.contains("1.00M steps/s"), "{line}");
    }

    #[test]
    fn finished_line_reports_wall_time() {
        let line = render_line(8, 8, 40, 100, 500_000_000, true);
        assert!(line.contains("done in 0.5s"), "{line}");
    }

    #[test]
    fn zero_elapsed_renders_without_nonsense() {
        let line = render_line(0, 8, 0, 0, 0, false);
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
        assert!(line.contains("ETA ?"), "{line}");
    }

    #[test]
    fn zero_elapsed_with_completed_blocks_has_no_eta() {
        // Blocks can complete inside the first clock tick (t_ns still 0):
        // a 0-second extrapolation must render "ETA ?", not 0.0s or NaN.
        let line = render_line(2, 8, 10, 1_000, 0, false);
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
        assert!(line.contains("ETA ?"), "{line}");
        assert!(!line.contains("ETA 0"), "{line}");
    }

    #[test]
    fn human_units() {
        assert_eq!(human_count(950.0), "950");
        assert_eq!(human_count(1_234.0), "1.2k");
        assert_eq!(human_count(2_500_000.0), "2.50M");
        assert_eq!(human_count(3_000_000_000.0), "3.00G");
        assert_eq!(human_secs(75.0), "1m15s");
        assert_eq!(human_secs(7_500.0), "2h05m");
    }
}
