//! Interleaved multi-trial driver: `W` independent observed walks on one
//! shared graph, advanced in lockstep.
//!
//! [`run_observed`](crate::observe::run_observed) is a serial dependency
//! chain: each step's neighbour-row fetch cannot begin before the previous
//! step decided where the walk went, so on graphs larger than the cache
//! the kernel spends most of its time stalled on one outstanding CSR row
//! load. When several *independent* trials walk the **same** graph — the
//! executor's resample blocks, where `walks_per_graph` trials share one
//! freshly sampled graph — that serialization is self-inflicted: the
//! trials' loads could all be in flight at once.
//!
//! [`run_observed_interleaved`] runs `W` such trials as [`Lane`]s of one
//! lockstep loop. Each round advances every still-running lane by exactly
//! one step, and before a lane steps, the driver issues the *next* lane's
//! neighbour-row load via [`eproc_graphs::Graph::prefetch_ports`]
//! (manual load scheduling — the safe-code prefetch). The memory-level parallelism is
//! structural: the `W` per-lane dependency chains are independent, so the
//! CPU keeps up to `W` row fetches in flight where the sequential kernel
//! keeps one, and the graph streams through cache once per `W` walks
//! instead of once per walk.
//!
//! # Bit-identical to the sequential kernel
//!
//! Interleaving changes *when* a lane's step executes relative to other
//! lanes, never *what* it computes: each lane owns its walk, its RNG and
//! its observer set, and takes the exact per-step sequence of
//! [`run_observed`](crate::observe::run_observed) — satisfaction check,
//! [`WalkProcess::advance_rng`],
//! step counter, [`ObserverSet::on_step_all`] — against exclusively its
//! own state. Per-lane step streams, RNG consumption and observer outputs
//! are therefore **bit-identical** to running each trial alone through
//! [`run_observed`](crate::observe::run_observed) with the same seed
//! (pinned by the `interleave_equivalence` proptests), which is what lets
//! the executor pick this path freely by cell shape without perturbing
//! any committed artifact.

use crate::observe::{CompletionToken, ObservedRun, ObserverSet, StopWhen};
use crate::process::WalkProcess;
use rand::RngCore;

/// One trial of an interleaved run: a walk, its observer set and its own
/// RNG stream, plus the per-lane progress state the driver threads
/// through the lockstep loop.
///
/// The observer set is borrowed (`&mut O`) rather than owned so callers
/// keep their reusable observer banks: after
/// [`run_observed_interleaved`] returns, the borrow ends and the bank can
/// be `finish`ed and re-armed as usual.
pub struct Lane<'o, W, O: ?Sized, R> {
    walk: W,
    observers: &'o mut O,
    rng: R,
    token: CompletionToken,
    t: u64,
}

impl<'o, W, O, R> Lane<'o, W, O, R>
where
    W: WalkProcess,
    O: ObserverSet + ?Sized,
    R: RngCore,
{
    /// Bundles one trial's walk, observers and RNG into a lane.
    ///
    /// # Panics
    ///
    /// Panics if the observer set holds more than
    /// [`CompletionToken::MAX_OBSERVERS`] observers.
    pub fn new(walk: W, observers: &'o mut O, rng: R) -> Lane<'o, W, O, R> {
        let token = CompletionToken::arm(observers.count());
        Lane {
            walk,
            observers,
            rng,
            token,
            t: 0,
        }
    }

    /// `true` once this lane has stopped (per the same condition
    /// [`run_observed`](crate::observe::run_observed) uses).
    #[inline]
    fn finished(&self, check_satisfied: bool, cap: u64) -> bool {
        self.t >= cap || (check_satisfied && self.token.all_satisfied())
    }

    /// Decomposes the lane back into its walk and RNG (the observer
    /// borrow ends with the lane) — e.g. to inspect final walk state or
    /// RNG consumption after a run.
    pub fn into_parts(self) -> (W, R) {
        (self.walk, self.rng)
    }
}

/// Advances every lane in lockstep until all of them stop, returning one
/// [`ObservedRun`] per lane in lane order.
///
/// Per lane, this is exactly
/// [`run_observed`](crate::observe::run_observed): observers are armed at
/// the lane's current vertex, then each turn checks the stop condition,
/// advances the walk one step on the lane's own RNG and feeds the step to
/// the lane's observers — so per-lane trajectories, RNG consumption and
/// observer outputs are bit-identical to running the lanes one at a time.
/// Across lanes, each round gives every still-running lane one turn, and
/// a lane's turn starts by issuing the *next* runnable lane's
/// neighbour-row load ([`eproc_graphs::Graph::prefetch_ports`]) so that
/// row's fetch overlaps this lane's step — the software pipelining that
/// streams a large CSR through cache once per `lanes.len()` walks.
///
/// Lanes that stop early (observer satisfaction under
/// [`StopWhen::AllSatisfied`], or the cap) retire from the rotation;
/// the remaining lanes keep interleaving.
pub fn run_observed_interleaved<W, O, R>(
    lanes: &mut [Lane<'_, W, O, R>],
    stop: StopWhen,
    cap: u64,
) -> Vec<ObservedRun>
where
    W: WalkProcess,
    O: ObserverSet + ?Sized,
    R: RngCore,
{
    for lane in lanes.iter_mut() {
        let g = lane.walk.graph();
        let start = lane.walk.current();
        lane.observers.begin_all(g, start, &mut lane.token);
    }
    let check_satisfied = matches!(stop, StopWhen::AllSatisfied);
    let mut active: Vec<usize> = (0..lanes.len()).collect();
    while !active.is_empty() {
        let mut idx = 0;
        while idx < active.len() {
            let li = active[idx];
            if lanes[li].finished(check_satisfied, cap) {
                active.remove(idx);
                continue;
            }
            // Software pipelining: request the row the next runnable
            // lane's step will read while this lane's step executes.
            let next = active[(idx + 1) % active.len()];
            if next != li {
                let peek = &lanes[next];
                peek.walk.graph().prefetch_ports(peek.walk.current());
            }
            let lane = &mut lanes[li];
            let step = lane.walk.advance_rng(&mut lane.rng);
            lane.t += 1;
            lane.observers.on_step_all(lane.t, &step, &mut lane.token);
            idx += 1;
        }
    }
    lanes
        .iter()
        .map(|lane| ObservedRun {
            steps: lane.t,
            final_vertex: lane.walk.current(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::CoverTarget;
    use crate::observe::{run_observed, CoverObserver, Observer};
    use crate::srw::SimpleRandomWalk;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn single_lane_matches_run_observed() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = generators::connected_random_regular(60, 4, &mut rng).unwrap();
        for seed in [1u64, 2, 3] {
            let mut obs_seq = (CoverObserver::new(CoverTarget::Vertices),);
            let mut walk_seq = SimpleRandomWalk::new(&g, 0);
            let mut rng_seq = SmallRng::seed_from_u64(seed);
            let seq = run_observed(
                &mut walk_seq,
                &mut obs_seq,
                StopWhen::AllSatisfied,
                1_000_000,
                &mut rng_seq,
            );

            let mut obs_int = (CoverObserver::new(CoverTarget::Vertices),);
            let mut lanes = vec![Lane::new(
                SimpleRandomWalk::new(&g, 0),
                &mut obs_int,
                SmallRng::seed_from_u64(seed),
            )];
            let runs = run_observed_interleaved(&mut lanes, StopWhen::AllSatisfied, 1_000_000);
            drop(lanes);
            assert_eq!(runs, vec![seq], "seed {seed}");
            assert_eq!(obs_seq.0.finish(), obs_int.0.finish(), "seed {seed}");
        }
    }

    #[test]
    fn zero_cap_retires_every_lane_untouched() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::connected_random_regular(20, 4, &mut rng).unwrap();
        let mut obs_a = (CoverObserver::new(CoverTarget::Vertices),);
        let mut obs_b = (CoverObserver::new(CoverTarget::Vertices),);
        let mut lanes = vec![
            Lane::new(
                SimpleRandomWalk::new(&g, 0),
                &mut obs_a,
                SmallRng::seed_from_u64(1),
            ),
            Lane::new(
                SimpleRandomWalk::new(&g, 3),
                &mut obs_b,
                SmallRng::seed_from_u64(2),
            ),
        ];
        let runs = run_observed_interleaved(&mut lanes, StopWhen::Cap, 0);
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.steps == 0));
        assert_eq!(runs[0].final_vertex, 0);
        assert_eq!(runs[1].final_vertex, 3);
    }

    #[test]
    fn lanes_retire_independently_under_cap_stop() {
        // Different caps are not expressible per-lane, but AllSatisfied
        // lets lanes finish at different times: starting at different
        // vertices, cover times differ, and each lane must stop at its
        // own cover step exactly as a solo run would.
        let mut rng = SmallRng::seed_from_u64(77);
        let g = generators::connected_random_regular(40, 4, &mut rng).unwrap();
        let starts = [0usize, 7, 19];
        let mut solo_steps = Vec::new();
        for (i, &s) in starts.iter().enumerate() {
            let mut obs = (CoverObserver::new(CoverTarget::Vertices),);
            let mut walk = SimpleRandomWalk::new(&g, s);
            let mut r = SmallRng::seed_from_u64(100 + i as u64);
            let run = run_observed(
                &mut walk,
                &mut obs,
                StopWhen::AllSatisfied,
                1_000_000,
                &mut r,
            );
            solo_steps.push(run.steps);
        }
        let mut banks: Vec<_> = starts
            .iter()
            .map(|_| (CoverObserver::new(CoverTarget::Vertices),))
            .collect();
        let mut lanes: Vec<_> = starts
            .iter()
            .zip(banks.iter_mut())
            .enumerate()
            .map(|(i, (&s, obs))| {
                Lane::new(
                    SimpleRandomWalk::new(&g, s),
                    obs,
                    SmallRng::seed_from_u64(100 + i as u64),
                )
            })
            .collect();
        let runs = run_observed_interleaved(&mut lanes, StopWhen::AllSatisfied, 1_000_000);
        let steps: Vec<u64> = runs.iter().map(|r| r.steps).collect();
        assert_eq!(steps, solo_steps);
    }
}
