//! **T-mix**: Lemma 7's spectral mixing time against measured
//! total-variation mixing.
//!
//! `T = 6 log n / (1 − λ_max)` must push the worst pointwise deviation
//! below `n^{-3}`; we evolve the lazy walk's distribution exactly on small
//! graphs and report the measured worst TV at `T`, plus the honest
//! `ε = 1/4` mixing time for scale.

use eproc_bench::{save_table, Config};
use eproc_graphs::{generators, Graph};
use eproc_spectral::dense::SymMatrix;
use eproc_spectral::mixing::{mixing_time, worst_tv_at};
use eproc_stats::TextTable;
use eproc_theory::lemma7_mixing_time;

fn main() {
    let _config = Config::from_args();
    println!("Lemma 7: T = 6 ln n / gap (lazy walk) vs measured TV mixing\n");
    let mut table = TextTable::new(vec![
        "graph",
        "n",
        "lazy gap",
        "T (Lemma 7)",
        "TV at T",
        "n^-3",
        "t_mix(1/4)",
    ]);
    let graphs: Vec<(String, Graph)> = vec![
        ("petersen".into(), generators::petersen()),
        ("torus 4x4".into(), generators::torus2d(4, 4)),
        ("hypercube(5)".into(), generators::hypercube(5)),
        ("lollipop(8,4)".into(), generators::lollipop(8, 4)),
        ("complete(16)".into(), generators::complete(16)),
        ("cycle(24)".into(), generators::cycle(24)),
        ("barbell(6,2)".into(), generators::barbell(6, 2)),
    ];
    for (name, g) in &graphs {
        let n = g.n();
        let lazy_lambda = SymMatrix::from_graph(g, true).lambda_max_walk();
        let gap = 1.0 - lazy_lambda;
        let t = lemma7_mixing_time(n, gap, 6.0).ceil() as usize;
        let tv = worst_tv_at(g, t, true);
        let threshold = (n as f64).powi(-3);
        let tmix = mixing_time(g, 0.25, true, 200_000).map_or("-".into(), |x| x.to_string());
        assert!(
            tv <= (n as f64).powi(-2),
            "{name}: TV {tv} at T = {t} too large (pointwise bound implies TV <= n * n^-3)"
        );
        table.push_row(vec![
            name.clone(),
            n.to_string(),
            format!("{gap:.4}"),
            t.to_string(),
            format!("{tv:.2e}"),
            format!("{threshold:.2e}"),
            tmix,
        ]);
    }
    println!("{table}");
    let p = save_table("table_mixing", &table).expect("write csv");
    println!("csv: {}", p.display());
}
