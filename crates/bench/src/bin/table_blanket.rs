//! **T-blanket**: equation (4) — the blanket-time route to edge cover.
//!
//! §1: once every vertex `v` is visited `d(v)` times by the embedded
//! random walk, all edges are explored, and Ding–Lee–Peres gives
//! `t_bl(δ) = O(CV(SRW))`; hence `CE(E) = O(m + CV(SRW))`. We measure
//! `τ_bl(δ)`, `CV(SRW)` and `CE(E)` side by side.

use eproc_bench::{edge_cover_runs, mean_vertex_cover_steps, rng_for, save_table, Config, Scale};
use eproc_core::cover::blanket_time;
use eproc_core::rule::UniformRule;
use eproc_core::srw::SimpleRandomWalk;
use eproc_core::EProcess;
use eproc_graphs::{generators, Graph};
use eproc_stats::{SeedSequence, Summary, TextTable};

const REPS: usize = 3;

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Equation (4): blanket time t_bl(1/2) = O(CV(SRW)) and CE(E) = O(m + CV(SRW))\n");
    let mut table = TextTable::new(vec![
        "graph",
        "n",
        "m",
        "t_bl(1/2)",
        "CV(SRW)",
        "t_bl/CV",
        "CE(E)",
        "(CE-m)/CV",
    ]);
    let (reg_n, torus_side, hyp) = match config.scale {
        Scale::Quick => (2_000, 24, 9),
        Scale::Paper => (16_000, 64, 12),
    };
    let mut graph_rng = rng_for(seeds.derive(&[0]));
    let graphs: Vec<(String, Graph)> = vec![
        (
            format!("random 4-regular({reg_n})"),
            generators::connected_random_regular(reg_n, 4, &mut graph_rng).unwrap(),
        ),
        (
            format!("torus {torus_side}x{torus_side}"),
            generators::torus2d(torus_side, torus_side),
        ),
        (format!("hypercube({hyp})"), generators::hypercube(hyp)),
    ];
    for (name, g) in &graphs {
        let n = g.n();
        let m = g.m();
        let cap = 500_000_000u64;
        let mut rng = rng_for(seeds.derive(&[1, n as u64]));
        let mut blankets = Vec::new();
        for _ in 0..REPS {
            let mut w = SimpleRandomWalk::new(g, 0);
            blankets.push(blanket_time(&mut w, 0.5, cap, &mut rng).expect("blanket reached"));
        }
        let bl = Summary::from_u64(&blankets).mean;
        let (cv, d) = mean_vertex_cover_steps(|_| SimpleRandomWalk::new(g, 0), REPS, cap, &mut rng);
        assert_eq!(d, REPS);
        let ce_runs = edge_cover_runs(
            |_| EProcess::new(g, 0, UniformRule::new()),
            REPS,
            cap,
            &mut rng,
        );
        let ce: Vec<u64> = ce_runs
            .iter()
            .filter_map(|x| x.steps_to_edge_cover)
            .collect();
        assert_eq!(ce.len(), REPS);
        let ce_mean = Summary::from_u64(&ce).mean;
        table.push_row(vec![
            name.clone(),
            n.to_string(),
            m.to_string(),
            format!("{bl:.0}"),
            format!("{cv:.0}"),
            format!("{:.2}", bl / cv),
            format!("{ce_mean:.0}"),
            format!("{:.3}", (ce_mean - m as f64) / cv),
        ]);
    }
    println!("{table}");
    let p = save_table("table_blanket", &table).expect("write csv");
    println!("csv: {}", p.display());
}
