//! Plain-text and CSV table rendering for the experiment binaries.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use eproc_stats::TextTable;
///
/// let mut t = TextTable::new(vec!["n", "CV/n"]);
/// t.push_row(vec!["1000".into(), "4.02".into()]);
/// let s = t.to_string();
/// assert!(s.contains("CV/n"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (headers first, comma-separated; fields containing
    /// commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        write_row(f, &rule)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        let _ = cols;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.push_row(vec!["x".into(), "1".into()]);
        t.push_row(vec!["longer".into(), "23".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.push_row(vec!["1".into(), "with,comma".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,\"with,comma\"\n");
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = TextTable::new(vec!["q"]);
        t.push_row(vec!["say \"hi\"".into()]);
        assert!(t.to_csv().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        t.push_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
