//! Graph substrate for the `eproc` workspace.
//!
//! This crate provides everything the E-process simulator (`eproc-core`)
//! needs from a graph library, implemented from scratch:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) representation of an
//!   undirected multigraph with stable *edge* and *arc* identifiers. The two
//!   directed copies of an undirected edge are its arcs; the E-process marks
//!   edges visited while walking arcs, so both views are first-class.
//! * [`builder::GraphBuilder`] — incremental construction with validation.
//! * [`generators`] — the graph families used by the paper's analysis and
//!   experiments: random regular graphs (configuration/pairing model and the
//!   Steger–Wormald algorithm used by the paper's own simulations), LPS
//!   Ramanujan graphs (the canonical *high girth even degree expanders* of
//!   the title), hypercubes, toroidal grids, random geometric graphs, and a
//!   zoo of deterministic families for tests and baselines.
//! * [`properties`] — structural predicates and measurements: connectivity,
//!   bipartiteness, girth, diameter, Eulerian circuits and cycle
//!   decompositions, cycle counting, subgraph density (property **P2** of the
//!   paper), and `ℓ`-goodness (minimal even-degree subgraphs through a
//!   vertex, Definition in §1 of the paper).
//!
//! # Example
//!
//! ```
//! use eproc_graphs::generators;
//! use eproc_graphs::properties::{connectivity, degrees, girth};
//!
//! let g = generators::hypercube(4);
//! assert_eq!(g.n(), 16);
//! assert_eq!(g.m(), 32);
//! assert!(connectivity::is_connected(&g));
//! assert!(degrees::is_even_degree(&g));
//! assert_eq!(girth::girth(&g), Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod error;
pub mod generators;
pub mod io;
pub mod ops;
pub mod properties;
pub mod subgraph;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::{ArcId, EdgeId, Graph, Vertex};
pub use error::GraphError;
