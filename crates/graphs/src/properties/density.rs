//! Subgraph edge-density checks — property (P2) of Section 4.
//!
//! (P2): for `s = O(log n)` and `a = ⌊2s·log(re)/log n⌋`, no set of `s`
//! vertices induces more than `s + a` edges; in particular for
//! `s ≤ log n / (4 log re)` no `s`-set induces more than `s` edges. This is
//! what makes random regular graphs `Ω(log n)`-good (§4.1).

use crate::csr::{Graph, Vertex};
use crate::traversal;

/// Exact maximum number of edges induced by any `s`-subset of vertices.
///
/// Enumerates all `C(n, s)` subsets using bitmask adjacency, so it requires
/// `n <= 64`; intended as a test oracle on small graphs. Parallel edges are
/// counted with multiplicity.
///
/// # Errors
///
/// Returns `Err` with a descriptive message if `n > 64` or `s > n`.
pub fn max_induced_edges_exact(g: &Graph, s: usize) -> Result<usize, String> {
    let n = g.n();
    if n > 64 {
        return Err(format!(
            "exact subset enumeration requires n <= 64, got {n}"
        ));
    }
    if s > n {
        return Err(format!("subset size {s} exceeds n = {n}"));
    }
    if s < 2 {
        return Ok(0);
    }
    let mut best = 0usize;
    let mut subset: Vec<Vertex> = (0..s).collect();
    loop {
        let mut mask = 0u64;
        for &v in &subset {
            mask |= 1 << v;
        }
        let edges = g
            .edges()
            .filter(|&(_, u, v)| mask & (1 << u) != 0 && mask & (1 << v) != 0)
            .count();
        best = best.max(edges);
        // Next combination in lexicographic order.
        let mut i = s;
        loop {
            if i == 0 {
                return Ok(best);
            }
            i -= 1;
            if subset[i] != i + n - s {
                break;
            }
        }
        if subset[i] == i + n - s {
            return Ok(best);
        }
        subset[i] += 1;
        for j in i + 1..s {
            subset[j] = subset[j - 1] + 1;
        }
    }
}

/// Checks property (P2)'s simple form exactly on a small graph: returns the
/// smallest `s <= s_max` for which some `s`-subset induces **more** than
/// `s` edges, or `None` if no such subset exists.
///
/// # Errors
///
/// Propagates the size limits of [`max_induced_edges_exact`].
pub fn p2_violation_exact(g: &Graph, s_max: usize) -> Result<Option<usize>, String> {
    for s in 2..=s_max.min(g.n()) {
        if max_induced_edges_exact(g, s)? > s {
            return Ok(Some(s));
        }
    }
    Ok(None)
}

/// Edge excess of the BFS ball of the given `radius` around `v`: the number
/// of induced edges minus (ball size − 1).
///
/// Excess 0 means the ball is a tree, 1 unicyclic, and `>= 2` certifies a
/// dense local subgraph: a connected `s`-vertex subgraph with `>= s + 1`
/// edges, i.e. a (P2)-style violation witnessed locally. This is the
/// scalable proxy used on large graphs where subset enumeration is
/// impossible.
pub fn ball_excess(g: &Graph, v: Vertex, radius: u32) -> i64 {
    let dist = traversal::bfs_distances_bounded(g, v, radius);
    let mut size = 0i64;
    for &d in &dist {
        if d != traversal::UNREACHED {
            size += 1;
        }
    }
    let mut edges = 0i64;
    for (_, u, w) in g.edges() {
        if dist[u] != traversal::UNREACHED && dist[w] != traversal::UNREACHED
        // Both endpoints strictly inside the ball, or the edge might
        // join two radius-boundary vertices: count it either way —
        // the ball's *induced* subgraph includes it.
        {
            edges += 1;
        }
    }
    edges - (size - 1)
}

/// Maximum [`ball_excess`] over all vertices — a lower-bound witness for
/// local density (`O(n·(m + n))`; use sampled variants for huge graphs).
pub fn max_ball_excess(g: &Graph, radius: u32) -> i64 {
    g.vertices()
        .map(|v| ball_excess(g, v, radius))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn k4_density() {
        let g = generators::complete(4);
        assert_eq!(max_induced_edges_exact(&g, 3).unwrap(), 3);
        assert_eq!(max_induced_edges_exact(&g, 4).unwrap(), 6);
        // s = 4 induces 6 > 4 edges, s = 3 induces exactly 3.
        assert_eq!(p2_violation_exact(&g, 4).unwrap(), Some(4));
        assert_eq!(p2_violation_exact(&g, 3).unwrap(), None);
    }

    #[test]
    fn cycle_never_violates() {
        let g = generators::cycle(10);
        assert_eq!(p2_violation_exact(&g, 10).unwrap(), None);
        assert_eq!(max_induced_edges_exact(&g, 10).unwrap(), 10);
        assert_eq!(max_induced_edges_exact(&g, 5).unwrap(), 4);
    }

    #[test]
    fn figure_eight_violation_at_full_size() {
        let g = generators::figure_eight(3); // 5 vertices, 6 edges
        assert_eq!(p2_violation_exact(&g, 5).unwrap(), Some(5));
    }

    #[test]
    fn small_s_trivial() {
        let g = generators::complete(5);
        assert_eq!(max_induced_edges_exact(&g, 0).unwrap(), 0);
        assert_eq!(max_induced_edges_exact(&g, 1).unwrap(), 0);
        assert_eq!(max_induced_edges_exact(&g, 2).unwrap(), 1);
    }

    #[test]
    fn size_limits_enforced() {
        let g = generators::cycle(10);
        assert!(max_induced_edges_exact(&g, 11).is_err());
        let big = generators::cycle(70);
        assert!(max_induced_edges_exact(&big, 3).is_err());
    }

    #[test]
    fn ball_excess_tree_is_zero() {
        let g = generators::binary_tree(4);
        for v in [0, 3, 10] {
            assert_eq!(ball_excess(&g, v, 2), 0);
        }
        assert_eq!(max_ball_excess(&g, 10), 0);
    }

    #[test]
    fn ball_excess_unicyclic_is_one() {
        let g = generators::cycle(8);
        assert_eq!(ball_excess(&g, 0, 8), 1);
        // Small radius sees only a path.
        assert_eq!(ball_excess(&g, 0, 2), 0);
    }

    #[test]
    fn ball_excess_dense_graph() {
        let g = generators::complete(5);
        // Ball of radius 1 is all of K5: 10 edges, 5 vertices, excess 6.
        assert_eq!(ball_excess(&g, 0, 1), 6);
        assert_eq!(max_ball_excess(&g, 1), 6);
    }
}
