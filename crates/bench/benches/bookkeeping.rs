//! Ablation: the engine's O(1) live-prefix unvisited-edge bookkeeping vs a
//! naive per-step port rescan (`O(Δ)` and no cross-vertex unlinking).
//!
//! On constant-degree graphs the gap is a constant factor; on the complete
//! graph (degree `n−1`) the naive variant degrades dramatically —
//! validating the design claim in DESIGN.md §3.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eproc_bench::{rng_for, NaiveEProcess};
use eproc_core::rule::UniformRule;
use eproc_core::{EProcess, WalkProcess};
use eproc_graphs::generators;

fn bench_bookkeeping(c: &mut Criterion) {
    let mut graph_rng = rng_for(1);
    let sparse = generators::connected_random_regular(10_000, 4, &mut graph_rng).unwrap();
    let dense = generators::complete(512);
    let mut group = c.benchmark_group("bookkeeping");
    group.sample_size(15);

    for (name, g) in [("regular4_n10k", &sparse), ("complete_n512", &dense)] {
        let steps = (g.m() as u64) / 2;
        group.throughput(Throughput::Elements(steps));
        group.bench_function(format!("live_prefix_{name}"), |b| {
            b.iter(|| {
                let mut rng = rng_for(2);
                let mut w = EProcess::new(g, 0, UniformRule::new());
                for _ in 0..steps {
                    std::hint::black_box(w.advance(&mut rng));
                }
            })
        });
        group.bench_function(format!("naive_rescan_{name}"), |b| {
            b.iter(|| {
                let mut rng = rng_for(2);
                let mut w = NaiveEProcess::new(g, 0);
                for _ in 0..steps {
                    std::hint::black_box(w.advance(&mut rng));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bookkeeping);
criterion_main!(benches);
