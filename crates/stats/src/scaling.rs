//! Growth-model fitting and selection for size sweeps.
//!
//! The paper's headline claim is a *growth rate*: the E-process covers
//! high-girth even-degree expanders in `Θ(m)` steps, versus `Θ(n log n)`
//! for the simple random walk (and for the odd-degree case of
//! Cooper–Frieze–Johansson / Johansson). Reproducing that end to end
//! means sweeping `n` across decades and *selecting* the growth model
//! that explains the measured series — not just fitting one model by
//! fiat. This module fits each series against the three competing models
//!
//! * [`GrowthModel::ProportionalEdges`] — `y = c·m` (the paper's linear
//!   claim, through the edge count),
//! * [`GrowthModel::AffineEdges`] — `y = a + b·m` (linear with offset),
//! * [`GrowthModel::NLogN`] — `y = c·n ln n` (the SRW / odd-degree law),
//!
//! via the least-squares core in [`crate::regression`], then selects by a
//! residual-based criterion: the AIC-style score `k·ln(SSR/k) + 2p`
//! (`k` points, `p` parameters), lowest wins. The `2p` term is what keeps
//! the affine model from winning on pure `c·m` data merely by carrying a
//! spare intercept — it must *earn* the extra parameter with an
//! `e^{2/k}`-fold residual reduction.

use crate::regression::{try_fit_c_nlogn, try_fit_linear, try_fit_proportional, Fit, FitError};

/// Minimum sweep points for model selection: with fewer than 3 sizes the
/// two-parameter affine model interpolates anything and the comparison is
/// vacuous.
pub const MIN_SWEEP_POINTS: usize = 3;

/// Floor applied to SSR before the logarithm in the AIC score, so an
/// exact fit yields a huge-but-finite negative score instead of `-∞`
/// (which would not survive JSON serialisation).
const SSR_FLOOR: f64 = 1e-300;

/// One candidate growth law for a steps-vs-size series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowthModel {
    /// `y = c·m`: linear in the edge count — the paper's Θ(m) claim for
    /// even-degree high-girth expanders.
    ProportionalEdges,
    /// `y = a + b·m`: linear in the edge count with an offset.
    AffineEdges,
    /// `y = c·n ln n`: the simple-random-walk / odd-degree law.
    NLogN,
}

impl GrowthModel {
    /// All models, in the canonical report order.
    pub fn all() -> [GrowthModel; 3] {
        [
            GrowthModel::ProportionalEdges,
            GrowthModel::AffineEdges,
            GrowthModel::NLogN,
        ]
    }

    /// Stable ASCII label used in tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            GrowthModel::ProportionalEdges => "c*m",
            GrowthModel::AffineEdges => "a+b*m",
            GrowthModel::NLogN => "c*n*ln(n)",
        }
    }

    /// Number of free parameters (the `p` in the selection score).
    pub fn params(&self) -> usize {
        match self {
            GrowthModel::ProportionalEdges | GrowthModel::NLogN => 1,
            GrowthModel::AffineEdges => 2,
        }
    }

    /// `true` for the models whose growth is linear in the graph size —
    /// the paper-side of the linear-vs-`n log n` dichotomy.
    pub fn is_linear(&self) -> bool {
        matches!(
            self,
            GrowthModel::ProportionalEdges | GrowthModel::AffineEdges
        )
    }

    /// Predicted value at a sweep point under `fit`.
    pub fn predict(&self, fit: &Fit, n: usize, m: usize) -> f64 {
        match self {
            GrowthModel::ProportionalEdges => fit.slope * m as f64,
            GrowthModel::AffineEdges => fit.intercept + fit.slope * m as f64,
            GrowthModel::NLogN => fit.slope * n as f64 * (n as f64).ln(),
        }
    }
}

/// One measured point of a size sweep: graph dimensions and the series
/// value (typically a mean steps-to-target) at that size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Vertex count of the sweep cell.
    pub n: usize,
    /// Edge count of the sweep cell.
    pub m: usize,
    /// Series value at this size.
    pub y: f64,
}

/// One fitted candidate model with its residual diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelFit {
    /// The model fitted.
    pub model: GrowthModel,
    /// Fitted constants and `R²`.
    pub fit: Fit,
    /// Sum of squared residuals over the sweep points.
    pub ssr: f64,
    /// Selection score `k·ln(max(SSR, floor)/k) + 2p`; lower is better.
    pub aic: f64,
}

/// The outcome of fitting every candidate model to one series.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthSelection {
    /// Successfully fitted models, in [`GrowthModel::all`] order.
    pub fits: Vec<ModelFit>,
    /// The model the residual criterion prefers.
    pub preferred: GrowthModel,
}

impl GrowthSelection {
    /// The preferred model's fit.
    ///
    /// # Panics
    ///
    /// Never: construction guarantees `preferred` is one of `fits`.
    pub fn preferred_fit(&self) -> &ModelFit {
        self.fits
            .iter()
            .find(|f| f.model == self.preferred)
            .expect("preferred model is always one of the fitted models")
    }
}

fn ssr(model: GrowthModel, fit: &Fit, points: &[ScalingPoint]) -> f64 {
    points
        .iter()
        .map(|p| {
            let r = p.y - model.predict(fit, p.n, p.m);
            r * r
        })
        .sum()
}

/// Fits every candidate [`GrowthModel`] to `points` and selects the one
/// with the lowest residual score.
///
/// A model that cannot be fitted to this particular series (e.g.
/// [`GrowthModel::NLogN`] when a point has `n < 2`) is silently dropped
/// from the candidate set; the call errors only when *no* model survives
/// or when the series itself is degenerate.
///
/// # Errors
///
/// [`FitError`] for fewer than [`MIN_SWEEP_POINTS`] points, a series
/// without at least two distinct sizes, non-finite values, or when every
/// candidate model fails to fit.
pub fn fit_growth_models(points: &[ScalingPoint]) -> Result<GrowthSelection, FitError> {
    if points.len() < MIN_SWEEP_POINTS {
        return Err(FitError::TooFewPoints {
            needed: MIN_SWEEP_POINTS,
            got: points.len(),
        });
    }
    let first_n = points[0].n;
    if points.iter().all(|p| p.n == first_n) {
        return Err(FitError::DegenerateX);
    }
    if points.iter().any(|p| !p.y.is_finite()) {
        return Err(FitError::NonFinite);
    }
    let k = points.len() as f64;
    let ms: Vec<f64> = points.iter().map(|p| p.m as f64).collect();
    let ns: Vec<usize> = points.iter().map(|p| p.n).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    let mut fits = Vec::with_capacity(3);
    let mut first_err = None;
    for model in GrowthModel::all() {
        let fitted = match model {
            GrowthModel::ProportionalEdges => try_fit_proportional(&ms, &ys),
            GrowthModel::AffineEdges => try_fit_linear(&ms, &ys),
            GrowthModel::NLogN => try_fit_c_nlogn(&ns, &ys),
        };
        match fitted {
            Ok(fit) => {
                let ssr = ssr(model, &fit, points);
                let aic = k * (ssr.max(SSR_FLOOR) / k).ln() + 2.0 * model.params() as f64;
                fits.push(ModelFit {
                    model,
                    fit,
                    ssr,
                    aic,
                });
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    let preferred = fits
        .iter()
        .min_by(|a, b| {
            a.aic
                .partial_cmp(&b.aic)
                .expect("aic is finite by construction")
                .then(a.model.params().cmp(&b.model.params()))
        })
        .map(|f| f.model);
    match preferred {
        Some(preferred) => Ok(GrowthSelection { fits, preferred }),
        None => Err(first_err.expect("no fits implies at least one error")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(ns: &[usize], f: impl Fn(usize) -> f64) -> Vec<ScalingPoint> {
        ns.iter()
            .map(|&n| ScalingPoint {
                n,
                m: 2 * n,
                y: f(n),
            })
            .collect()
    }

    #[test]
    fn proportional_data_prefers_proportional_model() {
        // y = 1.1·m exactly: the affine model matches the residuals but
        // must lose on the parameter penalty.
        let points = sweep(&[500, 1000, 2000, 4000, 8000], |n| 1.1 * (2 * n) as f64);
        let sel = fit_growth_models(&points).unwrap();
        assert_eq!(sel.preferred, GrowthModel::ProportionalEdges);
        assert!(sel.preferred.is_linear());
        let fit = sel.preferred_fit();
        assert!((fit.fit.slope - 1.1).abs() < 1e-9);
        assert!(fit.fit.r_squared > 1.0 - 1e-12);
    }

    #[test]
    fn noisy_linear_data_still_prefers_a_linear_model() {
        // ±2% multiplicative wobble on y = 0.9·m.
        let noise = [1.01, 0.98, 1.02, 0.99, 1.015, 0.985];
        let ns = [500usize, 1000, 2000, 4000, 8000, 16000];
        let points: Vec<ScalingPoint> = ns
            .iter()
            .zip(noise)
            .map(|(&n, w)| ScalingPoint {
                n,
                m: 2 * n,
                y: 0.9 * (2 * n) as f64 * w,
            })
            .collect();
        let sel = fit_growth_models(&points).unwrap();
        assert!(sel.preferred.is_linear(), "preferred {:?}", sel.preferred);
    }

    #[test]
    fn nlogn_data_prefers_nlogn_model() {
        let points = sweep(&[500, 1000, 2000, 4000, 8000], |n| {
            1.5 * n as f64 * (n as f64).ln()
        });
        let sel = fit_growth_models(&points).unwrap();
        assert_eq!(sel.preferred, GrowthModel::NLogN);
        assert!(!sel.preferred.is_linear());
        assert!((sel.preferred_fit().fit.slope - 1.5).abs() < 1e-9);
    }

    #[test]
    fn affine_data_earns_its_intercept() {
        // A genuine offset: y = 5000 + 0.5·m. Proportional misfits it,
        // affine nails it.
        let points = sweep(&[500, 1000, 2000, 4000], |n| 5000.0 + 0.5 * (2 * n) as f64);
        let sel = fit_growth_models(&points).unwrap();
        assert_eq!(sel.preferred, GrowthModel::AffineEdges);
        let fit = sel.preferred_fit();
        assert!((fit.fit.intercept - 5000.0).abs() < 1e-6);
        assert!((fit.fit.slope - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_series_error_out() {
        assert_eq!(
            fit_growth_models(&[]),
            Err(FitError::TooFewPoints { needed: 3, got: 0 })
        );
        let two = sweep(&[100, 200], |n| n as f64);
        assert_eq!(
            fit_growth_models(&two),
            Err(FitError::TooFewPoints { needed: 3, got: 2 })
        );
        let same = sweep(&[100, 100, 100], |n| n as f64);
        assert_eq!(fit_growth_models(&same), Err(FitError::DegenerateX));
        let mut bad = sweep(&[100, 200, 400], |n| n as f64);
        bad[1].y = f64::NAN;
        assert_eq!(fit_growth_models(&bad), Err(FitError::NonFinite));
    }

    #[test]
    fn tiny_sizes_drop_the_nlogn_candidate() {
        // n = 1 breaks the n ln n model; the linear models still fit and
        // one of them is selected.
        let points = sweep(&[1, 10, 100], |n| n as f64);
        let sel = fit_growth_models(&points).unwrap();
        assert!(sel.fits.iter().all(|f| f.model != GrowthModel::NLogN));
        assert!(sel.preferred.is_linear());
    }

    #[test]
    fn model_metadata_is_consistent() {
        for model in GrowthModel::all() {
            assert!(!model.label().is_empty());
            assert!(model.params() >= 1);
        }
        assert_eq!(GrowthModel::AffineEdges.params(), 2);
        let fit = Fit {
            intercept: 1.0,
            slope: 2.0,
            r_squared: 1.0,
        };
        assert_eq!(GrowthModel::ProportionalEdges.predict(&fit, 10, 20), 40.0);
        assert_eq!(GrowthModel::AffineEdges.predict(&fit, 10, 20), 41.0);
        let nl = GrowthModel::NLogN.predict(&fit, 10, 20);
        assert!((nl - 2.0 * 10.0 * 10.0f64.ln()).abs() < 1e-12);
    }
}
