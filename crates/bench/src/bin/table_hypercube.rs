//! **T-hyp**: the hypercube edge-cover example of §1.
//!
//! On `H_r` (`n = 2^r`, `m = n r / 2`): the E-process has
//! `CE = Θ(n log n)` — the sandwich (3) is tight — while the SRW needs
//! `CE = Θ(n log² n)`; the Orenshtein–Shinkar bound (2) only gives
//! `O(n log² n)` here. The two normalised columns should be flat.

use eproc_bench::{edge_cover_runs, rng_for, save_table, Config, Scale};
use eproc_core::rule::UniformRule;
use eproc_core::srw::SimpleRandomWalk;
use eproc_core::EProcess;
use eproc_graphs::generators;
use eproc_stats::{SeedSequence, Summary, TextTable};
use eproc_theory::eq2_greedy_edge_cover_bound;

const REPS: usize = 3;

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Hypercube edge cover: CE(E) = Theta(n log n) vs CE(SRW) = Theta(n log^2 n)\n");
    let mut table = TextTable::new(vec![
        "r",
        "n",
        "m",
        "CE(E)",
        "CE(E)/(n ln n)",
        "CE(SRW)",
        "CE(SRW)/(n ln^2 n)",
        "eq(2) bound",
    ]);

    let dims: Vec<usize> = match config.scale {
        Scale::Quick => (6..=11).collect(),
        Scale::Paper => (6..=14).collect(),
    };
    for &r in &dims {
        let g = generators::hypercube(r);
        let n = g.n() as f64;
        let m = g.m();
        let cap = (10_000.0 * n * n.ln()) as u64;
        let mut rng = rng_for(seeds.derive(&[r as u64]));
        let e_runs = edge_cover_runs(
            |_| EProcess::new(&g, 0, UniformRule::new()),
            REPS,
            cap,
            &mut rng,
        );
        let e_ce: Vec<u64> = e_runs
            .iter()
            .filter_map(|x| x.steps_to_edge_cover)
            .collect();
        let srw_runs = edge_cover_runs(|_| SimpleRandomWalk::new(&g, 0), REPS, cap, &mut rng);
        let s_ce: Vec<u64> = srw_runs
            .iter()
            .filter_map(|x| x.steps_to_edge_cover)
            .collect();
        assert_eq!(e_ce.len(), REPS, "H{r}: E-process edge cover must finish");
        assert_eq!(s_ce.len(), REPS, "H{r}: SRW edge cover must finish");
        let e_mean = Summary::from_u64(&e_ce).mean;
        let s_mean = Summary::from_u64(&s_ce).mean;
        // λ2(H_r) = 1 - 2/r: eq (2)'s bound with that gap.
        let eq2 = eq2_greedy_edge_cover_bound(m, g.n(), 2.0 / r as f64);
        table.push_row(vec![
            r.to_string(),
            g.n().to_string(),
            m.to_string(),
            format!("{e_mean:.0}"),
            format!("{:.3}", e_mean / (n * n.ln())),
            format!("{s_mean:.0}"),
            format!("{:.3}", s_mean / (n * n.ln() * n.ln())),
            format!("{eq2:.0}"),
        ]);
    }
    println!("{table}");
    let p = save_table("table_hypercube", &table).expect("write csv");
    println!("csv: {}", p.display());
}
