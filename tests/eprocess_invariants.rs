//! Cross-crate property tests for the paper's structural observations.
//!
//! Observation 10: on even-degree graphs every blue phase returns to its
//! start vertex. Observation 11: during red phases all blue degrees are
//! even. Observation 12: `t_B <= m` (so `t_R < t < t_R + m`). These are
//! checked over randomly generated even-degree graphs of several shapes.

use eproc::core::rule::{FirstPortRule, UniformRule};
use eproc::core::{EProcess, StepKind, WalkProcess};
use eproc::graphs::properties::degrees;
use eproc::graphs::{generators, Graph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Replays a fresh E-process until edge cover, asserting the paper's
/// observations at every step.
fn check_observations<A: eproc::core::rule::EdgeRule>(g: &Graph, rule: A, seed: u64) {
    assert!(
        degrees::is_even_degree(g),
        "harness misuse: graph must be even-degree"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut walk = EProcess::new(g, 0, rule);
    let mut in_blue = false;
    let mut phase_start = walk.current();
    let cap = 100 * (g.n() as u64 + 10) * (g.m() as u64 + 10);
    let mut t = 0u64;
    while walk.unvisited_edge_count() > 0 {
        let before = walk.current();
        let step = walk.advance(&mut rng);
        t += 1;
        assert!(t < cap, "edge cover did not complete");
        match step.kind {
            StepKind::Blue => {
                if !in_blue {
                    in_blue = true;
                    phase_start = before;
                }
            }
            StepKind::Red => {
                if in_blue {
                    // Observation 10: the phase ended where it began.
                    assert_eq!(
                        before, phase_start,
                        "blue phase ended at {before}, started at {phase_start}"
                    );
                    in_blue = false;
                }
                // Observation 11(2): in a red phase all blue degrees even.
                for v in g.vertices() {
                    assert!(
                        walk.blue_degree(v).is_multiple_of(2),
                        "odd blue degree at {v} during red phase"
                    );
                }
            }
        }
        // Observation 12: the blue sub-walk never exceeds m steps.
        assert!(walk.blue_steps() <= g.m() as u64);
        assert_eq!(walk.blue_steps() + walk.red_steps(), walk.steps());
    }
    // Once every edge is explored, the final blue phase must also have
    // closed at its start.
    if in_blue {
        assert_eq!(
            walk.current(),
            phase_start,
            "final blue phase did not return to start"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn observations_on_random_4_regular(n4 in 3usize..20, seed in 0u64..1000) {
        let n = n4 * 4; // keep n*r even and comfortably sized
        let mut graph_rng = SmallRng::seed_from_u64(seed);
        let g = generators::connected_random_regular(n, 4, &mut graph_rng).unwrap();
        check_observations(&g, UniformRule::new(), seed ^ 0xabc);
    }

    #[test]
    fn observations_on_torus(w in 3usize..7, h in 3usize..7, seed in 0u64..1000) {
        let g = generators::torus2d(w, h);
        check_observations(&g, UniformRule::new(), seed);
    }

    #[test]
    fn observations_under_deterministic_rule(w in 3usize..6, h in 3usize..6, seed in 0u64..100) {
        let g = generators::torus2d(w, h);
        check_observations(&g, FirstPortRule, seed);
    }

    #[test]
    fn observations_on_figure_eight(len in 3usize..12, seed in 0u64..500) {
        let g = generators::figure_eight(len);
        check_observations(&g, UniformRule::new(), seed);
    }

    #[test]
    fn observations_on_even_complete_graphs(k in 2usize..5, seed in 0u64..200) {
        // K_n has even degree for odd n = 2k + 1.
        let g = generators::complete(2 * k + 1);
        check_observations(&g, UniformRule::new(), seed);
    }

    #[test]
    fn observations_on_random_even_degree_sequences(
        half_degrees in proptest::collection::vec(1usize..3, 8..20),
        seed in 0u64..500,
    ) {
        // Degrees 2 or 4, sum automatically even.
        let degrees: Vec<usize> = half_degrees.iter().map(|&h| 2 * h).collect();
        let mut graph_rng = SmallRng::seed_from_u64(seed);
        if let Ok(g) = generators::random_with_degree_sequence(&degrees, &mut graph_rng) {
            // The sample may be disconnected: blue phases still close
            // (the E-process is defined on any even-degree graph), but
            // full edge cover may be impossible — only run the check on
            // connected samples.
            if eproc::graphs::properties::connectivity::is_connected(&g) {
                check_observations(&g, UniformRule::new(), seed ^ 0x77);
            }
        }
    }
}

#[test]
fn blue_components_shrink_monotonically() {
    // The number of unvisited edges is non-increasing, and blue components
    // only ever lose edges.
    let g = generators::torus2d(5, 5);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut walk = EProcess::new(&g, 0, UniformRule::new());
    let mut last_unvisited = walk.unvisited_edge_count();
    for _ in 0..2000 {
        walk.advance(&mut rng);
        let now = walk.unvisited_edge_count();
        assert!(now <= last_unvisited);
        last_unvisited = now;
        if now == 0 {
            break;
        }
    }
    assert_eq!(last_unvisited, 0, "torus edge cover should finish quickly");
}

#[test]
fn greedy_random_walk_alias_is_eprocess() {
    // GreedyRandomWalk is the E-process with the uniform rule: identical
    // trajectories for identical RNG streams.
    let g = generators::hypercube(4);
    let mut rng1 = SmallRng::seed_from_u64(5);
    let mut rng2 = SmallRng::seed_from_u64(5);
    let mut a: eproc::core::GreedyRandomWalk<'_> = EProcess::new(&g, 0, UniformRule::new());
    let mut b = EProcess::new(&g, 0, UniformRule::new());
    for _ in 0..200 {
        assert_eq!(a.advance(&mut rng1), b.advance(&mut rng2));
    }
}
