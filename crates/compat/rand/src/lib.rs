//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this crate
//! provides exactly the API surface the `eproc` workspace uses from
//! `rand 0.8`: [`RngCore`], the [`Rng`] extension trait (`gen_range`,
//! `gen`, `gen_bool`), [`SeedableRng`], [`rngs::SmallRng`]
//! (xoshiro256++) and [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! Streams are deterministic given a seed, which is all the workspace
//! relies on; they do **not** reproduce the upstream crate's exact output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by the RNGs in
/// this crate; exists so `try_fill_bytes` signatures match upstream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core trait every random number generator implements.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates an RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait StandardValue {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardValue for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardValue for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling: unbiased for any span. The power-of-two branch
    // is a pure strength reduction — `u64::MAX % 2^k == 2^k - 1` so the
    // zone is identical, and `v % 2^k == v & (2^k - 1)` — the accepted
    // draws, rejected draws and returned values all match the general
    // path bit for bit (pinned by `pow2_fast_path_matches_general_path`).
    // It matters because walk steps on the even-degree graphs the paper
    // studies sample `gen_range(0..degree)` with `degree ∈ {2, 4, 8, …}`,
    // and the two 64-bit divisions otherwise dominate the draw.
    if span.is_power_of_two() {
        let mask = span - 1;
        let zone = u64::MAX - mask;
        loop {
            let v = rng.next_u64();
            if v < zone {
                return v & mask;
            }
        }
    }
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// The pre-optimisation body of [`uniform_u64`], kept for the equivalence
/// test below.
#[cfg(test)]
fn uniform_u64_reference<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(span, rng) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(span, rng) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(span, rng) as i64) as $t
            }
        }
    )*};
}

signed_int_sample_range!(i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Uniform sample of `T` over its standard distribution.
    fn gen<T: StandardValue>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0, 0, 0, 0] {
                // The all-zero state is a fixed point; nudge it.
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let len = chunk.len();
                chunk.copy_from_slice(&bytes[..len]);
            }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Extension methods for slices: random choice and shuffling.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_int_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(5u64..6);
            assert_eq!(v, 5);
        }
        for _ in 0..100 {
            let v = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn pow2_fast_path_matches_general_path() {
        // Same seed, same spans: the strength-reduced power-of-two branch
        // must consume the identical draw stream and return the identical
        // values as the plain modulo body.
        for span in [1u64, 2, 4, 8, 64, 1 << 33, 3, 5, 6, 1000] {
            let mut a = SmallRng::seed_from_u64(99);
            let mut b = SmallRng::seed_from_u64(99);
            for _ in 0..2000 {
                assert_eq!(
                    super::uniform_u64(span, &mut a),
                    super::uniform_u64_reference(span, &mut b),
                    "span {span}"
                );
            }
            assert_eq!(a.next_u64(), b.next_u64(), "draw count diverged ({span})");
        }
    }

    #[test]
    fn gen_range_inclusive() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = rng.gen_range(0usize..=3);
            assert!(v <= 3);
        }
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(0.25..4.0);
            assert!((0.25..4.0).contains(&v));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Crude uniformity check on the mean.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((350..650).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left 50 elements in order (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(7);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [9u8];
        assert_eq!(one.choose(&mut rng), Some(&9));
    }

    #[test]
    fn dyn_rngcore_supports_rng_methods() {
        let mut rng = SmallRng::seed_from_u64(8);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0usize..10);
        assert!(v < 10);
        let f: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
