//! The unified `eproc` CLI: run, list, compare and cache ensemble
//! experiments.
//!
//! ```text
//! eproc run <spec> [--scale quick|paper] [--seed N] [--threads N]
//!                  [--trials N] [--metrics M[,M...]] [--resample [W]]
//!                  [--shard I/K] [--json PATH] [--csv PATH]
//!                  [--quantiles Q[,Q...]] [--cache DIR]
//!                  [--checkpoint PATH [--checkpoint-every N]] [--resume PATH]
//!                  [--max-wall SECS] [--retry-blocks N] [--inject-faults SPEC]
//! eproc merge <shard.json> [<shard.json> ...] [--json PATH] [--csv PATH]
//! eproc list [--canonical]
//! eproc compare --graph G [--graph G ...] --process P[,P...]
//!               [--trials N] [--target T] [--metrics M[,M...]]
//!               [--start V] [--cap C] [--resample [W]]
//!               [--seed N] [--threads N] [--json PATH] [--cache DIR]
//! eproc cache ls|gc|path [<digest-prefix>] [--cache DIR] [--max-bytes N]
//! ```
//!
//! Every subcommand parses its arguments against one declarative flag
//! table ([`eproc_engine::cli`]): each flag is declared once, each
//! subcommand names the subset it honours, and any other known flag is
//! rejected by name ("flag `--shard` does not apply to `merge`").
//! Usage and flag errors exit 2 (`EX_USAGE`), runtime errors exit 1,
//! and a gracefully interrupted resumable run exits 75 (`EX_TEMPFAIL`).
//!
//! `--metrics` attaches extra observers (`cover`, `blanket:<delta>`,
//! `phases`, `bluecensus`, `hitting[:v]`) to the same walk as the
//! target: each trial still walks the graph exactly once.
//!
//! `--quantiles Q[,Q...]` picks the quantile columns/keys rendered from
//! the streamed sketches (default `p50,p90,p99`; accepts `0.9` or `p90`
//! forms). The quantiles are estimates from mergeable KLL-style
//! sketches, deterministic for a given `(spec, seed)` at any thread
//! count, shard split, or resume point.
//!
//! `--resample [W]` — or a `~` marker in a `--graph` argument
//! (`regular:~1000,4`) — turns on per-trial graph resampling: each group
//! of `W` consecutive trials (default 1) gets its own freshly sampled
//! graph, and the report splits variance into pooled, across-graph and
//! within-graph components.
//!
//! `--shard I/K` (resampled runs only) executes just the resample blocks
//! with canonical index `≡ I (mod K)` and writes a shard artifact;
//! `eproc merge` recombines a complete set of K shard artifacts into the
//! report the unsharded run would have produced, byte-identical at any
//! thread count.
//!
//! Caching: `--cache DIR` (or the `EPROC_CACHE` environment variable)
//! consults a content-addressed artifact store before executing. The
//! spec is canonicalized ([`ExperimentSpec::canonicalize`]) and keyed
//! by its [`SpecDigest`] — canonical spec line + seed + quantiles +
//! artifact kind + format version — so every spelling of the same
//! experiment shares one entry. A hit serves the stored artifact
//! byte-identical to the run that populated it; a miss runs the
//! canonical spec and stores the artifact atomically. `eproc list
//! --canonical` prints each builtin's canonical line and digest;
//! `eproc cache ls|gc|path` inspects and prunes the store.
//!
//! Observability: `--progress` renders a live status line to stderr,
//! `--telemetry PATH` writes a JSONL event log, and either flag also
//! writes a `<artifact>.telemetry.json` sidecar with the wall-time
//! breakdown. `--quiet` silences informational stderr chatter (errors
//! always print). None of these affect the computed artifacts.
//!
//! Crash safety (resampled runs): `--checkpoint PATH` persists completed
//! blocks atomically every `--checkpoint-every N` completions;
//! SIGINT/SIGTERM or `--max-wall SECS` interrupt gracefully (exit code
//! 75, resumable); `--resume PATH` recomputes only the missing blocks
//! and produces the byte-identical artifact; `--retry-blocks N` re-runs
//! failed blocks deterministically; `--inject-faults SPEC` (or
//! `EPROC_FAULTS`) arms the deterministic fault harness for testing.

use eproc_engine::builtin;
use eproc_engine::cache::{CacheStore, CACHE_ENV};
use eproc_engine::checkpoint::RunCheckpoint;
use eproc_engine::cli::{
    expect_count, expect_positive_f64, expect_u64, parse_args, Arity, FlagDef, Parsed, UsageError,
};
use eproc_engine::digest::{spec_digest, ArtifactKind, SpecDigest};
use eproc_engine::executor::{run_with_sink, RunOptions};
use eproc_engine::fault::FaultPlan;
use eproc_engine::recovery::{
    run_recoverable_with_sink, CheckpointPlan, RecoveryOptions, RunOutcome,
};
use eproc_engine::report::{scaling_table, to_json_with, to_text_table_with, DEFAULT_QUANTILES};
use eproc_engine::scaling::analyze;
use eproc_engine::shard::{merge_shards_with_sink, run_shard_with_sink, ShardReport, ShardSpec};
use eproc_engine::spec::{
    CapSpec, ExperimentSpec, GraphSpec, MetricSpec, ProcessSpec, ResamplePlan, Scale, SweepRange,
    Target,
};
use eproc_telemetry::{JsonlSink, ProgressSink, SummarySink, Tee, TelemetrySink};
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Exit code for usage and flag errors (BSD `EX_USAGE`). Every parse
/// failure lands here — never 1, which is reserved for runtime errors.
const EXIT_USAGE: i32 = 2;

/// Exit code for a gracefully interrupted, resumable run (BSD
/// `EX_TEMPFAIL`): distinct from 1 (error) so scripts can tell "resume
/// me" apart from "something broke".
const EXIT_INTERRUPTED: i32 = 75;

/// Set once by `--quiet` before any experiment runs: suppresses the
/// CLI's informational stderr lines. Errors always print.
static QUIET: AtomicBool = AtomicBool::new(false);

/// Prints an informational line to stderr unless `--quiet` is in effect.
/// This is the CLI's one logging gate — everything that is not an error
/// or a primary artifact (tables and paths go to stdout) flows through
/// here.
macro_rules! info {
    ($($arg:tt)*) => {
        if !QUIET.load(Ordering::Relaxed) {
            eprintln!($($arg)*);
        }
    };
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "eproc — parallel ensemble-simulation engine for walk processes\n\
         \n\
         usage:\n\
         \x20 eproc run <spec> [--scale quick|paper] [--seed N] [--threads N]\n\
         \x20                  [--trials N] [--metrics M[,M...]] [--resample [W]]\n\
         \x20                  [--shard I/K] [--json PATH] [--csv PATH] [--progress]\n\
         \x20                  [--telemetry PATH] [--quiet] [--quantiles Q[,Q...]]\n\
         \x20                  [--cache DIR]\n\
         \x20                  [--checkpoint PATH [--checkpoint-every N]] [--resume PATH]\n\
         \x20                  [--max-wall SECS] [--retry-blocks N] [--inject-faults SPEC]\n\
         \x20 eproc merge <shard.json> [<shard.json> ...] [--json PATH] [--csv PATH]\n\
         \x20               [--telemetry PATH] [--quiet] [--quantiles Q[,Q...]]\n\
         \x20 eproc list [--canonical] [--scale quick|paper] [--seed N]\n\
         \x20               [--quantiles Q[,Q...]]\n\
         \x20 eproc compare --graph G [--graph G ...] --process P[,P...]\n\
         \x20               [--trials N] [--target T] [--metrics M[,M...]]\n\
         \x20               [--start V] [--cap C] [--resample [W]]\n\
         \x20               [--seed N] [--threads N] [--json PATH] [--cache DIR]\n\
         \x20 eproc scale <spec> | --graph G --process P[,P...] [--sweep n=RANGE]\n\
         \x20               [--trials N] [--target T] [--metrics M[,M...]]\n\
         \x20               [--start V] [--cap C] [--resample [W]]\n\
         \x20               [--scale quick|paper] [--seed N] [--threads N] [--json PATH]\n\
         \x20               [--cache DIR]\n\
         \x20 eproc cache ls|gc|path [<digest-prefix>] [--cache DIR] [--max-bytes N]\n\
         \n\
         graph syntax   regular:<n>,<d> | lps:<p>,<q> | geometric:<n>[,factor] |\n\
         \x20              hypercube:<dim> | torus:<w>,<h> | cycle:<n> | complete:<n> |\n\
         \x20              lollipop:<clique>,<path> | petersen | figure8:<len>\n\
         \x20              (a ~ before the arguments, e.g. regular:~1000,4, marks\n\
         \x20               the run for per-trial graph resampling; under `scale`\n\
         \x20               a size may be a sweep range: regular:~{{1k..256k,x2}},4)\n\
         process syntax eprocess[:rule] | srw | lazy | weighted | rotor | rwc:<d> |\n\
         \x20              oldest | leastused | vprocess\n\
         target syntax  vertex | edge | both | blanket:<delta>\n\
         metric syntax  cover | blanket[:delta] | phases | bluecensus | hitting[:v]\n\
         \x20              (all measured from the same walk: one pass per trial)\n\
         cap syntax     --cap auto | nlogn:<factor> | abs:<steps> (--cap-nlogn F is\n\
         \x20              shorthand for --cap nlogn:F)\n\
         quantiles      --quantiles Q[,Q...]: quantile columns/keys rendered from\n\
         \x20              the streamed sketches (default p50,p90,p99; accepts 0.9\n\
         \x20              or p90 forms; applies to run, compare, scale and merge)\n\
         sweep syntax   [n=]<start>..<end>[,x<factor>|,+<stride>] (default x2);\n\
         \x20              sizes accept k/m suffixes: --sweep n=1k..256k,x2\n\
         resampling     --resample [W]: every W consecutive trials (default 1)\n\
         \x20              share one freshly sampled graph; reports pooled,\n\
         \x20              across-graph and within-graph variance components\n\
         sharding       --shard I/K (resampled runs only): execute only the\n\
         \x20              (family, group) blocks with index = I (mod K) and write a\n\
         \x20              shard artifact instead of a report; `eproc merge` then\n\
         \x20              recombines the K artifacts into a report byte-identical\n\
         \x20              to the unsharded run's, at any thread count\n\
         caching        --cache DIR (or EPROC_CACHE): content-addressed artifact\n\
         \x20              cache keyed by the canonical spec digest (spec + seed +\n\
         \x20              quantiles + artifact kind). The run executes the\n\
         \x20              canonical form of the spec; a hit serves the stored\n\
         \x20              artifact byte-identical and skips execution. `eproc list\n\
         \x20              --canonical` shows what keys the cache; `eproc cache\n\
         \x20              ls|gc|path` inspects and prunes the store\n\
         crash safety   (resampled runs) --checkpoint PATH: atomically persist\n\
         \x20              completed blocks every --checkpoint-every N completions\n\
         \x20              (default 1); SIGINT/SIGTERM or --max-wall SECS interrupt\n\
         \x20              gracefully and exit 75 (resumable); --resume PATH runs\n\
         \x20              only the missing blocks and yields the byte-identical\n\
         \x20              artifact at any thread count; --retry-blocks N re-runs a\n\
         \x20              failed block deterministically (same seeds, same bits);\n\
         \x20              --inject-faults kind@family.group.attempt[,...] (or the\n\
         \x20              EPROC_FAULTS env var) injects panic/graphfail faults for\n\
         \x20              testing the above\n\
         telemetry      --progress: live status line on stderr (blocks, trial and\n\
         \x20              step throughput, ETA); --telemetry PATH: structured JSONL\n\
         \x20              event log; either flag also writes a\n\
         \x20              <artifact>.telemetry.json wall-time/utilization sidecar.\n\
         \x20              --quiet: suppress informational stderr (errors still\n\
         \x20              print). All three apply to run, compare and scale and\n\
         \x20              never change the computed artifacts.\n\
         \n\
         `scale` runs a size sweep and fits each (process x metric) series\n\
         against c*m, a+b*m and c*n*ln(n), selecting the growth model by\n\
         residual score — the paper's linear-vs-n-log-n dichotomy, end to end.\n\
         \n\
         built-in specs: {}\n\
         scaling sweeps: {}",
        builtin::names().join(", "),
        builtin::scaling_names().join(", ")
    );
    exit(if err.is_empty() { 0 } else { EXIT_USAGE });
}

/// Every flag the CLI knows, declared exactly once. Subcommands pick
/// their subset via the `*_ACCEPTS` lists below; anything else in this
/// table is rejected by name ("flag `--x` does not apply to `cmd`").
const FLAGS: &[FlagDef] = &[
    FlagDef {
        name: "--scale",
        aliases: &[],
        arity: Arity::Value("quick|paper"),
    },
    FlagDef {
        name: "--seed",
        aliases: &[],
        arity: Arity::Value("an unsigned integer"),
    },
    FlagDef {
        name: "--threads",
        aliases: &[],
        arity: Arity::Value("an integer of at least 1"),
    },
    FlagDef {
        name: "--trials",
        aliases: &[],
        arity: Arity::Value("an integer of at least 1"),
    },
    FlagDef {
        name: "--metrics",
        aliases: &[],
        arity: Arity::Value("a metric list"),
    },
    FlagDef {
        name: "--resample",
        aliases: &[],
        arity: Arity::OptionalInt,
    },
    FlagDef {
        name: "--shard",
        aliases: &[],
        arity: Arity::Value("<i>/<k>, e.g. 0/4"),
    },
    FlagDef {
        name: "--json",
        aliases: &[],
        arity: Arity::Value("a path"),
    },
    FlagDef {
        name: "--csv",
        aliases: &[],
        arity: Arity::Value("a path"),
    },
    FlagDef {
        name: "--progress",
        aliases: &[],
        arity: Arity::Switch,
    },
    FlagDef {
        name: "--telemetry",
        aliases: &[],
        arity: Arity::Value("a path"),
    },
    FlagDef {
        name: "--checkpoint",
        aliases: &[],
        arity: Arity::Value("a path"),
    },
    FlagDef {
        name: "--checkpoint-every",
        aliases: &[],
        arity: Arity::Value("an integer of at least 1"),
    },
    FlagDef {
        name: "--resume",
        aliases: &[],
        arity: Arity::Value("a path"),
    },
    FlagDef {
        name: "--max-wall",
        aliases: &[],
        arity: Arity::Value("a positive number of seconds"),
    },
    FlagDef {
        name: "--retry-blocks",
        aliases: &[],
        arity: Arity::Value("an unsigned integer"),
    },
    FlagDef {
        name: "--inject-faults",
        aliases: &[],
        arity: Arity::Value("a fault spec (kind@family.group.attempt[,...])"),
    },
    FlagDef {
        name: "--quantiles",
        aliases: &[],
        arity: Arity::Value("a quantile list, e.g. 0.5,0.9,0.99 or p50,p90,p99"),
    },
    FlagDef {
        name: "--quiet",
        aliases: &[],
        arity: Arity::Switch,
    },
    FlagDef {
        name: "--graph",
        aliases: &[],
        arity: Arity::Value("a graph spec"),
    },
    FlagDef {
        name: "--process",
        aliases: &["--processes"],
        arity: Arity::Value("a process list"),
    },
    FlagDef {
        name: "--sweep",
        aliases: &[],
        arity: Arity::Value("a range, e.g. n=1k..256k,x2"),
    },
    FlagDef {
        name: "--target",
        aliases: &[],
        arity: Arity::Value("a target"),
    },
    FlagDef {
        name: "--start",
        aliases: &[],
        arity: Arity::Value("a vertex index"),
    },
    FlagDef {
        name: "--cap",
        aliases: &[],
        arity: Arity::Value("auto|nlogn:<factor>|abs:<steps>"),
    },
    FlagDef {
        name: "--cap-nlogn",
        aliases: &[],
        arity: Arity::Value("a positive factor"),
    },
    FlagDef {
        name: "--cache",
        aliases: &[],
        arity: Arity::Value("a directory"),
    },
    FlagDef {
        name: "--canonical",
        aliases: &[],
        arity: Arity::Switch,
    },
    FlagDef {
        name: "--max-bytes",
        aliases: &[],
        arity: Arity::Value("a byte budget"),
    },
];

/// Flags shared by every executing subcommand (`run`/`compare`/`scale`).
const EXEC_ACCEPTS: &[&str] = &[
    "--seed",
    "--threads",
    "--trials",
    "--metrics",
    "--resample",
    "--shard",
    "--json",
    "--csv",
    "--progress",
    "--telemetry",
    "--checkpoint",
    "--checkpoint-every",
    "--resume",
    "--max-wall",
    "--retry-blocks",
    "--inject-faults",
    "--quantiles",
    "--quiet",
    "--cache",
];

const RUN_EXTRA: &[&str] = &["--scale"];
const COMPARE_EXTRA: &[&str] = &[
    "--graph",
    "--process",
    "--target",
    "--start",
    "--cap",
    "--cap-nlogn",
];
const SCALE_EXTRA: &[&str] = &[
    "--scale",
    "--graph",
    "--process",
    "--sweep",
    "--target",
    "--start",
    "--cap",
    "--cap-nlogn",
];
const MERGE_ACCEPTS: &[&str] = &["--json", "--csv", "--telemetry", "--quiet", "--quantiles"];
const LIST_ACCEPTS: &[&str] = &["--canonical", "--scale", "--seed", "--quantiles", "--quiet"];
const CACHE_ACCEPTS: &[&str] = &["--cache", "--max-bytes", "--quiet"];

/// Parses `args` for `cmd` against the shared table, accepting
/// `extra` on top of `base`. `--help` anywhere prints usage (exit 0);
/// any [`UsageError`] exits 2.
fn parse_or_usage(
    cmd: &str,
    base: &[&str],
    extra: &[&str],
    args: impl Iterator<Item = String>,
) -> Parsed {
    let accepts: Vec<&str> = base.iter().chain(extra).copied().collect();
    match parse_args(cmd, FLAGS, &accepts, args) {
        Ok(parsed) => {
            if parsed.help {
                usage("");
            }
            parsed
        }
        Err(e) => usage(&e.to_string()),
    }
}

fn ok_or_usage<T>(r: Result<T, UsageError>) -> T {
    r.unwrap_or_else(|e| usage(&e.to_string()))
}

#[derive(Debug, Default)]
struct CommonFlags {
    scale: Option<Scale>,
    seed: Option<u64>,
    threads: Option<usize>,
    trials: Option<usize>,
    metrics: Option<Vec<MetricSpec>>,
    resample: Option<ResamplePlan>,
    shard: Option<ShardSpec>,
    json: Option<PathBuf>,
    csv: Option<PathBuf>,
    progress: bool,
    telemetry: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: Option<usize>,
    resume: Option<PathBuf>,
    max_wall: Option<f64>,
    retry_blocks: Option<usize>,
    inject_faults: Option<String>,
    quantiles: Option<Vec<f64>>,
    cache: Option<PathBuf>,
}

impl CommonFlags {
    /// Interprets every common flag occurrence in `parsed`, in
    /// command-line order (later occurrences win). Subcommand-specific
    /// flags (`--graph`, `--sweep`, …) are left for [`AdhocSpec`].
    fn from_parsed(parsed: &Parsed) -> CommonFlags {
        let mut flags = CommonFlags::default();
        for (name, value) in &parsed.flags {
            let v = || value.as_deref().expect("value-arity flag has a value");
            match *name {
                "--scale" => {
                    flags.scale = Some(Scale::parse(v()).unwrap_or_else(|e| usage(&e.to_string())));
                }
                "--seed" => flags.seed = Some(ok_or_usage(expect_u64("--seed", v()))),
                "--threads" => {
                    flags.threads = Some(ok_or_usage(expect_count("--threads", v())));
                }
                "--trials" => flags.trials = Some(ok_or_usage(expect_count("--trials", v()))),
                "--metrics" => {
                    let parsed: Vec<MetricSpec> = v()
                        .split(',')
                        .map(|part| {
                            MetricSpec::parse(part).unwrap_or_else(|e| usage(&e.to_string()))
                        })
                        .collect();
                    flags.metrics = Some(parsed);
                }
                "--resample" => {
                    let walks = match value.as_deref() {
                        Some(raw) => ok_or_usage(expect_count("--resample", raw)),
                        None => 1,
                    };
                    flags.resample = Some(ResamplePlan {
                        walks_per_graph: walks,
                    });
                }
                "--shard" => {
                    flags.shard =
                        Some(ShardSpec::parse(v()).unwrap_or_else(|e| usage(&e.to_string())));
                }
                "--json" => flags.json = Some(PathBuf::from(v())),
                "--csv" => flags.csv = Some(PathBuf::from(v())),
                "--progress" => flags.progress = true,
                "--telemetry" => flags.telemetry = Some(PathBuf::from(v())),
                "--checkpoint" => flags.checkpoint = Some(PathBuf::from(v())),
                "--checkpoint-every" => {
                    flags.checkpoint_every =
                        Some(ok_or_usage(expect_count("--checkpoint-every", v())));
                }
                "--resume" => flags.resume = Some(PathBuf::from(v())),
                "--max-wall" => {
                    flags.max_wall = Some(ok_or_usage(expect_positive_f64("--max-wall", v())));
                }
                "--retry-blocks" => {
                    flags.retry_blocks =
                        Some(ok_or_usage(expect_u64("--retry-blocks", v())) as usize);
                }
                "--inject-faults" => flags.inject_faults = Some(v().to_string()),
                "--quantiles" => flags.quantiles = Some(parse_quantiles(v())),
                "--quiet" => QUIET.store(true, Ordering::Relaxed),
                "--cache" => flags.cache = Some(PathBuf::from(v())),
                _ => {}
            }
        }
        flags
    }

    /// Whether any crash-safety flag routes this run through
    /// [`run_recoverable_with_sink`] instead of the plain executor. The
    /// `EPROC_FAULTS` environment variable counts: it arms the fault
    /// harness without touching the command line.
    fn wants_recovery(&self) -> bool {
        self.checkpoint.is_some()
            || self.resume.is_some()
            || self.max_wall.is_some()
            || self.retry_blocks.is_some()
            || self.inject_faults.is_some()
            || std::env::var_os("EPROC_FAULTS").is_some()
    }

    /// The quantile columns/keys to render: `--quantiles` if given,
    /// otherwise p50/p90/p99.
    fn report_quantiles(&self) -> &[f64] {
        self.quantiles.as_deref().unwrap_or(&DEFAULT_QUANTILES)
    }
}

fn parse_quantiles(raw: &str) -> Vec<f64> {
    raw.split(',')
        .map(|part| {
            let part = part.trim();
            let q = match part.strip_prefix('p') {
                Some(pct) => pct.parse::<f64>().map(|p| p / 100.0),
                None => part.parse::<f64>(),
            };
            match q {
                Ok(q) if (0.0..=1.0).contains(&q) => q,
                _ => usage(&format!(
                    "flag `--quantiles` expects quantiles in [0,1] (use 0.9 or p90), got {part:?}"
                )),
            }
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| usage("missing command"));
    match command.as_str() {
        "run" => cmd_run(args),
        "list" => cmd_list(args),
        "compare" => cmd_compare(args),
        "scale" => cmd_scale(args),
        "merge" => cmd_merge(args),
        "cache" => cmd_cache(args),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command {other:?}")),
    }
}

fn cmd_list(args: impl Iterator<Item = String>) {
    let parsed = parse_or_usage("list", LIST_ACCEPTS, &[], args);
    let flags = CommonFlags::from_parsed(&parsed);
    if let Some(tok) = parsed.positionals.first() {
        usage(&format!("list takes no positional arguments, got {tok:?}"));
    }
    if parsed.has("--canonical") {
        // The exact normal form + digest that key the artifact cache,
        // one per builtin, under the flags that shape the digest.
        let scale = flags.scale.unwrap_or(Scale::Quick);
        let seed = flags.seed.unwrap_or_else(|| RunOptions::auto().base_seed);
        for name in builtin::names() {
            let spec = builtin::spec(name, scale).expect("listed specs exist");
            let canonical = spec.canonicalize();
            let digest = spec_digest(
                &canonical,
                seed,
                flags.report_quantiles(),
                ArtifactKind::Ensemble,
            );
            println!("{name}");
            println!("  digest: {digest}");
            println!("  spec:   {}", canonical.to_cli());
        }
        info!(
            "digests key the artifact cache for `run`/`compare` at seed {seed} with the \
             selected quantiles (scale runs key separately: kind=scaling)"
        );
        return;
    }
    let mut table = eproc_stats::TextTable::new(vec![
        "spec",
        "graphs",
        "processes",
        "trials",
        "target",
        "description",
    ]);
    for name in builtin::names() {
        let s = builtin::spec(name, Scale::Quick).expect("listed specs exist");
        table.push_row(vec![
            name.to_string(),
            s.graphs.len().to_string(),
            s.processes.len().to_string(),
            s.trials.to_string(),
            s.target.label(),
            s.description.clone(),
        ]);
    }
    println!("{table}");
    println!("run one with: eproc run <spec> [--scale quick|paper] [--threads N]");
}

/// The artifact cache a run should consult, if any: `--cache DIR`
/// explicitly, else the `EPROC_CACHE` environment variable. The bool is
/// `true` for the explicit flag — conflicts (e.g. `--shard`) are hard
/// usage errors there but silently disable an env-var cache, so setting
/// `EPROC_CACHE` globally never breaks sharded workflows.
fn cache_store(flags: &CommonFlags) -> Option<(CacheStore, bool)> {
    match &flags.cache {
        Some(dir) => Some((CacheStore::open(dir.clone()), true)),
        None => {
            std::env::var_os(CACHE_ENV).map(|dir| (CacheStore::open(PathBuf::from(dir)), false))
        }
    }
}

fn execute(spec: ExperimentSpec, flags: &CommonFlags) {
    execute_inner(spec, flags, false);
}

/// Runs `spec` and emits the standard artifacts. With `fit_growth_laws`
/// (the `scale` subcommand) the run is followed by growth-model fitting:
/// a degenerate sweep surfaces as a CLI error, the growth-law table is
/// printed under the ensemble table, and the JSON artifact carries a
/// `growth_laws` section.
///
/// With a cache configured (`--cache`/`EPROC_CACHE`) the spec is
/// canonicalized first — the digest names the canonical grid order, and
/// seeds derive from grid positions, so only the canonical form's bytes
/// match the digest's promise. A hit writes the stored artifact to the
/// `--json` destination and skips execution entirely; a miss runs and
/// stores the artifact on success.
fn execute_inner(mut spec: ExperimentSpec, flags: &CommonFlags, fit_growth_laws: bool) {
    if let Some(trials) = flags.trials {
        spec.trials = trials;
    }
    if let Some(metrics) = &flags.metrics {
        spec.metrics = metrics.clone();
    }
    if let Some(plan) = flags.resample {
        spec.resample = Some(plan);
    }
    if flags.shard.is_some() {
        if fit_growth_laws {
            usage("--shard does not apply to scale: growth-law fits need every sweep cell");
        }
        if flags.csv.is_some() {
            usage("--shard writes a shard artifact, not a report: merge the shards, then --csv");
        }
        if flags.wants_recovery() {
            usage(
                "--shard is already restartable per shard: re-run the missing shard instead \
                 (--checkpoint/--resume/--max-wall/--retry-blocks/--inject-faults apply to \
                 unsharded runs)",
            );
        }
    }
    let mut opts = RunOptions::auto();
    if let Some(threads) = flags.threads {
        opts.threads = threads;
    }
    if let Some(seed) = flags.seed {
        opts.base_seed = seed;
    }
    // Cache: canonicalize, key, and try to serve before running.
    let mut cache_armed: Option<(CacheStore, SpecDigest)> = None;
    if let Some((store, explicit)) = cache_store(flags) {
        let conflict = if flags.shard.is_some() {
            Some("--shard writes a shard artifact, which is not what the cache stores")
        } else if flags.csv.is_some() {
            Some("--csv renders from a live run, which a cache hit skips")
        } else {
            None
        };
        match conflict {
            Some(why) if explicit => usage(&format!("--cache does not combine here: {why}")),
            Some(why) => info!("cache: disabled ({why})"),
            None => {
                spec = spec.canonicalize();
                let kind = if fit_growth_laws {
                    ArtifactKind::Scaling
                } else {
                    ArtifactKind::Ensemble
                };
                let digest = spec_digest(&spec, opts.base_seed, flags.report_quantiles(), kind);
                match store.load(&digest) {
                    Ok(Some(artifact)) => {
                        let path = flags
                            .json
                            .clone()
                            .unwrap_or_else(|| default_artifact_path(&spec.name));
                        if let Err(e) = eproc_telemetry::write_atomic(&path, &artifact) {
                            eprintln!("error writing json artifact {}: {e}", path.display());
                            exit(1);
                        }
                        println!("cache: hit {}", digest.short());
                        println!("json: {}", path.display());
                        return;
                    }
                    Ok(None) => {
                        info!("cache: miss {} (will store on success)", digest.short());
                        cache_armed = Some((store, digest));
                    }
                    Err(e) => {
                        eprintln!("error reading cache at {}: {e}", store.root().display());
                        exit(1);
                    }
                }
            }
        }
    }
    info!(
        "running {:?}: {} jobs ({} graphs x {} processes x {} trials) on {} threads, seed {}",
        spec.name,
        spec.total_jobs(),
        spec.graphs.len(),
        spec.processes.len(),
        spec.trials,
        opts.threads,
        opts.base_seed
    );
    if let Some(plan) = spec.resample {
        info!(
            "resampling graphs per trial group: {} graph sample(s) per family, {} walk(s) each",
            plan.groups(spec.trials),
            plan.walks_per_graph
        );
    }
    // Telemetry sinks: a live progress line, a JSONL event log, and — as
    // soon as either is requested — a summary collector for the sidecar.
    // All of them observe the run from outside the deterministic path;
    // with none requested the tee is disabled and the executor takes its
    // zero-cost NullSink path.
    let progress = flags.progress.then(ProgressSink::new);
    let jsonl = flags.telemetry.as_deref().map(|path| {
        JsonlSink::create(path).unwrap_or_else(|e| {
            eprintln!("error: cannot create telemetry log {}: {e}", path.display());
            exit(1);
        })
    });
    let summary = (progress.is_some() || jsonl.is_some()).then(SummarySink::new);
    let mut sinks: Vec<&dyn TelemetrySink> = Vec::new();
    if let Some(s) = &progress {
        sinks.push(s);
    }
    if let Some(s) = &jsonl {
        sinks.push(s);
    }
    if let Some(s) = &summary {
        sinks.push(s);
    }
    let tee = Tee::new(sinks);
    let started = Instant::now();
    if let Some(shard) = flags.shard {
        info!(
            "shard {shard}: executing only the resample blocks with index = {} (mod {})",
            shard.index, shard.count
        );
        let report = match run_shard_with_sink(&spec, &opts, shard, &tee) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                exit(1);
            }
        };
        let path = flags
            .json
            .clone()
            .unwrap_or_else(|| default_shard_path(&report));
        if let Err(e) = report.save(&path) {
            eprintln!("error writing shard artifact {}: {e}", path.display());
            exit(1);
        }
        println!("shard artifact: {}", path.display());
        write_telemetry_artifacts(jsonl.as_ref(), summary.as_ref(), &path);
        info!("wall time: {:.2}s", started.elapsed().as_secs_f64());
        return;
    }
    let report = if flags.wants_recovery() {
        run_crash_safe(&spec, &opts, flags, &tee, jsonl.as_ref(), summary.as_ref())
    } else {
        match run_with_sink(&spec, &opts, &tee) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                exit(1);
            }
        }
    };
    let elapsed = started.elapsed();
    // A degenerate sweep must not discard the (possibly expensive)
    // ensemble it just measured: on a fit error the table is still
    // printed and the artifact still written — without the growth_laws
    // section — and the CLI exits nonzero at the end.
    let scaling = fit_growth_laws.then(|| analyze(&report));
    println!(
        "{}: {} ({})\n",
        report.name,
        report.description,
        report.target.label()
    );
    let table = to_text_table_with(&report, flags.report_quantiles());
    println!("{table}");
    match &scaling {
        Some(Ok(scaling)) => {
            println!("growth laws (lowest residual score wins):\n");
            println!("{}", scaling_table(scaling));
            for series in &scaling.series {
                let fit = series.selection.preferred_fit();
                println!(
                    "{} / {} / {}: prefers {} (R^2 = {:.5})",
                    series.family,
                    series.process,
                    series.series,
                    series.selection.preferred.label(),
                    fit.fit.r_squared
                );
            }
            println!();
        }
        Some(Err(e)) => {
            eprintln!("error: {e}");
            eprintln!("(the ensemble report is kept: saving the artifact without growth_laws)");
        }
        None => {}
    }
    // Render the artifact once: the same bytes go to the --json
    // destination and (on a clean run) into the cache, so a later hit
    // is cmp-identical by construction.
    let artifact_text = match &scaling {
        Some(Ok(s)) => to_json_with(&report, Some(s), flags.report_quantiles()),
        _ => to_json_with(&report, None, flags.report_quantiles()),
    };
    let artifact = flags
        .json
        .clone()
        .unwrap_or_else(|| default_artifact_path(&report.name));
    if let Err(e) = eproc_telemetry::write_atomic(&artifact, &artifact_text) {
        eprintln!("error writing json artifact: {e}");
        exit(1);
    }
    println!("json: {}", artifact.display());
    if let Some(csv) = &flags.csv {
        match eproc_telemetry::write_atomic(csv, &table.to_csv()) {
            Ok(()) => println!("csv: {}", csv.display()),
            Err(e) => {
                eprintln!("error writing csv artifact: {e}");
                exit(1);
            }
        }
    }
    if let Some((store, digest)) = &cache_armed {
        if matches!(scaling, Some(Err(_))) {
            // A degenerate fit exits 1 below; serving its artifact from
            // cache later would silently mask that failure.
            info!("cache: not storing (growth-law fit failed)");
        } else {
            let sidecar = format!(
                "{}\nname={}\nseed={}\nkind={}\nquantiles={}\n",
                spec.to_cli(),
                spec.name,
                opts.base_seed,
                if fit_growth_laws {
                    "scaling"
                } else {
                    "ensemble"
                },
                flags
                    .report_quantiles()
                    .iter()
                    .map(|q| q.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            );
            match store.store(digest, &artifact_text, &sidecar) {
                Ok(_) => println!("cache: stored {}", digest.short()),
                // The run itself succeeded and its artifact is on disk;
                // a cache store failure is a warning, not a run failure.
                Err(e) => eprintln!(
                    "warning: could not store cache entry in {}: {e}",
                    store.root().display()
                ),
            }
        }
    }
    write_telemetry_artifacts(jsonl.as_ref(), summary.as_ref(), &artifact);
    info!("wall time: {:.2}s", elapsed.as_secs_f64());
    if matches!(scaling, Some(Err(_))) {
        exit(1);
    }
}

/// The crash-safe execution path: engaged whenever any of
/// `--checkpoint`, `--resume`, `--max-wall`, `--retry-blocks` or
/// `--inject-faults` (or the `EPROC_FAULTS` environment variable) is
/// present. Installs the SIGINT/SIGTERM latch when interruption can be
/// made graceful (a checkpoint or wall budget is configured), runs
/// through [`run_recoverable_with_sink`], and on interruption writes the
/// telemetry artifacts and exits with code 75 (`EX_TEMPFAIL`) so callers
/// can distinguish "resume me" from failure.
fn run_crash_safe(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    flags: &CommonFlags,
    tee: &dyn TelemetrySink,
    jsonl: Option<&JsonlSink>,
    summary: Option<&SummarySink>,
) -> eproc_engine::ExperimentReport {
    // The command-line fault spec wins over the environment variable.
    let faults = match &flags.inject_faults {
        Some(spec) => FaultPlan::parse(spec),
        None => FaultPlan::from_env(),
    }
    .unwrap_or_else(|e| usage(&e.to_string()));
    let resume = flags.resume.as_deref().map(|path| {
        let ckpt = RunCheckpoint::load(path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1);
        });
        info!(
            "resuming from {}: {}/{} blocks already complete",
            path.display(),
            ckpt.completed_blocks(),
            ckpt.total_blocks()
        );
        ckpt
    });
    let checkpoint = flags.checkpoint.as_ref().map(|path| CheckpointPlan {
        path: path.clone(),
        every: flags.checkpoint_every.unwrap_or(1),
    });
    // Graceful Ctrl-C only makes sense when there is somewhere to drain
    // to: a checkpoint to persist, or a wall budget already promising a
    // clean stop. Otherwise leave the default (abrupt) signal behavior.
    let cancel = (checkpoint.is_some() || flags.max_wall.is_some()).then(eproc_signal::install);
    let rec = RecoveryOptions {
        checkpoint,
        resume,
        max_wall: flags.max_wall.map(Duration::from_secs_f64),
        retry_blocks: flags.retry_blocks.unwrap_or(0),
        faults,
        cancel,
    };
    match run_recoverable_with_sink(spec, opts, &rec, tee) {
        Ok(RunOutcome::Completed(report)) => report,
        Ok(RunOutcome::Interrupted {
            reason,
            completed,
            total,
            checkpoint,
        }) => {
            match &checkpoint {
                Some(path) => info!(
                    "interrupted ({reason}): {completed}/{total} blocks complete; \
                     resume with --resume {}",
                    path.display()
                ),
                None => info!(
                    "interrupted ({reason}): {completed}/{total} blocks complete \
                     (no --checkpoint configured, progress not persisted)"
                ),
            }
            // The sidecar still lands next to where the artifact would
            // have gone, so an interrupted run's wall-time breakdown is
            // not lost with it.
            let anchor = flags
                .json
                .clone()
                .unwrap_or_else(|| default_artifact_path(&spec.name));
            write_telemetry_artifacts(jsonl, summary, &anchor);
            exit(EXIT_INTERRUPTED);
        }
        Err(e) => {
            eprintln!("error: {e}");
            if let Some(path) = &flags.checkpoint {
                info!(
                    "completed blocks were checkpointed to {}; fix the cause and --resume",
                    path.display()
                );
            }
            exit(1);
        }
    }
}

/// Where `save_json` would put the artifact for `name` — used as the
/// telemetry sidecar anchor when an interrupted run never writes one.
fn default_artifact_path(name: &str) -> PathBuf {
    eproc_engine::report::default_artifact_dir().join(format!("eproc_{name}.json"))
}

/// The `<artifact>.telemetry.json` sidecar path. A plain
/// `Path::with_extension("telemetry.json")` clobbers everything after
/// the last dot of the file name — `run-2.5x` would become
/// `run-2.telemetry.json` — so instead strip one trailing `.json` (when
/// present) and append the sidecar suffix to the whole remaining name.
fn telemetry_sidecar_path(artifact: &Path) -> PathBuf {
    let name = artifact
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or_default();
    let stem = name.strip_suffix(".json").unwrap_or(name);
    artifact.with_file_name(format!("{stem}.telemetry.json"))
}

/// Flushes the JSONL event log (surfacing any write error the sink
/// swallowed mid-run: a truncated log must not pass silently as a
/// complete one) and writes the summary sidecar next to `artifact`.
/// Exits nonzero on either failure.
fn write_telemetry_artifacts(
    jsonl: Option<&JsonlSink>,
    summary: Option<&SummarySink>,
    artifact: &Path,
) {
    if let Some(jsonl) = jsonl {
        match jsonl.finish() {
            Ok(()) => println!("telemetry: {}", jsonl.path().display()),
            Err(e) => {
                eprintln!(
                    "error writing telemetry log {}: {e}",
                    jsonl.path().display()
                );
                exit(1);
            }
        }
    }
    if let Some(summary) = summary {
        let sidecar = telemetry_sidecar_path(artifact);
        match summary.summary().save(&sidecar) {
            Ok(()) => println!("telemetry sidecar: {}", sidecar.display()),
            Err(e) => {
                eprintln!("error writing telemetry sidecar {}: {e}", sidecar.display());
                exit(1);
            }
        }
    }
}

/// Default artifact path for a shard run, parallel to `save_json`'s
/// `target/experiments/eproc_<name>.json` convention.
fn default_shard_path(report: &ShardReport) -> PathBuf {
    PathBuf::from(format!(
        "target/experiments/eproc_{}.shard{}of{}.json",
        report.name, report.shard.index, report.shard.count
    ))
}

fn cmd_run(args: impl Iterator<Item = String>) {
    let parsed = parse_or_usage("run", EXEC_ACCEPTS, RUN_EXTRA, args);
    let flags = CommonFlags::from_parsed(&parsed);
    let name = match parsed.positionals.as_slice() {
        [] => usage("run needs a spec name"),
        [name] => name.clone(),
        _ => usage("run takes exactly one spec name"),
    };
    let scale = flags.scale.unwrap_or(Scale::Quick);
    let spec = builtin::spec(&name, scale).unwrap_or_else(|| {
        usage(&format!(
            "unknown spec {name:?}; available: {}",
            builtin::names().join(", ")
        ))
    });
    execute(spec, &flags);
}

/// The ad-hoc-spec flags `compare` and `scale` share. `target`, `cap`
/// and `start` stay `None` until explicitly set, so `scale <name>` can
/// reject flags that would otherwise be silently ignored.
#[derive(Default)]
struct AdhocSpec {
    graphs: Vec<GraphSpec>,
    processes: Vec<ProcessSpec>,
    target: Option<Target>,
    cap: Option<CapSpec>,
    start: Option<usize>,
    marked_resample: bool,
    /// `--sweep` range (accepted by `scale` only).
    sweep: Option<SweepRange>,
    saw_inline_sweep: bool,
}

impl AdhocSpec {
    /// Interprets the grid-shaped flags of `compare`/`scale` from the
    /// lexed arguments. With `sweeps` (the `scale` shape) a `--graph`
    /// value may carry an inline `{range}`; without it (`compare`) the
    /// plain resample-marker grammar applies.
    fn from_parsed(parsed: &Parsed, sweeps: bool) -> AdhocSpec {
        let mut spec = AdhocSpec::default();
        for (name, value) in &parsed.flags {
            let v = || value.as_deref().expect("value-arity flag has a value");
            match *name {
                "--graph" => {
                    for part in v().split(';') {
                        if sweeps {
                            let (expanded, marked, range) = GraphSpec::parse_with_sweep(part)
                                .unwrap_or_else(|e| usage(&e.to_string()));
                            spec.marked_resample |= marked;
                            spec.saw_inline_sweep |= range.is_some();
                            spec.graphs.extend(expanded);
                        } else {
                            let (graph, marked) = GraphSpec::parse_with_resample(part)
                                .unwrap_or_else(|e| usage(&e.to_string()));
                            spec.marked_resample |= marked;
                            spec.graphs.push(graph);
                        }
                    }
                }
                "--process" => {
                    for part in v().split(',') {
                        spec.processes.push(
                            ProcessSpec::parse(part).unwrap_or_else(|e| usage(&e.to_string())),
                        );
                    }
                }
                "--sweep" => {
                    spec.sweep = Some(
                        SweepRange::parse(v())
                            .and_then(|r| r.normalize())
                            .unwrap_or_else(|e| usage(&e.to_string())),
                    );
                }
                "--target" => {
                    spec.target =
                        Some(Target::parse(v()).unwrap_or_else(|e| usage(&e.to_string())));
                }
                "--start" => {
                    spec.start = Some(ok_or_usage(expect_u64("--start", v())) as usize);
                }
                "--cap" => {
                    spec.cap = Some(CapSpec::parse(v()).unwrap_or_else(|e| usage(&e.to_string())));
                }
                "--cap-nlogn" => {
                    spec.cap = Some(CapSpec::NLogN(ok_or_usage(expect_positive_f64(
                        "--cap-nlogn",
                        v(),
                    ))));
                }
                _ => {}
            }
        }
        spec
    }

    /// `scale <name>` must reject grid flags that would silently be
    /// ignored (a named spec fixes its grid).
    fn names_grid_flags(&self) -> bool {
        !self.processes.is_empty()
            || self.target.is_some()
            || self.start.is_some()
            || self.cap.is_some()
    }
}

fn cmd_compare(args: impl Iterator<Item = String>) {
    let parsed = parse_or_usage("compare", EXEC_ACCEPTS, COMPARE_EXTRA, args);
    let flags = CommonFlags::from_parsed(&parsed);
    let adhoc = AdhocSpec::from_parsed(&parsed, false);
    if let Some(tok) = parsed.positionals.first() {
        usage(&format!(
            "compare takes no positional arguments, got {tok:?} (use --graph/--process)"
        ));
    }
    if adhoc.graphs.is_empty() {
        usage("compare needs at least one --graph");
    }
    if adhoc.processes.is_empty() {
        usage("compare needs at least one --process");
    }
    let spec = ExperimentSpec {
        name: "compare".into(),
        description: "ad-hoc comparison built from CLI flags".into(),
        graphs: adhoc.graphs,
        processes: adhoc.processes,
        trials: flags.trials.unwrap_or(5),
        target: adhoc.target.unwrap_or(Target::VertexCover),
        metrics: flags.metrics.clone().unwrap_or_default(),
        start: adhoc.start.unwrap_or(0),
        cap: adhoc.cap.unwrap_or(CapSpec::Auto),
        // `--resample [W]` wins; a bare `~` graph marker means per-trial.
        resample: flags
            .resample
            .or(adhoc.marked_resample.then(ResamplePlan::per_trial)),
    };
    execute(spec, &flags);
}

fn cmd_scale(args: impl Iterator<Item = String>) {
    let parsed = parse_or_usage("scale", EXEC_ACCEPTS, SCALE_EXTRA, args);
    let flags = CommonFlags::from_parsed(&parsed);
    let mut adhoc = AdhocSpec::from_parsed(&parsed, true);
    let name = match parsed.positionals.as_slice() {
        [] => None,
        [name] => Some(name.clone()),
        _ => usage("scale takes at most one spec name"),
    };
    if let Some(name) = name {
        if !adhoc.graphs.is_empty() || adhoc.sweep.is_some() {
            usage("scale takes either a spec name or --graph/--sweep flags, not both");
        }
        // A named spec already fixes its grid; honouring only some of
        // these flags would silently run a different experiment than the
        // one asked for, so reject them outright (--trials, --metrics
        // and --resample are honoured as overrides, like `run`).
        if adhoc.names_grid_flags() {
            usage(
                "scale <name> runs the named spec as-is: --process/--target/--start/--cap \
                 only apply to --graph sweeps (--trials/--metrics/--resample do override)",
            );
        }
        let scale = flags.scale.unwrap_or(Scale::Quick);
        let spec = builtin::spec(&name, scale).unwrap_or_else(|| {
            usage(&format!(
                "unknown spec {name:?}; scaling sweeps: {} (any built-in spec with >= 3 sizes works)",
                builtin::scaling_names().join(", ")
            ))
        });
        execute_inner(spec, &flags, true);
        return;
    }
    if adhoc.graphs.is_empty() {
        usage("scale needs a spec name or at least one --graph");
    }
    if adhoc.processes.is_empty() {
        usage("scale needs at least one --process");
    }
    let mut graphs = adhoc.graphs;
    if let Some(range) = adhoc.sweep {
        if adhoc.saw_inline_sweep {
            usage("use either an inline {range} in --graph or --sweep, not both");
        }
        // Each --graph becomes a size template: re-instantiate it at
        // every sweep point.
        let templates = std::mem::take(&mut graphs);
        let points = range.points().unwrap_or_else(|e| usage(&e.to_string()));
        for template in &templates {
            for &n in &points {
                graphs.push(
                    template
                        .with_primary_size(n)
                        .unwrap_or_else(|e| usage(&e.to_string())),
                );
            }
        }
        adhoc.sweep = None;
    }
    // `--resample [W]` wins; otherwise randomized sweeps default to a
    // fresh graph per trial so each size estimates the ensemble law, and
    // purely deterministic sweeps stay in shared mode.
    let any_randomized = graphs.iter().any(GraphSpec::is_randomized);
    let resample = flags
        .resample
        .or((adhoc.marked_resample || any_randomized).then(ResamplePlan::per_trial));
    let spec = ExperimentSpec {
        name: "scale".into(),
        description: "ad-hoc size sweep built from CLI flags".into(),
        graphs,
        processes: adhoc.processes,
        trials: flags.trials.unwrap_or(4),
        target: adhoc.target.unwrap_or(Target::VertexCover),
        metrics: flags.metrics.clone().unwrap_or_default(),
        start: adhoc.start.unwrap_or(0),
        cap: adhoc.cap.unwrap_or(CapSpec::Auto),
        resample,
    };
    execute_inner(spec, &flags, true);
}

/// `eproc merge <shard.json> ...` — recombine a complete shard set into
/// the unsharded run's report, byte-identical to running unsharded.
/// Run-shaped flags are foreign here and rejected by the flag table
/// (run parameters are fixed by the shards themselves).
fn cmd_merge(args: impl Iterator<Item = String>) {
    let parsed = parse_or_usage("merge", MERGE_ACCEPTS, &[], args);
    let flags = CommonFlags::from_parsed(&parsed);
    let paths: Vec<PathBuf> = parsed.positionals.iter().map(PathBuf::from).collect();
    if paths.is_empty() {
        usage("merge needs at least one shard artifact path");
    }
    let shards: Vec<ShardReport> = paths
        .iter()
        .map(|p| {
            ShardReport::load(p).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1);
            })
        })
        .collect();
    let jsonl = flags.telemetry.as_deref().map(|path| {
        JsonlSink::create(path).unwrap_or_else(|e| {
            eprintln!("error: cannot create telemetry log {}: {e}", path.display());
            exit(1);
        })
    });
    let summary = jsonl.is_some().then(SummarySink::new);
    let mut sinks: Vec<&dyn TelemetrySink> = Vec::new();
    if let Some(s) = &jsonl {
        sinks.push(s);
    }
    if let Some(s) = &summary {
        sinks.push(s);
    }
    let tee = Tee::new(sinks);
    info!("merging {} shard artifact(s)", shards.len());
    let report = match merge_shards_with_sink(&shards, &tee) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    };
    println!(
        "{}: {} ({})\n",
        report.name,
        report.description,
        report.target.label()
    );
    let table = to_text_table_with(&report, flags.report_quantiles());
    println!("{table}");
    let artifact = flags
        .json
        .clone()
        .unwrap_or_else(|| default_artifact_path(&report.name));
    if let Err(e) = eproc_telemetry::write_atomic(
        &artifact,
        &to_json_with(&report, None, flags.report_quantiles()),
    ) {
        eprintln!("error writing json artifact: {e}");
        exit(1);
    }
    println!("json: {}", artifact.display());
    if let Some(csv) = &flags.csv {
        match eproc_telemetry::write_atomic(csv, &table.to_csv()) {
            Ok(()) => println!("csv: {}", csv.display()),
            Err(e) => {
                eprintln!("error writing csv artifact: {e}");
                exit(1);
            }
        }
    }
    write_telemetry_artifacts(jsonl.as_ref(), summary.as_ref(), &artifact);
}

/// `eproc cache ls|gc|path` — inspect and prune the artifact store.
fn cmd_cache(args: impl Iterator<Item = String>) {
    let parsed = parse_or_usage("cache", CACHE_ACCEPTS, &[], args);
    let flags = CommonFlags::from_parsed(&parsed);
    let (action, rest) = match parsed.positionals.as_slice() {
        [] => usage("cache needs an action: ls, gc or path"),
        [action, rest @ ..] => (action.as_str(), rest),
    };
    let Some((store, _)) = cache_store(&flags) else {
        usage("cache needs --cache DIR or the EPROC_CACHE environment variable");
    };
    match action {
        "ls" => {
            if let Some(tok) = rest.first() {
                usage(&format!("cache ls takes no further arguments, got {tok:?}"));
            }
            let entries = store.entries().unwrap_or_else(|e| {
                eprintln!("error reading cache at {}: {e}", store.root().display());
                exit(1);
            });
            let mut table = eproc_stats::TextTable::new(vec!["digest", "bytes", "spec"]);
            let mut total = 0u64;
            for entry in &entries {
                total += entry.bytes;
                table.push_row(vec![
                    entry.digest[..12].to_string(),
                    entry.bytes.to_string(),
                    entry.spec_line.clone(),
                ]);
            }
            println!("{table}");
            println!(
                "{} entr{} ({} bytes) in {}",
                entries.len(),
                if entries.len() == 1 { "y" } else { "ies" },
                total,
                store.root().display()
            );
        }
        "gc" => {
            if let Some(tok) = rest.first() {
                usage(&format!("cache gc takes no further arguments, got {tok:?}"));
            }
            let max_bytes = match parsed.value_of("--max-bytes") {
                Some(raw) => ok_or_usage(expect_u64("--max-bytes", raw)),
                None => 0,
            };
            let stats = store.gc(max_bytes).unwrap_or_else(|e| {
                eprintln!("error pruning cache at {}: {e}", store.root().display());
                exit(1);
            });
            println!(
                "removed {} entr{} ({} bytes), kept {}",
                stats.removed,
                if stats.removed == 1 { "y" } else { "ies" },
                stats.freed_bytes,
                stats.kept
            );
        }
        "path" => match rest {
            [] => println!("{}", store.root().display()),
            [prefix] => {
                let matches = store.resolve_prefix(prefix).unwrap_or_else(|e| {
                    eprintln!("error reading cache at {}: {e}", store.root().display());
                    exit(1);
                });
                match matches.as_slice() {
                    [] => {
                        eprintln!("error: no cache entry matches {prefix:?}");
                        exit(1);
                    }
                    [path] => println!("{}", path.display()),
                    many => {
                        eprintln!(
                            "error: {prefix:?} is ambiguous ({} entries match)",
                            many.len()
                        );
                        exit(1);
                    }
                }
            }
            [_, tok, ..] => usage(&format!(
                "cache path takes at most one digest prefix, got {tok:?}"
            )),
        },
        other => usage(&format!("unknown cache action {other:?} (ls|gc|path)")),
    }
}

#[cfg(test)]
mod tests {
    use super::telemetry_sidecar_path;
    use std::path::Path;

    #[test]
    fn sidecar_path_replaces_a_json_suffix() {
        assert_eq!(
            telemetry_sidecar_path(Path::new("target/experiments/eproc_comparison.json")),
            Path::new("target/experiments/eproc_comparison.telemetry.json")
        );
    }

    #[test]
    fn sidecar_path_keeps_dotted_names_without_a_json_suffix() {
        // `with_extension` would truncate this to `run-2.telemetry.json`.
        assert_eq!(
            telemetry_sidecar_path(Path::new("out/run-2.5x")),
            Path::new("out/run-2.5x.telemetry.json")
        );
    }

    #[test]
    fn sidecar_path_strips_only_one_json_suffix() {
        assert_eq!(
            telemetry_sidecar_path(Path::new("a.json.json")),
            Path::new("a.json.telemetry.json")
        );
    }
}
