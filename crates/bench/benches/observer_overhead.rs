//! Steps/second of the E-process with 0 vs 3 attached observers.
//!
//! The observer pipeline claims near-zero per-step overhead: feeding
//! cover + blanket + phase observers from one walk must stay cheap
//! relative to the walk's own bookkeeping. This bench pins that, and
//! writes a machine-readable snapshot to
//! `target/experiments/BENCH_observer.json` so CI can record the perf
//! trajectory across commits.

use criterion::black_box;
use eproc_bench::{output_dir, rng_for};
use eproc_core::cover::CoverTarget;
use eproc_core::observe::{
    run_observed, BlanketObserver, CoverObserver, Observer, PhaseObserver, StopWhen,
};
use eproc_core::rule::UniformRule;
use eproc_core::{EProcess, WalkProcess};
use eproc_graphs::generators;
use eproc_graphs::Graph;
use std::time::Instant;

const STEPS: u64 = 200_000;
const SAMPLES: usize = 7;

/// Median seconds over `SAMPLES` timed runs of `f`.
fn median_secs<F: FnMut()>(mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn bare_walk(g: &Graph) -> f64 {
    median_secs(|| {
        let mut rng = rng_for(2);
        let mut w = EProcess::new(g, 0, UniformRule::new());
        for _ in 0..STEPS {
            black_box(w.advance(&mut rng));
        }
    })
}

fn observed_walk(g: &Graph) -> f64 {
    // Observers are constructed once and re-armed per run, matching the
    // executor's scratch reuse.
    let mut cover = CoverObserver::new(CoverTarget::Both);
    let mut blanket = BlanketObserver::new(0.4).expect("valid delta");
    let mut phases = PhaseObserver::new();
    median_secs(move || {
        let mut rng = rng_for(2);
        let mut w = EProcess::new(g, 0, UniformRule::new());
        let run = run_observed(
            &mut w,
            &mut [&mut cover as &mut dyn Observer, &mut blanket, &mut phases],
            StopWhen::Cap,
            STEPS,
            &mut rng,
        );
        black_box(run);
    })
}

fn main() {
    let mut graph_rng = rng_for(1);
    let g = generators::connected_random_regular(10_000, 4, &mut graph_rng).unwrap();
    let bare = bare_walk(&g);
    let observed = observed_walk(&g);
    let bare_rate = STEPS as f64 / bare;
    let observed_rate = STEPS as f64 / observed;
    println!(
        "observer_overhead/bare_eprocess: {:.0} ns/iter  {:.2} Msteps/s",
        bare * 1e9 / STEPS as f64,
        bare_rate / 1e6
    );
    println!(
        "observer_overhead/three_observers: {:.0} ns/iter  {:.2} Msteps/s",
        observed * 1e9 / STEPS as f64,
        observed_rate / 1e6
    );
    println!(
        "observer_overhead/slowdown: {:.2}x",
        bare_rate / observed_rate
    );
    let json = format!(
        "{{\n  \"bench\": \"observer_overhead\",\n  \"graph\": \"random 4-regular n={}\",\n  \
         \"steps_per_run\": {},\n  \"samples\": {},\n  \
         \"steps_per_sec_0_observers\": {:.0},\n  \
         \"steps_per_sec_3_observers\": {:.0},\n  \
         \"slowdown\": {:.4}\n}}\n",
        g.n(),
        STEPS,
        SAMPLES,
        bare_rate,
        observed_rate,
        bare_rate / observed_rate
    );
    let dir = output_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = dir.join("BENCH_observer.json");
    std::fs::write(&path, json).expect("write snapshot");
    println!("json: {}", path.display());
}
