//! **T-lb**: lower bounds on random-walk cover times (Theorem 5, Feige)
//! versus the E-process.
//!
//! Any reversible/weighted random walk needs `≥ (n/4) log(n/2)` (Radzik,
//! Theorem 5) and in fact `(1−o(1)) n ln n` (Feige). The E-process beats
//! both on even-degree expanders — the "speed up of Ω(min(log n, ℓ))"
//! claimed after eq. (1).

use eproc_bench::{mean_vertex_cover_steps, rng_for, save_table, Config, Scale};
use eproc_core::rule::UniformRule;
use eproc_core::srw::SimpleRandomWalk;
use eproc_core::EProcess;
use eproc_graphs::generators;
use eproc_stats::{SeedSequence, TextTable};
use eproc_theory::{feige_lower_bound, radzik_lower_bound};

const REPS: usize = 5;

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Lower bounds: SRW cover time vs Radzik (n/4)ln(n/2) and Feige n*ln(n);");
    println!("the E-process undercuts both on even-degree expanders.\n");
    let mut table = TextTable::new(vec![
        "graph",
        "n",
        "SRW CV",
        "Radzik lb",
        "Feige n*ln n",
        "SRW/(n ln n)",
        "E CV",
        "E CV/n",
    ]);

    let sizes: Vec<usize> = match config.scale {
        Scale::Quick => vec![1_000, 4_000],
        Scale::Paper => vec![4_000, 16_000, 65_536],
    };
    for &n in &sizes {
        let mut graph_rng = rng_for(seeds.derive(&[4, n as u64]));
        let g = generators::connected_random_regular(n, 4, &mut graph_rng).unwrap();
        let cap = (2_000.0 * n as f64 * (n as f64).ln()) as u64;
        let mut rng = rng_for(seeds.derive(&[4, n as u64, 1]));
        let (srw_mean, d1) =
            mean_vertex_cover_steps(|_| SimpleRandomWalk::new(&g, 0), REPS, cap, &mut rng);
        let (e_mean, d2) = mean_vertex_cover_steps(
            |_| EProcess::new(&g, 0, UniformRule::new()),
            REPS,
            cap,
            &mut rng,
        );
        assert_eq!((d1, d2), (REPS, REPS));
        let radzik = radzik_lower_bound(n);
        let feige = feige_lower_bound(n);
        assert!(
            srw_mean > radzik,
            "Theorem 5 violated: SRW covered {n}-vertex graph in {srw_mean} < {radzik}"
        );
        table.push_row(vec![
            "random 4-regular".into(),
            n.to_string(),
            format!("{srw_mean:.0}"),
            format!("{radzik:.0}"),
            format!("{feige:.0}"),
            format!("{:.3}", srw_mean / feige),
            format!("{e_mean:.0}"),
            format!("{:.2}", e_mean / n as f64),
        ]);
    }

    // Structured graphs for contrast.
    let torus_side = match config.scale {
        Scale::Quick => 32,
        Scale::Paper => 64,
    };
    let torus = generators::torus2d(torus_side, torus_side);
    let hyper = generators::hypercube(match config.scale {
        Scale::Quick => 10,
        Scale::Paper => 13,
    });
    for (name, g) in [("torus", &torus), ("hypercube", &hyper)] {
        let n = g.n();
        let cap = (20_000.0 * n as f64 * (n as f64).ln()) as u64;
        let mut rng = rng_for(seeds.derive(&[99, n as u64]));
        let (srw_mean, d1) =
            mean_vertex_cover_steps(|_| SimpleRandomWalk::new(g, 0), REPS, cap, &mut rng);
        let (e_mean, d2) = mean_vertex_cover_steps(
            |_| EProcess::new(g, 0, UniformRule::new()),
            REPS,
            cap,
            &mut rng,
        );
        assert_eq!((d1, d2), (REPS, REPS));
        let radzik = radzik_lower_bound(n);
        assert!(srw_mean > radzik, "Theorem 5 violated on {name}");
        table.push_row(vec![
            name.into(),
            n.to_string(),
            format!("{srw_mean:.0}"),
            format!("{radzik:.0}"),
            format!("{:.0}", feige_lower_bound(n)),
            format!("{:.3}", srw_mean / feige_lower_bound(n)),
            format!("{e_mean:.0}"),
            format!("{:.2}", e_mean / n as f64),
        ]);
    }
    println!("{table}");
    let p = save_table("table_lower_bound", &table).expect("write csv");
    println!("csv: {}", p.display());
}
