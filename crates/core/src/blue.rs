//! Blue-subgraph analytics: Observations 10–11 and the §5 star census.
//!
//! While the E-process is in a red phase, the unvisited (blue) edges form
//! edge-induced components in which every vertex has even blue degree
//! (Observation 11); every unvisited vertex sits inside such a component.
//! For odd-degree regular graphs §5 argues a constant fraction of vertices
//! (`≈ 1/8` for `r = 3`) is left behind as *isolated blue stars* by the
//! first blue phase, which is why the cover time jumps to `Θ(n log n)`.

use crate::bitset::BitSet;
use crate::eprocess::rule::EdgeRule;
use crate::eprocess::EProcess;
use crate::process::WalkProcess;
use eproc_graphs::{EdgeId, Graph, Vertex};
use rand::RngCore;

/// One connected component of the blue (unvisited) edge-induced subgraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlueComponent {
    /// Vertices touched by at least one blue edge, sorted.
    pub vertices: Vec<Vertex>,
    /// The blue edges of the component, sorted.
    pub edges: Vec<EdgeId>,
}

/// Blue degree of every vertex: incident edges not yet visited.
///
/// # Panics
///
/// Panics if `edge_visited.len() != g.m()`.
pub fn blue_degrees(g: &Graph, edge_visited: &BitSet) -> Vec<usize> {
    assert_eq!(edge_visited.len(), g.m(), "edge bitmap length mismatch");
    let mut deg = vec![0usize; g.n()];
    for (e, u, v) in g.edges() {
        if !edge_visited.get(e) {
            deg[u] += 1;
            deg[v] += 1;
        }
    }
    deg
}

/// Connected components of the blue edge-induced subgraph.
///
/// # Panics
///
/// Panics if `edge_visited.len() != g.m()`.
pub fn blue_components(g: &Graph, edge_visited: &BitSet) -> Vec<BlueComponent> {
    assert_eq!(edge_visited.len(), g.m(), "edge bitmap length mismatch");
    let deg = blue_degrees(g, edge_visited);
    let mut assigned = vec![false; g.n()];
    let mut components = Vec::new();
    for root in g.vertices() {
        if assigned[root] || deg[root] == 0 {
            continue;
        }
        let mut vertices = vec![root];
        let mut edges = Vec::new();
        assigned[root] = true;
        let mut head = 0;
        while head < vertices.len() {
            let u = vertices[head];
            head += 1;
            for (_, w, e) in g.ports(u) {
                if edge_visited.get(e) {
                    continue;
                }
                // Record each blue edge once, from its smaller endpoint
                // position in BFS; dedupe via edge ownership below.
                if !assigned[w] {
                    assigned[w] = true;
                    vertices.push(w);
                }
                edges.push(e);
            }
        }
        edges.sort_unstable();
        edges.dedup();
        vertices.sort_unstable();
        components.push(BlueComponent { vertices, edges });
    }
    components
}

/// Checks Observation 11(2): every vertex has even blue degree, except the
/// optional `odd_pair` (the blue-phase start and current vertices, which
/// carry odd blue degree mid-phase; pass `None` during red phases).
///
/// # Panics
///
/// Panics if `edge_visited.len() != g.m()`.
pub fn blue_degrees_even(
    g: &Graph,
    edge_visited: &BitSet,
    odd_pair: Option<(Vertex, Vertex)>,
) -> bool {
    let deg = blue_degrees(g, edge_visited);
    g.vertices().all(|v| {
        let expect_odd = match odd_pair {
            Some((a, b)) if a != b => v == a || v == b,
            _ => false,
        };
        (deg[v] % 2 == 1) == expect_odd
    })
}

/// Vertices that are centers of *isolated blue stars*: `v` is unvisited
/// (hence all `d(v)` incident edges are blue, Observation 11(1)) and every
/// blue neighbour's blue edges all lead back to `v` — the component is
/// exactly the star around `v`. §5 predicts `|I| ≈ n/8` of these for the
/// first blue phase on random 3-regular graphs.
///
/// # Panics
///
/// Panics if the bitmap lengths do not match the graph.
pub fn isolated_star_centers(
    g: &Graph,
    edge_visited: &BitSet,
    vertex_visited: &[bool],
) -> Vec<Vertex> {
    assert_eq!(edge_visited.len(), g.m(), "edge bitmap length mismatch");
    assert_eq!(vertex_visited.len(), g.n(), "vertex bitmap length mismatch");
    let deg = blue_degrees(g, edge_visited);
    let mut centers = Vec::new();
    'vertex: for v in g.vertices() {
        if vertex_visited[v] || g.degree(v) == 0 {
            continue;
        }
        debug_assert_eq!(
            deg[v],
            g.degree(v),
            "unvisited vertex must have all edges blue"
        );
        for (_, w, e) in g.ports(v) {
            if edge_visited.get(e) {
                continue 'vertex; // not actually all blue: inconsistent input
            }
            // Every blue edge at w must lead back to v.
            let w_blue_to_v = g
                .ports(w)
                .filter(|&(_, t, f)| !edge_visited.get(f) && t == v)
                .count();
            if deg[w] != w_blue_to_v {
                continue 'vertex;
            }
        }
        centers.push(v);
    }
    centers
}

/// Outcome of running the first blue phase to completion.
#[derive(Debug, Clone)]
pub struct FirstBluePhase {
    /// Length of the phase in steps (edges traversed).
    pub length: u64,
    /// Vertex where the phase ended (equals the start on even-degree
    /// graphs, Observation 10).
    pub end_vertex: Vertex,
    /// Vertices visited during the phase (start included).
    pub vertex_visited: Vec<bool>,
}

/// Runs an E-process until its first blue phase ends (the next step would
/// be red, or every edge is visited).
///
/// The walk must be fresh (no steps taken) so that the phase is the *first*
/// one.
///
/// # Panics
///
/// Panics if the walk has already taken steps.
pub fn run_first_blue_phase<A: EdgeRule>(
    walk: &mut EProcess<'_, A>,
    rng: &mut dyn RngCore,
) -> FirstBluePhase {
    assert_eq!(walk.steps(), 0, "first blue phase requires a fresh walk");
    let g = walk.graph();
    let mut vertex_visited = vec![false; g.n()];
    vertex_visited[walk.current()] = true;
    let mut length = 0u64;
    while walk.in_blue_phase() {
        let step = walk.advance(rng);
        vertex_visited[step.to] = true;
        length += 1;
    }
    FirstBluePhase {
        length,
        end_vertex: walk.current(),
        vertex_visited,
    }
}

/// Extracts a blue component as a standalone graph (vertices relabelled),
/// ready for the full property machinery — e.g. verifying that it
/// decomposes into cycles (Observation 11) via
/// [`eproc_graphs::properties::euler::cycle_decomposition_full`].
pub fn component_as_graph(
    g: &Graph,
    component: &BlueComponent,
) -> eproc_graphs::subgraph::Subgraph {
    eproc_graphs::subgraph::edge_subgraph(g, &component.edges)
}

/// Outcome of a star-tracking run (see [`track_isolated_stars`]).
#[derive(Debug, Clone)]
pub struct StarCensus {
    /// Vertices that at some point became isolated blue star centers.
    pub ever_star_centers: Vec<Vertex>,
    /// Steps until vertex cover (`None` if the cap was hit first).
    pub steps_to_vertex_cover: Option<u64>,
    /// Total steps taken.
    pub steps: u64,
}

/// Runs a fresh E-process to vertex cover, recording every vertex that at
/// any point becomes the center of an isolated blue star.
///
/// This is the experimental quantity behind §5's argument: for random
/// 3-regular graphs, the blue walk strands `≈ n/8` isolated stars, and the
/// embedded random walk must then collect them coupon-collector style —
/// hence `Θ(n log n)` cover time for odd degrees.
///
/// Star formation is detected event-driven: consuming a blue edge `{w, x}`
/// can only complete stars centred at unvisited blue-neighbours of `w` or
/// `x`, so the check is `O(Δ²)` per step.
///
/// # Panics
///
/// Panics if the walk has already taken steps.
pub fn track_isolated_stars<A: EdgeRule>(
    walk: &mut EProcess<'_, A>,
    max_steps: u64,
    rng: &mut dyn RngCore,
) -> StarCensus {
    assert_eq!(walk.steps(), 0, "star tracking requires a fresh walk");
    let g = walk.graph();
    let n = g.n();
    let mut vertex_visited = vec![false; n];
    vertex_visited[walk.current()] = true;
    let mut remaining = n - 1;
    let mut is_star = vec![false; n];
    let mut ever: Vec<Vertex> = Vec::new();
    let mut t = 0u64;
    let mut steps_to_vertex_cover = if remaining == 0 { Some(0) } else { None };
    while remaining > 0 && t < max_steps {
        let step = walk.advance(rng);
        t += 1;
        if !vertex_visited[step.to] {
            vertex_visited[step.to] = true;
            remaining -= 1;
            if remaining == 0 {
                steps_to_vertex_cover = Some(t);
            }
        }
        if step.kind != crate::process::StepKind::Blue {
            continue;
        }
        // Candidates: unvisited blue-neighbours of the consumed edge's
        // endpoints.
        let g = walk.graph();
        let (a, b) = g.endpoints(step.edge.expect("blue steps traverse an edge"));
        for end in [a, b] {
            for (_, cand, e) in g.ports(end) {
                if walk.edge_visited(e) || vertex_visited[cand] || is_star[cand] {
                    continue;
                }
                if is_isolated_star_at(walk, cand) {
                    is_star[cand] = true;
                    ever.push(cand);
                }
            }
        }
    }
    ever.sort_unstable();
    StarCensus {
        ever_star_centers: ever,
        steps_to_vertex_cover,
        steps: t,
    }
}

/// `true` if the blue component around the (unvisited) vertex `v` is
/// exactly its star: every blue edge of every neighbour leads back to `v`.
fn is_isolated_star_at<A: EdgeRule>(walk: &EProcess<'_, A>, v: Vertex) -> bool {
    let g = walk.graph();
    for (_, w, e) in g.ports(v) {
        if walk.edge_visited(e) {
            return false; // v is not fully blue: cannot be a stranded center
        }
        let w_blue_to_v = g
            .ports(w)
            .filter(|&(_, t, f)| !walk.edge_visited(f) && t == v)
            .count();
        if walk.blue_degree(w) != w_blue_to_v {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eprocess::rule::UniformRule;
    use eproc_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_blue_initially_one_component() {
        let g = generators::torus2d(4, 4);
        let visited = BitSet::with_len(g.m());
        let comps = blue_components(&g, &visited);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].vertices.len(), g.n());
        assert_eq!(comps[0].edges.len(), g.m());
    }

    #[test]
    fn all_red_no_components() {
        let g = generators::torus2d(4, 4);
        let visited: BitSet = (0..g.m()).map(|_| true).collect();
        assert!(blue_components(&g, &visited).is_empty());
    }

    #[test]
    fn components_split_correctly() {
        // figure_eight: removing one triangle's edges leaves the other.
        let g = generators::figure_eight(3);
        let mut visited = BitSet::with_len(g.m());
        (0..3).for_each(|e| visited.set(e));
        let comps = blue_components(&g, &visited);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].edges.len(), 3);
    }

    #[test]
    fn observation10_blue_phase_returns_to_start_on_even_graphs() {
        for (g, start) in [
            (generators::torus2d(4, 4), 5),
            (generators::hypercube(4), 0),
            (generators::figure_eight(5), 3),
            (generators::complete(7), 2),
        ] {
            for seed in 0..5 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut walk = EProcess::new(&g, start, UniformRule::new());
                let phase = run_first_blue_phase(&mut walk, &mut rng);
                assert_eq!(
                    phase.end_vertex, start,
                    "Observation 10 violated (seed {seed})"
                );
                assert!(phase.length >= 3);
            }
        }
    }

    #[test]
    fn observation11_blue_degrees_even_after_phase() {
        let g = generators::torus2d(5, 4);
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut walk = EProcess::new(&g, 0, UniformRule::new());
            let _ = run_first_blue_phase(&mut walk, &mut rng);
            assert!(blue_degrees_even(&g, walk.visited_edges(), None));
            // And the blue components all have even positive degrees.
            let deg = blue_degrees(&g, walk.visited_edges());
            for comp in blue_components(&g, walk.visited_edges()) {
                for &v in &comp.vertices {
                    assert!(deg[v] >= 2 && deg[v].is_multiple_of(2));
                }
            }
        }
    }

    #[test]
    fn observation11_parity_mid_phase() {
        let g = generators::hypercube(4);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let start = walk.start();
        for _ in 0..10 {
            if !walk.in_blue_phase() {
                break;
            }
            walk.advance(&mut rng);
            let cur = walk.current();
            let odd_pair = if cur == start {
                None
            } else {
                Some((start, cur))
            };
            assert!(blue_degrees_even(&g, walk.visited_edges(), odd_pair));
        }
    }

    #[test]
    fn blue_components_are_even_eulerian_graphs() {
        // Observation 11 end-to-end: every blue component, extracted as a
        // standalone graph, has all-even degrees and decomposes into
        // edge-disjoint cycles.
        use eproc_graphs::properties::{degrees, euler};
        let g = generators::torus2d(5, 5);
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut walk = EProcess::new(&g, 0, UniformRule::new());
            let _ = run_first_blue_phase(&mut walk, &mut rng);
            for comp in blue_components(&g, walk.visited_edges()) {
                let sub = component_as_graph(&g, &comp);
                assert!(
                    degrees::is_even_degree(&sub.graph),
                    "Observation 11 violated"
                );
                let cycles = euler::cycle_decomposition_full(&sub.graph)
                    .expect("even graphs decompose into cycles");
                let covered: usize = cycles.iter().map(|c| c.len()).sum();
                assert_eq!(covered, sub.graph.m());
            }
        }
    }

    #[test]
    fn star_census_detects_planted_star() {
        // Star K_{1,3} inside a larger graph: plant by marking everything
        // else visited.
        let g = generators::petersen();
        let star_edges: Vec<_> = g.ports(0).map(|(_, _, e)| e).collect();
        // Vertex 0's edges become blue, 0 unvisited.
        let edge_visited: BitSet = (0..g.m()).map(|e| !star_edges.contains(&e)).collect();
        let mut vertex_visited = vec![true; g.n()];
        vertex_visited[0] = false;
        let centers = isolated_star_centers(&g, &edge_visited, &vertex_visited);
        assert_eq!(centers, vec![0]);
    }

    #[test]
    fn star_census_rejects_connected_blue_structure() {
        // All edges blue: no isolated stars (blue components are big).
        let g = generators::petersen();
        let edge_visited = BitSet::with_len(g.m());
        let vertex_visited = vec![false; g.n()];
        let centers = isolated_star_centers(&g, &edge_visited, &vertex_visited);
        assert!(centers.is_empty());
    }

    #[test]
    fn three_regular_run_strands_about_n_over_8_stars() {
        // §5: over a full E-process run on a random 3-regular graph,
        // roughly n/8 vertices become isolated blue stars.
        let mut seed_rng = SmallRng::seed_from_u64(77);
        let n = 600;
        let g = generators::connected_random_regular(n, 3, &mut seed_rng).unwrap();
        let mut total = 0usize;
        let reps = 5;
        for seed in 0..reps {
            let mut rng = SmallRng::seed_from_u64(1000 + seed);
            let mut walk = EProcess::new(&g, 0, UniformRule::new());
            let census = track_isolated_stars(&mut walk, 10_000_000, &mut rng);
            assert!(census.steps_to_vertex_cover.is_some());
            total += census.ever_star_centers.len();
        }
        let mean = total as f64 / reps as f64;
        // §5's (1/2)³ = n/8 heuristic ignores that the embedded red walk
        // often visits a would-be center before its third neighbour turns
        // away; the measured fraction is a constant a few times smaller.
        // Assert a positive constant fraction bounded by the heuristic.
        let frac = mean / n as f64;
        assert!(
            (0.02..=0.125 * 1.2).contains(&frac),
            "star fraction {frac} outside the expected constant band (mean {mean})"
        );
    }

    #[test]
    fn even_degree_run_strands_no_stars() {
        // On even-degree graphs blue phases return to their start and
        // consume whole components; stranded full-degree stars require the
        // component to be exactly the star, which the parity structure
        // makes impossible to reach without visiting the center first.
        let mut seed_rng = SmallRng::seed_from_u64(42);
        let g = generators::connected_random_regular(300, 4, &mut seed_rng).unwrap();
        let mut rng = SmallRng::seed_from_u64(43);
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        let census = track_isolated_stars(&mut walk, 10_000_000, &mut rng);
        assert!(census.steps_to_vertex_cover.is_some());
        assert!(
            census.ever_star_centers.is_empty(),
            "unexpected stars on 4-regular: {:?}",
            census.ever_star_centers
        );
    }
}
