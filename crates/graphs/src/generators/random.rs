//! Erdős–Rényi random graphs `G(n, p)` and `G(n, m)`.

use crate::csr::Graph;
use crate::error::GraphError;
use rand::Rng;
use std::collections::HashSet;

/// `G(n, p)`: each of the `n(n-1)/2` pairs is an edge independently with
/// probability `p`.
///
/// Uses geometric skipping, so the cost is `O(n + m)` rather than `O(n²)`
/// for sparse graphs.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]`.
pub fn erdos_renyi_gnp<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidParameter {
            reason: format!("p must be in [0,1], got {p}"),
        });
    }
    let mut edges = Vec::new();
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        return Graph::from_edges(n, &edges);
    }
    if p > 0.0 && n >= 2 {
        // Enumerate pairs (u, v), u < v, as a single index and skip
        // geometrically: next index jump ~ 1 + floor(ln(U) / ln(1-p)).
        let total = n * (n - 1) / 2;
        let log1p = (1.0 - p).ln();
        let mut idx = 0usize;
        loop {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let skip = (u.ln() / log1p).floor() as usize;
            idx = match idx.checked_add(skip) {
                Some(i) => i,
                None => break,
            };
            if idx >= total {
                break;
            }
            let (a, b) = unrank_pair(idx, n);
            edges.push((a, b));
            idx += 1;
        }
    }
    Graph::from_edges(n, &edges)
}

/// `G(n, m)`: a uniformly random simple graph with exactly `m` edges.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `m > n(n-1)/2`.
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let total = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > total {
        return Err(GraphError::InvalidParameter {
            reason: format!("m = {m} exceeds the {total} possible edges on {n} vertices"),
        });
    }
    let mut chosen = HashSet::with_capacity(m);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let idx = rng.gen_range(0..total);
        if chosen.insert(idx) {
            edges.push(unrank_pair(idx, n));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Maps a pair index in `0..n(n-1)/2` to the pair `(u, v)`, `u < v`,
/// in row-major order: (0,1), (0,2), …, (0,n-1), (1,2), ….
fn unrank_pair(idx: usize, n: usize) -> (usize, usize) {
    // Row u starts at offset u*n - u*(u+3)/2 ... solve incrementally is
    // O(n); use the closed form via floating sqrt then fix up.
    let idxf = idx as f64;
    let nf = n as f64;
    // Row u starts at offset u(n-1) - u(u-1)/2; invert approximately and
    // fix up by stepping.
    let disc = ((2.0 * nf - 1.0) * (2.0 * nf - 1.0) - 8.0 * idxf).max(0.0);
    let mut u =
        (((2.0 * nf - 1.0 - disc.sqrt()) / 2.0).floor().max(0.0) as usize).min(n.saturating_sub(2));
    loop {
        let row_start = u * (n - 1) - u * (u.saturating_sub(1)) / 2;
        let row_len = n - 1 - u;
        if idx < row_start {
            debug_assert!(u > 0);
            u -= 1;
        } else if idx >= row_start + row_len {
            u += 1;
        } else {
            let v = u + 1 + (idx - row_start);
            return (u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn unrank_is_bijective() {
        let n = 9;
        let mut seen = HashSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (u, v) = unrank_pair(idx, n);
            assert!(u < v && v < n, "idx {idx} gave ({u},{v})");
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn unrank_order_is_row_major() {
        assert_eq!(unrank_pair(0, 5), (0, 1));
        assert_eq!(unrank_pair(3, 5), (0, 4));
        assert_eq!(unrank_pair(4, 5), (1, 2));
        assert_eq!(unrank_pair(9, 5), (3, 4));
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(erdos_renyi_gnp(10, 0.0, &mut rng).unwrap().m(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, &mut rng).unwrap().m(), 45);
        assert!(erdos_renyi_gnp(10, 1.5, &mut rng).is_err());
        assert!(erdos_renyi_gnp(10, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn gnp_expected_edge_count() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 300;
        let p = 0.05;
        let trials = 20;
        let mut total = 0usize;
        for _ in 0..trials {
            total += erdos_renyi_gnp(n, p, &mut rng).unwrap().m();
        }
        let mean = total as f64 / trials as f64;
        let expected = p * (n * (n - 1) / 2) as f64;
        // Generous 10% tolerance; variance is tiny at this size.
        assert!(
            (mean - expected).abs() < 0.1 * expected,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn gnm_exact_count_and_simple() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = erdos_renyi_gnm(30, 100, &mut rng).unwrap();
        assert_eq!(g.m(), 100);
        assert!(!g.has_parallel_edges());
    }

    #[test]
    fn gnm_rejects_too_many_edges() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(erdos_renyi_gnm(5, 11, &mut rng).is_err());
        assert!(erdos_renyi_gnm(5, 10, &mut rng).is_ok());
    }
}
