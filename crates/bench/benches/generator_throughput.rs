//! Graph generation throughput: Steger–Wormald vs pairing model, LPS,
//! hypercube, geometric.

use criterion::{criterion_group, criterion_main, Criterion};
use eproc_bench::rng_for;
use eproc_graphs::generators;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator_throughput");
    group.sample_size(10);

    group.bench_function("steger_wormald_n10k_r4", |b| {
        b.iter(|| {
            let mut rng = rng_for(1);
            std::hint::black_box(generators::steger_wormald(10_000, 4, &mut rng).unwrap())
        })
    });
    group.bench_function("pairing_multigraph_n10k_r4", |b| {
        b.iter(|| {
            let mut rng = rng_for(1);
            std::hint::black_box(generators::pairing_model_multigraph(10_000, 4, &mut rng).unwrap())
        })
    });
    group.bench_function("pairing_simple_n10k_r4", |b| {
        b.iter(|| {
            let mut rng = rng_for(1);
            std::hint::black_box(generators::random_regular_pairing(10_000, 4, &mut rng).unwrap())
        })
    });
    group.bench_function("lps_5_13", |b| {
        b.iter(|| std::hint::black_box(generators::lps_ramanujan(5, 13).unwrap()))
    });
    group.bench_function("hypercube_r13", |b| {
        b.iter(|| std::hint::black_box(generators::hypercube(13)))
    });
    group.bench_function("geometric_n10k", |b| {
        b.iter(|| {
            let mut rng = rng_for(1);
            std::hint::black_box(generators::random_geometric(10_000, 0.03, &mut rng).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
