//! Shared harness for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the
//! reproduction (see DESIGN.md §4 for the index). They share:
//!
//! * [`Config`] — `--scale quick|paper`, `--seed N` parsing;
//! * [`save_table`] — writes the CSV next to the printed table under
//!   `target/experiments/`;
//! * [`NaiveEProcess`] — a deliberately naive E-process implementation
//!   (per-step port rescan instead of the engine's O(1) live-prefix
//!   bookkeeping) used by the `bookkeeping` ablation bench;
//! * small measurement helpers used across tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eproc_core::cover::{run_cover, CoverRun, CoverTarget};
use eproc_core::process::{Step, StepKind, WalkProcess};
use eproc_graphs::{Graph, Vertex};
use eproc_stats::TextTable;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::path::PathBuf;

/// Experiment scale: `quick` finishes in seconds-to-minutes and already
/// shows the paper's qualitative shape; `paper` pushes `n` toward the
/// paper's 5·10⁵.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-quick sweep.
    Quick,
    /// Paper-scale sweep (minutes).
    Paper,
}

/// Parsed command-line configuration shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Sweep scale.
    pub scale: Scale,
    /// Base seed; every cell derives its own stream from it.
    pub seed: u64,
    /// Worker threads for engine-backed tables (`None` = all cores).
    /// Results are bit-identical for any value — this flag exists to
    /// demonstrate exactly that.
    pub threads: Option<usize>,
}

impl Config {
    /// Parses `--scale quick|paper`, `--seed N` and `--threads N` from
    /// `std::env::args`. Unknown arguments abort with a usage message.
    pub fn from_args() -> Config {
        let mut scale = Scale::Quick;
        let mut seed = 12345u64;
        let mut threads = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    scale = match v.as_str() {
                        "quick" => Scale::Quick,
                        "paper" => Scale::Paper,
                        other => usage(&format!("unknown scale {other:?}")),
                    };
                }
                "--seed" => {
                    let v = args.next().unwrap_or_default();
                    seed = v
                        .parse()
                        .unwrap_or_else(|_| usage(&format!("bad seed {v:?}")));
                }
                "--threads" => {
                    let v = args.next().unwrap_or_default();
                    let t: usize = v
                        .parse()
                        .unwrap_or_else(|_| usage(&format!("bad thread count {v:?}")));
                    if t == 0 {
                        usage("--threads must be at least 1");
                    }
                    threads = Some(t);
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument {other:?}")),
            }
        }
        Config {
            scale,
            seed,
            threads,
        }
    }

    /// Engine [`RunOptions`](eproc_engine::RunOptions) for this config:
    /// the configured seed and thread count (all cores when unset).
    pub fn engine_opts(&self) -> eproc_engine::RunOptions {
        let mut opts = eproc_engine::RunOptions {
            base_seed: self.seed,
            ..eproc_engine::RunOptions::auto()
        };
        if let Some(t) = self.threads {
            opts.threads = t;
        }
        opts
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: <binary> [--scale quick|paper] [--seed N] [--threads N]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Directory where experiment CSVs are written:
/// `<workspace>/target/experiments/`.
pub fn output_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("target");
    dir.push("experiments");
    dir
}

/// Writes `table` as `<name>.csv` under [`output_dir`], creating it if
/// needed. Returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_table(name: &str, table: &TextTable) -> std::io::Result<PathBuf> {
    let dir = output_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv())?;
    Ok(path)
}

/// Mean steps to vertex cover of `runs` fresh processes built by
/// `make_walk(rep)`, with cap `max_steps`; also returns how many runs
/// finished.
pub fn mean_vertex_cover_steps<'g, W, F>(
    mut make_walk: F,
    runs: usize,
    max_steps: u64,
    rng: &mut dyn RngCore,
) -> (f64, usize)
where
    W: WalkProcess + 'g,
    F: FnMut(usize) -> W,
{
    let mut total = 0u64;
    let mut finished = 0usize;
    for rep in 0..runs {
        let mut walk = make_walk(rep);
        let run = run_cover(&mut walk, CoverTarget::Vertices, max_steps, rng);
        if let Some(steps) = run.steps_to_vertex_cover {
            total += steps;
            finished += 1;
        }
    }
    if finished == 0 {
        (f64::NAN, 0)
    } else {
        (total as f64 / finished as f64, finished)
    }
}

/// Like [`mean_vertex_cover_steps`] but for edge cover, returning the full
/// [`CoverRun`]s.
pub fn edge_cover_runs<'g, W, F>(
    mut make_walk: F,
    runs: usize,
    max_steps: u64,
    rng: &mut dyn RngCore,
) -> Vec<CoverRun>
where
    W: WalkProcess + 'g,
    F: FnMut(usize) -> W,
{
    (0..runs)
        .map(|rep| {
            let mut walk = make_walk(rep);
            run_cover(&mut walk, CoverTarget::Edges, max_steps, rng)
        })
        .collect()
}

/// A deliberately naive E-process used by the `bookkeeping` ablation: at
/// every step it rescans all ports of the current vertex to collect the
/// unvisited ones (`O(Δ)` always, with no cross-vertex unlinking), instead
/// of the engine's `O(1)` live-prefix scheme. Semantics are identical to
/// [`eproc_core::EProcess`] with [`eproc_core::rule::UniformRule`].
#[derive(Debug, Clone)]
pub struct NaiveEProcess<'g> {
    g: &'g Graph,
    current: Vertex,
    steps: u64,
    visited: Vec<bool>,
    scratch: Vec<usize>,
}

impl<'g> NaiveEProcess<'g> {
    /// Creates the naive E-process at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= g.n()`.
    pub fn new(g: &'g Graph, start: Vertex) -> NaiveEProcess<'g> {
        assert!(start < g.n(), "start vertex {start} out of range");
        NaiveEProcess {
            g,
            current: start,
            steps: 0,
            visited: vec![false; g.m()],
            scratch: Vec::new(),
        }
    }
}

impl<'g> WalkProcess for NaiveEProcess<'g> {
    fn graph(&self) -> &Graph {
        self.g
    }

    fn current(&self) -> Vertex {
        self.current
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn advance(&mut self, rng: &mut dyn RngCore) -> Step {
        let v = self.current;
        let d = self.g.degree(v);
        assert!(d > 0, "walk stuck at isolated vertex {v}");
        self.scratch.clear();
        for a in self.g.arc_range(v) {
            if !self.visited[self.g.arc_edge(a)] {
                self.scratch.push(a);
            }
        }
        let (arc, kind) = if self.scratch.is_empty() {
            (
                self.g.arc_range(v).start + rng.gen_range(0..d),
                StepKind::Red,
            )
        } else {
            (
                self.scratch[rng.gen_range(0..self.scratch.len())],
                StepKind::Blue,
            )
        };
        let e = self.g.arc_edge(arc);
        let to = self.g.arc_target(arc);
        if kind == StepKind::Blue {
            self.visited[e] = true;
        }
        self.current = to;
        self.steps += 1;
        Step {
            from: v,
            to,
            edge: Some(e),
            kind,
        }
    }
}

/// Verbatim copy of the pre-kernel `rand` sampler: rejection sampling
/// with two 64-bit divisions per draw (no power-of-two strength
/// reduction), fed through `&mut dyn RngCore`. Draw-for-draw equivalent
/// to the current sampler — only slower — so [`LegacyEProcess`] walks the
/// exact trajectory of today's kernel while paying yesterday's cost.
fn legacy_uniform(span: u64, rng: &mut dyn RngCore) -> u64 {
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// The pre-kernel E-process hot path, reproduced verbatim as the measured
/// baseline of the `walk_kernel` bench: the same `O(1)` live-prefix
/// bookkeeping as [`eproc_core::EProcess`] with the uniform rule, but
/// stepped exclusively through the object-safe
/// [`WalkProcess::advance`]`(&mut dyn RngCore)` (it deliberately does
/// **not** override `advance_rng`), sampling with the modulo-based
/// `legacy_uniform` sampler and marking edges in a `Vec<bool>` — exactly what
/// every engine trial paid per step before the monomorphized kernel.
/// Trajectories are identical to `EProcess` with `UniformRule` for the
/// same seed (asserted by the bench before timing).
#[derive(Debug, Clone)]
pub struct LegacyEProcess<'g> {
    g: &'g Graph,
    current: Vertex,
    steps: u64,
    visited_edge: Vec<bool>,
    slots: Vec<usize>,
    pos: Vec<u32>,
    live: Vec<u32>,
}

impl<'g> LegacyEProcess<'g> {
    /// Creates the baseline walk at `start` with all edges unvisited.
    ///
    /// # Panics
    ///
    /// Panics if `start >= g.n()`.
    pub fn new(g: &'g Graph, start: Vertex) -> LegacyEProcess<'g> {
        assert!(start < g.n(), "start vertex {start} out of range");
        LegacyEProcess {
            g,
            current: start,
            steps: 0,
            visited_edge: vec![false; g.m()],
            slots: (0..2 * g.m()).collect(),
            pos: (0..2 * g.m() as u32).collect(),
            live: g.vertices().map(|v| g.degree(v) as u32).collect(),
        }
    }

    fn unlink(&mut self, arc: usize, src: Vertex) {
        let p = self.pos[arc] as usize;
        let live = self.live[src] as usize;
        let base = self.g.arc_range(src).start;
        let last = base + live - 1;
        let moved = self.slots[last];
        self.slots[p] = moved;
        self.slots[last] = arc;
        self.pos[moved] = p as u32;
        self.pos[arc] = last as u32;
        self.live[src] -= 1;
    }
}

impl<'g> WalkProcess for LegacyEProcess<'g> {
    fn graph(&self) -> &Graph {
        self.g
    }

    fn current(&self) -> Vertex {
        self.current
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn advance(&mut self, rng: &mut dyn RngCore) -> Step {
        let v = self.current;
        let degree = self.g.degree(v);
        assert!(degree > 0, "E-process stuck at isolated vertex {v}");
        let live = self.live[v] as usize;
        let base = self.g.arc_range(v).start;
        let (arc, kind) = if live > 0 {
            let idx = legacy_uniform(live as u64, rng) as usize;
            (self.slots[base + idx], StepKind::Blue)
        } else {
            let idx = legacy_uniform(degree as u64, rng) as usize;
            (self.slots[base + idx], StepKind::Red)
        };
        let e = self.g.arc_edge(arc);
        let to = self.g.arc_target(arc);
        if kind == StepKind::Blue {
            self.visited_edge[e] = true;
            let (a0, a1) = self.g.edge_arcs(e);
            let (x, y) = self.g.endpoints(e);
            self.unlink(a0, x);
            self.unlink(a1, y);
        }
        self.current = to;
        self.steps += 1;
        Step {
            from: v,
            to,
            edge: Some(e),
            kind,
        }
    }
}

/// Builds a fresh deterministic RNG for a derived seed.
pub fn rng_for(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Maps this crate's [`Scale`] onto the engine's.
pub fn engine_scale(scale: Scale) -> eproc_engine::Scale {
    match scale {
        Scale::Quick => eproc_engine::Scale::Quick,
        Scale::Paper => eproc_engine::Scale::Paper,
    }
}

/// Runs the named built-in engine spec, returning the resolved spec, the
/// graphs it was run on (for per-graph enrichment columns) and the
/// report. The shared entry point of the ported `table_*` wrappers that
/// need custom presentation on top of the engine ensemble.
///
/// For resampled builtins (`cubicensemble`, `odddegree`) there is no
/// shared graph to enrich — every trial group samples its own — so the
/// returned graph list is empty and the run goes through
/// [`eproc_engine::executor::run`].
///
/// # Panics
///
/// Panics if the spec name is unknown or execution fails.
pub fn run_engine_spec(
    name: &str,
    config: &Config,
) -> (
    eproc_engine::ExperimentSpec,
    Vec<Graph>,
    eproc_engine::ExperimentReport,
) {
    let spec = eproc_engine::builtin::spec(name, engine_scale(config.scale))
        .unwrap_or_else(|| panic!("unknown builtin spec {name:?}"));
    let opts = config.engine_opts();
    if spec.resample.is_some() {
        let report = eproc_engine::executor::run(&spec, &opts)
            .unwrap_or_else(|e| panic!("engine run {name:?} failed: {e}"));
        return (spec, Vec::new(), report);
    }
    let graphs = eproc_engine::executor::build_graphs(&spec, opts.base_seed)
        .unwrap_or_else(|e| panic!("building graphs for {name:?}: {e}"));
    let report = eproc_engine::executor::run_on_graphs(&spec, &opts, &graphs)
        .unwrap_or_else(|e| panic!("engine run {name:?} failed: {e}"));
    (spec, graphs, report)
}

/// Mean of a named metric column in an engine cell.
///
/// # Panics
///
/// Panics if the cell has no such metric or no trial resolved it.
pub fn metric_mean(cell: &eproc_engine::executor::CellSummary, name: &str) -> f64 {
    let metric = cell
        .metrics
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| {
            panic!(
                "cell {}/{} has no metric {name:?}",
                cell.graph, cell.process
            )
        });
    assert!(
        metric.stats.count() > 0,
        "metric {name:?} never resolved for {}/{}",
        cell.graph,
        cell.process
    );
    metric.stats.mean()
}

/// Runs the named built-in engine spec and emits the standard artifacts:
/// prints the aggregate table, writes `<csv_name>.csv` next to the other
/// experiment tables, and writes the engine's JSON artifact.
///
/// This is the whole body of the `table_*` binaries that were ported onto
/// the engine — their trial loops, seeding and aggregation all live in
/// `eproc-engine` now.
///
/// # Panics
///
/// Panics if the spec name is unknown, execution fails, or any trial
/// capped out before covering (the reproduction tables claim every run
/// finishes, so an incomplete cell is a regression, not data).
pub fn run_engine_table(name: &str, config: &Config, csv_name: &str) {
    let spec = eproc_engine::builtin::spec(name, engine_scale(config.scale))
        .unwrap_or_else(|| panic!("unknown builtin spec {name:?}"));
    let opts = config.engine_opts();
    let report = eproc_engine::run(&spec, &opts)
        .unwrap_or_else(|e| panic!("engine run {name:?} failed: {e}"));
    for cell in &report.cells {
        assert_eq!(
            cell.completed, cell.trials,
            "{}/{}: only {}/{} runs covered within the cap",
            cell.graph, cell.process, cell.completed, cell.trials
        );
    }
    let table = eproc_engine::report::to_text_table(&report);
    println!("{table}");
    let p = save_table(csv_name, &table).expect("write csv");
    println!("csv: {}", p.display());
    let j = eproc_engine::report::save_json(&report, None).expect("write json");
    println!("json: {}", j.display());
}

/// Applies `f` to every item on `threads` OS threads, preserving order.
/// Determinism is the caller's job: derive a seed per item, not per
/// thread. Used by the paper-scale sweeps where each cell is an
/// independent (graph, walk) simulation.
///
/// # Panics
///
/// Panics if `threads == 0` or if `f` panics on any item.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let n = items.len();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(work);
    let results = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|| loop {
                let item = queue.lock().expect("queue poisoned").pop();
                match item {
                    Some((idx, t)) => {
                        let r = f(t);
                        results.lock().expect("results poisoned")[idx] = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eproc_core::rule::UniformRule;
    use eproc_core::EProcess;
    use eproc_graphs::generators;
    use eproc_stats::SeedSequence;

    #[test]
    fn naive_matches_engine_statistics() {
        // Same process semantics ⇒ similar mean cover time on a fixed
        // graph (they cannot be trajectory-identical: RNG consumption
        // differs).
        let mut seed_rng = rng_for(1);
        let g = generators::connected_random_regular(200, 4, &mut seed_rng).unwrap();
        let seeds = SeedSequence::new(9);
        let mut rng_a = rng_for(seeds.derive(&[0]));
        let mut rng_b = rng_for(seeds.derive(&[1]));
        let (mean_fast, k1) = mean_vertex_cover_steps(
            |_| EProcess::new(&g, 0, UniformRule::new()),
            20,
            10_000_000,
            &mut rng_a,
        );
        let (mean_naive, k2) =
            mean_vertex_cover_steps(|_| NaiveEProcess::new(&g, 0), 20, 10_000_000, &mut rng_b);
        assert_eq!(k1, 20);
        assert_eq!(k2, 20);
        let ratio = mean_fast / mean_naive;
        assert!(
            (0.7..1.4).contains(&ratio),
            "means diverge: {mean_fast} vs {mean_naive}"
        );
    }

    #[test]
    fn legacy_eprocess_matches_kernel_trajectory() {
        // The walk_kernel bench baseline must walk the exact trajectory of
        // the monomorphized kernel — it is the same process, only paying
        // the pre-kernel per-step costs.
        let mut seed_rng = rng_for(1);
        let g = generators::connected_random_regular(120, 4, &mut seed_rng).unwrap();
        let mut rng_a = rng_for(5);
        let mut rng_b = rng_for(5);
        let mut legacy = LegacyEProcess::new(&g, 0);
        let mut kernel = EProcess::new(&g, 0, UniformRule::new());
        for _ in 0..2_000 {
            assert_eq!(legacy.advance(&mut rng_a), kernel.advance_rng(&mut rng_b));
        }
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn naive_blue_steps_bounded_by_m() {
        let g = generators::torus2d(5, 5);
        let mut rng = rng_for(3);
        let mut w = NaiveEProcess::new(&g, 0);
        let run = run_cover(&mut w, CoverTarget::Edges, 1_000_000, &mut rng);
        assert_eq!(run.edges_visited, g.m());
        assert!(run.blue_steps <= g.m() as u64);
    }

    #[test]
    fn output_dir_is_under_target() {
        let dir = output_dir();
        assert!(dir.ends_with("target/experiments"));
    }

    #[test]
    fn save_table_roundtrip() {
        let mut t = TextTable::new(vec!["a"]);
        t.push_row(vec!["1".into()]);
        let path = save_table("unit_test_table", &t).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a\n1\n");
    }

    #[test]
    fn edge_cover_runs_complete() {
        let g = generators::cycle(12);
        let mut rng = rng_for(4);
        let runs = edge_cover_runs(|_| NaiveEProcess::new(&g, 0), 3, 100_000, &mut rng);
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.steps_to_edge_cover == Some(12)));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, 4, |x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn parallel_map_single_thread_and_empty() {
        assert_eq!(parallel_map(vec![3, 1, 4], 1, |x| x + 1), vec![4, 2, 5]);
        assert_eq!(parallel_map(Vec::<u64>::new(), 8, |x| x), Vec::<u64>::new());
    }

    #[test]
    fn parallel_map_is_deterministic_with_derived_seeds() {
        let seeds = SeedSequence::new(3);
        let run = || {
            parallel_map((0..8u64).collect(), 4, |i| {
                let mut rng = rng_for(seeds.derive(&[i]));
                let g = generators::steger_wormald(50, 4, &mut rng).unwrap();
                g.edge_list()
            })
        };
        assert_eq!(run(), run());
    }
}
