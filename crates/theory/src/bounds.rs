//! Cover-time and hitting-time bounds (Theorems 1, 3, 5; Lemmas 6–8, 13,
//! 14; equations (1)–(4)).
//!
//! All bounds are stated by the paper up to multiplicative constants; the
//! functions here return the *expression inside the O(·)/Ω(·)* so callers
//! can report measured/bound ratios, which should be bounded by a constant
//! across a parameter sweep when the theorem holds.

/// Theorem 1: vertex cover time of any E-process on a connected,
/// even-degree, `ℓ`-good graph of bounded maximum degree is
/// `O(n + n log n / (ℓ (1 − λ_max)))`.
///
/// # Panics
///
/// Panics if `l == 0` or `gap <= 0`.
pub fn theorem1_vertex_cover_bound(n: usize, l: f64, gap: f64) -> f64 {
    assert!(l > 0.0, "l must be positive");
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    let nf = n as f64;
    nf + nf * nf.ln() / (l * gap)
}

/// Equation (1): for expanders (constant gap) Theorem 1 reads
/// `O(n + n log n / ℓ)`.
///
/// # Panics
///
/// Panics if `l == 0`.
pub fn eq1_expander_vertex_cover_bound(n: usize, l: f64) -> f64 {
    assert!(l > 0.0, "l must be positive");
    let nf = n as f64;
    nf + nf * nf.ln() / l
}

/// Theorem 3: edge cover time of any E-process on a connected even-degree
/// graph with girth `g`, maximum degree `Δ`:
/// `O(m + m/(1−λ_max)² (log n / g + log Δ))`.
///
/// # Panics
///
/// Panics if `girth == 0`, `max_degree < 2` or `gap <= 0`.
pub fn theorem3_edge_cover_bound(
    m: usize,
    n: usize,
    girth: usize,
    max_degree: usize,
    gap: f64,
) -> f64 {
    assert!(girth > 0, "girth must be positive");
    assert!(max_degree >= 2, "max degree must be at least 2");
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    let mf = m as f64;
    mf + mf / (gap * gap) * ((n as f64).ln() / girth as f64 + (max_degree as f64).ln())
}

/// Theorem 5 (Radzik): any weighted random walk on an `n`-vertex graph has
/// vertex cover time at least `(n/4) log(n/2)` — an explicit-constant
/// lower bound.
///
/// Returns 0 for `n <= 2`.
pub fn radzik_lower_bound(n: usize) -> f64 {
    if n <= 2 {
        return 0.0;
    }
    (n as f64 / 4.0) * (n as f64 / 2.0).ln()
}

/// Feige's lower bound: `C_V(G) ≥ (1 − o(1)) n log n` for any connected
/// graph. Returns the leading term `n ln n`.
pub fn feige_lower_bound(n: usize) -> f64 {
    let nf = n as f64;
    if n <= 1 {
        return 0.0;
    }
    nf * nf.ln()
}

/// Equation (2) (Orenshtein–Shinkar): greedy-random-walk edge cover time of
/// an `r`-regular graph is `m + O(n log n / (1 − λ_max))`; returns
/// `m + n log n / gap`.
///
/// # Panics
///
/// Panics if `gap <= 0`.
pub fn eq2_greedy_edge_cover_bound(m: usize, n: usize, gap: f64) -> f64 {
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    let nf = n as f64;
    m as f64 + nf * nf.ln() / gap
}

/// Equation (3): `m ≤ C_E(E-process) ≤ m + C_V(SRW)`; returns the pair of
/// bounds given the measured (or bounded) SRW vertex cover time.
pub fn eq3_edge_cover_sandwich(m: usize, cv_srw: f64) -> (f64, f64) {
    (m as f64, m as f64 + cv_srw)
}

/// Lemma 6: `E_π(H_v) ≤ 1 / ((1 − λ_max) π_v)`.
///
/// # Panics
///
/// Panics if `pi_v <= 0` or `gap <= 0`.
pub fn lemma6_hitting_bound(pi_v: f64, gap: f64) -> f64 {
    assert!(pi_v > 0.0, "stationary probability must be positive");
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    1.0 / (gap * pi_v)
}

/// Corollary 9: `E_π(H_S) ≤ 2m / (d(S)(1 − λ_max))`.
///
/// # Panics
///
/// Panics if `d_s == 0` or `gap <= 0`.
pub fn corollary9_set_hitting_bound(m: usize, d_s: usize, gap: f64) -> f64 {
    assert!(d_s > 0, "set degree must be positive");
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    2.0 * m as f64 / (d_s as f64 * gap)
}

/// Lemma 7: the mixing time `T = K log n / (1 − λ_max)` with `K ≥ 6`
/// guarantees `max_{u,x} |P_u^t(x) − π_x| ≤ n^{-3}` for `t ≥ T`.
///
/// # Panics
///
/// Panics if `k < 6.0` or `gap <= 0`.
pub fn lemma7_mixing_time(n: usize, gap: f64, k: f64) -> f64 {
    assert!(k >= 6.0, "Lemma 7 requires K >= 6");
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    k * (n as f64).ln() / gap
}

/// Lemma 13: for `d(S) ≤ m / (6 log n)` and
/// `t ≥ 7m / (d(S)(1 − λ_max))`, the probability that `S` is unvisited by
/// the walk at step `t` is at most `exp(−t d(S)(1 − λ_max) / 14m)`.
/// Returns that tail bound.
///
/// # Panics
///
/// Panics if `m == 0`, `d_s == 0` or `gap <= 0`.
pub fn lemma13_unvisited_tail(t: f64, d_s: usize, m: usize, gap: f64) -> f64 {
    assert!(m > 0, "m must be positive");
    assert!(d_s > 0, "set degree must be positive");
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    (-t * d_s as f64 * gap / (14.0 * m as f64)).exp()
}

/// Lemma 13's precondition on `t`: `t ≥ 7m / (d(S)(1 − λ_max))`.
pub fn lemma13_min_t(d_s: usize, m: usize, gap: f64) -> f64 {
    assert!(d_s > 0 && gap > 0.0);
    7.0 * m as f64 / (d_s as f64 * gap)
}

/// Lemma 14: the number of connected edge-induced subgraphs with `s`
/// vertices rooted at a fixed vertex is at most `2^{sΔ}` (as `log2`, to
/// avoid overflow: returns `s·Δ`).
pub fn lemma14_log2_subgraph_count(s: usize, max_degree: usize) -> f64 {
    (s * max_degree) as f64
}

/// The Kahn–Kim–Lovász–Vu bound used in Theorem 5's proof:
/// `C_V(W, G) ≥ (max_A K_A log |A|) / 2` where `K_A` is the minimum
/// commute time within `A`.
///
/// # Panics
///
/// Panics if `set_size < 2`.
pub fn kklv_lower_bound(min_commute: f64, set_size: usize) -> f64 {
    assert!(set_size >= 2, "need at least two vertices");
    min_commute * (set_size as f64).ln() / 2.0
}

/// Lemma 15's explicit waiting time:
/// `τ* = m (1 + 14(Δ+4) log n / (δ min(ℓ, log n)(1 − λ_max)))` after which
/// no vertex of an `ℓ`-good even-degree graph remains unvisited whp.
///
/// # Panics
///
/// Panics if any of `min_degree`, `l`, `gap` is nonpositive.
pub fn lemma15_tau_star(
    m: usize,
    n: usize,
    max_degree: usize,
    min_degree: usize,
    l: f64,
    gap: f64,
) -> f64 {
    assert!(min_degree > 0, "min degree must be positive");
    assert!(l > 0.0, "l must be positive");
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    let logn = (n as f64).ln();
    m as f64
        * (1.0 + 14.0 * (max_degree as f64 + 4.0) * logn / (min_degree as f64 * l.min(logn) * gap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_reduces_to_linear_when_l_large() {
        // ℓ = log n, gap = 1/2: bound = n + 2n = 3n exactly.
        let n = 1_000_000;
        let bound = theorem1_vertex_cover_bound(n, (n as f64).ln(), 0.5);
        assert!(
            (bound - 3.0 * n as f64).abs() < 1e-3,
            "Θ(n) when ℓ = log n: {bound}"
        );
    }

    #[test]
    fn theorem1_matches_eq1_for_unit_gap() {
        let b1 = theorem1_vertex_cover_bound(1000, 5.0, 1.0);
        let b2 = eq1_expander_vertex_cover_bound(1000, 5.0);
        assert!((b1 - b2).abs() < 1e-9);
    }

    #[test]
    fn theorem3_girth_improves_bound() {
        let loose = theorem3_edge_cover_bound(2000, 1000, 3, 4, 0.5);
        let tight = theorem3_edge_cover_bound(2000, 1000, 20, 4, 0.5);
        assert!(tight < loose);
    }

    #[test]
    fn radzik_explicit_values() {
        assert_eq!(radzik_lower_bound(2), 0.0);
        let b = radzik_lower_bound(1000);
        assert!((b - 250.0 * 500f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn lower_bounds_ordered() {
        // Feige's n ln n dominates Radzik's (n/4) ln(n/2) for large n.
        for n in [100, 10_000, 1_000_000] {
            assert!(feige_lower_bound(n) > radzik_lower_bound(n));
        }
    }

    #[test]
    fn eq3_sandwich_brackets() {
        let (lo, hi) = eq3_edge_cover_sandwich(500, 1234.5);
        assert_eq!(lo, 500.0);
        assert_eq!(hi, 1734.5);
    }

    #[test]
    fn eq2_scales_with_gap() {
        let tight = eq2_greedy_edge_cover_bound(1000, 500, 0.5);
        let loose = eq2_greedy_edge_cover_bound(1000, 500, 0.1);
        assert!(loose > tight);
    }

    #[test]
    fn lemma6_and_corollary9_consistent() {
        // For S = {v}, Corollary 9 with d(S) = d(v) equals Lemma 6 with
        // π_v = d(v)/2m.
        let m = 300;
        let d_v = 4;
        let pi_v = d_v as f64 / (2 * m) as f64;
        let gap = 0.3;
        let l6 = lemma6_hitting_bound(pi_v, gap);
        let c9 = corollary9_set_hitting_bound(m, d_v, gap);
        assert!((l6 - c9).abs() < 1e-9);
    }

    #[test]
    fn lemma7_requires_k_at_least_6() {
        let t = lemma7_mixing_time(100, 0.5, 6.0);
        assert!(t > 0.0);
    }

    #[test]
    #[should_panic(expected = "K >= 6")]
    fn lemma7_rejects_small_k() {
        let _ = lemma7_mixing_time(100, 0.5, 2.0);
    }

    #[test]
    fn lemma13_tail_decays() {
        let m = 2000;
        let d_s = 8;
        let gap = 0.4;
        let t0 = lemma13_min_t(d_s, m, gap);
        let p1 = lemma13_unvisited_tail(t0, d_s, m, gap);
        let p2 = lemma13_unvisited_tail(4.0 * t0, d_s, m, gap);
        assert!(p2 < p1);
        assert!(p1 < 1.0);
        assert!((lemma13_unvisited_tail(0.0, d_s, m, gap) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lemma14_log_count() {
        assert_eq!(lemma14_log2_subgraph_count(5, 4), 20.0);
    }

    #[test]
    fn kklv_grows_with_set() {
        assert!(kklv_lower_bound(100.0, 64) > kklv_lower_bound(100.0, 4));
    }

    #[test]
    fn lemma15_tau_star_linear_for_good_expanders() {
        // m = 2n, Δ = δ = 4, ℓ = log n, gap = 1/2:
        // τ* = 2n (1 + 14·8/(4·0.5)) = 2n·57 = 114n — linear in n with an
        // explicit constant.
        let n = 100_000;
        let m = 2 * n;
        let tau = lemma15_tau_star(m, n, 4, 4, (n as f64).ln(), 0.5);
        assert!(
            (tau - 114.0 * n as f64).abs() < 1.0,
            "τ* should be 114n: {tau}"
        );
    }

    #[test]
    #[should_panic(expected = "gap")]
    fn nonpositive_gap_rejected() {
        let _ = theorem1_vertex_cover_bound(10, 1.0, 0.0);
    }
}
