//! The random-walk transition operator and its symmetrisation.

use eproc_graphs::Graph;

/// Stationary distribution of the simple random walk: `π_v = d(v) / 2m`.
///
/// Vertices of degree 0 get mass 0 (the walk never reaches them); the
/// paper's graphs are connected so every entry is positive there.
///
/// # Panics
///
/// Panics if the graph has no edges (the stationary distribution is
/// undefined).
pub fn stationary_distribution(g: &Graph) -> Vec<f64> {
    assert!(
        g.m() > 0,
        "stationary distribution undefined for an edgeless graph"
    );
    let total = g.total_degree() as f64;
    g.vertices().map(|v| g.degree(v) as f64 / total).collect()
}

/// Applies one step of the walk to a *distribution* (row vector):
/// `out[v] = Σ_{u ~ v} x[u] / d(u)`, i.e. `out = x P`.
///
/// With `lazy = true` computes `out = x (I + P)/2`.
///
/// # Panics
///
/// Panics if `x.len() != g.n()`.
pub fn apply_transition(g: &Graph, x: &[f64], lazy: bool) -> Vec<f64> {
    assert_eq!(x.len(), g.n(), "vector length mismatch");
    let mut out = vec![0.0; g.n()];
    for u in g.vertices() {
        let d = g.degree(u);
        if d == 0 {
            out[u] += x[u]; // isolated vertex: walk stays put
            continue;
        }
        let share = x[u] / d as f64;
        for w in g.neighbors(u) {
            out[w] += share;
        }
    }
    if lazy {
        for v in g.vertices() {
            out[v] = 0.5 * (out[v] + x[v]);
        }
    }
    out
}

/// Applies the symmetrised operator `S = D^{-1/2} A D^{-1/2}` (or its lazy
/// variant `(I + S)/2`): `out[v] = Σ_{u ~ v} x[u] / √(d(u) d(v))`.
///
/// `S` is similar to `P` (`S = D^{1/2} P D^{-1/2}`), so it has the same
/// eigenvalues; being symmetric it is what the power/Lanczos methods
/// iterate on.
///
/// # Panics
///
/// Panics if `x.len() != g.n()`.
pub fn apply_symmetric(g: &Graph, x: &[f64], lazy: bool) -> Vec<f64> {
    assert_eq!(x.len(), g.n(), "vector length mismatch");
    let inv_sqrt_d: Vec<f64> = g
        .vertices()
        .map(|v| {
            if g.degree(v) == 0 {
                0.0
            } else {
                1.0 / (g.degree(v) as f64).sqrt()
            }
        })
        .collect();
    let mut out = vec![0.0; g.n()];
    for u in g.vertices() {
        if g.degree(u) == 0 {
            out[u] += x[u];
            continue;
        }
        let scaled = x[u] * inv_sqrt_d[u];
        for w in g.neighbors(u) {
            out[w] += scaled * inv_sqrt_d[w];
        }
    }
    if lazy {
        for v in g.vertices() {
            out[v] = 0.5 * (out[v] + x[v]);
        }
    }
    out
}

/// The principal eigenvector of `S` (eigenvalue 1) for a connected graph:
/// `φ_1(v) ∝ √d(v)`, normalised to unit Euclidean length.
///
/// # Panics
///
/// Panics if the graph has no edges.
pub fn principal_eigenvector(g: &Graph) -> Vec<f64> {
    assert!(
        g.m() > 0,
        "principal eigenvector undefined for an edgeless graph"
    );
    let mut phi: Vec<f64> = g.vertices().map(|v| (g.degree(v) as f64).sqrt()).collect();
    let norm = phi.iter().map(|x| x * x).sum::<f64>().sqrt();
    for x in &mut phi {
        *x /= norm;
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use eproc_graphs::generators;

    #[test]
    fn stationary_sums_to_one() {
        let g = generators::lollipop(5, 4);
        let pi = stationary_distribution(&g);
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_uniform_on_regular() {
        let g = generators::cycle(8);
        let pi = stationary_distribution(&g);
        for &p in &pi {
            assert!((p - 1.0 / 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn stationary_is_fixed_point() {
        let g = generators::lollipop(4, 3);
        let pi = stationary_distribution(&g);
        let next = apply_transition(&g, &pi, false);
        for (a, b) in pi.iter().zip(&next) {
            assert!((a - b).abs() < 1e-12);
        }
        let next_lazy = apply_transition(&g, &pi, true);
        for (a, b) in pi.iter().zip(&next_lazy) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transition_preserves_mass() {
        let g = generators::petersen();
        let mut x = vec![0.0; g.n()];
        x[3] = 1.0;
        let y = apply_transition(&g, &x, false);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // One step from vertex 3 spreads uniformly over its 3 neighbors.
        let mass: Vec<_> = y.iter().filter(|&&v| v > 0.0).collect();
        assert_eq!(mass.len(), 3);
        for &&v in &mass {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_operator_fixes_principal_vector() {
        let g = generators::lollipop(5, 3);
        let phi = principal_eigenvector(&g);
        let sphi = apply_symmetric(&g, &phi, false);
        for (a, b) in phi.iter().zip(&sphi) {
            assert!((a - b).abs() < 1e-12, "S φ1 must equal φ1");
        }
    }

    #[test]
    fn symmetric_operator_is_symmetric() {
        // <Sx, y> == <x, Sy> on random-ish vectors.
        let g = generators::torus2d(3, 4);
        let x: Vec<f64> = (0..g.n())
            .map(|i| ((i * 7 + 3) % 11) as f64 - 5.0)
            .collect();
        let y: Vec<f64> = (0..g.n())
            .map(|i| ((i * 5 + 1) % 13) as f64 - 6.0)
            .collect();
        let sx = apply_symmetric(&g, &x, false);
        let sy = apply_symmetric(&g, &y, false);
        let lhs: f64 = sx.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&sy).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn isolated_vertices_hold_mass() {
        let g = eproc_graphs::Graph::from_edges(3, &[(0, 1)]).unwrap();
        let x = vec![0.2, 0.3, 0.5];
        let y = apply_transition(&g, &x, false);
        assert!((y[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "edgeless")]
    fn stationary_requires_edges() {
        let g = eproc_graphs::Graph::from_edges(3, &[]).unwrap();
        let _ = stationary_distribution(&g);
    }
}
