//! # eproc — random walks which prefer unvisited edges
//!
//! Facade crate re-exporting the whole workspace: the E-process simulator
//! and baselines ([`core`]), the graph substrate ([`graphs`]), the spectral
//! toolkit ([`spectral`]), the paper's closed-form bounds ([`theory`]),
//! statistics helpers ([`stats`]) and the parallel ensemble-simulation
//! engine ([`engine`]).
//!
//! This reproduces Berenbrink, Cooper, Friedetzky, *"Random walks which
//! prefer unvisited edges: exploring high girth even degree expanders in
//! linear time"* (PODC 2012 / RSA 46(1), 2015).
//!
//! ## Quickstart
//!
//! ```
//! use eproc::graphs::generators;
//! use eproc::core::{EProcess, rule::UniformRule, cover::run_to_vertex_cover};
//! use rand::SeedableRng;
//!
//! // A connected even-degree expander: random 4-regular graph.
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let g = generators::connected_random_regular(500, 4, &mut rng)?;
//!
//! // The E-process covers it in O(n) steps (Corollary 2).
//! let mut walk = EProcess::new(&g, 0, UniformRule::new());
//! let result = run_to_vertex_cover(&mut walk, &g, &mut rng).expect("connected graph is covered");
//! assert!(result.steps < 20 * g.n() as u64);
//! # Ok::<(), eproc::graphs::GraphError>(())
//! ```
//!
//! ## Ensembles
//!
//! For grids of (graph × process × seed) runs — the shape of every claim
//! in the paper — use the [`engine`]: declare an
//! [`engine::ExperimentSpec`] and execute it on all cores with
//! [`engine::run`]. Results are bit-identical for any thread count.
//!
//! Extra per-trial metrics (cover, blanket, phases, blue census,
//! hitting) attach [`core::observe`] observers to the **same** walk as
//! the target, so a multi-metric trial still walks the graph once.
//!
//! ```
//! use eproc::engine::{
//!     self, CapSpec, ExperimentSpec, GraphSpec, MetricSpec, ProcessSpec, RuleSpec, Target,
//! };
//!
//! let spec = ExperimentSpec {
//!     name: "doc".into(),
//!     description: "E-process vs SRW".into(),
//!     graphs: vec![GraphSpec::Torus { w: 6, h: 6 }],
//!     processes: vec![ProcessSpec::EProcess { rule: RuleSpec::Uniform }, ProcessSpec::Srw],
//!     trials: 3,
//!     target: Target::VertexCover,
//!     metrics: vec![MetricSpec::Cover, MetricSpec::Hitting { vertex: None }],
//!     start: 0,
//!     cap: CapSpec::Auto,
//!     resample: None,
//! };
//! let report = engine::run(&spec, &engine::RunOptions { threads: 2, base_seed: 1 }).unwrap();
//! assert_eq!(report.cells.len(), 2);
//! assert_eq!(report.cells[0].metrics.len(), 3); // cover.c_v, cover.c_e, hitting(last)
//! ```
//!
//! The same engine backs the `eproc` CLI binary
//! (`cargo run --release --bin eproc -- run comparison --scale quick`).
//!
//! ## Observability
//!
//! [`engine::run_with_sink`] is [`engine::run`] plus telemetry: it
//! streams structured [`telemetry::Event`]s to any
//! [`telemetry::TelemetrySink`] — live progress, a strict-JSONL event
//! log, a per-stage wall-time summary — without perturbing the
//! deterministic artifacts. On the CLI: `--progress`,
//! `--telemetry PATH`, `--quiet`.
//!
//! ## Crash safety
//!
//! [`engine::run_recoverable`] executes resampled runs with atomic
//! checkpointing, graceful SIGINT/SIGTERM interruption (the [`signal`]
//! latch), deadline budgets and deterministic per-block retries; a
//! resumed run reproduces the uninterrupted artifact byte-for-byte. On
//! the CLI: `--checkpoint`, `--resume`, `--max-wall`, `--retry-blocks`.

pub use eproc_core as core;
pub use eproc_engine as engine;
pub use eproc_graphs as graphs;
pub use eproc_signal as signal;
pub use eproc_spectral as spectral;
pub use eproc_stats as stats;
pub use eproc_telemetry as telemetry;
pub use eproc_theory as theory;
