//! **T-rules**: Theorem 1 is independent of rule `A` — "even if this
//! choice is decided on-line by an adversary".
//!
//! We run the E-process under every rule implementation (uniform,
//! first-port, last-port, round-robin, a degree-greedy adversary and a
//! malicious "always pick the largest live arc" adversary) on even-degree
//! expanders; all cover in `Θ(n)`.
//!
//! Thin wrapper over the `eproc-engine` built-in spec of the same name:
//! `eproc run rules` is the CLI equivalent.

use eproc_bench::{run_engine_table, Config};

fn main() {
    let config = Config::from_args();
    println!("Rule independence (Theorem 1): CV(E)/n under different rules A\n");
    run_engine_table("rules", &config, "table_rules");
}
