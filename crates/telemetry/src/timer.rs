//! Monotonic span/stage timing.

use std::time::Instant;

/// A monotonic stopwatch: started once, read many times. This is both
/// the run clock every [`crate::Event`] is stamped with (`t_ns`) and the
/// span timer around individual stages (graph generation, a block's
/// walks, the aggregation merge).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the clock now.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`]. Saturates at
    /// `u64::MAX` (≈ 584 years), so the cast is safe for any real run.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }
}
