//! Subgraph extraction with vertex/edge maps.
//!
//! The blue components of Observation 11 are *edge-induced* subgraphs;
//! extracting them as standalone [`Graph`]s lets all the property
//! machinery (Eulerian decomposition, girth, ℓ-goodness) run on them
//! directly. Both extractors return the mapping back to the parent graph.

use crate::csr::{EdgeId, Graph, Vertex};

/// A subgraph together with its embedding into the parent graph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The extracted graph (vertices relabelled to `0..k`).
    pub graph: Graph,
    /// `vertex_map[i]` = the parent vertex of subgraph vertex `i`.
    pub vertex_map: Vec<Vertex>,
    /// `edge_map[j]` = the parent edge of subgraph edge `j`.
    pub edge_map: Vec<EdgeId>,
}

impl Subgraph {
    /// Parent vertex of subgraph vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn parent_vertex(&self, v: Vertex) -> Vertex {
        self.vertex_map[v]
    }

    /// Parent edge of subgraph edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn parent_edge(&self, e: EdgeId) -> EdgeId {
        self.edge_map[e]
    }
}

/// The subgraph *induced* by a vertex set: keeps every edge with both
/// endpoints selected. Duplicate vertices in `vertices` are ignored.
///
/// # Panics
///
/// Panics if some vertex is `>= g.n()`.
pub fn induced_subgraph(g: &Graph, vertices: &[Vertex]) -> Subgraph {
    let mut keep = vec![false; g.n()];
    for &v in vertices {
        assert!(v < g.n(), "vertex {v} out of range");
        keep[v] = true;
    }
    let vertex_map: Vec<Vertex> = g.vertices().filter(|&v| keep[v]).collect();
    let mut index = vec![usize::MAX; g.n()];
    for (i, &v) in vertex_map.iter().enumerate() {
        index[v] = i;
    }
    let mut edges = Vec::new();
    let mut edge_map = Vec::new();
    for (e, u, v) in g.edges() {
        if keep[u] && keep[v] {
            edges.push((index[u], index[v]));
            edge_map.push(e);
        }
    }
    let graph = Graph::from_edges(vertex_map.len(), &edges).expect("valid by construction");
    Subgraph {
        graph,
        vertex_map,
        edge_map,
    }
}

/// The *edge-induced* subgraph: keeps the listed edges and exactly the
/// vertices they touch — the paper's notion of blue components.
///
/// # Panics
///
/// Panics if some edge id is `>= g.m()` or repeated.
pub fn edge_subgraph(g: &Graph, edges: &[EdgeId]) -> Subgraph {
    let mut chosen = vec![false; g.m()];
    for &e in edges {
        assert!(e < g.m(), "edge {e} out of range");
        assert!(!chosen[e], "edge {e} listed twice");
        chosen[e] = true;
    }
    let mut keep = vec![false; g.n()];
    for &e in edges {
        let (u, v) = g.endpoints(e);
        keep[u] = true;
        keep[v] = true;
    }
    let vertex_map: Vec<Vertex> = g.vertices().filter(|&v| keep[v]).collect();
    let mut index = vec![usize::MAX; g.n()];
    for (i, &v) in vertex_map.iter().enumerate() {
        index[v] = i;
    }
    // Preserve the caller's edge order.
    let mut new_edges = Vec::with_capacity(edges.len());
    for &e in edges {
        let (u, v) = g.endpoints(e);
        new_edges.push((index[u], index[v]));
    }
    let graph = Graph::from_edges(vertex_map.len(), &new_edges).expect("valid by construction");
    Subgraph {
        graph,
        vertex_map,
        edge_map: edges.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::properties::{connectivity, degrees, euler};

    #[test]
    fn induced_triangle_from_k5() {
        let g = generators::complete(5);
        let sub = induced_subgraph(&g, &[0, 2, 4]);
        assert_eq!(sub.graph.n(), 3);
        assert_eq!(sub.graph.m(), 3);
        assert_eq!(sub.vertex_map, vec![0, 2, 4]);
        // Every subgraph edge maps to a parent edge with the right ends.
        for (j, u, v) in sub.graph.edges() {
            let pe = sub.parent_edge(j);
            let (pu, pv) = g.endpoints(pe);
            let mapped = (sub.parent_vertex(u), sub.parent_vertex(v));
            assert!(mapped == (pu, pv) || mapped == (pv, pu));
        }
    }

    #[test]
    fn induced_handles_duplicates_and_isolates() {
        let g = generators::path(5);
        let sub = induced_subgraph(&g, &[0, 0, 2, 4]);
        assert_eq!(sub.graph.n(), 3);
        assert_eq!(
            sub.graph.m(),
            0,
            "0, 2, 4 are pairwise non-adjacent on a path"
        );
    }

    #[test]
    fn edge_subgraph_of_figure_eight_loop() {
        let g = generators::figure_eight(4);
        // First cycle is edges 0..4 by construction.
        let sub = edge_subgraph(&g, &[0, 1, 2, 3]);
        assert_eq!(sub.graph.n(), 4);
        assert_eq!(sub.graph.m(), 4);
        assert!(degrees::is_regular(&sub.graph, 2));
        assert!(connectivity::is_connected(&sub.graph));
        assert!(euler::eulerian_circuit(&sub.graph).is_some());
    }

    #[test]
    fn edge_subgraph_keeps_multiplicity() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        let sub = edge_subgraph(&g, &[0, 2]);
        assert_eq!(sub.graph.m(), 2);
        assert!(sub.graph.has_parallel_edges());
        assert_eq!(sub.edge_map, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn edge_subgraph_rejects_duplicates() {
        let g = generators::cycle(4);
        let _ = edge_subgraph(&g, &[1, 1]);
    }

    #[test]
    fn empty_selections() {
        let g = generators::cycle(5);
        assert_eq!(induced_subgraph(&g, &[]).graph.n(), 0);
        assert_eq!(edge_subgraph(&g, &[]).graph.n(), 0);
    }
}
