//! Crash-safety contracts: a run killed at *any* block and resumed from
//! its checkpoint, and a run whose blocks panic or lose their graphs and
//! get retried, must all reproduce the uninterrupted artifact
//! **byte-for-byte**, at any thread count — `cmp` would pass on the
//! files. This is the recovery analogue of `shard_merge.rs`.

mod common;

use eproc_engine::checkpoint::RunCheckpoint;
use eproc_engine::executor::ExperimentReport;
use eproc_engine::executor::{run, BlockError, EngineError, RunOptions};
use eproc_engine::fault::FaultPlan;
use eproc_engine::recovery::{
    run_recoverable, run_recoverable_with_sink, CheckpointPlan, RecoveryError, RecoveryOptions,
    RunOutcome,
};
use eproc_engine::report::{to_json, to_json_with};
use eproc_engine::spec::{
    CapSpec, ExperimentSpec, GraphSpec, MetricSpec, ProcessSpec, ResamplePlan, RuleSpec, Target,
};
use eproc_telemetry::{Event, EventKind, TelemetrySink};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Once;

/// Injected panics unwind through `catch_unwind` by design; the default
/// hook would spray their backtraces over the test output. Installed
/// once, and only filters the harness's own marker string — real panics
/// still print.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("injected fault:"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// A small but varied resampled spec: optionally two graph families, a
/// ragged last group when `trials` is odd — 2 or 4 blocks total.
fn spec_for(trials: usize, both_families: bool) -> ExperimentSpec {
    let mut graphs = vec![GraphSpec::Regular { n: 20, d: 3 }];
    if both_families {
        graphs.push(GraphSpec::Torus { w: 4, h: 5 });
    }
    ExperimentSpec {
        name: "recovery-prop".into(),
        description: "crash-safety property-test spec".into(),
        graphs,
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials,
        target: Target::VertexCover,
        metrics: vec![MetricSpec::Cover],
        start: 0,
        cap: CapSpec::Auto,
        resample: Some(ResamplePlan { walks_per_graph: 2 }),
    }
}

/// A unique temp path per test invocation (tests in this binary run
/// concurrently).
fn temp_checkpoint(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "eproc-recovery-{}-{tag}-{n}.json",
        std::process::id()
    ))
}

/// A sink that flips a cancellation flag after the `k`-th completed
/// block — the deterministic stand-in for SIGINT arriving mid-run.
struct CancelAfter<'a> {
    cancel: &'a AtomicBool,
    completed: AtomicUsize,
    k: usize,
}

impl TelemetrySink for CancelAfter<'_> {
    fn emit(&self, event: &Event) {
        if matches!(event.kind, EventKind::BlockCompleted { .. })
            && self.completed.fetch_add(1, Ordering::Relaxed) + 1 >= self.k
        {
            self.cancel.store(true, Ordering::Relaxed);
        }
    }
}

/// Interrupts a run after `kill_after` blocks (checkpointing every
/// completion), then resumes from the written checkpoint, and returns
/// the final report. Either phase may also complete outright —
/// in-flight blocks drain past the cancellation point by design.
fn killed_and_resumed(
    spec: &ExperimentSpec,
    seed: u64,
    kill_after: usize,
    threads_a: usize,
    threads_b: usize,
) -> ExperimentReport {
    let path = temp_checkpoint("kill");
    let cancel = AtomicBool::new(false);
    let sink = CancelAfter {
        cancel: &cancel,
        completed: AtomicUsize::new(0),
        k: kill_after,
    };
    let rec = RecoveryOptions {
        checkpoint: Some(CheckpointPlan {
            path: path.clone(),
            every: 1,
        }),
        cancel: Some(&cancel),
        ..RecoveryOptions::default()
    };
    let opts_a = RunOptions {
        threads: threads_a,
        base_seed: seed,
    };
    let first = run_recoverable_with_sink(spec, &opts_a, &rec, &sink).expect("first phase runs");
    let report = match first {
        RunOutcome::Completed(report) => report,
        RunOutcome::Interrupted {
            reason,
            completed,
            total,
            checkpoint,
        } => {
            assert_eq!(reason, "signal");
            assert!(completed < total);
            let ckpt_path = checkpoint.expect("checkpointing was configured");
            let ckpt = RunCheckpoint::load(&ckpt_path).expect("final checkpoint is readable");
            // The final checkpoint must hold exactly the completed prefix.
            assert_eq!(ckpt.completed_blocks(), completed);
            common::json::validate(&ckpt.to_json()).expect("checkpoint is strict JSON");
            let rec = RecoveryOptions {
                resume: Some(ckpt),
                ..RecoveryOptions::default()
            };
            let opts_b = RunOptions {
                threads: threads_b,
                base_seed: seed,
            };
            match run_recoverable(spec, &opts_b, &rec).expect("resume runs") {
                RunOutcome::Completed(report) => report,
                RunOutcome::Interrupted { .. } => unreachable!("nothing interrupts the resume"),
            }
        }
    };
    let _ = std::fs::remove_file(&path);
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline contract: kill at any block, resume on a different
    /// thread count, and the artifact matches an uninterrupted run's
    /// byte-for-byte.
    #[test]
    fn killed_and_resumed_runs_reproduce_the_artifact(
        seed in 0u64..1_000_000,
        trials in 3usize..8,
        kill_after in 0usize..4,
        threads_draw in 0usize..4,
    ) {
        // Exercise the {1, 4}-thread grid across both phases.
        let threads_a = if threads_draw % 2 == 0 { 1 } else { 4 };
        let threads_b = if threads_draw / 2 == 0 { 1 } else { 4 };
        let spec = spec_for(trials, true);
        let golden = to_json(&run(&spec, &RunOptions { threads: 2, base_seed: seed }).unwrap());
        let resumed = killed_and_resumed(&spec, seed, kill_after, threads_a, threads_b);
        prop_assert_eq!(&to_json(&resumed), &golden);
    }

    /// Injected faults — a panic and a lost graph, on different blocks —
    /// are retried from the same derived seeds and leave no trace in the
    /// artifact.
    #[test]
    fn retried_blocks_contribute_bit_identical_results(
        seed in 0u64..1_000_000,
        trials in 3usize..8,
    ) {
        quiet_injected_panics();
        let spec = spec_for(trials, true);
        let golden = to_json(&run(&spec, &RunOptions { threads: 2, base_seed: seed }).unwrap());
        let rec = RecoveryOptions {
            retry_blocks: 1,
            faults: FaultPlan::parse("panic@0.1.0,graphfail@1.0.0").unwrap(),
            ..RecoveryOptions::default()
        };
        let opts = RunOptions { threads: 4, base_seed: seed };
        let outcome = run_recoverable(&spec, &opts, &rec).expect("faults are retried away");
        let report = match outcome {
            RunOutcome::Completed(report) => report,
            RunOutcome::Interrupted { .. } => unreachable!("nothing interrupts this run"),
        };
        prop_assert_eq!(&to_json(&report), &golden);
    }
}

/// A killed-and-resumed run carries the same sketch bits as an
/// uninterrupted one — the checkpoint persists raw sketch state — so any
/// `--quantiles` selection renders byte-identically, not just the
/// default p50/p90/p99 that `to_json` prints.
#[test]
fn custom_quantile_render_survives_kill_and_resume() {
    let spec = spec_for(5, true);
    let seed = 90210;
    let full = run(
        &spec,
        &RunOptions {
            threads: 2,
            base_seed: seed,
        },
    )
    .unwrap();
    let resumed = killed_and_resumed(&spec, seed, 2, 1, 4);
    let quantiles = [0.25, 0.5, 0.999];
    assert_eq!(
        to_json_with(&resumed, None, &quantiles),
        to_json_with(&full, None, &quantiles)
    );
}

#[test]
fn resume_rejects_a_checkpoint_from_a_different_run() {
    let spec = spec_for(4, true);
    let path = temp_checkpoint("mismatch");
    let cancel = AtomicBool::new(false);
    let sink = CancelAfter {
        cancel: &cancel,
        completed: AtomicUsize::new(0),
        k: 1,
    };
    let rec = RecoveryOptions {
        checkpoint: Some(CheckpointPlan {
            path: path.clone(),
            every: 1,
        }),
        cancel: Some(&cancel),
        ..RecoveryOptions::default()
    };
    let opts = RunOptions {
        threads: 1,
        base_seed: 7,
    };
    // threads=1 with k=1: the run reliably interrupts before finishing.
    let outcome = run_recoverable_with_sink(&spec, &opts, &rec, &sink).expect("first phase runs");
    assert!(matches!(outcome, RunOutcome::Interrupted { .. }));
    let ckpt = RunCheckpoint::load(&path).expect("checkpoint written");

    // Same spec, different seed: a different run.
    let rec = RecoveryOptions {
        resume: Some(ckpt),
        ..RecoveryOptions::default()
    };
    let wrong_seed = RunOptions {
        threads: 1,
        base_seed: 8,
    };
    let err = run_recoverable(&spec, &wrong_seed, &rec).unwrap_err();
    let msg = err.to_string();
    assert!(
        matches!(err, RecoveryError::Checkpoint(_)),
        "wrong error kind: {err:?}"
    );
    assert!(
        msg.contains("base_seed") && msg.contains("different run"),
        "{msg}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn exhausted_retries_name_the_block_and_keep_the_checkpoint() {
    quiet_injected_panics();
    let spec = spec_for(4, true);
    let path = temp_checkpoint("exhaust");
    let rec = RecoveryOptions {
        checkpoint: Some(CheckpointPlan {
            path: path.clone(),
            every: 1,
        }),
        // Every attempt of (family 1, group 1) panics: retries exhaust.
        retry_blocks: 2,
        faults: FaultPlan::parse("panic@1.1.0,panic@1.1.1,panic@1.1.2").unwrap(),
        ..RecoveryOptions::default()
    };
    let opts = RunOptions {
        threads: 2,
        base_seed: 3,
    };
    let err = run_recoverable(&spec, &opts, &rec).unwrap_err();
    let msg = err.to_string();
    assert!(matches!(
        &err,
        RecoveryError::Engine(EngineError::Block {
            source: BlockError::Panic(_),
            ..
        })
    ));
    // The message names the family by label, the group, and the worker.
    assert!(msg.contains("family torus 4x5"), "{msg}");
    assert!(msg.contains("resample group 1"), "{msg}");
    assert!(msg.contains("worker"), "{msg}");
    assert!(msg.contains("injected fault"), "{msg}");

    // The completed blocks were still checkpointed, and resuming with
    // the faults disarmed finishes the run to the golden artifact.
    let ckpt = RunCheckpoint::load(&path).expect("failure still checkpoints completed blocks");
    let rec = RecoveryOptions {
        resume: Some(ckpt),
        ..RecoveryOptions::default()
    };
    let golden = to_json(&run(&spec, &opts).unwrap());
    match run_recoverable(&spec, &opts, &rec).expect("resume runs") {
        RunOutcome::Completed(report) => assert_eq!(to_json(&report), golden),
        RunOutcome::Interrupted { .. } => unreachable!("nothing interrupts the resume"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shared_graph_runs_are_rejected_with_an_explanation() {
    let mut spec = spec_for(4, false);
    spec.resample = None;
    let err = run_recoverable(
        &spec,
        &RunOptions {
            threads: 1,
            base_seed: 1,
        },
        &RecoveryOptions::default(),
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("resampled run"), "{msg}");
    assert!(msg.contains("checkpoint"), "{msg}");
}

#[test]
fn max_wall_deadline_interrupts_gracefully() {
    let spec = spec_for(6, true);
    let rec = RecoveryOptions {
        max_wall: Some(std::time::Duration::ZERO),
        ..RecoveryOptions::default()
    };
    let opts = RunOptions {
        threads: 2,
        base_seed: 5,
    };
    match run_recoverable(&spec, &opts, &rec).expect("deadline is not an error") {
        RunOutcome::Interrupted {
            reason,
            completed,
            total,
            checkpoint,
        } => {
            assert_eq!(reason, "deadline");
            assert_eq!(completed, 0, "an already-expired deadline claims nothing");
            // 2 families x ceil(6 trials / 2 walks) = 6 blocks.
            assert_eq!(total, 6);
            assert!(checkpoint.is_none(), "no checkpoint was configured");
        }
        RunOutcome::Completed(_) => panic!("a zero deadline cannot complete"),
    }
}
