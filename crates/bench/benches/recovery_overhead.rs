//! Cost of the crash-safety layer on an end-to-end engine run.
//!
//! Three variants on an identical spec: the plain `run` entry point
//! (the PR 7 baseline), `run_recoverable` with every feature disabled
//! (the path a `--retry-blocks`-only run takes — must be free: the
//! empty `FaultPlan` is one `is_empty` check and the stop latch one
//! relaxed load per block), and `run_recoverable` with per-block
//! checkpointing to a temp file (the durability price an interruptible
//! run pays). Writes `target/experiments/BENCH_recovery.json`.

use eproc_bench::output_dir;
use eproc_engine::executor::{run, RunOptions};
use eproc_engine::recovery::{run_recoverable, CheckpointPlan, RecoveryOptions, RunOutcome};
use eproc_engine::spec::{
    CapSpec, ExperimentSpec, GraphSpec, ProcessSpec, ResamplePlan, RuleSpec, Target,
};
use std::time::Instant;

const SAMPLES: usize = 5;

/// Minimum seconds over `SAMPLES` timed runs — the least-interference
/// estimate when comparing variants on a shared machine.
fn best_secs<F: FnMut()>(mut f: F) -> f64 {
    (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "recovery-overhead".into(),
        description: "crash-safety overhead bench".into(),
        graphs: vec![
            GraphSpec::Regular { n: 2_000, d: 3 },
            GraphSpec::Regular { n: 2_000, d: 4 },
        ],
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials: 6,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(5_000.0),
        resample: Some(ResamplePlan { walks_per_graph: 2 }),
    }
}

fn main() {
    let spec = bench_spec();
    let opts = RunOptions {
        base_seed: 12345,
        ..RunOptions::auto()
    };
    let expect_completed = |outcome: RunOutcome| match outcome {
        RunOutcome::Completed(report) => report,
        RunOutcome::Interrupted { .. } => unreachable!("nothing interrupts the bench"),
    };

    let golden = run(&spec, &opts).expect("warm-up run");
    let baseline_secs = best_secs(|| {
        run(&spec, &opts).expect("timed run");
    });
    let disabled_secs = best_secs(|| {
        let report = expect_completed(
            run_recoverable(&spec, &opts, &RecoveryOptions::default()).expect("timed run"),
        );
        assert_eq!(report.cells.len(), golden.cells.len());
    });
    let ckpt_path = std::env::temp_dir().join(format!(
        "eproc-bench-recovery-{}.checkpoint.json",
        std::process::id()
    ));
    let checkpoint_secs = best_secs(|| {
        let rec = RecoveryOptions {
            checkpoint: Some(CheckpointPlan {
                path: ckpt_path.clone(),
                every: 1,
            }),
            ..RecoveryOptions::default()
        };
        expect_completed(run_recoverable(&spec, &opts, &rec).expect("timed run"));
    });
    let _ = std::fs::remove_file(&ckpt_path);
    let disabled_overhead = disabled_secs / baseline_secs;
    let checkpoint_overhead = checkpoint_secs / baseline_secs;

    println!(
        "recovery_overhead/baseline:     {:>8.2} ms (run, plain executor)",
        baseline_secs * 1e3
    );
    println!(
        "recovery_overhead/disabled:     {:>8.2} ms ({disabled_overhead:.3}x, target ~1.0x)",
        disabled_secs * 1e3
    );
    println!(
        "recovery_overhead/checkpointed: {:>8.2} ms ({checkpoint_overhead:.3}x, every block)",
        checkpoint_secs * 1e3
    );

    let json = format!(
        "{{\n  \"bench\": \"recovery_overhead\",\n  \
         \"spec\": \"2x random cubic/quartic n=2000, 2 processes, 6 trials, resample 2\",\n  \
         \"samples\": {},\n  \
         \"threads\": {},\n  \
         \"baseline_secs\": {:.6},\n  \
         \"disabled_secs\": {:.6},\n  \
         \"checkpointed_secs\": {:.6},\n  \
         \"disabled_overhead\": {:.4},\n  \
         \"checkpointed_overhead\": {:.4}\n}}\n",
        SAMPLES,
        opts.threads,
        baseline_secs,
        disabled_secs,
        checkpoint_secs,
        disabled_overhead,
        checkpoint_overhead,
    );
    let dir = output_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = dir.join("BENCH_recovery.json");
    std::fs::write(&path, json).expect("write snapshot");
    println!("json: {}", path.display());
}
