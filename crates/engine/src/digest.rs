//! Content digests for canonical experiment specs.
//!
//! A [`SpecDigest`] is the cache key of the content-addressed artifact
//! store ([`crate::cache`]): a SHA-256 hash over a versioned preimage
//! built from everything the artifact bytes depend on —
//!
//! - the **canonical** `to_cli()` line of the spec (so every spelling
//!   of the same experiment — builtin name, expanded flags, shuffled
//!   grids — keys the same entry; see
//!   [`ExperimentSpec::canonicalize`]);
//! - the **base seed** (artifacts are a pure function of `(spec,
//!   seed)`);
//! - the **quantile selection**, encoded as exact IEEE-754 bit
//!   patterns (quantile columns are rendered into the artifact);
//! - the **artifact kind** (`scale` artifacts carry a `growth_laws`
//!   section that plain runs do not);
//! - a **format version**, bumped whenever the artifact JSON format or
//!   the canonical grammar changes, so stale cache entries miss
//!   instead of serving bytes in an old format.
//!
//! Deliberately *not* part of the preimage: thread count, shard
//! layout, checkpoint/resume state and telemetry flags — the engine
//! guarantees (and CI pins) that none of them change the artifact
//! bytes.
//!
//! The hash is a self-contained SHA-256 (FIPS 180-4) in safe Rust: the
//! workspace builds offline, so no external digest crate is available.

use crate::spec::ExperimentSpec;
use std::fmt;

/// Version tag mixed into every digest preimage. Bump on any change to
/// the artifact JSON format or the canonical spec grammar.
pub const SPEC_DIGEST_VERSION: &str = "eproc-spec-v1";

/// Which artifact shape a run produces: `scale` runs append a
/// `growth_laws` section, so the same spec + seed yields different
/// bytes under `run` and `scale` and must key different cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// `eproc run` / `eproc compare`: the plain ensemble report.
    Ensemble,
    /// `eproc scale`: ensemble report plus growth-law fits.
    Scaling,
}

impl ArtifactKind {
    fn label(&self) -> &'static str {
        match self {
            ArtifactKind::Ensemble => "ensemble",
            ArtifactKind::Scaling => "scaling",
        }
    }
}

/// A 256-bit content digest identifying `(canonical spec, seed,
/// quantiles, artifact kind, format version)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpecDigest([u8; 32]);

impl SpecDigest {
    /// Wraps raw digest bytes (e.g. a [`sha256`] output).
    pub fn from_bytes(bytes: [u8; 32]) -> SpecDigest {
        SpecDigest(bytes)
    }

    /// Full 64-character lowercase hex form (the cache file stem).
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// First 12 hex characters: the short form used in CLI chatter and
    /// canonical spec names. 48 bits — collision-safe for any realistic
    /// number of distinct experiments, and resolvable as a prefix by
    /// `eproc cache path`.
    pub fn short(&self) -> String {
        self.hex()[..12].to_string()
    }
}

impl fmt::Display for SpecDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.hex())
    }
}

/// Computes the digest of `spec` under `base_seed`, the rendered
/// `quantiles`, and the artifact `kind`. Canonicalizes internally, so
/// every spelling of the same experiment digests identically.
pub fn spec_digest(
    spec: &ExperimentSpec,
    base_seed: u64,
    quantiles: &[f64],
    kind: ArtifactKind,
) -> SpecDigest {
    let canonical = spec.canonicalize();
    let mut preimage = String::new();
    preimage.push_str(SPEC_DIGEST_VERSION);
    preimage.push('\n');
    preimage.push_str(&canonical.to_cli());
    preimage.push('\n');
    preimage.push_str("kind=");
    preimage.push_str(kind.label());
    preimage.push('\n');
    preimage.push_str(&format!("seed={base_seed}\n"));
    // Exact bit patterns: `0.9` and any float formatting quirk must
    // never alias distinct selections (or split identical ones).
    preimage.push_str("quantiles=");
    for (i, q) in quantiles.iter().enumerate() {
        if i > 0 {
            preimage.push(',');
        }
        preimage.push_str(&format!("{:016x}", q.to_bits()));
    }
    preimage.push('\n');
    SpecDigest(sha256(preimage.as_bytes()))
}

/// The derived name of a canonical spec: `spec-` plus the first 12 hex
/// characters of the SHA-256 of its structural `to_cli()` line. Used by
/// [`ExperimentSpec::canonicalize`] so the normal form's name is a pure
/// function of its content (and the default artifact path
/// `target/experiments/eproc_spec-<hash>.json` never collides across
/// distinct experiments).
pub fn content_name(canonical_line: &str) -> String {
    let h = sha256(canonical_line.as_bytes());
    let mut s = String::from("spec-");
    for b in &h[..6] {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Computes SHA-256 of `data` (FIPS 180-4, safe Rust, no external
/// crates).
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Standard padding: 0x80, zeros, then the bit length as a 64-bit
    // big-endian integer, to a multiple of 64 bytes.
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (t, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * t],
                block[4 * t + 1],
                block[4 * t + 2],
                block[4 * t + 3],
            ]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }

    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-4 / NIST CAVP reference vectors.
    #[test]
    fn sha256_matches_reference_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One full block of 'a' plus spill (exercises multi-block path).
        assert_eq!(
            hex(&sha256(&[b'a'; 112])),
            "f54353008a2553262ecdc4a34749563ba0950e8b0fc8652780b0a614b99683c1"
        );
    }

    #[test]
    fn digests_are_stable_hex() {
        let d = SpecDigest(sha256(b"abc"));
        assert_eq!(d.hex().len(), 64);
        assert_eq!(d.short(), &d.hex()[..12]);
        assert_eq!(format!("{d}"), d.hex());
    }

    #[test]
    fn content_names_are_short_and_prefixed() {
        let n = content_name("--graph cycle:8 --process srw");
        assert!(n.starts_with("spec-"), "{n}");
        assert_eq!(n.len(), "spec-".len() + 12);
        // Pure function of the line.
        assert_eq!(n, content_name("--graph cycle:8 --process srw"));
        assert_ne!(n, content_name("--graph cycle:9 --process srw"));
    }
}
