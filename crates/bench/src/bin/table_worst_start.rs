//! **T-wstart**: the cover time is `max_v C_v` — start-vertex sensitivity.
//!
//! The paper defines `C_V(Y, G) = max_v C_v`. On vertex-transitive or
//! expander-like graphs the start barely matters; on the lollipop it
//! matters enormously. This table measures the spread (worst vs start-0
//! mean) for the E-process and the SRW.
//!
//! Thin engine wrapper: the built-in `worststart` spec is one fixed-start
//! ensemble cell; this binary sweeps [`ExperimentSpec::start`] over every
//! vertex of each graph (one deterministic parallel engine run per start,
//! seeded per `(graph, start)`) and takes the max — the per-start trial
//! loops, seeding and aggregation all live in the engine. The composed
//! report (per-cell statistics **over starts** of the per-start mean
//! cover time) is saved as a standard JSON artifact, bit-identical for
//! any thread count.

use eproc_bench::{engine_scale, save_table, Config};
use eproc_engine::executor::{build_graphs, run_on_graphs, CellSummary, ExperimentReport};
use eproc_engine::report::save_json;
use eproc_engine::spec::ExperimentSpec;
use eproc_engine::RunOptions;
use eproc_stats::{OnlineStats, QuantileSketch, SeedSequence, TextTable};

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Start-vertex sensitivity: CV = max_v C_v vs fixed-start means\n");
    let base = eproc_engine::builtin::spec("worststart", engine_scale(config.scale))
        .expect("builtin exists");
    let mut table = TextTable::new(vec![
        "graph",
        "process",
        "worst start",
        "worst mean",
        "start-0 mean",
        "worst/start-0",
    ]);
    let mut composed_cells: Vec<CellSummary> = Vec::new();
    for (gi, gspec) in base.graphs.iter().enumerate() {
        // One single-graph spec per family; the graph is built once and
        // shared by every per-start run.
        let spec = ExperimentSpec {
            graphs: vec![gspec.clone()],
            ..base.clone()
        };
        let graph_seed = seeds.derive(&[gi as u64]);
        let graphs = build_graphs(&spec, graph_seed).expect("graph builds");
        let n = graphs[0].n();
        // per_start[pi][start] = mean cover steps from that start.
        let mut per_start: Vec<Vec<f64>> = vec![Vec::with_capacity(n); spec.processes.len()];
        for start in 0..n {
            let run_spec = ExperimentSpec {
                start,
                ..spec.clone()
            };
            let opts = RunOptions {
                base_seed: seeds.derive(&[gi as u64, start as u64]),
                ..config.engine_opts()
            };
            let report = run_on_graphs(&run_spec, &opts, &graphs).expect("engine run");
            for (pi, cell) in report.cells.iter().enumerate() {
                assert_eq!(
                    cell.completed, cell.trials,
                    "{}/{} from start {start}: not every trial covered",
                    cell.graph, cell.process
                );
                per_start[pi].push(cell.steps.mean());
            }
        }
        for (pi, process) in spec.processes.iter().enumerate() {
            let means = &per_start[pi];
            let (worst_v, worst_mean) = means
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("means are finite"))
                .map(|(v, &m)| (v, m))
                .expect("nonempty graph");
            let from0 = means[0];
            table.push_row(vec![
                gspec.label(),
                process.label(),
                worst_v.to_string(),
                format!("{worst_mean:.0}"),
                format!("{from0:.0}"),
                format!("{:.2}", worst_mean / from0),
            ]);
            let mut over_starts = OnlineStats::new();
            // Sketch stream 3 mirrors the engine's sketch-seed convention
            // and stays clear of the per-(graph, start) run seeds above.
            let mut over_starts_sketch =
                QuantileSketch::new(seeds.derive(&[3, gi as u64, pi as u64]));
            for &m in means {
                over_starts.push(m);
                over_starts_sketch.push(m);
            }
            composed_cells.push(CellSummary {
                graph: gspec.label(),
                family: gspec.family_label(),
                n,
                m: graphs[0].m(),
                process: process.label(),
                trials: n,
                completed: n,
                steps: over_starts,
                steps_sketch: over_starts_sketch,
                blue_fraction: OnlineStats::new(),
                steps_split: None,
                metrics: vec![],
            });
        }
    }
    println!("{table}");
    println!("note: on expanders and tori the start barely matters for either process");
    println!("(ratios 1.0-1.3). The lollipop flips the intuition: the E-process is the");
    println!("start-sensitive one — the lollipop has odd degrees, so Observation 10");
    println!("does not apply, and a mid-path start leaves stranded blue edges on both");
    println!("sides that the embedded random walk must re-reach across the path");
    println!("(quadratic per crossing). From the clique (start 0) its blue sweep");
    println!("consumes the path in one pass. Even-degree structure is what makes the");
    println!("E-process start-insensitive.");
    let p = save_table("table_worst_start", &table).expect("write csv");
    println!("csv: {}", p.display());
    // Composed report: each cell's distribution is over start vertices
    // (one entry per start = that start's mean cover time), so the
    // artifact's own description spells out what `trials` means at each
    // level rather than leaving the two counts looking contradictory.
    let report = ExperimentReport {
        name: "worst_start".into(),
        description: format!(
            "per-start mean vertex cover times: each cell aggregates one mean per start \
             vertex (cell trials = start count), every mean over {} runs (report trials)",
            base.trials
        ),
        target: base.target,
        trials: base.trials,
        base_seed: config.seed,
        resample: None,
        cells: composed_cells,
    };
    let j = save_json(&report, None).expect("write json");
    println!("json: {}", j.display());
}
