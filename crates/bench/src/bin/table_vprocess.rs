//! **T-vproc**: unvisited-edge vs unvisited-vertex preference.
//!
//! §1 of the paper motivates the E-process with "the idea that the vertex
//! cover time of a random walk could be reduced by choosing unvisited
//! neighbour vertices whenever possible"; the companion report \[4\]
//! studies both variants experimentally. This table races the E-process
//! against the V-process and the SRW across degrees, reporting `CV/n`
//! (flat = linear).

use eproc_bench::{mean_vertex_cover_steps, rng_for, save_table, Config, Scale};
use eproc_core::rule::UniformRule;
use eproc_core::srw::SimpleRandomWalk;
use eproc_core::vprocess::VProcess;
use eproc_core::EProcess;
use eproc_graphs::generators;
use eproc_stats::{SeedSequence, TextTable};

const REPS: usize = 5;

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("E-process vs V-process vs SRW on random r-regular graphs (CV/n)\n");
    let mut table = TextTable::new(vec![
        "r",
        "n",
        "E CV/n",
        "V CV/n",
        "SRW CV/n",
        "E CV/(n ln n)",
        "V CV/(n ln n)",
    ]);
    let sizes: Vec<usize> = match config.scale {
        Scale::Quick => vec![2_000, 8_000, 32_000],
        Scale::Paper => vec![8_000, 32_000, 128_000],
    };
    for &r in &[3usize, 4, 5, 6] {
        for &n in &sizes {
            let mut graph_rng = rng_for(seeds.derive(&[r as u64, n as u64]));
            let g = generators::connected_random_regular(n, r, &mut graph_rng).unwrap();
            let nf = n as f64;
            let cap = (5_000.0 * nf * nf.ln()) as u64;
            let mut rng = rng_for(seeds.derive(&[r as u64, n as u64, 5]));
            let (e_cv, d1) = mean_vertex_cover_steps(
                |_| EProcess::new(&g, 0, UniformRule::new()),
                REPS,
                cap,
                &mut rng,
            );
            let (v_cv, d2) = mean_vertex_cover_steps(|_| VProcess::new(&g, 0), REPS, cap, &mut rng);
            let (s_cv, d3) =
                mean_vertex_cover_steps(|_| SimpleRandomWalk::new(&g, 0), REPS, cap, &mut rng);
            assert_eq!((d1, d2, d3), (REPS, REPS, REPS));
            table.push_row(vec![
                r.to_string(),
                n.to_string(),
                format!("{:.2}", e_cv / nf),
                format!("{:.2}", v_cv / nf),
                format!("{:.2}", s_cv / nf),
                format!("{:.3}", e_cv / (nf * nf.ln())),
                format!("{:.3}", v_cv / (nf * nf.ln())),
            ]);
        }
    }
    println!("{table}");
    let p = save_table("table_vprocess", &table).expect("write csv");
    println!("csv: {}", p.display());
}
