//! Pre-kernel baseline vs monomorphized walk kernel, side by side.
//!
//! Three variants of the same hot path, measured in the same run on the
//! same graph:
//!
//! * **baseline** — the pre-kernel step loop reproduced verbatim
//!   ([`LegacyEProcess`]): `Box<dyn WalkProcess>` stepped through the
//!   object-safe `advance(&mut dyn RngCore)`, modulo-based rejection
//!   sampling (two 64-bit divisions per draw), `Vec<bool>` edge bitmap,
//!   and — for the observed shape — `run_observed_dyn`'s dyn-observer
//!   fan-out with its per-step all-observers `satisfied()` poll. This is
//!   exactly what every engine trial paid before the kernel PR.
//! * **dyn** — today's process code, still dispatched dynamically
//!   (`Box<dyn WalkProcess>` + `run_observed_dyn`): isolates how much of
//!   the win is dispatch/inlining vs the shared strength reductions.
//! * **kernel** — the monomorphized path: concrete `EProcess`,
//!   `advance_rng::<SmallRng>`, tuple `ObserverSet`, completion-token
//!   stop check. One flat inlined loop.
//!
//! All three walk the identical trajectory for the identical seed
//! (asserted before timing). Two shapes: **bare** (no observers) and
//! **observed3** (cover + blanket + phases on one walk — the multi-metric
//! trial). Writes `target/experiments/BENCH_walk.json`; the kernel PR's
//! acceptance floor was ≥1.2× bare and ≥1.5× observed3, kernel vs
//! baseline.

use criterion::black_box;
use eproc_bench::{output_dir, rng_for, LegacyEProcess};
use eproc_core::cover::CoverTarget;
use eproc_core::observe::{
    run_observed, run_observed_dyn, BlanketObserver, CoverObserver, Observer, PhaseObserver,
    StopWhen,
};
use eproc_core::rule::UniformRule;
use eproc_core::{EProcess, WalkProcess};
use eproc_graphs::generators;
use eproc_graphs::Graph;
use rand::RngCore;
use std::time::Instant;

const STEPS: u64 = 200_000;
const SAMPLES: usize = 11;

/// Minimum seconds over `SAMPLES` timed runs of `f` — the
/// least-interference estimate, which is the right statistic when
/// comparing code variants on a shared machine (noise only ever adds
/// time).
fn best_secs<F: FnMut()>(mut f: F) -> f64 {
    (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Boxes a walk with an opaque vtable: `black_box` stops LLVM from
/// devirtualizing the loop, so the dyn variants genuinely pay per-step
/// virtual dispatch like the engine's `ProcessSpec::build` path did.
fn boxed<'g, W: WalkProcess + 'g>(w: W) -> Box<dyn WalkProcess + 'g> {
    black_box(Box::new(w))
}

fn bare<F>(mut build: F) -> f64
where
    F: FnMut() -> BareRunner,
{
    best_secs(move || build().run())
}

/// One bare timed run: either dyn-stepped or kernel-stepped.
enum BareRunner {
    Dyn(Box<dyn WalkProcess + 'static>, rand::rngs::SmallRng),
    Kernel(EProcess<'static, UniformRule>, rand::rngs::SmallRng),
}

impl BareRunner {
    fn run(self) {
        match self {
            BareRunner::Dyn(mut w, mut rng) => {
                let rng_dyn: &mut dyn RngCore = black_box(&mut rng);
                for _ in 0..STEPS {
                    black_box(w.advance(rng_dyn));
                }
            }
            BareRunner::Kernel(mut w, mut rng) => {
                for _ in 0..STEPS {
                    black_box(w.advance_rng(&mut rng));
                }
            }
        }
    }
}

/// 3-observer trial through the dyn driver (baseline and dyn variants).
fn observed_dyn_with<F>(g: &Graph, mut build: F) -> f64
where
    F: for<'g> FnMut(&'g Graph) -> Box<dyn WalkProcess + 'g>,
{
    let mut cover = CoverObserver::new(CoverTarget::Both);
    let mut blanket = BlanketObserver::new(0.4).expect("valid delta");
    let mut phases = PhaseObserver::new();
    best_secs(move || {
        let mut rng = rng_for(2);
        let mut w = build(g);
        let mut observers: [&mut dyn Observer; 3] =
            black_box([&mut cover, &mut blanket, &mut phases]);
        let run = run_observed_dyn(&mut *w, &mut observers, StopWhen::Cap, STEPS, &mut rng);
        black_box(run);
    })
}

/// 3-observer trial through the monomorphized kernel (tuple observers).
fn observed_kernel(g: &Graph) -> f64 {
    let mut cover = CoverObserver::new(CoverTarget::Both);
    let mut blanket = BlanketObserver::new(0.4).expect("valid delta");
    let mut phases = PhaseObserver::new();
    best_secs(move || {
        let mut rng = rng_for(2);
        let mut w = EProcess::new(g, 0, UniformRule::new());
        let run = run_observed(
            &mut w,
            &mut (&mut cover, &mut blanket, &mut phases),
            StopWhen::Cap,
            STEPS,
            &mut rng,
        );
        black_box(run);
    })
}

/// The three variants must walk the same trajectory before we compare
/// their speeds.
fn assert_trajectory_equivalence(g: &Graph) {
    let mut rng_a = rng_for(3);
    let mut rng_b = rng_for(3);
    let mut legacy = LegacyEProcess::new(g, 0);
    let mut kernel = EProcess::new(g, 0, UniformRule::new());
    for _ in 0..10_000 {
        assert_eq!(
            legacy.advance(&mut rng_a),
            kernel.advance_rng(&mut rng_b),
            "baseline and kernel diverged"
        );
    }
}

fn rate(secs: f64) -> f64 {
    STEPS as f64 / secs
}

fn main() {
    let mut graph_rng = rng_for(1);
    let g = generators::connected_random_regular(1_000, 4, &mut graph_rng).unwrap();
    assert_trajectory_equivalence(&g);

    // Leak the graph so the bare runners can hold 'static walks; a bench
    // process exits immediately after.
    let g: &'static Graph = Box::leak(Box::new(g));

    let bare_base = rate(bare(|| {
        BareRunner::Dyn(boxed(LegacyEProcess::new(g, 0)), rng_for(2))
    }));
    let bare_dyn = rate(bare(|| {
        BareRunner::Dyn(boxed(EProcess::new(g, 0, UniformRule::new())), rng_for(2))
    }));
    let bare_kernel = rate(bare(|| {
        BareRunner::Kernel(EProcess::new(g, 0, UniformRule::new()), rng_for(2))
    }));
    let obs_base = observed_dyn_with(g, |g| boxed(LegacyEProcess::new(g, 0)));
    let obs_dyn = observed_dyn_with(g, |g| boxed(EProcess::new(g, 0, UniformRule::new())));
    let (obs_base, obs_dyn) = (rate(obs_base), rate(obs_dyn));
    let obs_kernel = rate(observed_kernel(g));

    let bare_speedup = bare_kernel / bare_base;
    let obs_speedup = obs_kernel / obs_base;

    println!(
        "walk_kernel/bare_baseline:      {:.2} Msteps/s",
        bare_base / 1e6
    );
    println!(
        "walk_kernel/bare_dyn:           {:.2} Msteps/s",
        bare_dyn / 1e6
    );
    println!(
        "walk_kernel/bare_kernel:        {:.2} Msteps/s  ({bare_speedup:.2}x vs baseline)",
        bare_kernel / 1e6
    );
    println!(
        "walk_kernel/observed3_baseline: {:.2} Msteps/s",
        obs_base / 1e6
    );
    println!(
        "walk_kernel/observed3_dyn:      {:.2} Msteps/s",
        obs_dyn / 1e6
    );
    println!(
        "walk_kernel/observed3_kernel:   {:.2} Msteps/s  ({obs_speedup:.2}x vs baseline)",
        obs_kernel / 1e6
    );

    let json = format!(
        "{{\n  \"bench\": \"walk_kernel\",\n  \"graph\": \"random 4-regular n={}\",\n  \
         \"steps_per_run\": {},\n  \"samples\": {},\n  \
         \"steps_per_sec_bare_baseline\": {:.0},\n  \
         \"steps_per_sec_bare_dyn\": {:.0},\n  \
         \"steps_per_sec_bare_kernel\": {:.0},\n  \
         \"steps_per_sec_3_observers_baseline\": {:.0},\n  \
         \"steps_per_sec_3_observers_dyn\": {:.0},\n  \
         \"steps_per_sec_3_observers_kernel\": {:.0},\n  \
         \"bare_speedup\": {:.4},\n  \
         \"observed_speedup\": {:.4}\n}}\n",
        g.n(),
        STEPS,
        SAMPLES,
        bare_base,
        bare_dyn,
        bare_kernel,
        obs_base,
        obs_dyn,
        obs_kernel,
        bare_speedup,
        obs_speedup,
    );
    let dir = output_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = dir.join("BENCH_walk.json");
    std::fs::write(&path, json).expect("write snapshot");
    println!("json: {}", path.display());
}
