//! Declarative experiment specifications.
//!
//! An [`ExperimentSpec`] is a full description of an ensemble experiment:
//! a grid of graph families, a grid of walk processes, a trial count and a
//! stopping target. Specs are plain data — they can be built in code (see
//! [`crate::builtin`]) or parsed from the compact CLI syntax accepted by
//! [`GraphSpec::parse`] and [`ProcessSpec::parse`].

use eproc_core::choice::RandomWalkWithChoice;
use eproc_core::cover::CoverTarget;
use eproc_core::fair::{LeastUsedFirst, OldestFirst};
use eproc_core::observe::{
    BlanketObserver, BlueCensusObserver, CoverObserver, HitTarget, HittingObserver, Metrics,
    Observer, PhaseObserver,
};
use eproc_core::rotor::RotorRouter;
use eproc_core::rule::{
    AdversarialRule, FirstPortRule, GreedyAdversary, LastPortRule, RoundRobinRule, RuleContext,
    UniformRule,
};
use eproc_core::srw::{LazyRandomWalk, SimpleRandomWalk, WeightedRandomWalk};
use eproc_core::vprocess::VProcess;
use eproc_core::{EProcess, Step, WalkProcess};
use eproc_graphs::{generators, Graph, GraphError, Vertex};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;

/// Sweep scale used by the built-in specs: `quick` finishes in seconds,
/// `paper` pushes sizes toward the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-quick sweep.
    Quick,
    /// Paper-scale sweep.
    Paper,
}

impl Scale {
    /// Parses `quick` / `paper`.
    pub fn parse(s: &str) -> Result<Scale, SpecError> {
        match s {
            "quick" => Ok(Scale::Quick),
            "paper" => Ok(Scale::Paper),
            other => Err(SpecError::new(format!(
                "unknown scale {other:?} (quick|paper)"
            ))),
        }
    }
}

/// Error constructing or parsing a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    pub(crate) fn new(message: impl Into<String>) -> SpecError {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// Hard cap on the number of sizes a single [`SweepRange`] may expand to.
/// Each size becomes one graph family in the grid, so an unbounded stride
/// range (`1..1000000,+1`) would silently explode the experiment; reject
/// it at parse time instead.
pub const MAX_SWEEP_POINTS: usize = 64;

/// How a [`SweepRange`] advances from one size to the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepStep {
    /// Multiply by an integer factor (`x2`): geometric sweeps across
    /// decades, the shape growth-law fits need.
    Factor(usize),
    /// Add a fixed stride (`+500`): arithmetic sweeps.
    Stride(usize),
}

/// A size sweep: `start..end` advanced by [`SweepStep`] — the sweep
/// dimension of the `eproc scale` subsystem. Appears inline in the graph
/// grammar (`regular:~{1k..256k,x2},4`) or as the CLI flag
/// `--sweep n=1000..256000,x2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRange {
    /// First size (inclusive).
    pub start: usize,
    /// Upper bound (inclusive; the last point is the largest reachable
    /// size `<= end`).
    pub end: usize,
    /// Step rule.
    pub step: SweepStep,
}

/// Parses a sweep size token: a plain integer with an optional `k`
/// (×1 000) or `m` (×1 000 000) suffix, e.g. `500`, `1k`, `256k`, `2m`.
fn parse_sweep_size(tok: &str) -> Result<usize, SpecError> {
    let bad = || SpecError::new(format!("sweep range: bad size {tok:?}"));
    let (digits, mult) = if let Some(d) = tok.strip_suffix(['k', 'K']) {
        (d, 1_000usize)
    } else if let Some(d) = tok.strip_suffix(['m', 'M']) {
        (d, 1_000_000usize)
    } else {
        (tok, 1usize)
    };
    let base: usize = digits.parse().map_err(|_| bad())?;
    base.checked_mul(mult)
        .ok_or_else(|| SpecError::new(format!("sweep range: size {tok:?} overflows")))
}

impl SweepRange {
    /// Parses `[n=]<start>..<end>[,x<factor>|,+<stride>]`; the step
    /// defaults to `x2`. Sizes accept `k`/`m` suffixes (`1k..256k,x2`).
    /// Empty, descending, overflowing and over-long ranges are rejected
    /// here, so a bad sweep spec fails before anything runs.
    pub fn parse(s: &str) -> Result<SweepRange, SpecError> {
        let body = s.strip_prefix("n=").unwrap_or(s);
        if body.is_empty() {
            return Err(SpecError::new("sweep range: empty"));
        }
        let (range, step_tok) = match body.split_once(',') {
            Some((r, st)) => (r, Some(st)),
            None => (body, None),
        };
        let (a, b) = range.split_once("..").ok_or_else(|| {
            SpecError::new(format!(
                "sweep range {s:?}: expected <start>..<end>[,x<f>|,+<s>]"
            ))
        })?;
        let start = parse_sweep_size(a)?;
        let end = parse_sweep_size(b)?;
        let step = match step_tok {
            None => SweepStep::Factor(2),
            Some(st) => {
                if let Some(f) = st.strip_prefix('x') {
                    SweepStep::Factor(parse_sweep_size(f)?)
                } else if let Some(d) = st.strip_prefix('+') {
                    SweepStep::Stride(parse_sweep_size(d)?)
                } else {
                    return Err(SpecError::new(format!(
                        "sweep range {s:?}: bad step {st:?} (x<factor> or +<stride>)"
                    )));
                }
            }
        };
        let sweep = SweepRange { start, end, step };
        sweep.points()?; // reject degenerate ranges at parse time
        Ok(sweep)
    }

    /// Compact CLI syntax (inverse of [`SweepRange::parse`]; sizes are
    /// rendered as plain digits, which `parse` also accepts).
    pub fn to_cli(&self) -> String {
        let step = match self.step {
            SweepStep::Factor(f) => format!("x{f}"),
            SweepStep::Stride(d) => format!("+{d}"),
        };
        format!("{}..{},{step}", self.start, self.end)
    }

    /// Expands the sweep into its concrete sizes, in ascending order.
    ///
    /// # Errors
    ///
    /// [`SpecError`] for a zero start, descending range, non-advancing
    /// step (`x1`, `x0`, `+0`), or more than [`MAX_SWEEP_POINTS`] sizes.
    pub fn points(&self) -> Result<Vec<usize>, SpecError> {
        let fail = |reason: &str| {
            Err(SpecError::new(format!(
                "sweep range \"{}\": {reason}",
                self.to_cli()
            )))
        };
        if self.start == 0 {
            return fail("sizes start at 1");
        }
        if self.start > self.end {
            return fail("descending (start > end)");
        }
        match self.step {
            SweepStep::Factor(f) if f < 2 => return fail("factor must be at least 2"),
            SweepStep::Stride(0) => return fail("stride must be at least 1"),
            _ => {}
        }
        let mut points = Vec::new();
        let mut cur = self.start;
        loop {
            points.push(cur);
            if points.len() > MAX_SWEEP_POINTS {
                return fail(&format!("expands to more than {MAX_SWEEP_POINTS} sizes"));
            }
            let next = match self.step {
                SweepStep::Factor(f) => cur.checked_mul(f),
                SweepStep::Stride(d) => cur.checked_add(d),
            };
            match next {
                Some(nx) if nx <= self.end => cur = nx,
                _ => break,
            }
        }
        Ok(points)
    }

    /// The normal form of this range: the same points with `end`
    /// clamped to the last reachable size, so ranges that expand
    /// identically render identically (`10..70,x2` and `10..40,x2`
    /// both normalize to `10..40,x2`). Part of the spec
    /// canonicalization contract: sweeps expand to concrete sizes
    /// before an [`ExperimentSpec`] exists, and this is the unique
    /// spelling of the range that produced them.
    ///
    /// # Errors
    ///
    /// [`SpecError`] whenever [`SweepRange::points`] fails.
    pub fn normalize(&self) -> Result<SweepRange, SpecError> {
        let points = self.points()?;
        Ok(SweepRange {
            start: self.start,
            end: *points.last().expect("points() yields at least `start`"),
            step: self.step,
        })
    }
}

/// One graph family in the experiment grid. Randomized families are built
/// deterministically from the seed the executor derives for them.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSpec {
    /// Connected random `d`-regular graph on `n` vertices (Steger–Wormald).
    Regular {
        /// Vertex count.
        n: usize,
        /// Degree.
        d: usize,
    },
    /// Lubotzky–Phillips–Sarnak Ramanujan graph — the paper's canonical
    /// high-girth even-degree expander.
    Lps {
        /// Prime `p` (degree is `p + 1`).
        p: u64,
        /// Prime modulus `q`.
        q: u64,
    },
    /// Connected random geometric graph on `n` vertices with radius
    /// `radius_factor` times the connectivity threshold
    /// `sqrt(2 ln n / (π n))`.
    Geometric {
        /// Vertex count.
        n: usize,
        /// Multiple of the connectivity-threshold radius.
        radius_factor: f64,
    },
    /// The `dim`-dimensional hypercube on `2^dim` vertices.
    Hypercube {
        /// Dimension.
        dim: usize,
    },
    /// The `w × h` toroidal grid (4-regular for `w, h >= 3`).
    Torus {
        /// Width.
        w: usize,
        /// Height.
        h: usize,
    },
    /// The cycle `C_n`.
    Cycle {
        /// Vertex count.
        n: usize,
    },
    /// The complete graph `K_n`.
    Complete {
        /// Vertex count.
        n: usize,
    },
    /// The lollipop: a `K_clique` with a path of `path` extra vertices.
    Lollipop {
        /// Clique size.
        clique: usize,
        /// Path length (extra vertices).
        path: usize,
    },
    /// The Petersen graph (3-regular, girth 5, `n = 10`).
    Petersen,
    /// Two cycles of length `len` sharing one vertex (even-degree,
    /// non-regular).
    FigureEight {
        /// Cycle length.
        len: usize,
    },
}

impl GraphSpec {
    /// Human-readable family label used in tables and JSON.
    pub fn label(&self) -> String {
        match self {
            GraphSpec::Regular { n, d } => format!("random {d}-regular n={n}"),
            GraphSpec::Lps { p, q } => format!("LPS({p},{q})"),
            GraphSpec::Geometric { n, .. } => format!("geometric n={n}"),
            GraphSpec::Hypercube { dim } => format!("hypercube H{dim}"),
            GraphSpec::Torus { w, h } => format!("torus {w}x{h}"),
            GraphSpec::Cycle { n } => format!("cycle n={n}"),
            GraphSpec::Complete { n } => format!("complete n={n}"),
            GraphSpec::Lollipop { clique, path } => format!("lollipop({clique},{path})"),
            GraphSpec::Petersen => "petersen".into(),
            GraphSpec::FigureEight { len } => format!("figure-eight({len})"),
        }
    }

    /// Size-free family label: identical for every size of a swept
    /// family, distinct across families that cannot be conflated. The
    /// scaling subsystem groups sweep cells into growth-law series by
    /// `(family_label, process)`, so a multi-family sweep fits one law
    /// per family instead of silently mixing curves.
    pub fn family_label(&self) -> String {
        match self {
            GraphSpec::Regular { d, .. } => format!("random {d}-regular"),
            GraphSpec::Lps { p, .. } => format!("LPS(p={p})"),
            GraphSpec::Geometric { radius_factor, .. } => format!("geometric r={radius_factor}"),
            GraphSpec::Hypercube { .. } => "hypercube".into(),
            GraphSpec::Torus { .. } => "torus".into(),
            GraphSpec::Cycle { .. } => "cycle".into(),
            GraphSpec::Complete { .. } => "complete".into(),
            GraphSpec::Lollipop { .. } => "lollipop".into(),
            GraphSpec::Petersen => "petersen".into(),
            GraphSpec::FigureEight { .. } => "figure-eight".into(),
        }
    }

    /// Compact CLI syntax for this spec (inverse of [`GraphSpec::parse`]).
    pub fn to_cli(&self) -> String {
        match self {
            GraphSpec::Regular { n, d } => format!("regular:{n},{d}"),
            GraphSpec::Lps { p, q } => format!("lps:{p},{q}"),
            GraphSpec::Geometric { n, radius_factor } => format!("geometric:{n},{radius_factor}"),
            GraphSpec::Hypercube { dim } => format!("hypercube:{dim}"),
            GraphSpec::Torus { w, h } => format!("torus:{w},{h}"),
            GraphSpec::Cycle { n } => format!("cycle:{n}"),
            GraphSpec::Complete { n } => format!("complete:{n}"),
            GraphSpec::Lollipop { clique, path } => format!("lollipop:{clique},{path}"),
            GraphSpec::Petersen => "petersen".into(),
            GraphSpec::FigureEight { len } => format!("figure8:{len}"),
        }
    }

    /// Parses the compact CLI syntax, e.g. `regular:4096,4`, `lps:5,13`,
    /// `geometric:2000`, `hypercube:10`, `torus:32,32`, `cycle:100`,
    /// `complete:50`.
    ///
    /// Parsing is strict: every argument must be well-formed and trailing
    /// arguments are rejected, naming the offending token
    /// (`regular:100,3,junk` is an error, not silently `regular:100,3`).
    /// A `~` resample marker (see [`GraphSpec::parse_with_resample`]) is
    /// rejected here — plain `parse` sites have no resample dimension to
    /// attach it to.
    pub fn parse(s: &str) -> Result<GraphSpec, SpecError> {
        let (spec, resample) = GraphSpec::parse_with_resample(s)?;
        if resample {
            return Err(SpecError::new(format!(
                "graph spec {s:?}: resample marker `~` is not accepted here"
            )));
        }
        Ok(spec)
    }

    /// Like [`GraphSpec::parse`], but also accepts a `~` immediately after
    /// the colon (`regular:~1000,4`) marking the family for per-trial
    /// graph resampling; returns whether the marker was present. The
    /// marker only changes anything for randomized families — resampling
    /// a deterministic family regenerates the identical graph.
    pub fn parse_with_resample(s: &str) -> Result<(GraphSpec, bool), SpecError> {
        let (kind, args) = match s.split_once(':') {
            Some((k, a)) => (k, a),
            None => (s, ""),
        };
        let (resample, args) = match args.strip_prefix('~') {
            Some(rest) => (true, rest),
            None => (false, args),
        };
        let nums: Vec<&str> = if args.is_empty() {
            vec![]
        } else {
            args.split(',').collect()
        };
        fn int_arg<T: std::str::FromStr>(s: &str, nums: &[&str], i: usize) -> Result<T, SpecError> {
            let tok = nums
                .get(i)
                .ok_or_else(|| SpecError::new(format!("graph spec {s:?}: missing argument {i}")))?;
            tok.parse()
                .map_err(|_| SpecError::new(format!("graph spec {s:?}: bad integer {tok:?}")))
        }
        let usize_arg = |i: usize| int_arg::<usize>(s, &nums, i);
        let u64_arg = |i: usize| int_arg::<u64>(s, &nums, i);
        // Rejects anything beyond the family's arity, naming the first
        // offending token.
        let at_most = |expected: usize| -> Result<(), SpecError> {
            match nums.get(expected) {
                Some(tok) => Err(SpecError::new(format!(
                    "graph spec {s:?}: unexpected trailing argument {tok:?}"
                ))),
                None => Ok(()),
            }
        };
        let spec = match kind {
            "regular" => {
                at_most(2)?;
                GraphSpec::Regular { n: usize_arg(0)?, d: usize_arg(1)? }
            }
            "lps" => {
                at_most(2)?;
                GraphSpec::Lps { p: u64_arg(0)?, q: u64_arg(1)? }
            }
            "geometric" => {
                at_most(2)?;
                let n = usize_arg(0)?;
                let radius_factor = match nums.get(1) {
                    Some(tok) => tok.parse().map_err(|_| {
                        SpecError::new(format!("graph spec {s:?}: bad factor {tok:?}"))
                    })?,
                    None => 1.5,
                };
                GraphSpec::Geometric { n, radius_factor }
            }
            "hypercube" => {
                at_most(1)?;
                GraphSpec::Hypercube { dim: usize_arg(0)? }
            }
            "torus" => {
                at_most(2)?;
                GraphSpec::Torus { w: usize_arg(0)?, h: usize_arg(1)? }
            }
            "cycle" => {
                at_most(1)?;
                GraphSpec::Cycle { n: usize_arg(0)? }
            }
            "complete" => {
                at_most(1)?;
                GraphSpec::Complete { n: usize_arg(0)? }
            }
            "lollipop" => {
                at_most(2)?;
                GraphSpec::Lollipop {
                    clique: usize_arg(0)?,
                    path: usize_arg(1)?,
                }
            }
            "petersen" => {
                at_most(0)?;
                GraphSpec::Petersen
            }
            "figure8" | "figure-eight" => {
                at_most(1)?;
                GraphSpec::FigureEight { len: usize_arg(0)? }
            }
            other => {
                return Err(SpecError::new(format!(
                    "unknown graph family {other:?} (regular|lps|geometric|hypercube|torus|cycle|complete|lollipop|petersen|figure8)"
                )))
            }
        };
        Ok((spec, resample))
    }

    /// Like [`GraphSpec::parse_with_resample`], but the first argument may
    /// be an inline `{range}` sweep (see [`SweepRange::parse`]):
    /// `regular:~{1k..256k,x2},4` expands to one family per size, all
    /// sharing the remaining arguments and the resample marker. Returns
    /// the expanded grid, whether the `~` marker was present, and the
    /// sweep range (`None` when the spec had no `{range}`).
    pub fn parse_with_sweep(
        s: &str,
    ) -> Result<(Vec<GraphSpec>, bool, Option<SweepRange>), SpecError> {
        let Some(open) = s.find('{') else {
            let (spec, resample) = GraphSpec::parse_with_resample(s)?;
            return Ok((vec![spec], resample, None));
        };
        let close = s
            .find('}')
            .ok_or_else(|| SpecError::new(format!("graph spec {s:?}: unclosed sweep range")))?;
        if close < open || s[open + 1..].contains('{') || s[close + 1..].contains('}') {
            return Err(SpecError::new(format!(
                "graph spec {s:?}: exactly one {{start..end[,step]}} sweep range is allowed"
            )));
        }
        let range = SweepRange::parse(&s[open + 1..close])?;
        let mut specs = Vec::new();
        let mut resample = false;
        for n in range.points()? {
            let instantiated = format!("{}{}{}", &s[..open], n, &s[close + 1..]);
            let (spec, marked) = GraphSpec::parse_with_resample(&instantiated)?;
            resample = marked;
            specs.push(spec);
        }
        Ok((specs, resample, Some(range)))
    }

    /// Re-instantiates the family at vertex count `n` — how the CLI's
    /// `--sweep n=<range>` flag turns one `--graph` template into a sweep
    /// grid. Only families whose leading parameter is a vertex count can
    /// be swept this way.
    ///
    /// # Errors
    ///
    /// [`SpecError`] for families without a primary size (hypercube,
    /// torus, LPS, lollipop, petersen, figure-eight).
    pub fn with_primary_size(&self, n: usize) -> Result<GraphSpec, SpecError> {
        match *self {
            GraphSpec::Regular { d, .. } => Ok(GraphSpec::Regular { n, d }),
            GraphSpec::Geometric { radius_factor, .. } => {
                Ok(GraphSpec::Geometric { n, radius_factor })
            }
            GraphSpec::Cycle { .. } => Ok(GraphSpec::Cycle { n }),
            GraphSpec::Complete { .. } => Ok(GraphSpec::Complete { n }),
            _ => Err(SpecError::new(format!(
                "graph spec \"{}\": family has no primary vertex count to sweep \
                 (sweepable: regular, geometric, cycle, complete)",
                self.to_cli()
            ))),
        }
    }

    /// `true` for families whose samples genuinely depend on the seed —
    /// the families for which per-trial resampling changes the ensemble.
    pub fn is_randomized(&self) -> bool {
        matches!(
            self,
            GraphSpec::Regular { .. } | GraphSpec::Geometric { .. }
        )
    }

    /// Exact vertex count of the family, without generating a sample —
    /// identical for **every** sample, so the resampling executor can
    /// validate start and hitting vertices before any graph exists.
    ///
    /// # Errors
    ///
    /// [`SpecError`] for LPS parameters outside the construction's domain
    /// (the count comes from the group order, which needs valid `p, q`).
    pub fn vertex_count(&self) -> Result<usize, SpecError> {
        match *self {
            GraphSpec::Regular { n, .. } => Ok(n),
            GraphSpec::Lps { p, q } => generators::LpsParams::new(p, q)
                .map(|params| params.vertex_count())
                .map_err(|e| SpecError::new(format!("graph spec \"{}\": {e}", self.to_cli()))),
            GraphSpec::Geometric { n, .. } => Ok(n),
            GraphSpec::Hypercube { dim } => Ok(1usize << dim),
            GraphSpec::Torus { w, h } => Ok(w * h),
            GraphSpec::Cycle { n } => Ok(n),
            GraphSpec::Complete { n } => Ok(n),
            GraphSpec::Lollipop { clique, path } => Ok(clique + path),
            GraphSpec::Petersen => Ok(10),
            // Saturating: `len = 0` is invalid (caught by `validate`),
            // but this method must not underflow when probed directly.
            GraphSpec::FigureEight { len } => Ok((2 * len).saturating_sub(1)),
        }
    }

    /// Checks family feasibility without generating anything, so an
    /// impossible spec (`regular:0,4`, `regular:10,0`, a non-positive
    /// geometric radius factor, …) fails **once at validation time** with
    /// a [`SpecError`] naming the family, instead of surfacing as a
    /// per-trial generator failure — or a panic — deep inside the
    /// executor.
    pub fn validate(&self) -> Result<(), SpecError> {
        let fail = |reason: String| -> Result<(), SpecError> {
            Err(SpecError::new(format!(
                "graph spec \"{}\": {reason}",
                self.to_cli()
            )))
        };
        match *self {
            GraphSpec::Regular { n, d } => {
                if n == 0 {
                    return fail("no vertices".into());
                }
                if !(d >= 3 || (d == 2 && n >= 3)) {
                    return fail(format!(
                        "connected regular graphs need degree >= 3 (or degree 2 with n >= 3), got degree {d}"
                    ));
                }
                if d >= n {
                    return fail(format!("degree {d} >= n = {n}: simple graph impossible"));
                }
                if (n * d) % 2 != 0 {
                    return fail(format!("n * d = {} is odd: no such graph", n * d));
                }
            }
            GraphSpec::Geometric { n, radius_factor } => {
                if n < 2 {
                    return fail(format!("need n >= 2 vertices, got {n}"));
                }
                if !(radius_factor.is_finite() && radius_factor > 0.0) {
                    return fail(format!(
                        "radius factor must be finite and positive, got {radius_factor}"
                    ));
                }
            }
            GraphSpec::Hypercube { dim } => {
                if dim == 0 || dim >= usize::BITS as usize {
                    return fail(format!("dimension {dim} outside [1, {})", usize::BITS));
                }
            }
            GraphSpec::Torus { w, h } => {
                if w < 2 || h < 2 {
                    return fail(format!("torus needs w, h >= 2, got {w}x{h}"));
                }
            }
            GraphSpec::Cycle { n } => {
                if n < 3 {
                    return fail(format!("cycle needs n >= 3, got {n}"));
                }
            }
            GraphSpec::Complete { n } => {
                if n < 2 {
                    return fail(format!("complete graph needs n >= 2, got {n}"));
                }
            }
            GraphSpec::Lollipop { clique, .. } => {
                if clique == 0 {
                    return fail("lollipop needs a nonempty clique".into());
                }
            }
            GraphSpec::FigureEight { len } => {
                if len < 3 {
                    return fail(format!("figure-eight needs cycle length >= 3, got {len}"));
                }
            }
            // LPS parameter arithmetic (primality, quadratic residues) is
            // checked by the generator itself; repeating it here would
            // duplicate nontrivial number theory.
            GraphSpec::Lps { .. } | GraphSpec::Petersen => {}
        }
        Ok(())
    }

    /// Builds the graph deterministically from `seed`. Randomized families
    /// retry until connected (advancing the seeded RNG) within the
    /// generators' bounded restart budget, so the result is a pure
    /// function of `(self, seed)` and a family that cannot produce a
    /// connected sample (e.g. a tiny geometric radius factor) fails fast
    /// with [`GraphError::RetriesExhausted`] instead of looping forever.
    pub fn build(&self, seed: u64) -> Result<Graph, GraphError> {
        self.build_counted(seed).map(|(g, _)| g)
    }

    /// [`GraphSpec::build`], additionally reporting how many generator
    /// attempts the build consumed — `1` for deterministic families and
    /// for randomized draws whose first sample was accepted. The RNG
    /// sequence and the built graph are identical to [`GraphSpec::build`];
    /// the count feeds generation telemetry.
    ///
    /// # Errors
    ///
    /// As [`GraphSpec::build`].
    pub fn build_counted(&self, seed: u64) -> Result<(Graph, usize), GraphError> {
        let mut rng = SmallRng::seed_from_u64(seed);
        match *self {
            GraphSpec::Regular { n, d } => {
                generators::connected_random_regular_counted(n, d, &mut rng)
            }
            GraphSpec::Lps { p, q } => generators::lps_ramanujan(p, q).map(|g| (g, 1)),
            GraphSpec::Geometric { n, radius_factor } => {
                let threshold = (2.0 * (n as f64).ln() / (std::f64::consts::PI * n as f64)).sqrt();
                let radius = radius_factor * threshold;
                generators::connected_random_geometric_counted(n, radius, &mut rng)
                    .map(|(gg, attempts)| (gg.graph, attempts))
            }
            GraphSpec::Hypercube { dim } => Ok((generators::hypercube(dim), 1)),
            GraphSpec::Torus { w, h } => Ok((generators::torus2d(w, h), 1)),
            GraphSpec::Cycle { n } => Ok((generators::cycle(n), 1)),
            GraphSpec::Complete { n } => Ok((generators::complete(n), 1)),
            GraphSpec::Lollipop { clique, path } => Ok((generators::lollipop(clique, path), 1)),
            GraphSpec::Petersen => Ok((generators::petersen(), 1)),
            GraphSpec::FigureEight { len } => Ok((generators::figure_eight(len), 1)),
        }
    }
}

/// Rule `A` selection for [`ProcessSpec::EProcess`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleSpec {
    /// Uniform among unvisited edges (greedy random walk).
    Uniform,
    /// Deterministic lowest-port-first.
    FirstPort,
    /// Deterministic highest-port-first.
    LastPort,
    /// Per-vertex round robin over unvisited ports.
    RoundRobin,
    /// Adversary steering toward high-degree neighbours.
    GreedyAdversary,
    /// Adversary always picking the live arc with the largest id.
    Spiteful,
}

impl RuleSpec {
    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            RuleSpec::Uniform => "uniform",
            RuleSpec::FirstPort => "first-port",
            RuleSpec::LastPort => "last-port",
            RuleSpec::RoundRobin => "round-robin",
            RuleSpec::GreedyAdversary => "greedy-adversary",
            RuleSpec::Spiteful => "spiteful-adversary",
        }
    }

    /// Parses a rule name (the labels above, hyphens optional).
    pub fn parse(s: &str) -> Result<RuleSpec, SpecError> {
        match s.replace('-', "").as_str() {
            "uniform" => Ok(RuleSpec::Uniform),
            "firstport" => Ok(RuleSpec::FirstPort),
            "lastport" => Ok(RuleSpec::LastPort),
            "roundrobin" => Ok(RuleSpec::RoundRobin),
            "greedyadversary" | "greedy" => Ok(RuleSpec::GreedyAdversary),
            "spitefuladversary" | "spiteful" => Ok(RuleSpec::Spiteful),
            other => Err(SpecError::new(format!("unknown rule {other:?}"))),
        }
    }

    /// All rules, for grid construction.
    pub fn all() -> [RuleSpec; 6] {
        [
            RuleSpec::Uniform,
            RuleSpec::FirstPort,
            RuleSpec::LastPort,
            RuleSpec::RoundRobin,
            RuleSpec::GreedyAdversary,
            RuleSpec::Spiteful,
        ]
    }
}

fn spiteful_choice(ctx: &RuleContext<'_>) -> usize {
    ctx.live_arcs
        .iter()
        .enumerate()
        .max_by_key(|&(_, &a)| a)
        .map(|(i, _)| i)
        .expect("live_arcs is nonempty")
}

/// One walk process in the experiment grid.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcessSpec {
    /// The E-process with the given rule `A`.
    EProcess {
        /// Rule choosing among unvisited edges.
        rule: RuleSpec,
    },
    /// Simple random walk.
    Srw,
    /// Lazy random walk (holds with probability 1/2).
    LazySrw,
    /// Weighted random walk with deterministic pseudo-random edge weights
    /// in `[0.1, 10)` — the process class of Theorem 5's lower bound.
    WeightedSrw,
    /// Rotor-router (Propp machine).
    RotorRouter,
    /// Random walk with choice, RWC(d) of Avin–Krishnamachari.
    Rwc {
        /// Number of sampled neighbours per step.
        d: usize,
    },
    /// Oldest-first locally fair exploration.
    OldestFirst,
    /// Least-used-first locally fair exploration.
    LeastUsedFirst,
    /// The vertex-process (V-process) baseline.
    VProcess,
}

impl ProcessSpec {
    /// Table label.
    pub fn label(&self) -> String {
        match self {
            ProcessSpec::EProcess { rule } => format!("e-process({})", rule.label()),
            ProcessSpec::Srw => "srw".into(),
            ProcessSpec::LazySrw => "lazy-srw".into(),
            ProcessSpec::WeightedSrw => "weighted-srw".into(),
            ProcessSpec::RotorRouter => "rotor-router".into(),
            ProcessSpec::Rwc { d } => format!("rwc({d})"),
            ProcessSpec::OldestFirst => "oldest-first".into(),
            ProcessSpec::LeastUsedFirst => "least-used-first".into(),
            ProcessSpec::VProcess => "v-process".into(),
        }
    }

    /// Compact CLI syntax for this spec (inverse of [`ProcessSpec::parse`]).
    pub fn to_cli(&self) -> String {
        match self {
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            } => "eprocess".into(),
            ProcessSpec::EProcess { rule } => format!("eprocess:{}", rule.label()),
            ProcessSpec::Srw => "srw".into(),
            ProcessSpec::LazySrw => "lazy".into(),
            ProcessSpec::WeightedSrw => "weighted".into(),
            ProcessSpec::RotorRouter => "rotor".into(),
            ProcessSpec::Rwc { d } => format!("rwc:{d}"),
            ProcessSpec::OldestFirst => "oldest".into(),
            ProcessSpec::LeastUsedFirst => "leastused".into(),
            ProcessSpec::VProcess => "vprocess".into(),
        }
    }

    /// Parses the compact CLI syntax, e.g. `eprocess`, `eprocess:firstport`,
    /// `srw`, `lazy`, `weighted`, `rotor`, `rwc:2`, `oldest`, `leastused`,
    /// `vprocess`.
    pub fn parse(s: &str) -> Result<ProcessSpec, SpecError> {
        let (kind, args) = match s.split_once(':') {
            Some((k, a)) => (k, a),
            None => (s, ""),
        };
        // Everything except `eprocess:<rule>` and `rwc:<d>` is argument-free;
        // stray arguments are rejected rather than silently dropped.
        let no_args = |spec: ProcessSpec| -> Result<ProcessSpec, SpecError> {
            if args.is_empty() {
                Ok(spec)
            } else {
                Err(SpecError::new(format!(
                    "process spec {s:?}: unexpected argument {args:?}"
                )))
            }
        };
        match kind {
            "eprocess" | "e-process" => {
                let rule =
                    if args.is_empty() { RuleSpec::Uniform } else { RuleSpec::parse(args)? };
                Ok(ProcessSpec::EProcess { rule })
            }
            "srw" => no_args(ProcessSpec::Srw),
            "lazy" | "lazy-srw" => no_args(ProcessSpec::LazySrw),
            "weighted" | "weighted-srw" => no_args(ProcessSpec::WeightedSrw),
            "rotor" | "rotor-router" => no_args(ProcessSpec::RotorRouter),
            "rwc" => {
                let d: usize = if args.is_empty() {
                    2
                } else {
                    args.parse()
                        .map_err(|_| SpecError::new(format!("process spec {s:?}: bad d")))?
                };
                Ok(ProcessSpec::Rwc { d })
            }
            "oldest" | "oldest-first" => no_args(ProcessSpec::OldestFirst),
            "leastused" | "least-used-first" => no_args(ProcessSpec::LeastUsedFirst),
            "vprocess" | "v-process" => no_args(ProcessSpec::VProcess),
            other => Err(SpecError::new(format!(
                "unknown process {other:?} (eprocess[:rule]|srw|lazy|weighted|rotor|rwc:d|oldest|leastused|vprocess)"
            ))),
        }
    }

    /// Instantiates the process on `g` at `start` behind a trait object
    /// (dyn-dispatched stepping — the compatibility shape). The executor's
    /// hot path uses [`ProcessSpec::build_kernel`] instead.
    pub fn build<'g>(&self, g: &'g Graph, start: Vertex) -> Box<dyn WalkProcess + 'g> {
        Box::new(self.build_kernel(g, start))
    }

    /// Instantiates the process on `g` at `start` as a [`WalkKernel`]
    /// variant, so callers can dispatch **once per trial** to a fully
    /// monomorphized step loop (see [`with_kernel!`](crate::with_kernel)).
    ///
    /// Construction is deterministic: [`ProcessSpec::WeightedSrw`] draws
    /// its edge weights from an RNG seeded purely by the graph shape, so
    /// every trial on a given graph sees the same weights regardless of
    /// scheduling.
    pub fn build_kernel<'g>(&self, g: &'g Graph, start: Vertex) -> WalkKernel<'g> {
        match *self {
            ProcessSpec::EProcess { rule } => match rule {
                RuleSpec::Uniform => {
                    WalkKernel::EProcessUniform(EProcess::new(g, start, UniformRule::new()))
                }
                RuleSpec::FirstPort => {
                    WalkKernel::EProcessFirstPort(EProcess::new(g, start, FirstPortRule))
                }
                RuleSpec::LastPort => {
                    WalkKernel::EProcessLastPort(EProcess::new(g, start, LastPortRule))
                }
                RuleSpec::RoundRobin => WalkKernel::EProcessRoundRobin(EProcess::new(
                    g,
                    start,
                    RoundRobinRule::new(g.n()),
                )),
                RuleSpec::GreedyAdversary => {
                    WalkKernel::EProcessGreedyAdversary(EProcess::new(g, start, GreedyAdversary))
                }
                RuleSpec::Spiteful => {
                    let rule: AdversarialRule<fn(&RuleContext<'_>) -> usize> =
                        AdversarialRule::new(spiteful_choice);
                    WalkKernel::EProcessSpiteful(EProcess::new(g, start, rule))
                }
            },
            ProcessSpec::Srw => WalkKernel::Srw(SimpleRandomWalk::new(g, start)),
            ProcessSpec::LazySrw => WalkKernel::LazySrw(LazyRandomWalk::new(g, start)),
            ProcessSpec::WeightedSrw => {
                let mut wrng =
                    SmallRng::seed_from_u64(0x0057_eed5 ^ (g.m() as u64).rotate_left(17));
                let weights: Vec<f64> = (0..g.m()).map(|_| wrng.gen_range(0.1..10.0)).collect();
                WalkKernel::WeightedSrw(WeightedRandomWalk::new(g, start, &weights))
            }
            ProcessSpec::RotorRouter => WalkKernel::RotorRouter(RotorRouter::new(g, start)),
            ProcessSpec::Rwc { d } => WalkKernel::Rwc(RandomWalkWithChoice::new(g, start, d)),
            ProcessSpec::OldestFirst => WalkKernel::OldestFirst(OldestFirst::new(g, start)),
            ProcessSpec::LeastUsedFirst => {
                WalkKernel::LeastUsedFirst(LeastUsedFirst::new(g, start))
            }
            ProcessSpec::VProcess => WalkKernel::VProcess(VProcess::new(g, start)),
        }
    }
}

/// The function-pointer adversary used by [`RuleSpec::Spiteful`].
pub type SpitefulRule = AdversarialRule<fn(&RuleContext<'_>) -> usize>;

/// One concrete walk process per built-in [`ProcessSpec`] variant.
///
/// This is the "process half" of the executor's (process × metric-set)
/// dispatch: a trial matches on the kernel **once**, and each arm runs
/// [`eproc_core::observe::run_observed`] with the concrete process type,
/// so the per-step loop is fully monomorphized — no `Box<dyn WalkProcess>`
/// and no per-step virtual `advance`. The enum also implements
/// [`WalkProcess`] itself (one predictable match per call) for callers
/// that don't need the flat loop.
#[derive(Debug)]
pub enum WalkKernel<'g> {
    /// E-process, uniform rule.
    EProcessUniform(EProcess<'g, UniformRule>),
    /// E-process, first-port rule.
    EProcessFirstPort(EProcess<'g, FirstPortRule>),
    /// E-process, last-port rule.
    EProcessLastPort(EProcess<'g, LastPortRule>),
    /// E-process, round-robin rule.
    EProcessRoundRobin(EProcess<'g, RoundRobinRule>),
    /// E-process, greedy adversary.
    EProcessGreedyAdversary(EProcess<'g, GreedyAdversary>),
    /// E-process, spiteful adversary.
    EProcessSpiteful(EProcess<'g, SpitefulRule>),
    /// Simple random walk.
    Srw(SimpleRandomWalk<'g>),
    /// Lazy random walk.
    LazySrw(LazyRandomWalk<'g>),
    /// Weighted random walk.
    WeightedSrw(WeightedRandomWalk<'g>),
    /// Rotor-router.
    RotorRouter(RotorRouter<'g>),
    /// Random walk with choice.
    Rwc(RandomWalkWithChoice<'g>),
    /// Oldest-first locally fair explorer.
    OldestFirst(OldestFirst<'g>),
    /// Least-used-first locally fair explorer.
    LeastUsedFirst(LeastUsedFirst<'g>),
    /// V-process.
    VProcess(VProcess<'g>),
}

/// Matches a [`WalkKernel`] once and runs `$body` with `$walk` bound to
/// the **concrete** process inside — the per-trial monomorphization point
/// of the executor: every expansion of `$body` compiles against a
/// concrete walk type, so a `run_observed` call inside it becomes a flat
/// inlined loop.
#[macro_export]
macro_rules! with_kernel {
    ($kernel:expr, $walk:ident => $body:expr) => {
        match $kernel {
            $crate::spec::WalkKernel::EProcessUniform(mut $walk) => $body,
            $crate::spec::WalkKernel::EProcessFirstPort(mut $walk) => $body,
            $crate::spec::WalkKernel::EProcessLastPort(mut $walk) => $body,
            $crate::spec::WalkKernel::EProcessRoundRobin(mut $walk) => $body,
            $crate::spec::WalkKernel::EProcessGreedyAdversary(mut $walk) => $body,
            $crate::spec::WalkKernel::EProcessSpiteful(mut $walk) => $body,
            $crate::spec::WalkKernel::Srw(mut $walk) => $body,
            $crate::spec::WalkKernel::LazySrw(mut $walk) => $body,
            $crate::spec::WalkKernel::WeightedSrw(mut $walk) => $body,
            $crate::spec::WalkKernel::RotorRouter(mut $walk) => $body,
            $crate::spec::WalkKernel::Rwc(mut $walk) => $body,
            $crate::spec::WalkKernel::OldestFirst(mut $walk) => $body,
            $crate::spec::WalkKernel::LeastUsedFirst(mut $walk) => $body,
            $crate::spec::WalkKernel::VProcess(mut $walk) => $body,
        }
    };
}

/// Matches a `Vec<WalkKernel>` of **identical variant** once and runs
/// `$body` with `$walks` bound to a `Vec` of the concrete process type —
/// the interleaved counterpart of [`with_kernel!`]: one group's lanes all
/// come from the same [`crate::spec::ProcessSpec`], so a single dispatch
/// on the first kernel monomorphizes the whole lockstep loop
/// ([`eproc_core::interleave::run_observed_interleaved`]) against the
/// concrete walk type, exactly like the sequential kernel.
///
/// # Panics
///
/// Panics if the set is empty or mixes kernel variants (the executor
/// builds every lane of a group from one `ProcessSpec`, so either is a
/// caller bug).
#[macro_export]
macro_rules! with_kernel_lanes {
    (@arm $kernels:ident, $variant:ident, $walks:ident => $body:expr) => {{
        let $walks: ::std::vec::Vec<_> = $kernels
            .into_iter()
            .map(|k| match k {
                $crate::spec::WalkKernel::$variant(w) => w,
                _ => unreachable!("mixed kernel variants in one lane set"),
            })
            .collect();
        $body
    }};
    ($kernels:expr, $walks:ident => $body:expr) => {{
        let kernels: ::std::vec::Vec<$crate::spec::WalkKernel<'_>> = $kernels;
        match kernels.first() {
            None => panic!("with_kernel_lanes! needs at least one kernel"),
            Some($crate::spec::WalkKernel::EProcessUniform(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, EProcessUniform, $walks => $body)
            }
            Some($crate::spec::WalkKernel::EProcessFirstPort(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, EProcessFirstPort, $walks => $body)
            }
            Some($crate::spec::WalkKernel::EProcessLastPort(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, EProcessLastPort, $walks => $body)
            }
            Some($crate::spec::WalkKernel::EProcessRoundRobin(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, EProcessRoundRobin, $walks => $body)
            }
            Some($crate::spec::WalkKernel::EProcessGreedyAdversary(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, EProcessGreedyAdversary, $walks => $body)
            }
            Some($crate::spec::WalkKernel::EProcessSpiteful(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, EProcessSpiteful, $walks => $body)
            }
            Some($crate::spec::WalkKernel::Srw(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, Srw, $walks => $body)
            }
            Some($crate::spec::WalkKernel::LazySrw(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, LazySrw, $walks => $body)
            }
            Some($crate::spec::WalkKernel::WeightedSrw(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, WeightedSrw, $walks => $body)
            }
            Some($crate::spec::WalkKernel::RotorRouter(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, RotorRouter, $walks => $body)
            }
            Some($crate::spec::WalkKernel::Rwc(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, Rwc, $walks => $body)
            }
            Some($crate::spec::WalkKernel::OldestFirst(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, OldestFirst, $walks => $body)
            }
            Some($crate::spec::WalkKernel::LeastUsedFirst(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, LeastUsedFirst, $walks => $body)
            }
            Some($crate::spec::WalkKernel::VProcess(_)) => {
                $crate::with_kernel_lanes!(@arm kernels, VProcess, $walks => $body)
            }
        }
    }};
}

macro_rules! kernel_delegate {
    ($self:expr, $walk:ident => $body:expr) => {
        match $self {
            WalkKernel::EProcessUniform($walk) => $body,
            WalkKernel::EProcessFirstPort($walk) => $body,
            WalkKernel::EProcessLastPort($walk) => $body,
            WalkKernel::EProcessRoundRobin($walk) => $body,
            WalkKernel::EProcessGreedyAdversary($walk) => $body,
            WalkKernel::EProcessSpiteful($walk) => $body,
            WalkKernel::Srw($walk) => $body,
            WalkKernel::LazySrw($walk) => $body,
            WalkKernel::WeightedSrw($walk) => $body,
            WalkKernel::RotorRouter($walk) => $body,
            WalkKernel::Rwc($walk) => $body,
            WalkKernel::OldestFirst($walk) => $body,
            WalkKernel::LeastUsedFirst($walk) => $body,
            WalkKernel::VProcess($walk) => $body,
        }
    };
}

impl WalkProcess for WalkKernel<'_> {
    fn graph(&self) -> &Graph {
        kernel_delegate!(self, w => w.graph())
    }

    fn current(&self) -> Vertex {
        kernel_delegate!(self, w => w.current())
    }

    fn steps(&self) -> u64 {
        kernel_delegate!(self, w => w.steps())
    }

    fn advance(&mut self, mut rng: &mut dyn RngCore) -> Step {
        self.advance_rng(&mut rng)
    }

    fn advance_rng<R: RngCore>(&mut self, rng: &mut R) -> Step {
        kernel_delegate!(self, w => w.advance_rng(rng))
    }
}

/// What each trial waits for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// Steps until every vertex has been visited.
    VertexCover,
    /// Steps until every edge has been traversed.
    EdgeCover,
    /// Steps until both vertices and edges are covered.
    BothCover,
    /// Ding–Lee–Peres blanket time with parameter `delta`.
    Blanket {
        /// Required visit fraction `δ ∈ (0, 1)`.
        delta: f64,
    },
}

impl Target {
    /// Stable name used in tables and JSON.
    pub fn label(&self) -> String {
        match self {
            Target::VertexCover => "vertex-cover".into(),
            Target::EdgeCover => "edge-cover".into(),
            Target::BothCover => "both-cover".into(),
            Target::Blanket { delta } => format!("blanket({delta})"),
        }
    }

    /// Compact CLI syntax (inverse of [`Target::parse`]): `vertex`,
    /// `edge`, `both`, `blanket:<delta>`. The blanket delta renders via
    /// `f64`'s shortest-round-trip formatting, so `parse(to_cli())`
    /// reproduces the value bit for bit — the property shard headers
    /// rely on.
    pub fn to_cli(&self) -> String {
        match self {
            Target::VertexCover => "vertex".into(),
            Target::EdgeCover => "edge".into(),
            Target::BothCover => "both".into(),
            Target::Blanket { delta } => format!("blanket:{delta}"),
        }
    }

    /// Parses `vertex`, `edge`, `both` or `blanket:<delta>`.
    pub fn parse(s: &str) -> Result<Target, SpecError> {
        match s.split_once(':') {
            None => match s {
                "vertex" | "vertex-cover" => Ok(Target::VertexCover),
                "edge" | "edge-cover" => Ok(Target::EdgeCover),
                "both" | "both-cover" => Ok(Target::BothCover),
                "blanket" => Ok(Target::Blanket { delta: 0.4 }),
                other => Err(SpecError::new(format!(
                    "unknown target {other:?} (vertex|edge|both|blanket:<delta>)"
                ))),
            },
            Some(("blanket", d)) => {
                let delta: f64 = d
                    .parse()
                    .map_err(|_| SpecError::new(format!("target {s:?}: bad delta")))?;
                if !(0.0..1.0).contains(&delta) || delta == 0.0 {
                    return Err(SpecError::new(format!(
                        "target {s:?}: delta must be in (0,1)"
                    )));
                }
                Ok(Target::Blanket { delta })
            }
            Some(_) => Err(SpecError::new(format!("unknown target {s:?}"))),
        }
    }

    /// The underlying cover target, if this is a cover measurement.
    pub fn cover_target(&self) -> Option<CoverTarget> {
        match self {
            Target::VertexCover => Some(CoverTarget::Vertices),
            Target::EdgeCover => Some(CoverTarget::Edges),
            Target::BothCover => Some(CoverTarget::Both),
            Target::Blanket { .. } => None,
        }
    }

    /// Builds the observer that measures (and stops) this target.
    pub(crate) fn build_observer<'g>(&self, _g: &'g Graph) -> AnyObserver<'g> {
        match *self {
            Target::Blanket { delta } => {
                AnyObserver::Blanket(BlanketObserver::new(delta).expect("spec validated delta"))
            }
            _ => AnyObserver::Cover(CoverObserver::new(
                self.cover_target().expect("non-blanket is a cover target"),
            )),
        }
    }
}

/// One concrete observer per metric kind — the "metric-set half" of the
/// executor's (process × metric-set) dispatch. An observer bank is a
/// `Vec<AnyObserver>`, which feeds [`eproc_core::observe::run_observed`]
/// through the homogeneous-slice [`ObserverSet`](eproc_core::observe::ObserverSet)
/// implementation: per step, each observer costs one predictable `match`
/// with the measurement body inlined, instead of a virtual call through
/// `Box<dyn Observer>`.
#[derive(Debug)]
pub enum AnyObserver<'g> {
    /// Vertex/edge cover observer.
    Cover(CoverObserver),
    /// Blanket-time observer.
    Blanket(BlanketObserver),
    /// Phase-structure observer.
    Phases(PhaseObserver),
    /// Blue star census observer (borrows the graph).
    BlueCensus(BlueCensusObserver<'g>),
    /// Hitting-time observer.
    Hitting(HittingObserver),
}

macro_rules! any_observer_delegate {
    ($self:expr, $obs:ident => $body:expr) => {
        match $self {
            AnyObserver::Cover($obs) => $body,
            AnyObserver::Blanket($obs) => $body,
            AnyObserver::Phases($obs) => $body,
            AnyObserver::BlueCensus($obs) => $body,
            AnyObserver::Hitting($obs) => $body,
        }
    };
}

impl Observer for AnyObserver<'_> {
    fn begin(&mut self, g: &Graph, start: Vertex) {
        any_observer_delegate!(self, o => o.begin(g, start))
    }

    #[inline]
    fn on_step(&mut self, t: u64, step: &Step) {
        any_observer_delegate!(self, o => o.on_step(t, step))
    }

    #[inline]
    fn satisfied(&self) -> bool {
        any_observer_delegate!(self, o => o.satisfied())
    }

    fn finish(&mut self) -> Metrics {
        any_observer_delegate!(self, o => o.finish())
    }
}

/// One additional per-trial metric, measured by an observer attached to
/// the **same** walk as the target — a multi-metric trial still walks the
/// graph exactly once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricSpec {
    /// Vertex and edge cover times (`C_V`, `C_E`). Resolves when both are
    /// covered.
    Cover,
    /// Ding–Lee–Peres blanket time `τ_bl(delta)`.
    Blanket {
        /// Required visit fraction `δ ∈ (0, 1)`.
        delta: f64,
    },
    /// Blue/red phase structure: first blue phase length, blue phase
    /// count, total blue steps, and the Observation-10 closure flag.
    /// Resolves at edge cover.
    Phases,
    /// §5 isolated blue star census (count of vertices ever stranded as
    /// star centers). Resolves at vertex cover.
    BlueCensus,
    /// First-visit (hitting) time of one vertex; `None` means the
    /// canonical last vertex `n - 1`.
    Hitting {
        /// Target vertex (`None` = `n - 1`).
        vertex: Option<usize>,
    },
}

impl MetricSpec {
    /// Stable name used in tables, JSON keys and the CLI.
    pub fn label(&self) -> String {
        match self {
            MetricSpec::Cover => "cover".into(),
            MetricSpec::Blanket { delta } => format!("blanket({delta})"),
            MetricSpec::Phases => "phases".into(),
            MetricSpec::BlueCensus => "blue-census".into(),
            MetricSpec::Hitting { vertex: None } => "hitting(last)".into(),
            MetricSpec::Hitting { vertex: Some(v) } => format!("hitting({v})"),
        }
    }

    /// Compact CLI syntax (inverse of [`MetricSpec::parse`]).
    pub fn to_cli(&self) -> String {
        match self {
            MetricSpec::Cover => "cover".into(),
            MetricSpec::Blanket { delta } => format!("blanket:{delta}"),
            MetricSpec::Phases => "phases".into(),
            MetricSpec::BlueCensus => "bluecensus".into(),
            MetricSpec::Hitting { vertex: None } => "hitting".into(),
            MetricSpec::Hitting { vertex: Some(v) } => format!("hitting:{v}"),
        }
    }

    /// Parses `cover`, `blanket[:delta]` (default `0.4`), `phases`,
    /// `bluecensus` (aka `stars`), `hitting[:v]`.
    pub fn parse(s: &str) -> Result<MetricSpec, SpecError> {
        let (kind, args) = match s.split_once(':') {
            Some((k, a)) => (k, a),
            None => (s, ""),
        };
        let no_args = |spec: MetricSpec| -> Result<MetricSpec, SpecError> {
            if args.is_empty() {
                Ok(spec)
            } else {
                Err(SpecError::new(format!(
                    "metric {s:?}: unexpected argument {args:?}"
                )))
            }
        };
        match kind {
            "cover" => no_args(MetricSpec::Cover),
            "blanket" => {
                let delta: f64 = if args.is_empty() {
                    0.4
                } else {
                    args.parse()
                        .map_err(|_| SpecError::new(format!("metric {s:?}: bad delta")))?
                };
                if !(delta > 0.0 && delta < 1.0) {
                    return Err(SpecError::new(format!(
                        "metric {s:?}: delta must be in (0,1)"
                    )));
                }
                Ok(MetricSpec::Blanket { delta })
            }
            "phases" => no_args(MetricSpec::Phases),
            "bluecensus" | "blue-census" | "stars" => no_args(MetricSpec::BlueCensus),
            "hitting" => {
                let vertex = if args.is_empty() {
                    None
                } else {
                    Some(
                        args.parse()
                            .map_err(|_| SpecError::new(format!("metric {s:?}: bad vertex")))?,
                    )
                };
                Ok(MetricSpec::Hitting { vertex })
            }
            other => Err(SpecError::new(format!(
                "unknown metric {other:?} (cover|blanket:<delta>|phases|bluecensus|hitting[:v])"
            ))),
        }
    }

    /// Names of the per-trial scalar columns this metric contributes, in
    /// the order the executor extracts their values.
    pub fn columns(&self) -> Vec<String> {
        match self {
            MetricSpec::Cover => vec!["cover.c_v".into(), "cover.c_e".into()],
            MetricSpec::Blanket { .. } => vec![self.label()],
            MetricSpec::Phases => vec![
                "phases.first_blue".into(),
                "phases.blue_count".into(),
                "phases.total_blue".into(),
                "phases.closed".into(),
            ],
            MetricSpec::BlueCensus => vec!["stars".into()],
            MetricSpec::Hitting { .. } => vec![self.label()],
        }
    }

    /// Builds the observer measuring this metric on `g`.
    pub(crate) fn build_observer<'g>(&self, g: &'g Graph) -> AnyObserver<'g> {
        match *self {
            MetricSpec::Cover => AnyObserver::Cover(CoverObserver::new(CoverTarget::Both)),
            MetricSpec::Blanket { delta } => {
                AnyObserver::Blanket(BlanketObserver::new(delta).expect("spec validated delta"))
            }
            MetricSpec::Phases => AnyObserver::Phases(PhaseObserver::new()),
            MetricSpec::BlueCensus => AnyObserver::BlueCensus(BlueCensusObserver::new(g)),
            MetricSpec::Hitting { vertex } => {
                AnyObserver::Hitting(HittingObserver::new(match vertex {
                    Some(v) => HitTarget::Vertex(v),
                    None => HitTarget::LastVertex,
                }))
            }
        }
    }

    /// Extracts this metric's per-trial scalars (aligned with
    /// [`MetricSpec::columns`]; `None` = unresolved within the cap).
    ///
    /// # Panics
    ///
    /// Panics if `metrics` came from a different observer kind.
    pub(crate) fn values(&self, metrics: &Metrics) -> Vec<Option<f64>> {
        match (self, metrics) {
            (MetricSpec::Cover, Metrics::Cover(c)) => vec![
                c.steps_to_vertex_cover.map(|s| s as f64),
                c.steps_to_edge_cover.map(|s| s as f64),
            ],
            (MetricSpec::Blanket { .. }, Metrics::Blanket(b)) => {
                vec![b.steps_to_blanket.map(|s| s as f64)]
            }
            (MetricSpec::Phases, Metrics::Phases(trace)) => vec![
                Some(trace.first_blue_length() as f64),
                Some(trace.blue_phase_count() as f64),
                Some(trace.total_blue() as f64),
                Some(if trace.blue_phases_closed() { 1.0 } else { 0.0 }),
            ],
            (MetricSpec::BlueCensus, Metrics::BlueCensus(c)) => {
                vec![Some(c.ever_star_centers.len() as f64)]
            }
            (MetricSpec::Hitting { .. }, Metrics::Hitting(h)) => {
                vec![h.steps_to_hit.map(|s| s as f64)]
            }
            (spec, got) => panic!("metric {spec:?} received mismatched metrics {got:?}"),
        }
    }
}

/// Per-trial step cap policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapSpec {
    /// `factor · n ln n` steps — the convention of the `table_*` binaries.
    NLogN(f64),
    /// A fixed step count.
    Absolute(u64),
    /// [`eproc_core::cover::default_step_cap`]: `4n³ + 10⁶`, far above any
    /// connected graph's expected cover time.
    Auto,
}

impl CapSpec {
    /// Compact CLI syntax (inverse of [`CapSpec::parse`]): `auto`,
    /// `nlogn:<factor>` or `abs:<steps>`. The factor renders via
    /// `f64`'s shortest-round-trip formatting, so `parse(to_cli())`
    /// reproduces the value bit for bit.
    pub fn to_cli(&self) -> String {
        match *self {
            CapSpec::NLogN(factor) => format!("nlogn:{factor}"),
            CapSpec::Absolute(cap) => format!("abs:{cap}"),
            CapSpec::Auto => "auto".into(),
        }
    }

    /// Parses `auto`, `nlogn:<factor>` or `abs:<steps>`.
    pub fn parse(s: &str) -> Result<CapSpec, SpecError> {
        match s.split_once(':') {
            None if s == "auto" => Ok(CapSpec::Auto),
            Some(("nlogn", f)) => match f.parse::<f64>() {
                Ok(factor) if factor.is_finite() && factor > 0.0 => Ok(CapSpec::NLogN(factor)),
                _ => Err(SpecError::new(format!(
                    "cap {s:?}: factor must be a positive number"
                ))),
            },
            Some(("abs", n)) => n.parse().map(CapSpec::Absolute).map_err(|_| {
                SpecError::new(format!("cap {s:?}: step count must be an unsigned integer"))
            }),
            _ => Err(SpecError::new(format!(
                "unknown cap {s:?} (auto|nlogn:<factor>|abs:<steps>)"
            ))),
        }
    }

    /// Resolves the cap for a concrete graph.
    pub fn resolve(&self, g: &Graph) -> u64 {
        match *self {
            CapSpec::NLogN(factor) => {
                let n = g.n().max(2) as f64;
                (factor * n * n.ln()).ceil() as u64
            }
            CapSpec::Absolute(cap) => cap,
            CapSpec::Auto => eproc_core::cover::default_step_cap(g),
        }
    }
}

/// Per-trial graph resampling for randomized families.
///
/// Without a plan the executor builds **one** graph per family and runs
/// every trial on it, so cell statistics mix within-graph walk variance
/// with nothing — the graph is a constant. The paper's Theorem 1 and the
/// related ensemble results (Cooper–Frieze–Johansson's random cubic cover
/// time, Johansson's odd-degree random regular graphs) are statements
/// **whp over the random graph**, so replicating them faithfully needs a
/// fresh sample per trial. With a plan, each group of `walks_per_graph`
/// consecutive trials of a cell shares one freshly sampled graph (keyed
/// by `(family, group)` [`eproc_stats::SeedSequence`] coordinates, shared
/// across the cell's processes so process comparisons stay paired), and
/// the report splits every column's variance into pooled, across-graph
/// and within-graph components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResamplePlan {
    /// Consecutive trials sharing one sampled graph (`>= 1`). `1` gives
    /// every trial its own graph (pure resampling; the within-graph
    /// component is then inestimable and reported as `null`); `>= 2`
    /// estimates both variance components.
    pub walks_per_graph: usize,
}

impl ResamplePlan {
    /// The default plan: one fresh graph per trial.
    pub fn per_trial() -> ResamplePlan {
        ResamplePlan { walks_per_graph: 1 }
    }

    /// Number of graph samples needed for `trials` trials per cell.
    pub fn groups(&self, trials: usize) -> usize {
        trials.div_ceil(self.walks_per_graph.max(1))
    }
}

/// A complete declarative experiment: run `trials` independent walks for
/// every (graph, process) pair and aggregate steps-to-target statistics
/// plus any extra [`MetricSpec`] columns — all measured from **one** walk
/// per trial.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Short identifier (used for artifact file names).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Graph grid.
    pub graphs: Vec<GraphSpec>,
    /// Process grid.
    pub processes: Vec<ProcessSpec>,
    /// Independent trials per (graph, process) cell.
    pub trials: usize,
    /// Stopping target measured per trial.
    pub target: Target,
    /// Extra metrics measured per trial by observers on the same walk.
    /// The trial runs until the target **and** every metric resolve (or
    /// the cap).
    pub metrics: Vec<MetricSpec>,
    /// Start vertex of every trial (must exist in every graph).
    pub start: Vertex,
    /// Per-trial step cap.
    pub cap: CapSpec,
    /// Per-trial graph resampling (`None` = share one graph per family,
    /// the legacy mode; artifacts are unchanged byte for byte).
    pub resample: Option<ResamplePlan>,
}

impl ExperimentSpec {
    /// Total number of trials the executor will run.
    pub fn total_jobs(&self) -> usize {
        self.graphs.len() * self.processes.len() * self.trials
    }

    /// Flattened names of all metric columns, in grid order.
    pub fn metric_columns(&self) -> Vec<String> {
        self.metrics.iter().flat_map(|m| m.columns()).collect()
    }

    /// Validates the spec before execution. Infeasible graph families
    /// (see [`GraphSpec::validate`]) fail here, before anything is built
    /// or any worker starts.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.graphs.is_empty() {
            return Err(SpecError::new("spec has no graphs"));
        }
        if self.processes.is_empty() {
            return Err(SpecError::new("spec has no processes"));
        }
        if self.trials == 0 {
            return Err(SpecError::new("spec has zero trials"));
        }
        for gs in &self.graphs {
            gs.validate()?;
        }
        if let Some(plan) = self.resample {
            if plan.walks_per_graph == 0 {
                return Err(SpecError::new(
                    "resample walks_per_graph must be at least 1",
                ));
            }
            // Resampling a purely deterministic grid regenerates identical
            // graphs and dresses walk noise up as across-graph spread —
            // reject it. Mixed grids are allowed: the randomized families
            // genuinely resample, and a deterministic cell's across-graph
            // component honestly reads ~0.
            if !self.graphs.iter().any(GraphSpec::is_randomized) {
                return Err(SpecError::new(
                    "resampling needs at least one randomized graph family \
                     (regular or geometric): deterministic families regenerate \
                     the identical graph every group",
                ));
            }
        }
        if let Target::Blanket { delta } = self.target {
            if !(delta > 0.0 && delta < 1.0) {
                return Err(SpecError::new(format!(
                    "blanket delta {delta} outside (0,1)"
                )));
            }
        }
        for (i, metric) in self.metrics.iter().enumerate() {
            if let MetricSpec::Blanket { delta } = metric {
                if !(*delta > 0.0 && *delta < 1.0) {
                    return Err(SpecError::new(format!(
                        "metric blanket delta {delta} outside (0,1)"
                    )));
                }
            }
            if self.metrics[..i].contains(metric) {
                return Err(SpecError::new(format!(
                    "duplicate metric {:?} (columns would collide)",
                    metric.label()
                )));
            }
        }
        Ok(())
    }

    /// Renders the spec's structure as one CLI-flag line (inverse of
    /// [`ExperimentSpec::parse_cli`]): one `--graph`/`--process`/
    /// `--metrics` token per grid entry **in the receiver's order**,
    /// followed by `--trials`, `--target`, `--start`, `--cap` and (when
    /// resampling) `--resample <W>`, all explicit. `name` and
    /// `description` are not rendered — in the normal form they are
    /// derived from this line, not inputs to it.
    ///
    /// The *canonical* line of an experiment is
    /// `self.canonicalize().to_cli()`; on a canonical spec this method
    /// is the fixed-point side of `parse(to_cli(canonicalize(s)))`.
    pub fn to_cli(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for g in &self.graphs {
            parts.push(format!("--graph {}", g.to_cli()));
        }
        for p in &self.processes {
            parts.push(format!("--process {}", p.to_cli()));
        }
        parts.push(format!("--trials {}", self.trials));
        parts.push(format!("--target {}", self.target.to_cli()));
        for m in &self.metrics {
            parts.push(format!("--metrics {}", m.to_cli()));
        }
        parts.push(format!("--start {}", self.start));
        parts.push(format!("--cap {}", self.cap.to_cli()));
        if let Some(plan) = self.resample {
            parts.push(format!("--resample {}", plan.walks_per_graph));
        }
        parts.join(" ")
    }

    /// Parses a whitespace-separated spec line of [`ExperimentSpec::to_cli`]
    /// flags and returns the **canonical** spec it denotes (grids
    /// sorted, defaults materialized, `name`/`description` derived from
    /// content — see [`ExperimentSpec::canonicalize`]).
    ///
    /// Accepted flags: `--graph` (repeatable; `;`-packed), `--process`/
    /// `--processes` (repeatable; `,`-packed), `--metrics` (repeatable;
    /// `,`-packed), `--trials`, `--target`, `--start`, `--cap`,
    /// `--resample <W>`. Omitted fields take the `compare` defaults
    /// (5 trials, `vertex` target, start 0, `auto` cap, no resampling).
    /// Resample `~` markers and sweep ranges are rejected: a canonical
    /// line carries explicit `--resample` and concrete sizes.
    ///
    /// # Errors
    ///
    /// [`SpecError`] on unknown flags, missing or malformed values,
    /// positional tokens, or an empty graph/process grid.
    pub fn parse_cli(line: &str) -> Result<ExperimentSpec, SpecError> {
        use crate::cli::{parse_args, Arity, FlagDef};
        const TABLE: &[FlagDef] = &[
            FlagDef {
                name: "--graph",
                aliases: &[],
                arity: Arity::Value("a graph spec"),
            },
            FlagDef {
                name: "--process",
                aliases: &["--processes"],
                arity: Arity::Value("a process list"),
            },
            FlagDef {
                name: "--trials",
                aliases: &[],
                arity: Arity::Value("a trial count"),
            },
            FlagDef {
                name: "--target",
                aliases: &[],
                arity: Arity::Value("a target"),
            },
            FlagDef {
                name: "--metrics",
                aliases: &[],
                arity: Arity::Value("a metric list"),
            },
            FlagDef {
                name: "--start",
                aliases: &[],
                arity: Arity::Value("a start vertex"),
            },
            FlagDef {
                name: "--cap",
                aliases: &[],
                arity: Arity::Value("auto|nlogn:<factor>|abs:<steps>"),
            },
            FlagDef {
                name: "--resample",
                aliases: &[],
                arity: Arity::Value("a walks-per-graph count"),
            },
        ];
        const ACCEPTS: &[&str] = &[
            "--graph",
            "--process",
            "--trials",
            "--target",
            "--metrics",
            "--start",
            "--cap",
            "--resample",
        ];
        let parsed = parse_args(
            "spec",
            TABLE,
            ACCEPTS,
            line.split_whitespace().map(String::from),
        )
        .map_err(|e| SpecError::new(e.to_string()))?;
        if let Some(tok) = parsed.positionals.first() {
            return Err(SpecError::new(format!(
                "spec line: unexpected token {tok:?} (flags only)"
            )));
        }
        let mut spec = ExperimentSpec {
            name: String::new(),
            description: String::new(),
            graphs: Vec::new(),
            processes: Vec::new(),
            trials: 5,
            target: Target::VertexCover,
            metrics: Vec::new(),
            start: 0,
            cap: CapSpec::Auto,
            resample: None,
        };
        let expects = |flag: &str, what: &str, got: &str| {
            SpecError::new(format!("flag `{flag}` expects {what}, got {got:?}"))
        };
        for (flag, value) in &parsed.flags {
            let v = value
                .as_deref()
                .expect("every spec-line flag takes a value");
            match *flag {
                "--graph" => {
                    for part in v.split(';') {
                        spec.graphs.push(GraphSpec::parse(part)?);
                    }
                }
                "--process" => {
                    for part in v.split(',') {
                        spec.processes.push(ProcessSpec::parse(part)?);
                    }
                }
                "--metrics" => {
                    for part in v.split(',') {
                        spec.metrics.push(MetricSpec::parse(part)?);
                    }
                }
                "--trials" => {
                    spec.trials = match v.parse() {
                        Ok(t) if t >= 1 => t,
                        _ => return Err(expects("--trials", "an integer of at least 1", v)),
                    };
                }
                "--target" => spec.target = Target::parse(v)?,
                "--start" => {
                    spec.start = v
                        .parse()
                        .map_err(|_| expects("--start", "a vertex index", v))?;
                }
                "--cap" => spec.cap = CapSpec::parse(v)?,
                "--resample" => {
                    let walks = match v.parse() {
                        Ok(w) if w >= 1 => w,
                        _ => return Err(expects("--resample", "an integer of at least 1", v)),
                    };
                    spec.resample = Some(ResamplePlan {
                        walks_per_graph: walks,
                    });
                }
                other => unreachable!("unaccepted flag {other} passed the table"),
            }
        }
        if spec.graphs.is_empty() {
            return Err(SpecError::new("spec line has no --graph"));
        }
        if spec.processes.is_empty() {
            return Err(SpecError::new("spec line has no --process"));
        }
        Ok(spec.canonicalize())
    }

    /// The unique normal form of this experiment, the fixed point of
    /// `parse_cli ∘ to_cli`:
    ///
    /// - **graphs** sorted by `(family label, vertex count, spelling)`
    ///   — spelling-independent, and sweeps stay in ascending size
    ///   order within a family;
    /// - **processes** and **metrics** sorted by their `to_cli`
    ///   spelling;
    /// - **`name`** derived from the content
    ///   ([`crate::digest::content_name`]: `spec-<12 hex of the
    ///   canonical line's SHA-256>`), and **`description`** set to the
    ///   canonical line itself, so two spellings of the same experiment
    ///   are `==` after canonicalization and artifacts are
    ///   self-describing.
    ///
    /// Duplicates are **not** removed: grid entries are seeded by
    /// position, so a repeated family is a genuine second sample, not
    /// a redundant one.
    ///
    /// Canonicalization changes grid *order*, and the executor derives
    /// every seed from grid indices — so the canonical spec generally
    /// computes different bytes than a differently-ordered spelling.
    /// Callers that key artifacts by [`crate::digest::SpecDigest`]
    /// (the `--cache` path) must therefore execute the canonical form,
    /// which is exactly what the CLI does.
    pub fn canonicalize(&self) -> ExperimentSpec {
        let mut c = self.clone();
        c.graphs.sort_by_key(|g| {
            (
                g.family_label(),
                g.vertex_count().unwrap_or(usize::MAX),
                g.to_cli(),
            )
        });
        c.processes.sort_by_key(ProcessSpec::to_cli);
        c.metrics.sort_by_key(MetricSpec::to_cli);
        let line = c.to_cli();
        c.name = crate::digest::content_name(&line);
        c.description = line;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eproc_graphs::properties::connectivity;

    #[test]
    fn graph_spec_parse_round_trips() {
        for s in [
            "regular:128,4",
            "lps:5,13",
            "geometric:500,1.5",
            "hypercube:6",
            "torus:8,8",
            "cycle:32",
            "complete:9",
            "lollipop:16,8",
            "petersen",
            "figure8:7",
        ] {
            let spec = GraphSpec::parse(s).unwrap();
            assert_eq!(
                GraphSpec::parse(&spec.to_cli()).unwrap(),
                spec,
                "round trip {s}"
            );
        }
    }

    #[test]
    fn graph_spec_rejects_junk() {
        assert!(GraphSpec::parse("regular").is_err());
        assert!(GraphSpec::parse("regular:10").is_err());
        assert!(GraphSpec::parse("blorp:3").is_err());
        assert!(GraphSpec::parse("torus:4,x").is_err());
    }

    #[test]
    fn graph_spec_rejects_trailing_arguments() {
        // Trailing junk used to parse fine — every extra token must now be
        // rejected, and the error must name the offending token.
        let err = GraphSpec::parse("regular:100,3,junk").unwrap_err();
        assert!(err.to_string().contains("\"junk\""), "{err}");
        assert!(GraphSpec::parse("petersen:5").is_err());
        assert!(GraphSpec::parse("cycle:10,11").is_err());
        assert!(GraphSpec::parse("hypercube:6,7").is_err());
        assert!(GraphSpec::parse("geometric:100,1.5,x").is_err());
        assert!(GraphSpec::parse("lps:5,13,17").is_err());
        let err = GraphSpec::parse("torus:4,x").unwrap_err();
        assert!(err.to_string().contains("\"x\""), "{err}");
    }

    #[test]
    fn lps_params_parse_as_genuine_u64() {
        // Values above u32 must survive; parsing must not round-trip
        // through a narrower type.
        let spec = GraphSpec::parse("lps:4294967311,13").unwrap();
        assert_eq!(
            spec,
            GraphSpec::Lps {
                p: 4_294_967_311,
                q: 13
            }
        );
        let err = GraphSpec::parse("lps:-5,13").unwrap_err();
        assert!(err.to_string().contains("\"-5\""), "{err}");
    }

    #[test]
    fn resample_marker_parses_only_where_accepted() {
        let (spec, resample) = GraphSpec::parse_with_resample("regular:~1000,4").unwrap();
        assert_eq!(spec, GraphSpec::Regular { n: 1000, d: 4 });
        assert!(resample);
        let (spec, resample) = GraphSpec::parse_with_resample("regular:1000,4").unwrap();
        assert_eq!(spec, GraphSpec::Regular { n: 1000, d: 4 });
        assert!(!resample);
        // Plain parse sites have no resample dimension: reject the marker.
        assert!(GraphSpec::parse("regular:~1000,4").is_err());
    }

    #[test]
    fn process_and_metric_specs_reject_stray_arguments() {
        assert!(ProcessSpec::parse("srw:junk").is_err());
        assert!(ProcessSpec::parse("rotor:1").is_err());
        assert!(ProcessSpec::parse("vprocess:x").is_err());
        assert!(MetricSpec::parse("cover:junk").is_err());
        assert!(MetricSpec::parse("phases:2").is_err());
        assert!(MetricSpec::parse("bluecensus:0").is_err());
    }

    #[test]
    fn graph_spec_validation_catches_infeasible_families() {
        assert!(GraphSpec::Regular { n: 100, d: 4 }.validate().is_ok());
        assert!(GraphSpec::Regular { n: 3, d: 2 }.validate().is_ok());
        // d = 0 / n = 0: no spinning through generator restarts, a
        // first-class SpecError instead.
        assert!(GraphSpec::Regular { n: 0, d: 4 }.validate().is_err());
        assert!(GraphSpec::Regular { n: 10, d: 0 }.validate().is_err());
        assert!(GraphSpec::Regular { n: 10, d: 1 }.validate().is_err());
        assert!(GraphSpec::Regular { n: 4, d: 4 }.validate().is_err());
        assert!(
            GraphSpec::Regular { n: 5, d: 3 }.validate().is_err(),
            "odd n*d"
        );
        assert!(GraphSpec::Geometric {
            n: 100,
            radius_factor: 1.5
        }
        .validate()
        .is_ok());
        assert!(GraphSpec::Geometric {
            n: 0,
            radius_factor: 1.5
        }
        .validate()
        .is_err());
        assert!(GraphSpec::Geometric {
            n: 100,
            radius_factor: 0.0
        }
        .validate()
        .is_err());
        assert!(GraphSpec::Geometric {
            n: 100,
            radius_factor: f64::NAN
        }
        .validate()
        .is_err());
        assert!(GraphSpec::Cycle { n: 2 }.validate().is_err());
        assert!(GraphSpec::Torus { w: 1, h: 5 }.validate().is_err());
        assert!(GraphSpec::Hypercube { dim: 0 }.validate().is_err());
        assert!(GraphSpec::Petersen.validate().is_ok());
    }

    #[test]
    fn vertex_count_matches_built_graphs() {
        for s in [
            "regular:64,4",
            "lps:5,13",
            "geometric:80,1.5",
            "hypercube:5",
            "torus:4,6",
            "cycle:9",
            "complete:7",
            "lollipop:5,4",
            "petersen",
            "figure8:6",
        ] {
            let spec = GraphSpec::parse(s).unwrap();
            assert_eq!(
                spec.build(3).unwrap().n(),
                spec.vertex_count().unwrap(),
                "{s}"
            );
        }
        assert!(GraphSpec::Lps { p: 6, q: 13 }.vertex_count().is_err());
        // Invalid-but-parseable degenerate sizes must not underflow.
        assert_eq!(GraphSpec::FigureEight { len: 0 }.vertex_count().unwrap(), 0);
    }

    #[test]
    fn randomized_families_are_flagged() {
        assert!(GraphSpec::Regular { n: 10, d: 4 }.is_randomized());
        assert!(GraphSpec::Geometric {
            n: 10,
            radius_factor: 1.5
        }
        .is_randomized());
        assert!(!GraphSpec::Petersen.is_randomized());
        assert!(!GraphSpec::Hypercube { dim: 4 }.is_randomized());
    }

    #[test]
    fn process_spec_parse_round_trips() {
        for s in [
            "eprocess",
            "eprocess:first-port",
            "eprocess:spiteful",
            "srw",
            "lazy",
            "weighted",
            "rotor",
            "rwc:3",
            "oldest",
            "leastused",
            "vprocess",
        ] {
            let spec = ProcessSpec::parse(s).unwrap();
            assert_eq!(
                ProcessSpec::parse(&spec.to_cli()).unwrap(),
                spec,
                "round trip {s}"
            );
        }
        assert!(ProcessSpec::parse("quantum-walk").is_err());
    }

    #[test]
    fn target_parse() {
        assert_eq!(Target::parse("vertex").unwrap(), Target::VertexCover);
        assert_eq!(Target::parse("edge").unwrap(), Target::EdgeCover);
        assert_eq!(Target::parse("both").unwrap(), Target::BothCover);
        assert_eq!(
            Target::parse("blanket:0.3").unwrap(),
            Target::Blanket { delta: 0.3 }
        );
        assert!(Target::parse("blanket:1.5").is_err());
        assert!(Target::parse("nope").is_err());
    }

    #[test]
    fn target_to_cli_round_trips_exactly() {
        for t in [
            Target::VertexCover,
            Target::EdgeCover,
            Target::BothCover,
            Target::Blanket { delta: 0.4 },
            Target::Blanket {
                delta: 0.123456789012345,
            },
        ] {
            assert_eq!(Target::parse(&t.to_cli()).unwrap(), t, "{}", t.to_cli());
        }
    }

    #[test]
    fn deterministic_graph_build() {
        let spec = GraphSpec::Regular { n: 64, d: 4 };
        let a = spec.build(7).unwrap();
        let b = spec.build(7).unwrap();
        assert_eq!(a.edge_list(), b.edge_list());
        let c = spec.build(8).unwrap();
        assert_ne!(a.edge_list(), c.edge_list());
    }

    #[test]
    fn geometric_build_is_connected_and_deterministic() {
        let spec = GraphSpec::Geometric {
            n: 80,
            radius_factor: 1.5,
        };
        let a = spec.build(3).unwrap();
        let b = spec.build(3).unwrap();
        assert_eq!(a.edge_list(), b.edge_list());
        assert!(connectivity::is_connected(&a));
    }

    #[test]
    fn every_process_spec_builds_and_steps() {
        let g = generators::torus2d(4, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        let specs = [
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::EProcess {
                rule: RuleSpec::FirstPort,
            },
            ProcessSpec::EProcess {
                rule: RuleSpec::LastPort,
            },
            ProcessSpec::EProcess {
                rule: RuleSpec::RoundRobin,
            },
            ProcessSpec::EProcess {
                rule: RuleSpec::GreedyAdversary,
            },
            ProcessSpec::EProcess {
                rule: RuleSpec::Spiteful,
            },
            ProcessSpec::Srw,
            ProcessSpec::LazySrw,
            ProcessSpec::WeightedSrw,
            ProcessSpec::RotorRouter,
            ProcessSpec::Rwc { d: 2 },
            ProcessSpec::OldestFirst,
            ProcessSpec::LeastUsedFirst,
            ProcessSpec::VProcess,
        ];
        for spec in &specs {
            let mut walk = spec.build(&g, 0);
            for _ in 0..50 {
                let step = walk.advance(&mut rng);
                assert!(step.to < g.n(), "{} stepped out of range", spec.label());
            }
            assert_eq!(walk.steps(), 50);
        }
    }

    #[test]
    fn cap_resolution() {
        let g = generators::cycle(100);
        let cap = CapSpec::NLogN(2.0).resolve(&g);
        assert_eq!(cap, (2.0 * 100.0 * 100.0f64.ln()).ceil() as u64);
        assert_eq!(CapSpec::Absolute(42).resolve(&g), 42);
        assert!(CapSpec::Auto.resolve(&g) >= 4 * 100 * 100 * 100);
    }

    #[test]
    fn spec_validation() {
        let mut spec = ExperimentSpec {
            name: "t".into(),
            description: String::new(),
            graphs: vec![GraphSpec::Cycle { n: 8 }],
            processes: vec![ProcessSpec::Srw],
            trials: 2,
            target: Target::VertexCover,
            metrics: vec![],
            start: 0,
            cap: CapSpec::Auto,
            resample: None,
        };
        assert!(spec.validate().is_ok());
        assert_eq!(spec.total_jobs(), 2);
        spec.trials = 0;
        assert!(spec.validate().is_err());
        spec.trials = 2;
        spec.metrics = vec![MetricSpec::Phases, MetricSpec::Phases];
        assert!(
            spec.validate().is_err(),
            "duplicate metrics must be rejected"
        );
        spec.metrics = vec![MetricSpec::Blanket { delta: 1.5 }];
        assert!(
            spec.validate().is_err(),
            "bad metric delta must be rejected"
        );
        spec.metrics = vec![];
        spec.graphs = vec![GraphSpec::Regular { n: 10, d: 0 }];
        assert!(
            spec.validate().is_err(),
            "infeasible graph family must fail at validation time"
        );
        spec.graphs = vec![GraphSpec::Regular { n: 16, d: 4 }];
        spec.resample = Some(ResamplePlan { walks_per_graph: 0 });
        assert!(spec.validate().is_err(), "zero walks per graph is invalid");
        spec.resample = Some(ResamplePlan::per_trial());
        assert!(spec.validate().is_ok());
        spec.graphs = vec![GraphSpec::Cycle { n: 8 }];
        assert!(
            spec.validate().is_err(),
            "resampling a purely deterministic grid must be rejected"
        );
        spec.graphs = vec![
            GraphSpec::Cycle { n: 8 },
            GraphSpec::Regular { n: 16, d: 4 },
        ];
        assert!(spec.validate().is_ok(), "mixed grids may resample");
    }

    #[test]
    fn resample_plan_group_arithmetic() {
        let plan = ResamplePlan::per_trial();
        assert_eq!(plan.groups(5), 5);
        let plan = ResamplePlan { walks_per_graph: 2 };
        assert_eq!(plan.groups(6), 3);
        assert_eq!(plan.groups(5), 3, "last group may be smaller");
        assert_eq!(plan.groups(0), 0);
    }

    #[test]
    fn metric_spec_parse_round_trips() {
        for s in [
            "cover",
            "blanket:0.5",
            "phases",
            "bluecensus",
            "hitting",
            "hitting:7",
        ] {
            let m = MetricSpec::parse(s).unwrap();
            assert_eq!(MetricSpec::parse(&m.to_cli()).unwrap(), m, "round trip {s}");
            assert!(!m.columns().is_empty());
            assert!(!m.label().is_empty());
        }
        assert_eq!(
            MetricSpec::parse("blanket").unwrap(),
            MetricSpec::Blanket { delta: 0.4 }
        );
        assert_eq!(MetricSpec::parse("stars").unwrap(), MetricSpec::BlueCensus);
        assert!(MetricSpec::parse("blanket:2.0").is_err());
        assert!(MetricSpec::parse("hitting:x").is_err());
        assert!(MetricSpec::parse("entropy").is_err());
    }

    #[test]
    fn metric_columns_flatten_in_order() {
        let spec = ExperimentSpec {
            name: "m".into(),
            description: String::new(),
            graphs: vec![GraphSpec::Cycle { n: 8 }],
            processes: vec![ProcessSpec::Srw],
            trials: 1,
            target: Target::VertexCover,
            metrics: vec![
                MetricSpec::Cover,
                MetricSpec::Blanket { delta: 0.4 },
                MetricSpec::Hitting { vertex: None },
            ],
            start: 0,
            cap: CapSpec::Auto,
            resample: None,
        };
        assert_eq!(
            spec.metric_columns(),
            vec!["cover.c_v", "cover.c_e", "blanket(0.4)", "hitting(last)"]
        );
    }

    #[test]
    fn sweep_range_parses_and_expands() {
        let r = SweepRange::parse("1k..256k,x2").unwrap();
        assert_eq!(
            r,
            SweepRange {
                start: 1_000,
                end: 256_000,
                step: SweepStep::Factor(2)
            }
        );
        assert_eq!(r.points().unwrap().len(), 9); // 1k, 2k, …, 256k
        assert_eq!(r.points().unwrap()[8], 256_000);
        // `n=` prefix (the --sweep flag form) and suffix-free sizes.
        assert_eq!(SweepRange::parse("n=1000..256000,x2").unwrap(), r);
        // Default step is x2.
        assert_eq!(
            SweepRange::parse("100..400").unwrap().points().unwrap(),
            vec![100, 200, 400]
        );
        // Stride sweeps.
        assert_eq!(
            SweepRange::parse("100..350,+100")
                .unwrap()
                .points()
                .unwrap(),
            vec![100, 200, 300]
        );
        // The end is an inclusive bound, not necessarily a point.
        assert_eq!(
            SweepRange::parse("10..70,x2").unwrap().points().unwrap(),
            vec![10, 20, 40]
        );
        // m suffix.
        assert_eq!(SweepRange::parse("1m..2m,x2").unwrap().start, 1_000_000);
    }

    #[test]
    fn sweep_range_round_trips_through_cli_syntax() {
        for s in ["1k..256k,x2", "100..350,+100", "7..7,x3", "2..64,x4"] {
            let r = SweepRange::parse(s).unwrap();
            assert_eq!(SweepRange::parse(&r.to_cli()).unwrap(), r, "round trip {s}");
        }
    }

    #[test]
    fn sweep_range_rejects_degenerate_input() {
        for bad in [
            "",                               // empty
            "n=",                             // empty after prefix
            "100",                            // no `..`
            "200..100",                       // descending
            "0..100",                         // zero start
            "10..100,x1",                     // non-advancing factor
            "10..100,x0",                     // zero factor
            "10..100,+0",                     // zero stride
            "10..100,y3",                     // unknown step kind
            "a..100",                         // junk size
            "1..1000000,+1",                  // > MAX_SWEEP_POINTS sizes
            "99999999999999999999999999..1k", // overflowing literal
            "10m..20m,x2k",                   // ok factor? 2k=2000 factor fine — see below
        ] {
            // `10m..20m,x2k` actually parses (factor 2000, one point);
            // treat it as the one allowed entry and skip it.
            if bad == "10m..20m,x2k" {
                assert!(SweepRange::parse(bad).is_ok());
                continue;
            }
            assert!(SweepRange::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn graph_spec_sweep_expansion() {
        let (specs, resample, range) =
            GraphSpec::parse_with_sweep("regular:~{500..4k,x2},4").unwrap();
        assert!(resample);
        assert_eq!(
            range.unwrap().points().unwrap(),
            vec![500, 1000, 2000, 4000]
        );
        assert_eq!(
            specs,
            vec![
                GraphSpec::Regular { n: 500, d: 4 },
                GraphSpec::Regular { n: 1000, d: 4 },
                GraphSpec::Regular { n: 2000, d: 4 },
                GraphSpec::Regular { n: 4000, d: 4 },
            ]
        );
        // Sweep-free specs pass through unchanged.
        let (specs, resample, range) = GraphSpec::parse_with_sweep("torus:8,8").unwrap();
        assert_eq!(specs, vec![GraphSpec::Torus { w: 8, h: 8 }]);
        assert!(!resample);
        assert!(range.is_none());
        // Sweeping a non-size argument still parses per instantiation
        // (hypercube dim sweep) — the grammar is positional.
        let (specs, _, _) = GraphSpec::parse_with_sweep("hypercube:{3..5,+1}").unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[2], GraphSpec::Hypercube { dim: 5 });
    }

    #[test]
    fn graph_spec_sweep_rejects_malformed_ranges() {
        assert!(GraphSpec::parse_with_sweep("regular:{500..100,x2},4").is_err());
        assert!(GraphSpec::parse_with_sweep("regular:{500..1k,x2,4").is_err()); // unclosed
        assert!(GraphSpec::parse_with_sweep("regular:{1..2},{3..4}").is_err()); // two ranges
        assert!(GraphSpec::parse_with_sweep("regular:{},4").is_err()); // empty
        assert!(GraphSpec::parse_with_sweep("regular:{1k..2k,x2}").is_err()); // missing d
    }

    #[test]
    fn with_primary_size_resizes_sweepable_families() {
        assert_eq!(
            GraphSpec::Regular { n: 10, d: 4 }
                .with_primary_size(64)
                .unwrap(),
            GraphSpec::Regular { n: 64, d: 4 }
        );
        assert_eq!(
            GraphSpec::Geometric {
                n: 10,
                radius_factor: 1.5
            }
            .with_primary_size(64)
            .unwrap(),
            GraphSpec::Geometric {
                n: 64,
                radius_factor: 1.5
            }
        );
        assert_eq!(
            GraphSpec::Cycle { n: 3 }.with_primary_size(9).unwrap(),
            GraphSpec::Cycle { n: 9 }
        );
        assert!(GraphSpec::Petersen.with_primary_size(10).is_err());
        assert!(GraphSpec::Torus { w: 3, h: 3 }
            .with_primary_size(10)
            .is_err());
    }
}
