//! Post-run roll-up: stage wall-time breakdown and per-worker
//! utilization, serialised as the `<artifact>.telemetry.json` sidecar.

use crate::counters::Counters;
use crate::event::{json_escape, json_num, Event, EventKind};
use crate::sink::TelemetrySink;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A [`TelemetrySink`] that folds the event stream into a
/// [`TelemetrySummary`]: total trials/steps/blocks, cumulative stage
/// times (generation, walking, aggregation) and a per-worker breakdown.
/// Take the roll-up with [`SummarySink::summary`] once the run finished.
#[derive(Debug, Default)]
pub struct SummarySink {
    totals: Counters,
    meta: Mutex<Meta>,
    per_worker: Mutex<BTreeMap<usize, WorkerTally>>,
    agg_ns: AtomicU64,
    merge_ns: AtomicU64,
    checkpoint_ns: AtomicU64,
    blocks_retried: AtomicU64,
    wall_ns: AtomicU64,
}

#[derive(Debug, Default)]
struct Meta {
    run: String,
    workers: usize,
    resampled: bool,
    blocks_total: usize,
    cells: usize,
}

#[derive(Debug, Default, Clone, Copy)]
struct WorkerTally {
    blocks: u64,
    trials: u64,
    steps: u64,
    busy_ns: u64,
}

impl SummarySink {
    /// A fresh collector.
    pub fn new() -> SummarySink {
        SummarySink::default()
    }

    /// The roll-up of everything seen so far (complete once
    /// `run_finished` has been emitted).
    pub fn summary(&self) -> TelemetrySummary {
        let totals = self.totals.snapshot();
        let meta = self.meta.lock().expect("summary mutex poisoned");
        let per_worker = self
            .per_worker
            .lock()
            .expect("summary mutex poisoned")
            .iter()
            .map(|(&worker, t)| WorkerSummary {
                worker,
                blocks: t.blocks,
                trials: t.trials,
                steps: t.steps,
                busy_ns: t.busy_ns,
            })
            .collect();
        TelemetrySummary {
            run: meta.run.clone(),
            workers: meta.workers,
            resampled: meta.resampled,
            blocks_total: meta.blocks_total,
            blocks_completed: totals.blocks,
            cells: meta.cells,
            total_trials: totals.trials,
            total_steps: totals.steps,
            gen_attempts: totals.gen_attempts,
            wall_ns: self.wall_ns.load(Ordering::Relaxed),
            generation_ns: totals.gen_ns,
            walking_ns: totals.walk_ns,
            aggregation_ns: self.agg_ns.load(Ordering::Relaxed),
            merge_ns: self.merge_ns.load(Ordering::Relaxed),
            checkpoint_ns: self.checkpoint_ns.load(Ordering::Relaxed),
            blocks_retried: self.blocks_retried.load(Ordering::Relaxed),
            per_worker,
        }
    }
}

impl TelemetrySink for SummarySink {
    fn emit(&self, event: &Event) {
        match &event.kind {
            EventKind::RunStarted {
                name,
                blocks,
                workers,
                resampled,
                ..
            } => {
                let mut meta = self.meta.lock().expect("summary mutex poisoned");
                meta.run = name.clone();
                meta.workers = *workers;
                meta.resampled = *resampled;
                meta.blocks_total = *blocks;
            }
            EventKind::GraphBuilt {
                gen_ns,
                gen_attempts,
                ..
            } => {
                // Up-front shared-mode builds: stage time without a
                // worker (they happen before the pool starts).
                self.totals.gen_ns.fetch_add(*gen_ns, Ordering::Relaxed);
                self.totals
                    .gen_attempts
                    .fetch_add(*gen_attempts, Ordering::Relaxed);
            }
            EventKind::BlockCompleted {
                worker,
                trials,
                steps,
                gen_ns,
                gen_attempts,
                walk_ns,
                ..
            } => {
                self.totals
                    .record_block(*trials, *steps, *gen_ns, *walk_ns, *gen_attempts);
                let mut map = self.per_worker.lock().expect("summary mutex poisoned");
                let t = map.entry(*worker).or_default();
                t.blocks += 1;
                t.trials += *trials;
                t.steps += *steps;
                t.busy_ns += *gen_ns + *walk_ns;
            }
            EventKind::AggregationMerged { cells, agg_ns, .. } => {
                self.agg_ns.store(*agg_ns, Ordering::Relaxed);
                self.meta.lock().expect("summary mutex poisoned").cells = *cells;
            }
            EventKind::MergeCompleted {
                cells, merge_ns, ..
            } => {
                self.merge_ns.store(*merge_ns, Ordering::Relaxed);
                self.meta.lock().expect("summary mutex poisoned").cells = *cells;
            }
            EventKind::RunFinished { wall_ns, .. } => {
                self.wall_ns.store(*wall_ns, Ordering::Relaxed);
            }
            EventKind::CheckpointWritten { checkpoint_ns, .. } => {
                // Cumulative: a run may checkpoint many times.
                self.checkpoint_ns
                    .fetch_add(*checkpoint_ns, Ordering::Relaxed);
            }
            EventKind::BlockRetried { .. } => {
                self.blocks_retried.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::BlockClaimed { .. } | EventKind::RunInterrupted { .. } => {}
        }
    }
}

/// One worker's share of the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Worker id (the executor's spawn index).
    pub worker: usize,
    /// Blocks this worker completed.
    pub blocks: u64,
    /// Trials this worker ran.
    pub trials: u64,
    /// Walk steps this worker simulated.
    pub steps: u64,
    /// Nanoseconds spent generating + walking (its measured busy time).
    pub busy_ns: u64,
}

/// The post-run roll-up serialised into the `.telemetry.json` sidecar.
///
/// Stage times are **cumulative across workers** (CPU time, not wall
/// slices), so `generation_ns + walking_ns` can legitimately exceed
/// `wall_ns` on a multi-threaded run; per-worker utilization is
/// `busy_ns / wall_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySummary {
    /// Experiment name.
    pub run: String,
    /// Worker threads the pool ran.
    pub workers: usize,
    /// Whether graphs were resampled per trial group.
    pub resampled: bool,
    /// Work units announced at run start.
    pub blocks_total: usize,
    /// Work units actually completed.
    pub blocks_completed: u64,
    /// Report cells produced by aggregation.
    pub cells: usize,
    /// Total trials executed.
    pub total_trials: u64,
    /// Total walk steps simulated.
    pub total_steps: u64,
    /// Generator attempts consumed across all graph builds.
    pub gen_attempts: u64,
    /// Total wall time.
    pub wall_ns: u64,
    /// Cumulative nanoseconds generating graphs (all workers).
    pub generation_ns: u64,
    /// Cumulative nanoseconds walking (all workers).
    pub walking_ns: u64,
    /// Nanoseconds merging blocks into cells (main thread).
    pub aggregation_ns: u64,
    /// Nanoseconds combining shard artifacts (`eproc merge`; 0 unless
    /// the run was a merge).
    pub merge_ns: u64,
    /// Cumulative nanoseconds serialising and writing run checkpoints
    /// (`--checkpoint`; 0 for uncheckpointed runs).
    pub checkpoint_ns: u64,
    /// Block attempts that failed and were deterministically re-run
    /// (`--retry-blocks`).
    pub blocks_retried: u64,
    /// Per-worker breakdown, sorted by worker id.
    pub per_worker: Vec<WorkerSummary>,
}

impl TelemetrySummary {
    /// Serialises the summary as strict JSON (stable key order; ratios
    /// that cannot be computed — e.g. a zero-length run — serialise as
    /// `null`, never `inf`/`NaN`).
    pub fn to_json(&self) -> String {
        let wall_secs = self.wall_ns as f64 / 1e9;
        let rate = |count: u64| -> String {
            if wall_secs > 0.0 {
                json_num(count as f64 / wall_secs)
            } else {
                "null".into()
            }
        };
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"run\": \"{}\",", json_escape(&self.run));
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"resampled\": {},", self.resampled);
        let _ = writeln!(out, "  \"blocks_total\": {},", self.blocks_total);
        let _ = writeln!(out, "  \"blocks_completed\": {},", self.blocks_completed);
        let _ = writeln!(out, "  \"cells\": {},", self.cells);
        let _ = writeln!(out, "  \"total_trials\": {},", self.total_trials);
        let _ = writeln!(out, "  \"total_steps\": {},", self.total_steps);
        let _ = writeln!(out, "  \"graph_gen_attempts\": {},", self.gen_attempts);
        let _ = writeln!(out, "  \"wall_ns\": {},", self.wall_ns);
        let _ = writeln!(
            out,
            "  \"stages\": {{\"generation_ns\": {}, \"walking_ns\": {}, \"aggregation_ns\": {}, \
             \"merge_ns\": {}, \"checkpoint_ns\": {}}},",
            self.generation_ns,
            self.walking_ns,
            self.aggregation_ns,
            self.merge_ns,
            self.checkpoint_ns
        );
        let _ = writeln!(out, "  \"blocks_retried\": {},", self.blocks_retried);
        let _ = writeln!(
            out,
            "  \"throughput\": {{\"trials_per_sec\": {}, \"steps_per_sec\": {}}},",
            rate(self.total_trials),
            rate(self.total_steps)
        );
        out.push_str("  \"per_worker\": [");
        for (i, w) in self.per_worker.iter().enumerate() {
            let utilization = if self.wall_ns > 0 {
                json_num(w.busy_ns as f64 / self.wall_ns as f64)
            } else {
                "null".into()
            };
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"worker\": {}, \"blocks\": {}, \"trials\": {}, \"steps\": {}, \
                 \"busy_ns\": {}, \"utilization\": {}}}",
                w.worker, w.blocks, w.trials, w.steps, w.busy_ns, utilization
            );
        }
        out.push_str(if self.per_worker.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        out
    }

    /// Writes the sidecar JSON to `path`, creating parent directories.
    /// The write is atomic (temp sibling + rename, [`crate::write_atomic`]):
    /// a crash mid-write never leaves a truncated sidecar.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        crate::write_atomic(path, &self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(sink: &SummarySink) {
        let events = [
            Event {
                t_ns: 0,
                kind: EventKind::RunStarted {
                    name: "demo".into(),
                    graphs: 1,
                    processes: 2,
                    trials: 3,
                    blocks: 2,
                    total_trials: 6,
                    workers: 2,
                    resampled: true,
                    shard: None,
                },
            },
            Event {
                t_ns: 10,
                kind: EventKind::BlockCompleted {
                    block: 0,
                    family: "f".into(),
                    group: 0,
                    process: None,
                    worker: 0,
                    trials: 3,
                    steps: 300,
                    gen_ns: 40,
                    gen_attempts: 2,
                    walk_ns: 60,
                },
            },
            Event {
                t_ns: 20,
                kind: EventKind::BlockCompleted {
                    block: 1,
                    family: "f".into(),
                    group: 1,
                    process: None,
                    worker: 1,
                    trials: 3,
                    steps: 500,
                    gen_ns: 10,
                    gen_attempts: 1,
                    walk_ns: 80,
                },
            },
            Event {
                t_ns: 30,
                kind: EventKind::AggregationMerged {
                    blocks: 2,
                    cells: 2,
                    agg_ns: 5,
                },
            },
            Event {
                t_ns: 40,
                kind: EventKind::RunFinished {
                    wall_ns: 200,
                    total_trials: 6,
                    total_steps: 800,
                },
            },
        ];
        for e in &events {
            sink.emit(e);
        }
    }

    #[test]
    fn summary_rolls_up_totals_stages_and_workers() {
        let sink = SummarySink::new();
        feed(&sink);
        let s = sink.summary();
        assert_eq!(s.run, "demo");
        assert_eq!(s.blocks_total, 2);
        assert_eq!(s.blocks_completed, 2);
        assert_eq!(s.total_trials, 6);
        assert_eq!(s.total_steps, 800);
        assert_eq!(s.gen_attempts, 3);
        assert_eq!(s.generation_ns, 50);
        assert_eq!(s.walking_ns, 140);
        assert_eq!(s.aggregation_ns, 5);
        assert_eq!(s.wall_ns, 200);
        assert_eq!(s.per_worker.len(), 2);
        assert_eq!(s.per_worker[0].worker, 0);
        assert_eq!(s.per_worker[0].busy_ns, 100);
        assert_eq!(s.per_worker[1].steps, 500);
    }

    #[test]
    fn sidecar_json_is_balanced_and_finite() {
        let sink = SummarySink::new();
        feed(&sink);
        let json = sink.summary().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
        assert!(json.contains("\"total_steps\": 800"), "{json}");
        assert!(json.contains("\"utilization\": 0.5"), "{json}");
    }

    #[test]
    fn empty_summary_serialises_nulls_not_nan() {
        let json = SummarySink::new().summary().to_json();
        assert!(json.contains("\"trials_per_sec\": null"), "{json}");
        assert!(json.contains("\"per_worker\": []"), "{json}");
        assert!(!json.contains("NaN"), "{json}");
    }
}
