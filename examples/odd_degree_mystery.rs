//! §5's open question: what goes wrong for odd degrees?
//!
//! On even-degree graphs every blue phase closes at its start vertex
//! (Observation 10) and the E-process covers in Θ(n). On 3-regular graphs
//! the first blue phase dies at the first revisit (a birthday-paradox
//! Θ(√n) event), the blue walk strands isolated blue stars, and the red
//! walk must coupon-collect them — `Θ(n log n)` with the paper's fitted
//! constant `≈ 0.93`. This example walks through each ingredient of that
//! story on one graph pair.
//!
//! Run with: `cargo run --release --example odd_degree_mystery`

use eproc::core::blue::track_isolated_stars;
use eproc::core::rule::UniformRule;
use eproc::core::segments::trace_phases;
use eproc::core::EProcess;
use eproc::graphs::generators;
use eproc::theory;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = 30_000;
    let mut rng = SmallRng::seed_from_u64(3);
    let g3 = generators::connected_random_regular(n, 3, &mut rng).unwrap();
    let g4 = generators::connected_random_regular(n, 4, &mut rng).unwrap();
    println!("Random 3-regular vs 4-regular, n = {n}\n");

    for (r, g) in [(3usize, &g3), (4usize, &g4)] {
        let mut walk_rng = SmallRng::seed_from_u64(100 + r as u64);
        let mut walk = EProcess::new(g, 0, UniformRule::new());
        let trace = trace_phases(&mut walk, u64::MAX >> 1, &mut walk_rng);
        println!("r = {r}:");
        println!(
            "  first blue phase : {} steps  ({:.1} x sqrt(n); {:.2} x m)",
            trace.first_blue_length(),
            trace.first_blue_length() as f64 / (n as f64).sqrt(),
            trace.first_blue_length() as f64 / g.m() as f64
        );
        println!("  blue phases      : {}", trace.blue_phase_count());

        let mut star_rng = SmallRng::seed_from_u64(200 + r as u64);
        let mut walk = EProcess::new(g, 0, UniformRule::new());
        let census = track_isolated_stars(&mut walk, u64::MAX >> 1, &mut star_rng);
        let cv = census.steps_to_vertex_cover.expect("connected");
        println!(
            "  stranded stars   : {} ({:.4} n; paper's heuristic for r=3: {:.3} n)",
            census.ever_star_centers.len(),
            census.ever_star_centers.len() as f64 / n as f64,
            theory::star_fraction_heuristic_r3()
        );
        println!(
            "  vertex cover     : {} steps  (CV/n = {:.2}, CV/(n ln n) = {:.2})",
            cv,
            cv as f64 / n as f64,
            cv as f64 / (n as f64 * (n as f64).ln())
        );
        println!();
    }
    println!("Even degree: one long closed blue sweep, no stranded stars, linear cover.");
    println!("Odd degree: short-lived blue phases + stranded stars -> coupon collecting,");
    println!("matching Figure 1's c*n*ln(n) growth (c ~ 0.93 for r = 3).");
}
