//! Eulerian circuits and cycle decompositions of even-degree (sub)graphs.
//!
//! Observation 11 of the paper: while a vertex is unvisited, the blue
//! (unvisited) edges form even-degree edge-induced subgraphs; "in the
//! simplest case S*_v consists of d(v)/2 blue cycles with common root v".
//! Even-degree subgraphs decompose into edge-disjoint cycles; this module
//! provides that decomposition, plus full Eulerian circuits (the
//! rotor-router analysis in the related work rests on the same structure).

use crate::csr::{ArcId, EdgeId, Graph, Vertex};

/// An Eulerian circuit as the sequence of arcs traversed (start vertex is
/// the source of the first arc). `None` if the graph has a vertex of odd
/// degree, or its edges span more than one component. A graph with no edges
/// yields `Some(vec![])`.
///
/// Uses Hierholzer's algorithm: `O(n + m)`.
pub fn eulerian_circuit(g: &Graph) -> Option<Vec<ArcId>> {
    if g.m() == 0 {
        return Some(Vec::new());
    }
    if g.vertices().any(|v| !g.degree(v).is_multiple_of(2)) {
        return None;
    }
    let start = g.vertices().find(|&v| g.degree(v) > 0)?;
    let mut edge_used = vec![false; g.m()];
    // Per-vertex cursor into its port range so each arc is scanned once.
    let mut cursor: Vec<ArcId> = g.vertices().map(|v| g.arc_range(v).start).collect();
    let mut stack: Vec<(Vertex, Option<ArcId>)> = vec![(start, None)];
    let mut circuit: Vec<ArcId> = Vec::with_capacity(g.m());
    while let Some(&(v, via)) = stack.last() {
        let end = g.arc_range(v).end;
        let mut advanced = false;
        while cursor[v] < end {
            let a = cursor[v];
            cursor[v] += 1;
            let e = g.arc_edge(a);
            if !edge_used[e] {
                edge_used[e] = true;
                stack.push((g.arc_target(a), Some(a)));
                advanced = true;
                break;
            }
        }
        if !advanced {
            stack.pop();
            if let Some(a) = via {
                circuit.push(a);
            }
        }
    }
    if circuit.len() != g.m() {
        return None; // edges span multiple components
    }
    circuit.reverse();
    Some(circuit)
}

/// Decomposes the even-degree subgraph selected by `alive` (an edge mask,
/// `alive.len() == g.m()`) into edge-disjoint simple cycles, each returned
/// as its list of edge ids in traversal order.
///
/// Returns `None` if some vertex has odd degree within the mask — the
/// certificate that the mask is *not* a legal blue subgraph in the sense of
/// Observation 11.
///
/// # Panics
///
/// Panics if `alive.len() != g.m()`.
pub fn cycle_decomposition(g: &Graph, alive: &[bool]) -> Option<Vec<Vec<EdgeId>>> {
    assert_eq!(alive.len(), g.m(), "edge mask length mismatch");
    // Masked degrees must all be even.
    let mut deg = vec![0usize; g.n()];
    for (e, u, v) in g.edges() {
        if alive[e] {
            deg[u] += 1;
            deg[v] += 1;
        }
    }
    if deg.iter().any(|&d| d % 2 != 0) {
        return None;
    }
    let mut used = vec![false; g.m()];
    let mut cursor: Vec<ArcId> = g.vertices().map(|v| g.arc_range(v).start).collect();
    let mut cycles: Vec<Vec<EdgeId>> = Vec::new();
    // `on_path[v]` = position of v in the current walk, or usize::MAX.
    let mut on_path = vec![usize::MAX; g.n()];

    for root in g.vertices() {
        loop {
            // Find an unused alive arc at root.
            advance_cursor(g, root, &mut cursor, &used, alive);
            if cursor[root] >= g.arc_range(root).end {
                break;
            }
            // Walk greedily until a vertex repeats; peel cycles as found.
            let mut path_vertices: Vec<Vertex> = vec![root];
            let mut path_edges: Vec<EdgeId> = Vec::new();
            on_path[root] = 0;
            let mut cur = root;
            loop {
                advance_cursor(g, cur, &mut cursor, &used, alive);
                let a = cursor[cur];
                debug_assert!(
                    a < g.arc_range(cur).end,
                    "even masked degree guarantees an exit edge"
                );
                let e = g.arc_edge(a);
                used[e] = true;
                let next = g.arc_target(a);
                path_edges.push(e);
                if on_path[next] != usize::MAX {
                    // Closed a cycle: pop it off the walk.
                    let pos = on_path[next];
                    let cycle_edges: Vec<EdgeId> = path_edges.drain(pos..).collect();
                    for v in path_vertices.drain(pos + 1..) {
                        on_path[v] = usize::MAX;
                    }
                    cycles.push(cycle_edges);
                    cur = next;
                    if cur == root && path_edges.is_empty() {
                        on_path[root] = usize::MAX;
                        break;
                    }
                } else {
                    on_path[next] = path_vertices.len();
                    path_vertices.push(next);
                    cur = next;
                }
            }
        }
    }
    Some(cycles)
}

fn advance_cursor(g: &Graph, v: Vertex, cursor: &mut [ArcId], used: &[bool], alive: &[bool]) {
    let end = g.arc_range(v).end;
    while cursor[v] < end {
        let e = g.arc_edge(cursor[v]);
        if alive[e] && !used[e] {
            return;
        }
        cursor[v] += 1;
    }
}

/// Convenience: decomposes the *entire* graph into edge-disjoint cycles
/// (`None` if any vertex has odd degree).
pub fn cycle_decomposition_full(g: &Graph) -> Option<Vec<Vec<EdgeId>>> {
    cycle_decomposition(g, &vec![true; g.m()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Graph;

    fn verify_circuit(g: &Graph, circuit: &[ArcId]) {
        assert_eq!(circuit.len(), g.m());
        let mut seen = vec![false; g.m()];
        for w in circuit.windows(2) {
            assert_eq!(
                g.arc_target(w[0]),
                arc_source(g, w[1]),
                "circuit must be contiguous"
            );
        }
        if let (Some(&first), Some(&last)) = (circuit.first(), circuit.last()) {
            assert_eq!(
                g.arc_target(last),
                arc_source(g, first),
                "circuit must close"
            );
        }
        for &a in circuit {
            let e = g.arc_edge(a);
            assert!(!seen[e], "edge {e} repeated");
            seen[e] = true;
        }
    }

    fn arc_source(g: &Graph, a: ArcId) -> Vertex {
        let e = g.arc_edge(a);
        g.other_endpoint(e, g.arc_target(a))
    }

    #[test]
    fn cycle_has_eulerian_circuit() {
        let g = generators::cycle(7);
        verify_circuit(&g, &eulerian_circuit(&g).unwrap());
    }

    #[test]
    fn figure_eight_has_eulerian_circuit() {
        let g = generators::figure_eight(5);
        verify_circuit(&g, &eulerian_circuit(&g).unwrap());
    }

    #[test]
    fn even_torus_has_eulerian_circuit() {
        let g = generators::torus2d(4, 3);
        verify_circuit(&g, &eulerian_circuit(&g).unwrap());
    }

    #[test]
    fn odd_degree_has_none() {
        assert!(eulerian_circuit(&generators::petersen()).is_none());
        assert!(eulerian_circuit(&generators::path(4)).is_none());
    }

    #[test]
    fn disconnected_even_graph_has_none() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        assert!(eulerian_circuit(&g).is_none());
    }

    #[test]
    fn empty_graph_trivial_circuit() {
        let g = Graph::from_edges(3, &[]).unwrap();
        assert_eq!(eulerian_circuit(&g), Some(vec![]));
    }

    fn verify_decomposition(g: &Graph, alive: &[bool], cycles: &[Vec<EdgeId>]) {
        let mut used = vec![false; g.m()];
        let mut covered = 0usize;
        for cycle in cycles {
            assert!(
                cycle.len() >= 2,
                "cycles have length >= 2 (parallel pair) in multigraphs"
            );
            // Each cycle is a closed walk with distinct edges and distinct
            // vertices: every vertex it touches has exactly 2 cycle-edges.
            let mut deg = std::collections::HashMap::new();
            for &e in cycle {
                assert!(alive[e]);
                assert!(!used[e], "edge {e} reused across cycles");
                used[e] = true;
                covered += 1;
                let (u, v) = g.endpoints(e);
                *deg.entry(u).or_insert(0) += 1;
                *deg.entry(v).or_insert(0) += 1;
            }
            assert!(
                deg.values().all(|&d| d == 2),
                "not a simple cycle: {cycle:?}"
            );
        }
        let alive_count = alive.iter().filter(|&&a| a).count();
        assert_eq!(
            covered, alive_count,
            "decomposition must cover all alive edges"
        );
    }

    #[test]
    fn decompose_figure_eight_into_two_cycles() {
        let g = generators::figure_eight(4);
        let cycles = cycle_decomposition_full(&g).unwrap();
        assert_eq!(cycles.len(), 2);
        verify_decomposition(&g, &vec![true; g.m()], &cycles);
    }

    #[test]
    fn decompose_even_families() {
        for g in [
            generators::torus2d(3, 3),
            generators::hypercube(4),
            generators::complete(5),
        ] {
            let cycles = cycle_decomposition_full(&g).unwrap();
            verify_decomposition(&g, &vec![true; g.m()], &cycles);
        }
    }

    #[test]
    fn decompose_respects_mask() {
        let g = generators::figure_eight(3);
        // Keep only the first triangle (edges 0, 1, 2 by construction).
        let mut alive = vec![false; g.m()];
        alive[..3].fill(true);
        let cycles = cycle_decomposition(&g, &alive).unwrap();
        assert_eq!(cycles.len(), 1);
        verify_decomposition(&g, &alive, &cycles);
    }

    #[test]
    fn odd_mask_rejected() {
        let g = generators::cycle(5);
        let mut alive = vec![true; g.m()];
        alive[0] = false; // breaks parity at two vertices
        assert!(cycle_decomposition(&g, &alive).is_none());
    }

    #[test]
    fn decompose_parallel_pair() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        let cycles = cycle_decomposition_full(&g).unwrap();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
    }

    #[test]
    fn empty_mask_gives_empty_decomposition() {
        let g = generators::cycle(4);
        let cycles = cycle_decomposition(&g, &vec![false; g.m()]).unwrap();
        assert!(cycles.is_empty());
    }
}
