//! Least-squares fits for cover-time growth models.
//!
//! Figure 1 of the paper overlays `c · n ln n` curves on the odd-degree
//! E-process series ("The constant c used to draw the curve was determined
//! by inspection"); we determine it by least squares instead, plus a plain
//! proportional fit `y = c·x` for the flat even-degree series.
//!
//! Every fit comes in two shapes: a fallible `try_fit_*` returning
//! [`Result<Fit, FitError>`] — the form the scaling subsystem uses, so a
//! degenerate sweep (identical sizes, an empty series, `n < 2` under the
//! `n ln n` model) surfaces as a CLI error instead of a worker panic —
//! and a thin panicking `fit_*` wrapper for call sites that have already
//! validated their input.

use std::fmt;

/// Why a least-squares fit could not be computed from the given data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// `x` and `y` have different lengths.
    LengthMismatch {
        /// Number of `x` values.
        x: usize,
        /// Number of `y` values.
        y: usize,
    },
    /// Fewer points than the model can be identified from.
    TooFewPoints {
        /// Minimum points the model needs.
        needed: usize,
        /// Points actually supplied.
        got: usize,
    },
    /// The predictor carries no information: all `x` values are identical
    /// (ordinary least squares) or identically zero (through-origin fit).
    DegenerateX,
    /// The `c·n ln n` model is undefined for `n < 2` (`ln 1 = 0`,
    /// `ln 0` diverges).
    SmallN {
        /// The offending size.
        n: usize,
    },
    /// A non-finite (`NaN`/`±∞`) value appeared in the input.
    NonFinite,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FitError::LengthMismatch { x, y } => {
                write!(f, "x/y length mismatch ({x} x values, {y} y values)")
            }
            FitError::TooFewPoints { needed, got } => {
                write!(f, "need at least {needed} point(s), got {got}")
            }
            FitError::DegenerateX => {
                write!(f, "all x values are identical or zero: slope is undefined")
            }
            FitError::SmallN { n } => write!(f, "n ln n model needs n >= 2, got n = {n}"),
            FitError::NonFinite => write!(f, "non-finite value in fit input"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted model with its coefficient of determination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Intercept (`0` for through-origin models).
    pub intercept: f64,
    /// Slope / proportionality constant.
    pub slope: f64,
    /// Coefficient of determination `R²` relative to the mean model.
    pub r_squared: f64,
}

fn r_squared(y: &[f64], predicted: impl Fn(usize) -> f64) -> f64 {
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let ss_tot: f64 = y.iter().map(|v| (v - mean) * (v - mean)).sum();
    let ss_res: f64 = y
        .iter()
        .enumerate()
        .map(|(i, v)| (v - predicted(i)).powi(2))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

fn check_finite(x: &[f64], y: &[f64]) -> Result<(), FitError> {
    if x.iter().chain(y).all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(FitError::NonFinite)
    }
}

/// Ordinary least squares `y = a + b x`.
///
/// # Errors
///
/// [`FitError`] on mismatched lengths, fewer than 2 points, non-finite
/// input, or all `x` identical.
pub fn try_fit_linear(x: &[f64], y: &[f64]) -> Result<Fit, FitError> {
    if x.len() != y.len() {
        return Err(FitError::LengthMismatch {
            x: x.len(),
            y: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(FitError::TooFewPoints {
            needed: 2,
            got: x.len(),
        });
    }
    check_finite(x, y)?;
    let n = x.len() as f64;
    let sx: f64 = x.iter().sum();
    let sy: f64 = y.iter().sum();
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() <= 1e-300 {
        return Err(FitError::DegenerateX);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let rsq = r_squared(y, |i| intercept + slope * x[i]);
    Ok(Fit {
        intercept,
        slope,
        r_squared: rsq,
    })
}

/// Through-origin fit `y = c x` (used for the flat `C_V/n` series: fit
/// cover time proportional to `n`).
///
/// # Errors
///
/// [`FitError`] on mismatched lengths, empty input, non-finite values, or
/// all-zero `x`.
pub fn try_fit_proportional(x: &[f64], y: &[f64]) -> Result<Fit, FitError> {
    if x.len() != y.len() {
        return Err(FitError::LengthMismatch {
            x: x.len(),
            y: y.len(),
        });
    }
    if x.is_empty() {
        return Err(FitError::TooFewPoints { needed: 1, got: 0 });
    }
    check_finite(x, y)?;
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    if sxx <= 0.0 {
        return Err(FitError::DegenerateX);
    }
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    let c = sxy / sxx;
    let rsq = r_squared(y, |i| c * x[i]);
    Ok(Fit {
        intercept: 0.0,
        slope: c,
        r_squared: rsq,
    })
}

/// Fits `y = c · n ln n` to `(n, y)` pairs — the model the paper draws over
/// Figure 1's odd-degree series.
///
/// # Errors
///
/// [`FitError`] on mismatched lengths, empty input, non-finite `y`, or any
/// `n < 2`.
pub fn try_fit_c_nlogn(ns: &[usize], y: &[f64]) -> Result<Fit, FitError> {
    if ns.len() != y.len() {
        return Err(FitError::LengthMismatch {
            x: ns.len(),
            y: y.len(),
        });
    }
    if ns.is_empty() {
        return Err(FitError::TooFewPoints { needed: 1, got: 0 });
    }
    if let Some(&n) = ns.iter().find(|&&n| n < 2) {
        return Err(FitError::SmallN { n });
    }
    let x: Vec<f64> = ns.iter().map(|&n| n as f64 * (n as f64).ln()).collect();
    try_fit_proportional(&x, y)
}

/// Ordinary least squares `y = a + b x`.
///
/// # Panics
///
/// Panics where [`try_fit_linear`] would error (fewer than 2 points,
/// mismatched lengths, all `x` identical, non-finite input).
pub fn fit_linear(x: &[f64], y: &[f64]) -> Fit {
    try_fit_linear(x, y).unwrap_or_else(|e| panic!("fit_linear: {e}"))
}

/// Through-origin fit `y = c x`.
///
/// # Panics
///
/// Panics where [`try_fit_proportional`] would error (mismatched lengths,
/// empty input, all-zero `x`, non-finite input).
pub fn fit_proportional(x: &[f64], y: &[f64]) -> Fit {
    try_fit_proportional(x, y).unwrap_or_else(|e| panic!("fit_proportional: {e}"))
}

/// Fits `y = c · n ln n` to `(n, y)` pairs.
///
/// # Panics
///
/// Panics where [`try_fit_c_nlogn`] would error (mismatched lengths,
/// empty input, any `n < 2`, non-finite `y`).
pub fn fit_c_nlogn(ns: &[usize], y: &[f64]) -> Fit {
    try_fit_c_nlogn(ns, y).unwrap_or_else(|e| panic!("fit_c_nlogn: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear_fit() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let fit = fit_linear(&x, &y);
        assert!((fit.intercept - 1.0).abs() < 1e-10);
        assert!((fit.slope - 2.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-10);
    }

    #[test]
    fn noisy_linear_fit_r2_below_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.1, 3.9, 6.2, 7.8, 10.1];
        let fit = fit_linear(&x, &y);
        assert!(fit.r_squared > 0.99);
        assert!(fit.r_squared < 1.0);
        assert!((fit.slope - 2.0).abs() < 0.1);
    }

    #[test]
    fn proportional_fit_recovers_constant() {
        let x = [10.0, 20.0, 40.0];
        let y: Vec<f64> = x.iter().map(|v| 3.5 * v).collect();
        let fit = fit_proportional(&x, &y);
        assert!((fit.slope - 3.5).abs() < 1e-10);
        assert_eq!(fit.intercept, 0.0);
    }

    #[test]
    fn nlogn_fit_recovers_constant() {
        let ns = [1000usize, 2000, 4000, 8000, 16000];
        let y: Vec<f64> = ns
            .iter()
            .map(|&n| 0.93 * n as f64 * (n as f64).ln())
            .collect();
        let fit = fit_c_nlogn(&ns, &y);
        assert!((fit.slope - 0.93).abs() < 1e-9, "c = {}", fit.slope);
        assert!(fit.r_squared > 1.0 - 1e-9);
    }

    #[test]
    fn nlogn_fit_rejects_linear_data() {
        // y = 5n is poorly explained by c·n ln n over a wide range: the
        // best c underfits small n and overfits large n.
        let ns = [100usize, 1000, 10_000, 100_000];
        let y: Vec<f64> = ns.iter().map(|&n| 5.0 * n as f64).collect();
        let fit = fit_c_nlogn(&ns, &y);
        let linear_fit = {
            let x: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
            fit_proportional(&x, &y)
        };
        assert!(
            linear_fit.r_squared > fit.r_squared,
            "linear model must win on linear data"
        );
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_rejected() {
        let _ = fit_linear(&[2.0, 2.0], &[1.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = fit_proportional(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn try_fits_return_typed_errors() {
        assert_eq!(
            try_fit_linear(&[2.0, 2.0], &[1.0, 5.0]),
            Err(FitError::DegenerateX)
        );
        assert_eq!(
            try_fit_linear(&[1.0], &[1.0]),
            Err(FitError::TooFewPoints { needed: 2, got: 1 })
        );
        assert_eq!(
            try_fit_proportional(&[1.0], &[1.0, 2.0]),
            Err(FitError::LengthMismatch { x: 1, y: 2 })
        );
        assert_eq!(
            try_fit_proportional(&[], &[]),
            Err(FitError::TooFewPoints { needed: 1, got: 0 })
        );
        assert_eq!(
            try_fit_proportional(&[0.0, 0.0], &[1.0, 2.0]),
            Err(FitError::DegenerateX)
        );
        assert_eq!(
            try_fit_c_nlogn(&[1, 100], &[1.0, 2.0]),
            Err(FitError::SmallN { n: 1 })
        );
        assert_eq!(
            try_fit_c_nlogn(&[], &[]),
            Err(FitError::TooFewPoints { needed: 1, got: 0 })
        );
        assert_eq!(
            try_fit_linear(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(FitError::NonFinite)
        );
        assert_eq!(
            try_fit_proportional(&[1.0, 2.0], &[f64::INFINITY, 2.0]),
            Err(FitError::NonFinite)
        );
    }

    #[test]
    fn try_fit_matches_panicking_wrapper_on_valid_input() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.1, 4.9, 7.2, 8.8];
        assert_eq!(try_fit_linear(&x, &y).unwrap(), fit_linear(&x, &y));
        assert_eq!(
            try_fit_proportional(&x, &y).unwrap(),
            fit_proportional(&x, &y)
        );
        let ns = [10usize, 20, 40];
        let yy = [5.0, 11.0, 25.0];
        assert_eq!(try_fit_c_nlogn(&ns, &yy).unwrap(), fit_c_nlogn(&ns, &yy));
    }

    #[test]
    fn fit_error_messages_name_the_problem() {
        assert!(FitError::DegenerateX.to_string().contains("identical"));
        assert!(FitError::LengthMismatch { x: 1, y: 2 }
            .to_string()
            .contains("length mismatch"));
        assert!(FitError::SmallN { n: 1 }.to_string().contains("n >= 2"));
        assert!(FitError::NonFinite.to_string().contains("non-finite"));
    }
}
