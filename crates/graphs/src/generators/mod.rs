//! Graph generators.
//!
//! Deterministic families live in this module; randomized generators are in
//! the submodules [`regular`] (configuration model, Steger–Wormald),
//! [`lps`] (Lubotzky–Phillips–Sarnak Ramanujan graphs, reference \[11\] of the
//! paper), [`geometric`] (random geometric graphs as used by
//! Avin–Krishnamachari) and [`random`] (Erdős–Rényi).
//!
//! All randomized generators take an explicit `&mut impl Rng` so experiments
//! are reproducible from a seed.

pub mod geometric;
pub mod incidence;
pub mod lps;
pub mod random;
pub mod regular;

/// Maximum restarts before a randomized generator reports
/// [`GraphError::RetriesExhausted`](crate::error::GraphError::RetriesExhausted).
/// Shared by every rejection-sampling generator so "give up" means the
/// same thing across the crate.
pub const MAX_RESTARTS: usize = 1000;

pub use geometric::{
    connected_random_geometric, connected_random_geometric_counted, random_geometric,
};
pub use incidence::projective_plane_incidence;
pub use lps::{lps_ramanujan, LpsParams};
pub use random::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use regular::{
    connected_random_regular, connected_random_regular_counted, pairing_model_multigraph,
    random_regular_pairing, random_with_degree_sequence, steger_wormald, steger_wormald_counted,
};

use crate::csr::{Graph, Vertex};

/// The cycle `C_n` (`n >= 3`): the simplest 2-regular even-degree graph.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires n >= 3, got {n}");
    let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges).expect("cycle edges are valid")
}

/// The path `P_n` on `n` vertices (`n - 1` edges).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1, "path requires n >= 1");
    let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
    Graph::from_edges(n, &edges).expect("path edges are valid")
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("complete graph edges are valid")
}

/// The star `K_{1,n-1}` with center `0`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "star requires n >= 1");
    let edges: Vec<_> = (1..n).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges).expect("star edges are valid")
}

/// The complete bipartite graph `K_{a,b}` (side A is `0..a`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in 0..b {
            edges.push((u, a + v));
        }
    }
    Graph::from_edges(a + b, &edges).expect("complete bipartite edges are valid")
}

/// The `r`-dimensional hypercube `H_r` on `2^r` vertices.
///
/// `H_r` is `r`-regular with `m = r 2^{r-1}`; the paper uses it as the
/// example where the edge-cover sandwich (3) is tight while the
/// Orenshtein–Shinkar bound (2) is not (§1, *Edge cover time*).
///
/// # Panics
///
/// Panics if `r >= usize::BITS as usize` (overflow) — practical sizes are
/// far below that.
pub fn hypercube(r: usize) -> Graph {
    assert!(r < usize::BITS as usize, "hypercube dimension too large");
    let n = 1usize << r;
    let mut edges = Vec::with_capacity(r * n / 2);
    for v in 0..n {
        for bit in 0..r {
            let w = v ^ (1 << bit);
            if v < w {
                edges.push((v, w));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("hypercube edges are valid")
}

/// The 2-dimensional toroidal grid (`w x h` torus), 4-regular when
/// `w, h >= 3`. Used by Avin–Krishnamachari's RWC experiments.
///
/// Parallel edges appear when `w == 2` or `h == 2` (wrap coincides with the
/// grid edge); callers wanting a simple graph should use `w, h >= 3`.
///
/// # Panics
///
/// Panics if `w < 2` or `h < 2`.
pub fn torus2d(w: usize, h: usize) -> Graph {
    assert!(w >= 2 && h >= 2, "torus2d requires w, h >= 2");
    let idx = |x: usize, y: usize| -> Vertex { y * w + x };
    let mut edges = Vec::with_capacity(2 * w * h);
    for y in 0..h {
        for x in 0..w {
            edges.push((idx(x, y), idx((x + 1) % w, y)));
            edges.push((idx(x, y), idx(x, (y + 1) % h)));
        }
    }
    Graph::from_edges(w * h, &edges).expect("torus edges are valid")
}

/// The open `w x h` grid (no wraparound).
///
/// # Panics
///
/// Panics if `w == 0` or `h == 0`.
pub fn grid2d(w: usize, h: usize) -> Graph {
    assert!(w >= 1 && h >= 1, "grid2d requires w, h >= 1");
    let idx = |x: usize, y: usize| -> Vertex { y * w + x };
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    Graph::from_edges(w * h, &edges).expect("grid edges are valid")
}

/// The circulant graph `C_n(S)`: vertex `i` is adjacent to `i ± s (mod n)`
/// for each `s` in `offsets`. Even-degree (degree `2|S|`) when no offset
/// equals `n/2`.
///
/// # Panics
///
/// Panics if an offset is `0` or `>= n`, or duplicates modulo negation.
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    let mut seen = std::collections::HashSet::new();
    for &s in offsets {
        assert!(
            s != 0 && s < n,
            "offset {s} out of range for circulant on {n} vertices"
        );
        let canon = s.min(n - s);
        assert!(
            seen.insert(canon),
            "offsets {s} and {} coincide modulo negation",
            n - s
        );
    }
    let mut edges = Vec::new();
    for i in 0..n {
        for &s in offsets {
            let j = (i + s) % n;
            // Emit each edge once. For s == n/2, i and j pair up two ways.
            if 2 * s == n {
                if i < j {
                    edges.push((i, j));
                }
            } else {
                edges.push((i, j));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("circulant edges are valid")
}

/// The lollipop graph: a clique on `clique` vertices with a path of
/// `path_len` extra vertices attached to vertex `0`.
///
/// A classical worst case for random-walk hitting times.
///
/// # Panics
///
/// Panics if `clique < 1`.
pub fn lollipop(clique: usize, path_len: usize) -> Graph {
    assert!(clique >= 1, "lollipop requires a nonempty clique");
    let mut edges = Vec::new();
    for u in 0..clique {
        for v in (u + 1)..clique {
            edges.push((u, v));
        }
    }
    for i in 0..path_len {
        let a = if i == 0 { 0 } else { clique + i - 1 };
        edges.push((a, clique + i));
    }
    Graph::from_edges(clique + path_len, &edges).expect("lollipop edges are valid")
}

/// The barbell graph: two cliques of size `k` joined by a path of
/// `path_len` intermediate vertices.
///
/// # Panics
///
/// Panics if `k < 1`.
pub fn barbell(k: usize, path_len: usize) -> Graph {
    assert!(k >= 1, "barbell requires nonempty cliques");
    let n = 2 * k + path_len;
    let mut edges = Vec::new();
    for u in 0..k {
        for v in (u + 1)..k {
            edges.push((u, v));
            edges.push((k + path_len + u, k + path_len + v));
        }
    }
    // Chain: clique A vertex 0 -> path -> clique B vertex 0.
    let mut prev = 0;
    for i in 0..path_len {
        edges.push((prev, k + i));
        prev = k + i;
    }
    edges.push((prev, k + path_len));
    Graph::from_edges(n, &edges).expect("barbell edges are valid")
}

/// The complete binary tree of the given `depth` (`2^{depth+1} - 1`
/// vertices); root is vertex `0`.
pub fn binary_tree(depth: usize) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        edges.push(((v - 1) / 2, v));
    }
    Graph::from_edges(n, &edges).expect("tree edges are valid")
}

/// The Petersen graph (3-regular, girth 5, 10 vertices) — a small
/// odd-degree benchmark graph.
pub fn petersen() -> Graph {
    let mut edges = Vec::with_capacity(15);
    for i in 0..5 {
        edges.push((i, (i + 1) % 5)); // outer pentagon
        edges.push((5 + i, 5 + (i + 2) % 5)); // inner pentagram
        edges.push((i, 5 + i)); // spokes
    }
    Graph::from_edges(10, &edges).expect("petersen edges are valid")
}

/// Two vertex-disjoint cycles of length `len` sharing exactly one vertex
/// (vertex `0`): the minimal 4-regular-at-a-vertex even subgraph shape
/// `S*_v` described in Observation 11 ("d(v)/2 blue cycles with common root
/// vertex v").
///
/// # Panics
///
/// Panics if `len < 3`.
pub fn figure_eight(len: usize) -> Graph {
    assert!(len >= 3, "figure_eight requires cycle length >= 3");
    let n = 2 * len - 1;
    let mut edges = Vec::new();
    // First cycle on 0..len.
    for i in 0..len {
        edges.push((i, (i + 1) % len));
    }
    // Second cycle on 0, len..2len-1.
    let second: Vec<Vertex> = std::iter::once(0).chain(len..n).collect();
    for i in 0..second.len() {
        edges.push((second[i], second[(i + 1) % second.len()]));
    }
    Graph::from_edges(n, &edges).expect("figure eight edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{connectivity, degrees};

    #[test]
    fn cycle_is_2_regular() {
        let g = cycle(7);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 7);
        assert!(degrees::is_regular(&g, 2));
        assert!(connectivity::is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn cycle_too_small_panics() {
        let _ = cycle(2);
    }

    #[test]
    fn path_counts() {
        let g = path(6);
        assert_eq!(g.m(), 5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(3), 2);
    }

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert!(degrees::is_regular(&g, 5));
    }

    #[test]
    fn complete_k1_and_k2() {
        assert_eq!(complete(1).m(), 0);
        assert_eq!(complete(2).m(), 1);
    }

    #[test]
    fn star_counts() {
        let g = star(5);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 6);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert!(degrees::is_regular(&g, 4));
        assert!(connectivity::is_connected(&g));
        assert!(!g.has_parallel_edges());
    }

    #[test]
    fn hypercube_h0_is_single_vertex() {
        let g = hypercube(0);
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus2d(5, 4);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 40);
        assert!(degrees::is_regular(&g, 4));
        assert!(degrees::is_even_degree(&g));
        assert!(connectivity::is_connected(&g));
        assert!(!g.has_parallel_edges());
    }

    #[test]
    fn torus_2xk_has_parallel_edges() {
        let g = torus2d(2, 4);
        assert!(g.has_parallel_edges());
        assert!(degrees::is_regular(&g, 4));
    }

    #[test]
    fn grid_corner_degree() {
        let g = grid2d(3, 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(4), 4);
        assert_eq!(g.m(), 12);
    }

    #[test]
    fn circulant_even_degree() {
        let g = circulant(10, &[1, 2]);
        assert!(degrees::is_regular(&g, 4));
        assert!(connectivity::is_connected(&g));
    }

    #[test]
    fn circulant_with_antipodal_offset() {
        let g = circulant(6, &[1, 3]);
        // Offset 3 on 6 vertices contributes degree 1, offsets 1 degree 2.
        assert!(degrees::is_regular(&g, 3));
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn circulant_duplicate_offsets_panic() {
        let _ = circulant(10, &[3, 7]);
    }

    #[test]
    fn lollipop_structure() {
        let g = lollipop(4, 3);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 6 + 3);
        assert_eq!(g.degree(6), 1);
        assert!(connectivity::is_connected(&g));
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(3, 2);
        assert_eq!(g.n(), 8);
        assert!(connectivity::is_connected(&g));
        // Path interior vertices have degree 2.
        assert_eq!(g.degree(3), 2);
        assert_eq!(g.degree(4), 2);
    }

    #[test]
    fn barbell_no_path() {
        let g = barbell(3, 0);
        assert!(connectivity::is_connected(&g));
        assert_eq!(g.n(), 6);
    }

    #[test]
    fn binary_tree_structure() {
        let g = binary_tree(3);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(14), 1);
    }

    #[test]
    fn petersen_structure() {
        let g = petersen();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 15);
        assert!(degrees::is_regular(&g, 3));
        assert!(connectivity::is_connected(&g));
        assert!(!g.has_parallel_edges());
    }

    #[test]
    fn figure_eight_structure() {
        let g = figure_eight(4);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 8);
        assert_eq!(g.degree(0), 4);
        assert!(degrees::is_even_degree(&g));
        assert!(connectivity::is_connected(&g));
    }
}
