//! End-to-end tests of the `eproc` binary: exit-code contract, per-
//! subcommand flag rejection, the artifact cache round trip, and the
//! cache/list subcommands. Everything runs the real binary via
//! `CARGO_BIN_EXE_eproc`, so these pin exactly what scripts and CI see.

use std::path::PathBuf;
use std::process::{Command, Output};

fn eproc(args: &[&str]) -> Output {
    eproc_env(args, &[])
}

/// Runs the binary with `args` and extra environment `envs`, with
/// `EPROC_CACHE`/`EPROC_FAULTS` scrubbed so an outer environment never
/// bleeds into the tests.
fn eproc_env(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_eproc"));
    cmd.args(args)
        .env_remove("EPROC_CACHE")
        .env_remove("EPROC_FAULTS");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eproc_cli_bin_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn usage_errors_exit_2_and_help_exits_0() {
    // The full exit-code contract: 0 for help, 2 for every usage shape.
    assert_eq!(eproc(&["--help"]).status.code(), Some(0));
    assert_eq!(eproc(&["run", "--help"]).status.code(), Some(0));
    for args in [
        &[][..],                                   // missing command
        &["frobnicate"][..],                       // unknown command
        &["run"][..],                              // missing spec
        &["run", "nosuch"][..],                    // unknown spec
        &["run", "a", "b"][..],                    // too many positionals
        &["run", "comparison", "--seed"][..],      // missing value
        &["run", "comparison", "--seed", "x"][..], // bad value
        &["run", "comparison", "--bogus"][..],     // unknown flag
        &["compare", "--process", "srw"][..],      // no graphs
        &["scale"][..],                            // no spec and no graphs
        &["merge"][..],                            // no shard paths
        &["cache"][..],                            // no action
        &["cache", "ls"][..],                      // no cache root
        &["list", "extra"][..],                    // positional on list
    ] {
        let out = eproc(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {}", stderr(&out));
    }
}

#[test]
fn foreign_flags_are_rejected_by_name_per_subcommand() {
    // Each case: a flag that exists in the table but does not belong to
    // the subcommand. The error must name both.
    for (args, flag) in [
        (&["run", "comparison", "--graph", "cycle:8"][..], "--graph"),
        (&["run", "comparison", "--sweep", "1..4,x2"][..], "--sweep"),
        (
            &[
                "compare",
                "--graph",
                "cycle:8",
                "--process",
                "srw",
                "--scale",
                "quick",
            ][..],
            "--scale",
        ),
        (
            &[
                "compare",
                "--graph",
                "cycle:8",
                "--process",
                "srw",
                "--sweep",
                "1..4,x2",
            ][..],
            "--sweep",
        ),
        (&["merge", "a.json", "--seed", "1"][..], "--seed"),
        (&["merge", "a.json", "--shard", "0/2"][..], "--shard"),
        (&["merge", "a.json", "--cache", "/tmp"][..], "--cache"),
        (&["list", "--json", "x.json"][..], "--json"),
        (&["list", "--trials", "3"][..], "--trials"),
        (&["cache", "ls", "--json", "x.json"][..], "--json"),
        (&["cache", "ls", "--threads", "2"][..], "--threads"),
    ] {
        let out = eproc(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = stderr(&out);
        let cmd = args[0];
        assert!(
            err.contains(&format!("flag `{flag}` does not apply to `{cmd}`")),
            "{args:?} stderr: {err}"
        );
    }
    // `scale` accepts `--shard` at the table level (it shares the
    // executing-command set) but rejects the combination semantically —
    // still exit 2, with the growth-law-specific message.
    let out = eproc(&[
        "scale",
        "--graph",
        "cycle:8",
        "--process",
        "srw",
        "--shard",
        "0/2",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--shard does not apply to scale"),
        "{}",
        stderr(&out)
    );
    // Alias spelling reports the canonical flag name.
    let out = eproc(&["merge", "a.json", "--processes", "srw"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("flag `--process` does not apply to `merge`"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn flag_value_errors_name_the_flag_and_the_token() {
    for (args, needle) in [
        (
            &["run", "comparison", "--trials", "0"][..],
            "flag `--trials` expects an integer of at least 1, got \"0\"",
        ),
        (
            &["run", "comparison", "--seed"][..],
            "flag `--seed` expects an unsigned integer",
        ),
        (
            &["run", "comparison", "--seed", "--trials"][..],
            "flag `--seed` expects an unsigned integer",
        ),
        (
            &[
                "compare",
                "--graph",
                "cycle:8",
                "--process",
                "srw",
                "--cap",
                "fast",
            ][..],
            "--cap",
        ),
    ] {
        let out = eproc(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(stderr(&out).contains(needle), "{args:?}: {}", stderr(&out));
    }
}

#[test]
fn cache_round_trip_is_byte_exact_across_thread_counts() {
    let dir = temp_dir("roundtrip");
    let cache = dir.join("cache");
    let cache_s = cache.to_str().unwrap();
    let a1 = dir.join("a1.json");
    let a2 = dir.join("a2.json");
    let spec = &[
        "compare",
        "--graph",
        "cycle:32",
        "--process",
        "srw,eprocess",
        "--trials",
        "3",
    ][..];
    let mut run1: Vec<&str> = spec.to_vec();
    run1.extend([
        "--threads",
        "1",
        "--cache",
        cache_s,
        "--json",
        a1.to_str().unwrap(),
    ]);
    let out = eproc(&run1);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("cache: stored"), "{}", stdout(&out));
    let mut run2: Vec<&str> = spec.to_vec();
    run2.extend([
        "--threads",
        "5",
        "--cache",
        cache_s,
        "--json",
        a2.to_str().unwrap(),
    ]);
    let out = eproc(&run2);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("cache: hit"), "{}", stdout(&out));
    let b1 = std::fs::read(&a1).unwrap();
    let b2 = std::fs::read(&a2).unwrap();
    assert!(!b1.is_empty());
    assert_eq!(b1, b2, "cache hit must be byte-identical to the stored run");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_serves_resampled_builtins_and_env_var_activates_it() {
    let dir = temp_dir("resampled");
    let cache = dir.join("cache");
    let cache_s = cache.to_str().unwrap();
    let a1 = dir.join("a1.json");
    let a2 = dir.join("a2.json");
    // A resampled builtin through the EPROC_CACHE env var, different
    // thread counts on the two runs.
    let out = eproc_env(
        &[
            "run",
            "cubicensemble",
            "--threads",
            "2",
            "--json",
            a1.to_str().unwrap(),
        ],
        &[("EPROC_CACHE", cache_s)],
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("cache: stored"), "{}", stdout(&out));
    let out = eproc_env(
        &[
            "run",
            "cubicensemble",
            "--threads",
            "7",
            "--json",
            a2.to_str().unwrap(),
        ],
        &[("EPROC_CACHE", cache_s)],
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("cache: hit"), "{}", stdout(&out));
    assert_eq!(std::fs::read(&a1).unwrap(), std::fs::read(&a2).unwrap());
    // Env-var activation with a conflicting flag skips caching instead
    // of erroring; the explicit flag is strict.
    let out = eproc_env(
        &[
            "run",
            "cubicensemble",
            "--shard",
            "0/2",
            "--json",
            dir.join("s.json").to_str().unwrap(),
        ],
        &[("EPROC_CACHE", cache_s)],
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stderr(&out).contains("cache: disabled"), "{}", stderr(&out));
    let out = eproc(&[
        "run",
        "cubicensemble",
        "--shard",
        "0/2",
        "--cache",
        cache_s,
        "--json",
        dir.join("s2.json").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_subcommand_lists_resolves_and_prunes() {
    let dir = temp_dir("cachecmd");
    let cache = dir.join("cache");
    let cache_s = cache.to_str().unwrap();
    let out = eproc(&[
        "compare",
        "--graph",
        "cycle:16",
        "--process",
        "srw",
        "--trials",
        "2",
        "--cache",
        cache_s,
        "--json",
        dir.join("a.json").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let short = stdout(&out)
        .lines()
        .find_map(|l| l.strip_prefix("cache: stored ").map(String::from))
        .expect("stored line");
    // ls shows the canonical spec line for the entry.
    let out = eproc(&["cache", "ls", "--cache", cache_s]);
    assert_eq!(out.status.code(), Some(0));
    let ls = stdout(&out);
    assert!(ls.contains(&short), "{ls}");
    assert!(
        ls.contains("--graph cycle:16 --process srw --trials 2"),
        "{ls}"
    );
    assert!(ls.contains("1 entry"), "{ls}");
    // path with no argument prints the root; with a prefix, the artifact.
    let out = eproc(&["cache", "path", "--cache", cache_s]);
    assert_eq!(stdout(&out).trim(), cache_s);
    let out = eproc(&["cache", "path", &short, "--cache", cache_s]);
    assert_eq!(out.status.code(), Some(0));
    let artifact = PathBuf::from(stdout(&out).trim());
    assert!(artifact.is_file(), "{}", artifact.display());
    // An unmatched prefix is a runtime error (1), not a usage error.
    let out = eproc(&["cache", "path", "ffffffffffff", "--cache", cache_s]);
    assert_eq!(out.status.code(), Some(1));
    // gc with the default budget clears the store.
    let out = eproc(&["cache", "gc", "--cache", cache_s]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("removed 1 entry"), "{}", stdout(&out));
    let out = eproc(&["cache", "ls", "--cache", cache_s]);
    assert!(stdout(&out).contains("0 entries"), "{}", stdout(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn list_canonical_prints_digest_and_normal_form_per_builtin() {
    let out = eproc(&["list", "--canonical"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    let digests: Vec<&str> = text
        .lines()
        .filter_map(|l| l.trim().strip_prefix("digest: "))
        .collect();
    let specs: Vec<&str> = text
        .lines()
        .filter_map(|l| l.trim().strip_prefix("spec:"))
        .collect();
    assert_eq!(digests.len(), specs.len());
    assert!(text.lines().any(|l| l == "comparison"), "{text}");
    assert!(digests.len() >= 14, "all builtins listed: {text}");
    for d in &digests {
        assert_eq!(d.len(), 64, "full hex digest: {d}");
        assert!(d.bytes().all(|b| b.is_ascii_hexdigit()), "{d}");
    }
    for s in &specs {
        assert!(s.trim().starts_with("--graph "), "canonical line: {s}");
    }
    // Deterministic: a second invocation prints identical bytes.
    let again = eproc(&["list", "--canonical"]);
    assert_eq!(out.stdout, again.stdout);
    // A different seed changes every digest but no spec line.
    let other = stdout(&eproc(&["list", "--canonical", "--seed", "99"]));
    let other_digests: Vec<&str> = other
        .lines()
        .filter_map(|l| l.trim().strip_prefix("digest: "))
        .collect();
    assert_eq!(digests.len(), other_digests.len());
    assert!(digests.iter().zip(&other_digests).all(|(a, b)| a != b));
}
