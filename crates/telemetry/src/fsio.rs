//! Crash-safe artifact writes: write a temporary sibling, then rename.
//!
//! Every artifact the workspace persists — report JSON, CSV, shard
//! artifacts, telemetry sidecars, run checkpoints — goes through
//! [`write_atomic`], so a crash (or SIGKILL) mid-write can never leave a
//! truncated or half-written file at the destination path: the rename is
//! atomic on POSIX filesystems, and the destination either keeps its old
//! contents or receives the complete new ones.

use std::io::Write as _;
use std::path::Path;

/// Writes `contents` to `path` atomically: parent directories are
/// created, the bytes are written to a `<name>.tmp` sibling in the same
/// directory (same filesystem, so the rename cannot degrade to a copy)
/// and the sibling is renamed over `path` only after the write completed.
///
/// Concurrent writers of the *same* path race on the sibling name — the
/// workspace's single-process CLIs never do that — but readers of `path`
/// always see a complete document.
///
/// # Errors
///
/// Propagates filesystem errors; on failure the temporary sibling is
/// removed (best effort) and `path` is untouched.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("cannot write to {}: no file name", path.display()),
            )
        })?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        // Flush file contents to disk before the rename makes them
        // visible: a rename that survives a crash must not point at
        // buffered-but-unwritten data.
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eproc_fsio_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_contents_and_creates_parents() {
        let dir = scratch("parents");
        let path = dir.join("a/b/out.json");
        write_atomic(&path, "{\"ok\": true}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\": true}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replaces_existing_files_and_leaves_no_temp_sibling() {
        let dir = scratch("replace");
        let path = dir.join("out.json");
        write_atomic(&path, "old").unwrap();
        write_atomic(&path, "new").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new");
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(entries, vec![std::ffi::OsString::from("out.json")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pathological_paths_error_rather_than_panic() {
        assert!(write_atomic(Path::new("/"), "x").is_err());
    }
}
