//! **T-cage**: a second high-girth even-degree family — projective-plane
//! incidence graphs.
//!
//! `PG(2, q)` incidence graphs are `(q+1)`-regular with girth exactly 6;
//! for odd `q` the degree is even, so Theorems 1 and 3 apply with `g = 6`
//! and `ℓ ≥ 6`. Together with the LPS family (`table_girth`) this covers
//! both deterministic high-girth constructions the literature offers.

use eproc_bench::{edge_cover_runs, mean_vertex_cover_steps, rng_for, save_table, Config};
use eproc_core::rule::UniformRule;
use eproc_core::EProcess;
use eproc_graphs::generators;
use eproc_graphs::properties::girth;
use eproc_spectral::lanczos::lanczos;
use eproc_stats::{SeedSequence, Summary, TextTable};

const REPS: usize = 5;

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Projective-plane incidence graphs: even degree, girth 6, explored linearly\n");
    let mut table = TextTable::new(vec![
        "q", "n", "m", "degree", "girth", "lazy gap", "CV/n", "CE/m",
    ]);
    for &q in &[3u64, 5, 7, 11, 13] {
        let g = generators::projective_plane_incidence(q).unwrap();
        let measured_girth = girth::girth(&g).unwrap();
        assert_eq!(measured_girth, 6);
        let spec = lanczos(&g, 120.min(g.n() - 1));
        let lazy_gap = (1.0 - spec.lambda_2()) / 2.0; // incidence graphs are bipartite
        let cap = (50_000.0 * g.n() as f64 * (g.n() as f64).ln()) as u64;
        let mut rng = rng_for(seeds.derive(&[q]));
        let (cv, d) = mean_vertex_cover_steps(
            |_| EProcess::new(&g, 0, UniformRule::new()),
            REPS,
            cap,
            &mut rng,
        );
        assert_eq!(d, REPS);
        let ce_runs = edge_cover_runs(
            |_| EProcess::new(&g, 0, UniformRule::new()),
            REPS,
            cap,
            &mut rng,
        );
        let ce: Vec<u64> = ce_runs
            .iter()
            .filter_map(|x| x.steps_to_edge_cover)
            .collect();
        assert_eq!(ce.len(), REPS);
        table.push_row(vec![
            q.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            (q + 1).to_string(),
            measured_girth.to_string(),
            format!("{lazy_gap:.3}"),
            format!("{:.2}", cv / g.n() as f64),
            format!("{:.2}", Summary::from_u64(&ce).mean / g.m() as f64),
        ]);
    }
    println!("{table}");
    println!("note: even q (degree odd) excluded — the theorems need even degree;");
    println!("q = 3, 5, 7, 11, 13 give degrees 4, 6, 8, 12, 14.");
    let p = save_table("table_cages", &table).expect("write csv");
    println!("csv: {}", p.display());
}
