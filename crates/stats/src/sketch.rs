//! Mergeable streaming quantile sketches.
//!
//! [`QuantileSketch`] is a deterministic MRL/KLL-style sketch: items are
//! buffered in levels of capacity `k`, and a full level is *compacted* —
//! sorted, halved by keeping every other item from a coin-flip offset,
//! survivors promoted one level up with doubled weight. Rank error after
//! `H` levels of compaction is at most `H·n/k` (each level contributes at
//! most `n/k`: a compaction of weight-`2^h` items perturbs any rank by at
//! most `2^h`, and level `h` compacts at most `n/(2^h·k)` times), so with
//! the default `k = 200` a million-item sketch answers quantiles to
//! roughly ±0.01·n ranks while storing `O(k·log(n/k))` items — the memory
//! no longer grows with the trial count.
//!
//! # Determinism
//!
//! Every compaction coin comes from a private SplitMix64 stream seeded at
//! construction — never from wall clock, thread identity, or schedule.
//! Two sketches fed the same items in the same order from the same seed
//! are bit-identical, including their serialised
//! [`to_raw`](QuantileSketch::to_raw) state; the engine derives each
//! sketch's seed from the run's base seed keyed by *(family, group,
//! process, column)*, so artifacts stay byte-identical across thread
//! counts, `--shard`/merge, and checkpoint/`--resume`. Merging is
//! deterministic under a *canonical merge order*: always left-fold block
//! sketches into one accumulator in canonical block order (the engine's
//! aggregation does exactly this), because the accumulator's coin stream
//! advances with each compaction.

use crate::summary::EmptySample;

/// Default compactor capacity: rank error ≈ `levels/200` of `n`, a few
/// hundred retained items per sketch.
pub const DEFAULT_K: usize = 200;

/// The raw, bit-exact state of a [`QuantileSketch`]: floats as IEEE-754
/// bit patterns in verbatim stored order. This is the serialisation
/// shard artifacts and checkpoints persist — round-tripping the *values*
/// instead would lose the compaction state and break byte-identical
/// merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchRaw {
    /// Compactor capacity.
    pub k: u64,
    /// Items pushed (total weight of the sketch).
    pub count: u64,
    /// The SplitMix64 coin-stream state.
    pub state: u64,
    /// Per-level retained items (level `h` items carry weight `2^h`),
    /// each as `f64::to_bits`, in stored order.
    pub levels: Vec<Vec<u64>>,
}

/// A deterministic mergeable quantile sketch (see the [module
/// docs](crate::sketch)).
///
/// # Example
///
/// ```
/// use eproc_stats::QuantileSketch;
///
/// let mut sk = QuantileSketch::new(42);
/// for x in 0..1000 {
///     sk.push(x as f64);
/// }
/// let p50 = sk.quantile(0.5).unwrap();
/// assert!((p50 - 499.5).abs() < 20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    k: usize,
    count: u64,
    state: u64,
    levels: Vec<Vec<f64>>,
}

/// Advances a SplitMix64 state one step (the coin stream).
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl QuantileSketch {
    /// Creates an empty sketch with the default capacity
    /// ([`DEFAULT_K`]) and the given coin-stream seed.
    pub fn new(seed: u64) -> QuantileSketch {
        QuantileSketch::with_k(DEFAULT_K, seed)
    }

    /// Creates an empty sketch with compactor capacity `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (a compaction must be able to halve a buffer).
    pub fn with_k(k: usize, seed: u64) -> QuantileSketch {
        assert!(k >= 2, "sketch capacity must be at least 2, got {k}");
        QuantileSketch {
            k,
            count: 0,
            state: seed,
            levels: vec![Vec::new()],
        }
    }

    /// Compactor capacity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Items pushed (the sketch's total weight).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no items have been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Items currently stored across all levels — the sketch's actual
    /// memory footprint, `O(k·log(n/k))` rather than `O(n)`.
    pub fn retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Number of levels (1 until the first compaction).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot sketch NaN");
        self.count += 1;
        self.levels[0].push(x);
        self.restore_capacity();
    }

    /// Merges another sketch into this one.
    ///
    /// The other sketch's levels are appended level-by-level and overfull
    /// levels recompacted with *this* sketch's coin stream. Merging is
    /// deterministic only under a canonical order: fold the parts into
    /// one accumulator, always in the same order (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.k, other.k,
            "cannot merge sketches of different capacity"
        );
        if other.count == 0 {
            return;
        }
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
        }
        for (h, level) in other.levels.iter().enumerate() {
            self.levels[h].extend_from_slice(level);
        }
        self.count += other.count;
        self.restore_capacity();
    }

    /// Compacts every level that reached capacity, bottom-up.
    fn restore_capacity(&mut self) {
        let mut h = 0;
        while h < self.levels.len() {
            while self.levels[h].len() >= self.k {
                self.compact_level(h);
            }
            h += 1;
        }
    }

    /// One compaction of level `h`: sort, keep the smallest item in
    /// place when the buffer is odd (its weight is unchanged, so no rank
    /// is biased), promote every other of the rest — starting from a
    /// coin-flip offset — to level `h + 1`.
    fn compact_level(&mut self, h: usize) {
        if self.levels.len() <= h + 1 {
            self.levels.push(Vec::new());
        }
        let mut buf = std::mem::take(&mut self.levels[h]);
        buf.sort_by(f64::total_cmp);
        let mut start = 0;
        if buf.len() % 2 == 1 {
            self.levels[h].push(buf[0]);
            start = 1;
        }
        let offset = (splitmix_next(&mut self.state) & 1) as usize;
        let mut i = start + offset;
        while i < buf.len() {
            self.levels[h + 1].push(buf[i]);
            i += 2;
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation over the
    /// weighted retained items. On a sketch that has never compacted
    /// (`n < k`) this is *exactly*
    /// [`summary::quantile`](crate::summary::quantile) of the pushed
    /// sample; after compaction the answer's rank error is bounded by
    /// `depth·n/k`.
    ///
    /// # Errors
    ///
    /// [`EmptySample`] if nothing has been pushed.
    ///
    /// # Panics
    ///
    /// Panics if `q` is NaN or outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64, EmptySample> {
        assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
        if self.count == 0 {
            return Err(EmptySample);
        }
        let mut items: Vec<(f64, u64)> = Vec::with_capacity(self.retained());
        for (h, level) in self.levels.iter().enumerate() {
            let w = 1u64 << h;
            items.extend(level.iter().map(|&v| (v, w)));
        }
        items.sort_by(|a, b| a.0.total_cmp(&b.0));
        debug_assert_eq!(items.iter().map(|&(_, w)| w).sum::<u64>(), self.count);
        let pos = q * (self.count - 1) as f64;
        let lo = pos.floor();
        let lo_v = value_at_rank(&items, lo as u64);
        if pos == lo {
            return Ok(lo_v);
        }
        let hi_v = value_at_rank(&items, pos.ceil() as u64);
        let frac = pos - lo;
        Ok(lo_v * (1.0 - frac) + hi_v * frac)
    }

    /// Snapshots the full sketch state, bit for bit (see [`SketchRaw`]).
    pub fn to_raw(&self) -> SketchRaw {
        SketchRaw {
            k: self.k as u64,
            count: self.count,
            state: self.state,
            levels: self
                .levels
                .iter()
                .map(|level| level.iter().map(|x| x.to_bits()).collect())
                .collect(),
        }
    }

    /// Reconstructs a sketch from a [`to_raw`](QuantileSketch::to_raw)
    /// snapshot, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the raw capacity is below 2.
    pub fn from_raw(raw: SketchRaw) -> QuantileSketch {
        assert!(raw.k >= 2, "sketch capacity must be at least 2");
        let mut levels: Vec<Vec<f64>> = raw
            .levels
            .iter()
            .map(|level| level.iter().map(|&bits| f64::from_bits(bits)).collect())
            .collect();
        if levels.is_empty() {
            levels.push(Vec::new());
        }
        QuantileSketch {
            k: raw.k as usize,
            count: raw.count,
            state: raw.state,
            levels,
        }
    }
}

/// The value of the weighted item covering `rank` (item `i` covers the
/// ranks `[Σ w_{<i}, Σ w_{<i} + w_i)`).
fn value_at_rank(items: &[(f64, u64)], rank: u64) -> f64 {
    let mut cum = 0u64;
    for &(v, w) in items {
        cum += w;
        if rank < cum {
            return v;
        }
    }
    items.last().expect("nonempty by construction").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary;

    #[test]
    fn uncompacted_matches_exact_quantiles() {
        let data = [5.0, 1.0, 4.0, 2.0, 3.0, 9.0, 7.0];
        let mut sk = QuantileSketch::new(1);
        for &x in &data {
            sk.push(x);
        }
        assert_eq!(sk.depth(), 1, "no compaction below k items");
        for q in [0.0, 0.1, 0.25, 0.5, 0.77, 1.0] {
            assert_eq!(
                sk.quantile(q).unwrap(),
                summary::quantile(&data, q).unwrap(),
                "q = {q}"
            );
        }
    }

    #[test]
    fn empty_sketch_errors() {
        let sk = QuantileSketch::new(0);
        assert!(sk.is_empty());
        assert_eq!(sk.quantile(0.5), Err(EmptySample));
    }

    #[test]
    #[should_panic(expected = "q must be in [0,1]")]
    fn out_of_range_q_panics() {
        let mut sk = QuantileSketch::new(0);
        sk.push(1.0);
        let _ = sk.quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        QuantileSketch::new(0).push(f64::NAN);
    }

    #[test]
    fn compacted_sketch_stays_within_the_rank_error_bound() {
        let n = 2000u64;
        let mut sk = QuantileSketch::with_k(16, 99);
        for i in 0..n {
            // A fixed permutation-ish order so compaction really mixes.
            sk.push(((i * 7919) % n) as f64);
        }
        assert!(sk.depth() > 1, "this test must exercise compaction");
        assert!(
            sk.retained() < n as usize / 4,
            "sketch kept {} of {} items",
            sk.retained(),
            n
        );
        // Values are 0..n, so value == rank: the answer's distance from
        // the true quantile *is* its rank error.
        let bound = (sk.depth() as f64) * (n as f64) / 16.0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let est = sk.quantile(q).unwrap();
            let exact = q * (n - 1) as f64;
            assert!(
                (est - exact).abs() <= bound,
                "q={q}: |{est} - {exact}| > {bound}"
            );
        }
    }

    #[test]
    fn same_seed_and_order_give_identical_state() {
        let feed = |seed| {
            let mut sk = QuantileSketch::with_k(8, seed);
            for i in 0..500 {
                sk.push((i % 37) as f64);
            }
            sk
        };
        assert_eq!(feed(7).to_raw(), feed(7).to_raw());
        // A different coin stream almost surely retains different items.
        assert_ne!(feed(7).to_raw(), feed(8).to_raw());
    }

    #[test]
    fn merge_matches_sequential_weight_and_bounds() {
        let mut whole = QuantileSketch::with_k(8, 1);
        let mut left = QuantileSketch::with_k(8, 2);
        let mut right = QuantileSketch::with_k(8, 3);
        for i in 0..600 {
            whole.push(i as f64);
            if i < 300 {
                left.push(i as f64);
            } else {
                right.push(i as f64);
            }
        }
        let mut acc = QuantileSketch::with_k(8, 1);
        acc.merge(&left);
        acc.merge(&right);
        assert_eq!(acc.count(), 600);
        let bound = (acc.depth() as f64) * 600.0 / 8.0;
        for q in [0.1, 0.5, 0.9] {
            let est = acc.quantile(q).unwrap();
            let exact = q * 599.0;
            assert!((est - exact).abs() <= bound, "q={q}: {est} vs {exact}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut sk = QuantileSketch::new(5);
        for i in 0..10 {
            sk.push(i as f64);
        }
        let before = sk.to_raw();
        sk.merge(&QuantileSketch::new(77));
        assert_eq!(sk.to_raw(), before);
    }

    #[test]
    fn raw_round_trip_is_bit_exact() {
        let mut sk = QuantileSketch::with_k(8, 31);
        for i in 0..200 {
            sk.push((i as f64) * 0.1 - 3.0);
        }
        let raw = sk.to_raw();
        let back = QuantileSketch::from_raw(raw.clone());
        assert_eq!(back, sk);
        assert_eq!(back.to_raw(), raw);
        assert_eq!(
            back.quantile(0.9).unwrap().to_bits(),
            sk.quantile(0.9).unwrap().to_bits()
        );
        // An empty sketch survives too.
        let empty = QuantileSketch::new(4);
        assert_eq!(QuantileSketch::from_raw(empty.to_raw()), empty);
    }
}
