//! Streaming (Welford) statistics.

/// Numerically stable streaming mean/variance accumulator.
///
/// # Example
///
/// ```
/// use eproc_stats::OnlineStats;
///
/// let mut acc = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.count(), 3);
/// assert!((acc.mean() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot accumulate NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, `None` when empty.
    ///
    /// The internal sentinel of an empty accumulator is `+∞` — returning
    /// `Option` here keeps that non-finite value from ever leaking into
    /// strict-JSON artifacts through a forgotten emptiness check.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty (see
    /// [`min`](OnlineStats::min)).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Snapshots the raw accumulator state as `(count, [mean, m2, min,
    /// max])` with the floats as IEEE-754 bit patterns.
    ///
    /// This is the **bit-exact** serialisation: `m2` is not recoverable
    /// from [`variance`](OnlineStats::variance) without rounding, and the
    /// `±∞` sentinels of an empty accumulator have no decimal form, so
    /// anything that persists an accumulator and later
    /// [`merge`](OnlineStats::merge)s it (e.g. shard artifacts combined
    /// by `eproc merge`) must round-trip the bits, not the values.
    pub fn to_raw(&self) -> (u64, [u64; 4]) {
        (
            self.count,
            [
                self.mean.to_bits(),
                self.m2.to_bits(),
                self.min.to_bits(),
                self.max.to_bits(),
            ],
        )
    }

    /// Reconstructs an accumulator from a [`to_raw`](OnlineStats::to_raw)
    /// snapshot, bit for bit.
    pub fn from_raw(count: u64, bits: [u64; 4]) -> OnlineStats {
        OnlineStats {
            count,
            mean: f64::from_bits(bits[0]),
            m2: f64::from_bits(bits[1]),
            min: f64::from_bits(bits[2]),
            max: f64::from_bits(bits[3]),
        }
    }

    /// Merges another accumulator (parallel Welford combination).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_statistics() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut acc = OnlineStats::new();
        for &x in &data {
            acc.push(x);
        }
        let s = crate::Summary::from_slice(&data);
        assert!((acc.mean() - s.mean).abs() < 1e-12);
        assert!((acc.variance() - s.variance).abs() < 1e-12);
        assert_eq!(acc.min(), Some(s.min));
        assert_eq!(acc.max(), Some(s.max));
    }

    #[test]
    fn empty_defaults() {
        let acc = OnlineStats::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let all = [1.0, 2.0, 3.0, 10.0, 20.0, 30.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &all[..3] {
            a.push(x);
        }
        for &x in &all[3..] {
            b.push(x);
        }
        a.merge(&b);
        let mut seq = OnlineStats::new();
        for &x in &all {
            seq.push(x);
        }
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
    }

    #[test]
    fn raw_round_trip_is_bit_exact() {
        let mut acc = OnlineStats::new();
        for x in [0.1, 0.2, 0.3000000004, 1e17, -3.5] {
            acc.push(x);
        }
        let (count, bits) = acc.to_raw();
        let back = OnlineStats::from_raw(count, bits);
        assert_eq!(back, acc);
        assert_eq!(back.mean().to_bits(), acc.mean().to_bits());
        assert_eq!(back.variance().to_bits(), acc.variance().to_bits());
        // The empty accumulator's ±∞ sentinels survive too (as raw bits;
        // the accessors hide them behind `None`).
        let (count, bits) = OnlineStats::new().to_raw();
        let empty = OnlineStats::from_raw(count, bits);
        assert_eq!(empty, OnlineStats::new());
        assert_eq!(bits[2], f64::INFINITY.to_bits());
        assert_eq!(bits[3], f64::NEG_INFINITY.to_bits());
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
