//! Exact hitting, commute and return times via linear solves.
//!
//! For a connected graph the hitting times `h(u) = E_u(H_target)` satisfy
//! `h(target) = 0`, `h(u) = 1 + (1/d(u)) Σ_{w ~ u} h(w)`; this module solves
//! that system exactly (`O(n³)` — intended for graphs up to a few hundred
//! vertices, as exact oracles for the sampled estimates and the paper's
//! Lemma 6 / Corollary 9 checks).

use crate::dense::solve_linear_system;
use crate::transition::stationary_distribution;
use eproc_graphs::{Graph, Vertex};

/// Expected hitting times `E_u(H_target)` for every start `u`
/// (`0` at the target). `None` if the system is singular — i.e. some
/// vertex cannot reach the target (disconnected graph).
///
/// # Panics
///
/// Panics if `target >= g.n()`.
pub fn hitting_times_to(g: &Graph, target: Vertex) -> Option<Vec<f64>> {
    hitting_times_to_set(g, &[target])
}

/// Expected hitting times `E_u(H_S)` of a vertex set `S` (0 inside `S`).
/// This is the quantity bounded by Corollary 9 of the paper.
///
/// # Panics
///
/// Panics if `set` is empty or contains an out-of-range vertex.
pub fn hitting_times_to_set(g: &Graph, set: &[Vertex]) -> Option<Vec<f64>> {
    assert!(!set.is_empty(), "target set must be nonempty");
    let n = g.n();
    let mut in_set = vec![false; n];
    for &v in set {
        assert!(v < n, "vertex {v} out of range");
        in_set[v] = true;
    }
    // Index the free (non-target) vertices.
    let free: Vec<Vertex> = g.vertices().filter(|&v| !in_set[v]).collect();
    let mut index = vec![usize::MAX; n];
    for (i, &v) in free.iter().enumerate() {
        index[v] = i;
    }
    let k = free.len();
    if k == 0 {
        return Some(vec![0.0; n]);
    }
    // (I - Q) h = 1 over the free vertices.
    let mut a = vec![0.0f64; k * k];
    let b = vec![1.0f64; k];
    for (i, &u) in free.iter().enumerate() {
        a[i * k + i] += 1.0;
        let d = g.degree(u);
        if d == 0 {
            return None; // isolated vertex can never hit the target
        }
        let p = 1.0 / d as f64;
        for w in g.neighbors(u) {
            if !in_set[w] {
                a[i * k + index[w]] -= p;
            }
        }
    }
    let h_free = solve_linear_system(a, b)?;
    let mut h = vec![0.0; n];
    for (i, &v) in free.iter().enumerate() {
        h[v] = h_free[i];
    }
    Some(h)
}

/// Commute time `K(u, v) = E_u(H_v) + E_v(H_u)` (Theorem 5's proof works
/// with this quantity). `None` if disconnected.
pub fn commute_time(g: &Graph, u: Vertex, v: Vertex) -> Option<f64> {
    let huv = hitting_times_to(g, v)?[u];
    let hvu = hitting_times_to(g, u)?[v];
    Some(huv + hvu)
}

/// Expected hitting time of `v` from stationarity,
/// `E_π(H_v) = Σ_u π_u E_u(H_v)` — the left side of Lemma 6's bound
/// `E_π(H_v) ≤ 1 / ((1 − λ_max) π_v)`.
pub fn hitting_from_stationary(g: &Graph, v: Vertex) -> Option<f64> {
    let h = hitting_times_to(g, v)?;
    let pi = stationary_distribution(g);
    Some(h.iter().zip(&pi).map(|(hi, pii)| hi * pii).sum())
}

/// Expected hitting time of a set from stationarity, `E_π(H_S)`
/// (Corollary 9 bounds this by `2m / (d(S)(1 − λ_max))`).
pub fn set_hitting_from_stationary(g: &Graph, set: &[Vertex]) -> Option<f64> {
    let h = hitting_times_to_set(g, set)?;
    let pi = stationary_distribution(g);
    Some(h.iter().zip(&pi).map(|(hi, pii)| hi * pii).sum())
}

/// Expected first *return* time `E_v(T_v^+) = 1 + (1/d(v)) Σ_{w~v} E_w(H_v)`.
///
/// The identity `E_v(T_v^+) = 1/π_v` (§2.2 of the paper, citing
/// Aldous–Fill) is verified in tests against this exact computation.
pub fn expected_return_time(g: &Graph, v: Vertex) -> Option<f64> {
    let h = hitting_times_to(g, v)?;
    let d = g.degree(v);
    if d == 0 {
        return None;
    }
    Some(1.0 + g.neighbors(v).map(|w| h[w]).sum::<f64>() / d as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eproc_graphs::generators;

    #[test]
    fn path_hitting_times_quadratic() {
        // On P_n (vertices 0..n-1), E_u(H_0) = u(2n - 1 - u) ... the classic
        // gambler's-ruin value for the path is h(u) = u² when target is 0
        // and the other end reflects: E_u(H_0) = u^2? Exact: for path with
        // reflecting end at n-1, h(u) = u(2(n-1) - u + 0)/1... Verify the
        // recurrence directly instead.
        let g = generators::path(6);
        let h = hitting_times_to(&g, 0).unwrap();
        assert_eq!(h[0], 0.0);
        for u in 1..5 {
            let mean: f64 = g.neighbors(u).map(|w| h[w]).sum::<f64>() / g.degree(u) as f64;
            assert!((h[u] - 1.0 - mean).abs() < 1e-9, "recurrence fails at {u}");
        }
        // End-to-end hitting time on a path is (n-1)².
        assert!((h[5] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_hitting_symmetry() {
        // On C_n, E_u(H_v) = k(n - k) where k is the cycle distance.
        let n = 8;
        let g = generators::cycle(n);
        let h = hitting_times_to(&g, 0).unwrap();
        for (u, &hu) in h.iter().enumerate() {
            let k = u.min(n - u) as f64;
            let expected = k * (n as f64 - k);
            assert!((hu - expected).abs() < 1e-9, "h[{u}] = {hu} vs {expected}");
        }
    }

    #[test]
    fn complete_graph_hitting() {
        // On K_n, E_u(H_v) = n - 1 for u != v.
        let n = 7;
        let g = generators::complete(n);
        let h = hitting_times_to(&g, 3).unwrap();
        for (u, &hu) in h.iter().enumerate() {
            let expected = if u == 3 { 0.0 } else { (n - 1) as f64 };
            assert!((hu - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn return_time_identity() {
        // E_v T_v^+ = 1/π_v = 2m/d(v) (§2.2).
        for g in [
            generators::lollipop(5, 3),
            generators::petersen(),
            generators::torus2d(3, 4),
        ] {
            let pi = stationary_distribution(&g);
            for v in [0, g.n() / 2, g.n() - 1] {
                let rt = expected_return_time(&g, v).unwrap();
                assert!(
                    (rt - 1.0 / pi[v]).abs() < 1e-7,
                    "E_v T_v^+ = {rt} vs 1/π = {}",
                    1.0 / pi[v]
                );
            }
        }
    }

    #[test]
    fn commute_time_symmetric() {
        let g = generators::lollipop(5, 4);
        let k1 = commute_time(&g, 0, 8).unwrap();
        let k2 = commute_time(&g, 8, 0).unwrap();
        assert!((k1 - k2).abs() < 1e-9);
        assert!(k1 > 0.0);
    }

    #[test]
    fn set_hitting_dominated_by_vertex_hitting() {
        let g = generators::torus2d(4, 4);
        let single = hitting_from_stationary(&g, 5).unwrap();
        let pair = set_hitting_from_stationary(&g, &[5, 10]).unwrap();
        assert!(pair <= single + 1e-12, "hitting a superset is no slower");
        assert!(pair > 0.0);
    }

    #[test]
    fn hitting_inside_set_is_zero() {
        let g = generators::cycle(6);
        let h = hitting_times_to_set(&g, &[1, 4]).unwrap();
        assert_eq!(h[1], 0.0);
        assert_eq!(h[4], 0.0);
        assert!(h[0] > 0.0);
    }

    #[test]
    fn disconnected_graph_is_none() {
        let g = eproc_graphs::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(hitting_times_to(&g, 0).is_none());
    }

    #[test]
    fn lemma6_bound_holds_exactly() {
        // E_π(H_v) ≤ 1 / ((1 − λ_max) π_v) — on a non-bipartite graph.
        use crate::dense::SymMatrix;
        let g = generators::lollipop(5, 2);
        let lmax = SymMatrix::from_graph(&g, false).lambda_max_walk();
        let pi = stationary_distribution(&g);
        for v in g.vertices() {
            let lhs = hitting_from_stationary(&g, v).unwrap();
            let rhs = 1.0 / ((1.0 - lmax) * pi[v]);
            assert!(lhs <= rhs + 1e-9, "Lemma 6 violated at {v}: {lhs} > {rhs}");
        }
    }

    #[test]
    fn corollary9_bound_holds_exactly() {
        // E_π(H_S) ≤ 2m / (d(S)(1 − λ_max)).
        use crate::dense::SymMatrix;
        let g = generators::lollipop(5, 2);
        let lmax = SymMatrix::from_graph(&g, false).lambda_max_walk();
        let set = [0, 5];
        let d_s: usize = set.iter().map(|&v| g.degree(v)).sum();
        let lhs = set_hitting_from_stationary(&g, &set).unwrap();
        let rhs = g.total_degree() as f64 / (d_s as f64 * (1.0 - lmax));
        assert!(lhs <= rhs + 1e-9, "Corollary 9 violated: {lhs} > {rhs}");
    }
}
