//! **T-spec**: eigenvalue gaps of the workload graphs.
//!
//! Property (P1) of §4: random `r`-regular graphs have second adjacency
//! eigenvalue `≤ 2√(r−1) + ε` whp (Friedman); LPS graphs meet the
//! Ramanujan bound `2√p`. We measure `λ_2` with Lanczos, cross-check
//! against the predictions, and report the gap that enters every cover
//! bound.

use eproc_bench::{rng_for, save_table, Config, Scale};
use eproc_graphs::properties::bipartite;
use eproc_graphs::{generators, Graph};
use eproc_spectral::lanczos::lanczos;
use eproc_stats::{SeedSequence, TextTable};
use eproc_theory::{friedman_lambda_bound, hypercube_lambda2, ramanujan_lambda_bound};

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Spectra: measured lambda_2 vs Friedman/Ramanujan predictions\n");
    let mut table = TextTable::new(vec![
        "graph",
        "n",
        "lambda_2",
        "prediction",
        "within",
        "gap",
        "lazy gap",
        "bipartite",
    ]);

    let reg_n = match config.scale {
        Scale::Quick => 2_000,
        Scale::Paper => 20_000,
    };
    let mut row = |name: String, g: &Graph, prediction: Option<f64>| {
        let res = lanczos(g, 140.min(g.n() - 1));
        let l2 = res.lambda_2();
        let bip = bipartite::is_bipartite(g);
        let within = prediction.map_or("-".into(), |p| {
            if l2 <= p + 1e-6 {
                "yes".to_string()
            } else {
                format!("no ({l2:.4} > {p:.4})")
            }
        });
        table.push_row(vec![
            name,
            g.n().to_string(),
            format!("{l2:.4}"),
            prediction.map_or("-".into(), |p| format!("{p:.4}")),
            within,
            format!("{:.4}", 1.0 - res.lambda_max()),
            format!("{:.4}", (1.0 - l2) / 2.0),
            if bip { "yes".into() } else { "no".into() },
        ]);
    };

    for r in [3usize, 4, 5, 6, 7] {
        let mut graph_rng = rng_for(seeds.derive(&[r as u64]));
        let g = generators::connected_random_regular(reg_n, r, &mut graph_rng).unwrap();
        // Friedman with a finite-size allowance ε.
        row(
            format!("random {r}-regular"),
            &g,
            Some(friedman_lambda_bound(r, 0.35)),
        );
    }
    for (p, q) in [(5u64, 13u64), (5, 17), (13, 17)] {
        let g = generators::lps_ramanujan(p, q).unwrap();
        row(
            format!("LPS({p},{q})"),
            &g,
            Some(ramanujan_lambda_bound(p as usize)),
        );
    }
    let h = generators::hypercube(9);
    row("hypercube(9)".into(), &h, Some(hypercube_lambda2(9) + 1e-9));
    let t = generators::torus2d(32, 32);
    // λ2 of the 2-D torus: (cos(2π/32) + 1)/2.
    let torus_l2 = ((2.0 * std::f64::consts::PI / 32.0).cos() + 1.0) / 2.0;
    row("torus 32x32".into(), &t, Some(torus_l2 + 1e-9));

    println!("{table}");
    let p = save_table("table_spectral", &table).expect("write csv");
    println!("csv: {}", p.display());
}
