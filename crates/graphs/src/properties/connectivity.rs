//! Connectivity and connected components.

use crate::csr::{Graph, Vertex};
use crate::traversal;

/// `true` if the graph is connected (the empty graph and a single vertex
/// count as connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() <= 1 {
        return true;
    }
    traversal::bfs_order(g, 0).len() == g.n()
}

/// Component label for every vertex (labels are `0..component_count`,
/// assigned in order of the smallest vertex in each component).
pub fn components(g: &Graph) -> Vec<usize> {
    let mut label = vec![usize::MAX; g.n()];
    let mut next = 0usize;
    for start in g.vertices() {
        if label[start] != usize::MAX {
            continue;
        }
        for v in traversal::bfs_order(g, start) {
            label[v] = next;
        }
        next += 1;
    }
    label
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    if g.n() == 0 {
        return 0;
    }
    components(g).iter().copied().max().unwrap_or(0) + 1
}

/// Vertices of the largest connected component (ties broken by smallest
/// label); empty for the empty graph.
pub fn largest_component(g: &Graph) -> Vec<Vertex> {
    if g.n() == 0 {
        return Vec::new();
    }
    let labels = components(g);
    let count = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l] += 1;
    }
    let best = (0..count).max_by_key(|&l| sizes[l]).unwrap_or(0);
    g.vertices().filter(|&v| labels[v] == best).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Graph;

    #[test]
    fn connected_families() {
        assert!(is_connected(&generators::cycle(5)));
        assert!(is_connected(&generators::hypercube(3)));
        assert!(is_connected(&generators::complete(4)));
    }

    #[test]
    fn trivial_graphs_connected() {
        assert!(is_connected(&Graph::from_edges(0, &[]).unwrap()));
        assert!(is_connected(&Graph::from_edges(1, &[]).unwrap()));
        assert!(!is_connected(&Graph::from_edges(2, &[]).unwrap()));
    }

    #[test]
    fn components_of_disjoint_triangles() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let labels = components(&g);
        assert_eq!(labels, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(component_count(&g), 2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn largest_component_identified() {
        let g = Graph::from_edges(7, &[(0, 1), (2, 3), (3, 4), (4, 2), (5, 6)]).unwrap();
        assert_eq!(largest_component(&g), vec![2, 3, 4]);
    }

    #[test]
    fn isolated_vertices_are_components() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        assert_eq!(component_count(&g), 3);
    }
}
