//! Wall-clock cost of the `eproc scale` sweep subsystem against the
//! baseline it replaces: one engine run per size.
//!
//! A sweep expands into one (family, group) block per (size, group) and
//! runs them all through a single worker pool, so it should cost no more
//! than the sum of per-size standalone runs — the shared pool amortises
//! thread spin-up and keeps every core busy across sizes, where N
//! separate runs serialise their stragglers. The growth-model fitting on
//! top is pure arithmetic on the aggregates and should price in
//! microseconds. This bench measures all three and writes
//! `target/experiments/BENCH_scaling.json`.

use eproc_bench::output_dir;
use eproc_engine::executor::{run, RunOptions};
use eproc_engine::scaling::analyze;
use eproc_engine::spec::{
    CapSpec, ExperimentSpec, GraphSpec, ProcessSpec, ResamplePlan, RuleSpec, SweepRange, SweepStep,
    Target,
};
use std::time::Instant;

const SAMPLES: usize = 5;

/// Minimum seconds over `SAMPLES` timed runs — the least-interference
/// estimate when comparing variants on a shared machine.
fn best_secs<F: FnMut()>(mut f: F) -> f64 {
    (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn spec_for(sizes: &[usize]) -> ExperimentSpec {
    ExperimentSpec {
        name: "scaling-overhead".into(),
        description: "sweep overhead bench".into(),
        graphs: sizes
            .iter()
            .map(|&n| GraphSpec::Regular { n, d: 4 })
            .collect(),
        processes: vec![ProcessSpec::EProcess {
            rule: RuleSpec::Uniform,
        }],
        trials: 4,
        target: Target::VertexCover,
        metrics: vec![],
        start: 0,
        cap: CapSpec::NLogN(500.0),
        resample: Some(ResamplePlan { walks_per_graph: 2 }),
    }
}

fn main() {
    let opts = RunOptions {
        base_seed: 12345,
        ..RunOptions::auto()
    };
    let range = SweepRange {
        start: 500,
        end: 8_000,
        step: SweepStep::Factor(2),
    };
    let sizes = range.points().expect("valid range");
    let sweep_spec = spec_for(&sizes);
    let per_size_specs: Vec<ExperimentSpec> = sizes.iter().map(|&n| spec_for(&[n])).collect();

    // Warm-up, then time.
    run(&sweep_spec, &opts).expect("warm-up sweep");
    let sweep_secs = best_secs(|| {
        run(&sweep_spec, &opts).expect("timed sweep");
    });
    let per_size_secs = best_secs(|| {
        for spec in &per_size_specs {
            run(spec, &opts).expect("timed per-size run");
        }
    });
    let report = run(&sweep_spec, &opts).expect("report for fit timing");
    let fit_secs = best_secs(|| {
        analyze(&report).expect("fit");
    });
    let overhead = sweep_secs / per_size_secs;

    println!(
        "scaling_overhead/sweep:    {:>8.2} ms ({} sizes {:?}, one pool; {overhead:.2}x of per-size, target <= ~1.05x)",
        sweep_secs * 1e3,
        sizes.len(),
        sizes
    );
    println!(
        "scaling_overhead/per_size: {:>8.2} ms ({} standalone engine runs)",
        per_size_secs * 1e3,
        sizes.len()
    );
    println!(
        "scaling_overhead/fit:      {:>8.3} ms (3-model growth-law selection)",
        fit_secs * 1e3
    );

    let json = format!(
        "{{\n  \"bench\": \"scaling_overhead\",\n  \
         \"spec\": \"random 4-regular n=500..8000,x2, e-process, 4 trials, 2 walks/graph\",\n  \
         \"samples\": {},\n  \
         \"threads\": {},\n  \
         \"sizes\": {},\n  \
         \"sweep_secs\": {:.6},\n  \
         \"per_size_secs\": {:.6},\n  \
         \"sweep_overhead\": {:.4},\n  \
         \"fit_secs\": {:.9}\n}}\n",
        SAMPLES,
        opts.threads,
        sizes.len(),
        sweep_secs,
        per_size_secs,
        overhead,
        fit_secs,
    );
    let dir = output_dir();
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = dir.join("BENCH_scaling.json");
    std::fs::write(&path, json).expect("write snapshot");
    println!("json: {}", path.display());
}
