//! **T-cycles**: short-cycle counts in random regular graphs.
//!
//! Corollary 4's proof bounds the number `N_k` of `k`-cycles
//! (`E N_k = θ_k r^k / k`; explicitly `(r−1)^k / (2k)`); we count exactly
//! and compare, and also verify the small cycles are vertex-disjoint whp
//! (the property used in §4.2).

use eproc_bench::{rng_for, save_table, Config, Scale};
use eproc_graphs::generators;
use eproc_graphs::properties::cycles::count_cycles_up_to;
use eproc_stats::{SeedSequence, Summary, TextTable};
use eproc_theory::expected_cycle_count_random_regular;

const SAMPLES: usize = 5;
const K_MAX: usize = 7;

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Short cycle counts N_k in random r-regular graphs vs E N_k = (r-1)^k/(2k)\n");
    let mut table = TextTable::new(vec!["r", "n", "k", "mean N_k", "sd", "E N_k"]);
    let n = match config.scale {
        Scale::Quick => 20_000,
        Scale::Paper => 100_000,
    };
    for &r in &[4usize, 6] {
        let mut counts_by_k: Vec<Vec<f64>> = vec![Vec::new(); K_MAX + 1];
        for sample in 0..SAMPLES {
            let mut graph_rng = rng_for(seeds.derive(&[r as u64, sample as u64]));
            let g = generators::connected_random_regular(n, r, &mut graph_rng).unwrap();
            let counts = count_cycles_up_to(&g, K_MAX);
            for (bucket, &count) in counts_by_k.iter_mut().zip(&counts).skip(3) {
                bucket.push(count as f64);
            }
        }
        for (k, bucket) in counts_by_k.iter().enumerate().skip(3) {
            let s = Summary::from_slice(bucket);
            table.push_row(vec![
                r.to_string(),
                n.to_string(),
                k.to_string(),
                format!("{:.1}", s.mean),
                format!("{:.1}", s.std_dev),
                format!("{:.1}", expected_cycle_count_random_regular(r, k)),
            ]);
        }
    }
    println!("{table}");
    let p = save_table("table_cycles", &table).expect("write csv");
    println!("csv: {}", p.display());
}
