//! **T-girth**: Theorem 3 on the title's *high girth even degree
//! expanders*.
//!
//! LPS graphs `X^{5,q}` are 6-regular with girth `Ω(log n)`; Theorem 3
//! then gives `CE(E) = O(m + m log n / g)` ≈ linear. Random 6-regular
//! graphs (constant girth, but few short cycles) are shown for contrast.

use eproc_bench::{edge_cover_runs, mean_vertex_cover_steps, rng_for, save_table, Config, Scale};
use eproc_core::rule::UniformRule;
use eproc_core::EProcess;
use eproc_graphs::properties::{bipartite, girth};
use eproc_graphs::{generators, Graph};
use eproc_spectral::lanczos::lanczos;
use eproc_stats::{SeedSequence, Summary, TextTable};
use eproc_theory::theorem3_edge_cover_bound;

const REPS: usize = 3;

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Theorem 3 on high girth even degree expanders (LPS) vs random regular\n");
    let mut table = TextTable::new(vec![
        "graph",
        "n",
        "m",
        "girth",
        "gap",
        "CV/n",
        "CE/m",
        "CE",
        "thm3 bound",
        "CE/bound",
    ]);

    let mut measure = |name: String, g: &Graph| {
        let n = g.n();
        let m = g.m();
        let girth_val = girth::girth_at_most(g, 24).unwrap_or(25);
        let res = lanczos(g, 140.min(n - 1));
        let gap = if bipartite::is_bipartite(g) {
            (1.0 - res.lambda_2()) / 2.0
        } else {
            1.0 - res.lambda_max()
        };
        let cap = (10_000.0 * n as f64 * (n as f64).ln()) as u64;
        let mut rng = rng_for(seeds.derive(&[3, n as u64, m as u64]));
        let (cv, d) = mean_vertex_cover_steps(
            |_| EProcess::new(g, 0, UniformRule::new()),
            REPS,
            cap,
            &mut rng,
        );
        assert_eq!(d, REPS);
        let runs = edge_cover_runs(
            |_| EProcess::new(g, 0, UniformRule::new()),
            REPS,
            cap,
            &mut rng,
        );
        let ce: Vec<u64> = runs.iter().filter_map(|x| x.steps_to_edge_cover).collect();
        assert_eq!(ce.len(), REPS);
        let ce_mean = Summary::from_u64(&ce).mean;
        let bound = theorem3_edge_cover_bound(m, n, girth_val, g.max_degree(), gap);
        table.push_row(vec![
            name,
            n.to_string(),
            m.to_string(),
            if girth_val == 25 {
                ">24".into()
            } else {
                girth_val.to_string()
            },
            format!("{gap:.3}"),
            format!("{:.2}", cv / n as f64),
            format!("{:.2}", ce_mean / m as f64),
            format!("{ce_mean:.0}"),
            format!("{bound:.0}"),
            format!("{:.3}", ce_mean / bound),
        ]);
    };

    let lps_qs: Vec<u64> = match config.scale {
        Scale::Quick => vec![13, 17],
        Scale::Paper => vec![13, 17, 29],
    };
    for &q in &lps_qs {
        let g = generators::lps_ramanujan(5, q).unwrap();
        measure(format!("LPS(5,{q})"), &g);
    }
    // Contrast: random 6-regular graphs of comparable sizes.
    for &q in &lps_qs {
        let n = generators::lps::LpsParams::new(5, q)
            .unwrap()
            .vertex_count();
        let mut graph_rng = rng_for(seeds.derive(&[6, n as u64]));
        let g = generators::connected_random_regular(n, 6, &mut graph_rng).unwrap();
        measure(format!("random 6-regular({n})"), &g);
    }
    println!("{table}");
    let p = save_table("table_girth", &table).expect("write csv");
    println!("csv: {}", p.display());
}
