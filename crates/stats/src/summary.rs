//! Descriptive statistics for batches of measurements.

use std::fmt;

/// An order statistic was requested of an empty sample (or an empty
/// [`QuantileSketch`](crate::QuantileSketch)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptySample;

impl fmt::Display for EmptySample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot take a quantile of an empty sample")
    }
}

impl std::error::Error for EmptySample {}

/// Descriptive statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance (0 for `n < 2`).
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (midpoint of the two central order statistics for even `n`).
    pub median: f64,
}

impl Summary {
    /// Summarises a nonempty sample.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains NaN.
    pub fn from_slice(data: &[f64]) -> Summary {
        assert!(!data.is_empty(), "cannot summarise an empty sample");
        assert!(data.iter().all(|x| !x.is_nan()), "sample contains NaN");
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let variance = if n >= 2 {
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Summary {
            n,
            mean,
            variance,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: interpolate_sorted(&sorted, 0.5),
        }
    }

    /// Summarises integer measurements (cover times are `u64`).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn from_u64(data: &[u64]) -> Summary {
        let floats: Vec<f64> = data.iter().map(|&x| x as f64).collect();
        Summary::from_slice(&floats)
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.std_dev / (self.n as f64).sqrt()
    }

    /// Normal-approximation 95% confidence interval for the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error();
        (self.mean - half, self.mean + half)
    }
}

/// Linear interpolation of order statistics over an already-sorted
/// nonempty slice: position `q·(n-1)`, interpolated between the
/// bracketing items. This is the one interpolation rule shared by
/// [`quantile`], `Summary::median` (`q = 0.5`) and the weighted variant
/// in [`crate::sketch`].
fn interpolate_sorted(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation of order
/// statistics.
///
/// # Errors
///
/// [`EmptySample`] if `data` is empty.
///
/// # Panics
///
/// Panics if `data` contains NaN or `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Result<f64, EmptySample> {
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
    if data.is_empty() {
        return Err(EmptySample);
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    Ok(interpolate_sorted(&sorted, q))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.variance - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn even_sample_median() {
        let s = Summary::from_slice(&[4.0, 1.0, 3.0, 2.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn median_is_the_half_quantile() {
        for data in [
            vec![7.0],
            vec![4.0, 1.0, 3.0, 2.0],
            vec![9.0, 2.0, 5.0, 1.0, 8.0],
            vec![1.5, 1.5, 2.5, 100.0, -3.0, 0.0],
        ] {
            let s = Summary::from_slice(&data);
            assert_eq!(s.median, quantile(&data, 0.5).unwrap());
        }
    }

    #[test]
    fn singleton_sample() {
        let s = Summary::from_slice(&[7.0]);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.ci95(), (7.0, 7.0));
    }

    #[test]
    fn from_u64_converts() {
        let s = Summary::from_u64(&[10, 20, 30]);
        assert!((s.mean - 20.0).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let data: Vec<f64> = (0..300).map(|i| (i % 3) as f64 + 1.0).collect();
        let large = Summary::from_slice(&data);
        let w = |s: &Summary| s.ci95().1 - s.ci95().0;
        assert!(w(&large) < w(&small));
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), Ok(1.0));
        assert_eq!(quantile(&data, 1.0), Ok(4.0));
        assert!((quantile(&data, 0.5).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_quantile_is_an_error_not_a_panic() {
        assert_eq!(quantile(&[], 0.5), Err(EmptySample));
        assert!(EmptySample.to_string().contains("empty"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::from_slice(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Summary::from_slice(&[1.0, f64::NAN]);
    }
}
