//! Structured run telemetry for the `eproc` engine.
//!
//! The executor runs million-trial ensembles as pure functions of their
//! spec — which makes the *artifacts* perfectly reproducible but the
//! *runs* opaque: without instrumentation there is no way to see where
//! wall time goes (graph generation vs walking vs aggregation), whether
//! the work-stealing pool is balanced, or how far a long sweep has
//! progressed. This crate is the event-emission spine that fixes that,
//! designed so observation can never perturb the deterministic artifact
//! path:
//!
//! * [`Event`] / [`EventKind`] — the structured run events an executor
//!   emits: run started, per-graph builds, block claimed/completed
//!   (family, group, worker, trial count, walk steps, generation time
//!   and retry count), aggregation merged, run finished. Every event
//!   serialises to one strict RFC-8259 JSON line ([`Event::to_jsonl`]).
//! * [`TelemetrySink`] — the consumer trait. The default [`NullSink`]
//!   reports itself disabled, so an instrumented hot loop checks one
//!   boolean and skips event construction entirely; uninstrumented runs
//!   pay nothing. [`Tee`] fans one event stream out to several sinks.
//! * [`Stopwatch`] — the monotonic span/stage timer events are stamped
//!   with.
//! * [`Counters`] — per-worker/global atomic tallies shared by the
//!   built-in sinks.
//! * [`ProgressSink`] — a live terminal renderer (blocks done/total,
//!   trials/sec, steps/sec, ETA) writing to stderr.
//! * [`JsonlSink`] — an append-only JSONL event-log writer.
//! * [`SummarySink`] / [`TelemetrySummary`] — a post-run roll-up:
//!   wall-time breakdown by stage (including checkpoint I/O), per-worker
//!   utilization and block counts, total trials and steps, and blocks
//!   retried after isolated failures — written as the
//!   `<artifact>.telemetry.json` sidecar.
//! * [`write_atomic`] — the crash-safe write-temp-then-rename helper
//!   every persisted artifact in the workspace goes through, so an
//!   interrupted process never leaves a truncated file behind.
//!
//! The crate is intentionally dependency-free (std only) and knows
//! nothing about graphs or walks: events carry plain labels and
//! integers, so any executor-shaped producer can emit them and any
//! future consumer (the planned `eproc serve` progress stream) can
//! subscribe by implementing [`TelemetrySink`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod event;
mod fsio;
mod jsonl;
mod progress;
mod sink;
mod summary;
mod timer;

pub use counters::{Counters, CountersSnapshot};
pub use event::{Event, EventKind, ShardId};
pub use fsio::write_atomic;
pub use jsonl::JsonlSink;
pub use progress::ProgressSink;
pub use sink::{NullSink, Tee, TelemetrySink};
pub use summary::{SummarySink, TelemetrySummary, WorkerSummary};
pub use timer::Stopwatch;
