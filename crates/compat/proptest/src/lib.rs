//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crate registry, so this crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`ProptestConfig`], and the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//! [`prop_assume!`] macros.
//!
//! Cases are generated from a deterministic per-test seed. Failing inputs
//! are reported via panic message; there is **no shrinking** — failures
//! print the generated values' debug representation instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// The RNG driving case generation.
pub type TestRng = SmallRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

pub mod test_runner {
    //! Case outcome plumbing.

    use std::fmt;

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed: the property does not hold.
        Fail(String),
        /// The case was rejected by `prop_assume!` and should be retried.
        Reject,
    }

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Rejection (assume violated).
        pub fn reject() -> TestCaseError {
            TestCaseError::Reject
        }

        /// `true` for rejections.
        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
                TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
            }
        }
    }

    /// Result alias used by generated test closures.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u16, u8, i64, i32, f64);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_inclusive_strategy!(usize, u64, u32, u16, u8);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

pub mod collection {
    //! Collection strategies.

    use super::{Rng, Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// Admissible lengths for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Creates the case-generation RNG for a derived seed. Used by the
/// [`proptest!`] expansion so generated code needs no `rand` dependency.
pub fn new_rng(seed: u64) -> TestRng {
    use rand::SeedableRng;
    TestRng::seed_from_u64(seed)
}

/// Deterministic per-test seed from the test's name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a, then mixed once so similar names diverge.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ 0x9e37_79b9_7f4a_7c15
}

/// Asserts a boolean property inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Declares property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::new_rng(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result: $crate::test_runner::TestCaseResult = (|| {
                    $(let $arg = $arg;)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match result {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err(e) if e.is_reject() => {
                        rejected += 1;
                        assert!(
                            rejected < 256 * config.cases.max(4),
                            "too many prop_assume! rejections in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err(e) => {
                        panic!(
                            "proptest case {} of {} failed in {}: {}",
                            accepted + 1,
                            config.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = (2usize..24, collection::vec((0usize..24, 0usize..24), 0..60));
        for _ in 0..200 {
            let (n, pairs) = strat.generate(&mut rng);
            assert!((2..24).contains(&n));
            assert!(pairs.len() < 60);
            assert!(pairs.iter().all(|&(a, b)| a < 24 && b < 24));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = (1usize..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
        assert_eq!(crate::seed_for("x"), crate::seed_for("x"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_checks(x in 0usize..100, y in 0u64..10) {
            prop_assert!(x < 100);
            prop_assert_eq!(y / 10, 0);
            prop_assert_ne!(x + 1, x);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn early_ok_return_is_allowed(x in 0usize..4) {
            if x == 0 {
                return Ok(());
            }
            prop_assert!(x > 0);
        }
    }
}
