//! Property tests for the bound functions: monotonicity and consistency
//! relations that follow from the paper's statements.

use eproc_theory::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn theorem1_monotone(
        n in 4usize..1_000_000,
        l in 1.0f64..100.0,
        gap in 0.01f64..1.0,
    ) {
        let base = theorem1_vertex_cover_bound(n, l, gap);
        // Larger ℓ or larger gap → smaller bound; more vertices → larger.
        prop_assert!(theorem1_vertex_cover_bound(n, l * 2.0, gap) <= base);
        prop_assert!(theorem1_vertex_cover_bound(n, l, (gap * 1.5).min(1.0)) <= base);
        prop_assert!(theorem1_vertex_cover_bound(n * 2, l, gap) >= base);
        // Never below n (the additive linear term).
        prop_assert!(base >= n as f64);
    }

    #[test]
    fn theorem3_monotone(
        m in 10usize..1_000_000,
        n in 10usize..1_000_000,
        girth in 3usize..30,
        delta in 2usize..16,
        gap in 0.01f64..1.0,
    ) {
        let base = theorem3_edge_cover_bound(m, n, girth, delta, gap);
        prop_assert!(theorem3_edge_cover_bound(m, n, girth + 1, delta, gap) <= base);
        prop_assert!(theorem3_edge_cover_bound(m, n, girth, delta + 1, gap) >= base);
        prop_assert!(base >= m as f64);
    }

    #[test]
    fn lower_bounds_consistent(n in 3usize..10_000_000) {
        // Radzik's explicit bound is weaker than Feige's asymptotic one.
        prop_assert!(radzik_lower_bound(n) <= feige_lower_bound(n));
        prop_assert!(radzik_lower_bound(n) >= 0.0);
    }

    #[test]
    fn lemma6_is_corollary9_for_singletons(
        m in 10usize..100_000,
        d_v in 1usize..20,
        gap in 0.01f64..1.0,
    ) {
        prop_assume!(d_v <= 2 * m);
        let pi_v = d_v as f64 / (2 * m) as f64;
        let l6 = lemma6_hitting_bound(pi_v, gap);
        let c9 = corollary9_set_hitting_bound(m, d_v, gap);
        prop_assert!((l6 - c9).abs() < 1e-6 * l6);
    }

    #[test]
    fn lemma13_tail_is_a_probability_decay(
        m in 100usize..100_000,
        d_s in 1usize..50,
        gap in 0.01f64..1.0,
        mult in 1.0f64..20.0,
    ) {
        let t0 = lemma13_min_t(d_s, m, gap);
        let p1 = lemma13_unvisited_tail(t0 * mult, d_s, m, gap);
        let p2 = lemma13_unvisited_tail(t0 * mult * 2.0, d_s, m, gap);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 <= p1);
        // Squaring law: doubling t squares the bound.
        prop_assert!((p2 - p1 * p1).abs() < 1e-9 * (1.0 + p1));
    }

    #[test]
    fn friedman_decreases_with_degree(r in 3usize..40, eps in 0.0f64..0.5) {
        let b1 = friedman_lambda_bound(r, eps);
        let b2 = friedman_lambda_bound(r + 1, eps);
        prop_assert!(b2 < b1, "bound must shrink with degree: {b1} -> {b2}");
        prop_assert!(b1 > 0.0);
    }

    #[test]
    fn ramanujan_matches_friedman_at_eps0(p in 2usize..60) {
        let rm = ramanujan_lambda_bound(p);
        let fr = friedman_lambda_bound(p + 1, 0.0);
        prop_assert!((rm - fr).abs() < 1e-12);
    }

    #[test]
    fn p2_bound_grows_logarithmically(n in 16usize..10_000_000, r in 2usize..20) {
        let l = p2_l_good_bound(n, r);
        let l4 = p2_l_good_bound(n * n, r); // ln(n²) = 2 ln n
        prop_assert!((l4 - 2.0 * l).abs() < 1e-9);
    }

    #[test]
    fn lemma15_dominates_m(
        n in 10usize..100_000,
        girth_like_l in 1.0f64..50.0,
        gap in 0.01f64..1.0,
    ) {
        let m = 2 * n;
        let tau = lemma15_tau_star(m, n, 4, 4, girth_like_l, gap);
        prop_assert!(tau >= m as f64);
    }

    #[test]
    fn kklv_monotone_in_both(commute in 1.0f64..1e6, s in 2usize..1000) {
        let base = kklv_lower_bound(commute, s);
        prop_assert!(kklv_lower_bound(commute * 2.0, s) >= base);
        prop_assert!(kklv_lower_bound(commute, s * 2) >= base);
    }
}
