//! Lubotzky–Phillips–Sarnak (LPS) Ramanujan graphs `X^{p,q}`.
//!
//! Reference \[11\] of the paper. These are the canonical *high girth, even
//! degree expanders* of the paper's title: for a prime `p ≡ 1 (mod 4)` the
//! graph is `(p+1)`-regular — even degree for `p = 5, 13, 17, …` — with
//! second adjacency eigenvalue `≤ 2√p` (Ramanujan) and girth `Ω(log n)`:
//!
//! * `girth ≥ 2 log_p q` when `(p|q) = 1` (non-bipartite, vertex set
//!   `PSL(2, F_q)`, `n = q(q²-1)/2`),
//! * `girth ≥ 4 log_p q - log_p 4` when `(p|q) = -1` (bipartite, vertex set
//!   `PGL(2, F_q)`, `n = q(q²-1)`).
//!
//! Construction: the `p + 1` integer quaternions `α = a₀ + a₁i + a₂j + a₃k`
//! with `|α|² = p`, `a₀ > 0` odd and `a₁, a₂, a₃` even are mapped to
//! `PGL(2, F_q)` matrices
//! `[[a₀ + ι a₁, a₂ + ι a₃], [-a₂ + ι a₃, a₀ - ι a₁]]` where `ι² = -1 (mod
//! q)`; the graph is the Cayley graph of the generated subgroup. The
//! generator set is symmetric (conjugate quaternions are inverse modulo
//! scalars) so the graph is undirected.

use crate::csr::Graph;
use crate::error::GraphError;
use std::collections::HashMap;

/// Validated parameters for [`lps_ramanujan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpsParams {
    /// Degree parameter: the graph is `(p+1)`-regular.
    pub p: u64,
    /// Field size: vertices are elements of `PSL(2, F_q)` or `PGL(2, F_q)`.
    pub q: u64,
}

impl LpsParams {
    /// Validates `p`, `q`: distinct primes `≡ 1 (mod 4)` with `q > 2√p`.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] describing the violated condition.
    pub fn new(p: u64, q: u64) -> Result<LpsParams, GraphError> {
        let reject = |reason: String| Err(GraphError::InvalidParameter { reason });
        if !is_prime(p) {
            return reject(format!("p = {p} is not prime"));
        }
        if !is_prime(q) {
            return reject(format!("q = {q} is not prime"));
        }
        if p % 4 != 1 {
            return reject(format!("p = {p} must be ≡ 1 (mod 4)"));
        }
        if q % 4 != 1 {
            return reject(format!("q = {q} must be ≡ 1 (mod 4)"));
        }
        if p == q {
            return reject(format!("p and q must be distinct, both are {p}"));
        }
        if q * q <= 4 * p {
            return reject(format!("q = {q} must exceed 2√p = 2√{p}"));
        }
        if q > u16::MAX as u64 {
            return reject(format!(
                "q = {q} too large (vertex count would exceed memory)"
            ));
        }
        Ok(LpsParams { p, q })
    }

    /// `true` if `p` is a quadratic residue mod `q`; the graph is then
    /// non-bipartite on `PSL(2, F_q)`.
    pub fn p_is_residue(&self) -> bool {
        mod_pow(self.p % self.q, (self.q - 1) / 2, self.q) == 1
    }

    /// The number of vertices the construction yields:
    /// `q(q²-1)/2` (residue case) or `q(q²-1)` (non-residue case).
    pub fn vertex_count(&self) -> usize {
        let q = self.q as usize;
        let full = q * (q * q - 1);
        if self.p_is_residue() {
            full / 2
        } else {
            full
        }
    }

    /// Degree of the graph, `p + 1`.
    pub fn degree(&self) -> usize {
        (self.p + 1) as usize
    }

    /// The girth lower bound from \[11\]: `2 log_p q` (residue case) or
    /// `4 log_p q - log_p 4` (non-residue, bipartite case).
    pub fn girth_lower_bound(&self) -> f64 {
        let lpq = (self.q as f64).ln() / (self.p as f64).ln();
        if self.p_is_residue() {
            2.0 * lpq
        } else {
            4.0 * lpq - 4f64.ln() / (self.p as f64).ln()
        }
    }
}

/// Deterministic trial-division primality test (parameters are small).
fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x.is_multiple_of(2) {
        return x == 2;
    }
    let mut d = 3u64;
    while d * d <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

fn mod_pow(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    let mut acc = 1u64;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % modulus;
        }
        base = base * base % modulus;
        exp >>= 1;
    }
    acc
}

/// Multiplicative inverse mod prime `q` via Fermat.
fn mod_inv(x: u64, q: u64) -> u64 {
    debug_assert!(!x.is_multiple_of(q));
    mod_pow(x, q - 2, q)
}

/// Smallest `ι` with `ι² ≡ -1 (mod q)`; exists since `q ≡ 1 (mod 4)`.
fn sqrt_minus_one(q: u64) -> u64 {
    (2..q)
        .find(|&x| x * x % q == q - 1)
        .expect("q ≡ 1 (mod 4) has a square root of -1")
}

/// A matrix in `PGL(2, F_q)`, kept in canonical projective form: scaled so
/// that its first nonzero entry (row-major) is 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ProjMat {
    a: u16,
    b: u16,
    c: u16,
    d: u16,
}

impl ProjMat {
    fn canonical(a: u64, b: u64, c: u64, d: u64, q: u64) -> ProjMat {
        let entries = [a % q, b % q, c % q, d % q];
        let pivot = entries
            .iter()
            .copied()
            .find(|&x| x != 0)
            .expect("zero matrix is not projective");
        let inv = mod_inv(pivot, q);
        let s = |x: u64| (x * inv % q) as u16;
        ProjMat {
            a: s(entries[0]),
            b: s(entries[1]),
            c: s(entries[2]),
            d: s(entries[3]),
        }
    }

    fn mul(self, rhs: ProjMat, q: u64) -> ProjMat {
        let (a, b, c, d) = (self.a as u64, self.b as u64, self.c as u64, self.d as u64);
        let (e, f, g, h) = (rhs.a as u64, rhs.b as u64, rhs.c as u64, rhs.d as u64);
        ProjMat::canonical(
            a * e + b * g,
            a * f + b * h,
            c * e + d * g,
            c * f + d * h,
            q,
        )
    }

    fn identity() -> ProjMat {
        ProjMat {
            a: 1,
            b: 0,
            c: 0,
            d: 1,
        }
    }
}

/// All `p + 1` generator quaternions `(a0, a1, a2, a3)` with
/// `a0² + a1² + a2² + a3² = p`, `a0 > 0` odd, `a1, a2, a3` even.
fn generator_quaternions(p: i64) -> Vec<[i64; 4]> {
    let bound = (p as f64).sqrt() as i64 + 1;
    let mut out = Vec::new();
    let mut a0 = 1;
    while a0 * a0 <= p {
        let evens = |limit: i64| -> Vec<i64> {
            let mut v = vec![0];
            let mut e = 2;
            while e * e <= limit {
                v.push(e);
                v.push(-e);
                e += 2;
            }
            v
        };
        let rem0 = p - a0 * a0;
        for a1 in evens(rem0) {
            let rem1 = rem0 - a1 * a1;
            if rem1 < 0 {
                continue;
            }
            for a2 in evens(rem1) {
                let rem2 = rem1 - a2 * a2;
                if rem2 < 0 {
                    continue;
                }
                for a3 in evens(rem2) {
                    if a1 * a1 + a2 * a2 + a3 * a3 == rem0 {
                        out.push([a0, a1, a2, a3]);
                    }
                }
            }
        }
        a0 += 2;
    }
    debug_assert!(bound > 0);
    out
}

/// Builds the LPS Ramanujan graph `X^{p,q}`.
///
/// The graph is `(p+1)`-regular, connected and simple; for `p = 5` the
/// degree is 6 — an even-degree high-girth expander exactly as required by
/// the paper's Theorem 1 / Theorem 3 headline setting.
///
/// Practical sizes: `(p, q) = (5, 13)` → 2184 vertices (bipartite),
/// `(5, 17)` → 4896 (bipartite), `(5, 29)` → 12 180 (non-bipartite),
/// `(5, 37)` → 25 308 (non-bipartite).
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `(p, q)` fail the conditions of
/// [`LpsParams::new`], or (defensively) if the construction yields an
/// inconsistent Cayley graph.
///
/// # Example
///
/// ```
/// use eproc_graphs::generators::lps_ramanujan;
///
/// let g = lps_ramanujan(5, 13)?;
/// assert_eq!(g.n(), 2184);
/// assert_eq!(g.degree(0), 6);
/// # Ok::<(), eproc_graphs::GraphError>(())
/// ```
pub fn lps_ramanujan(p: u64, q: u64) -> Result<Graph, GraphError> {
    let params = LpsParams::new(p, q)?;
    let iota = sqrt_minus_one(q);
    let quats = generator_quaternions(p as i64);
    if quats.len() != (p + 1) as usize {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "found {} generator quaternions for p = {p}, expected {}",
                quats.len(),
                p + 1
            ),
        });
    }
    // Map quaternions to PGL(2, F_q).
    let qi = q as i64;
    let lift = |x: i64| -> u64 { (x.rem_euclid(qi)) as u64 };
    let gens: Vec<ProjMat> = quats
        .iter()
        .map(|&[a0, a1, a2, a3]| {
            let a = lift(a0) + iota * lift(a1) % q;
            let b = lift(a2) + iota * lift(a3) % q;
            let c = lift(-a2) + iota * lift(a3) % q;
            let d = lift(a0) + (q - iota * lift(a1) % q);
            ProjMat::canonical(a, b, c, d, q)
        })
        .collect();

    // BFS closure of the generated subgroup.
    let expected_n = params.vertex_count();
    let mut index: HashMap<ProjMat, u32> = HashMap::with_capacity(expected_n);
    let mut elements: Vec<ProjMat> = Vec::with_capacity(expected_n);
    let id = ProjMat::identity();
    index.insert(id, 0);
    elements.push(id);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(expected_n * params.degree() / 2);
    let mut head = 0usize;
    while head < elements.len() {
        let u_mat = elements[head];
        let u = head;
        head += 1;
        for g in &gens {
            let v_mat = u_mat.mul(*g, q);
            let next_id = elements.len() as u32;
            let v = *index.entry(v_mat).or_insert_with(|| {
                elements.push(v_mat);
                next_id
            }) as usize;
            if u == v {
                return Err(GraphError::InvalidParameter {
                    reason: format!(
                        "LPS({p},{q}) produced a self-loop; parameters violate q > 2√p margin"
                    ),
                });
            }
            if u < v {
                edges.push((u, v));
            }
        }
    }
    if elements.len() != expected_n {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "LPS({p},{q}) closure has {} elements, expected {expected_n}",
                elements.len()
            ),
        });
    }
    let graph = Graph::from_edges(elements.len(), &edges)?;
    // Defensive regularity check: u < v dedup assumed no parallel arcs.
    if !(0..graph.n()).all(|v| graph.degree(v) == params.degree()) {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "LPS({p},{q}) is not {}-regular; construction invariant violated",
                params.degree()
            ),
        });
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{bipartite, connectivity, degrees, girth};

    #[test]
    fn params_validate() {
        assert!(LpsParams::new(5, 13).is_ok());
        assert!(LpsParams::new(4, 13).is_err()); // p not prime
        assert!(LpsParams::new(7, 13).is_err()); // p ≡ 3 (mod 4)
        assert!(LpsParams::new(5, 11).is_err()); // q ≡ 3 (mod 4)
        assert!(LpsParams::new(5, 5).is_err()); // p == q
        assert!(LpsParams::new(13, 5).is_err()); // q < 2√p
    }

    #[test]
    fn legendre_symbol_cases() {
        // 5 is a non-residue mod 13 and mod 17, a residue mod 29 and 41.
        assert!(!LpsParams::new(5, 13).unwrap().p_is_residue());
        assert!(!LpsParams::new(5, 17).unwrap().p_is_residue());
        assert!(LpsParams::new(5, 29).unwrap().p_is_residue());
        assert!(LpsParams::new(5, 41).unwrap().p_is_residue());
    }

    #[test]
    fn vertex_counts() {
        assert_eq!(LpsParams::new(5, 13).unwrap().vertex_count(), 13 * 168);
        assert_eq!(LpsParams::new(5, 29).unwrap().vertex_count(), 29 * 840 / 2);
    }

    #[test]
    fn quaternion_count_is_p_plus_one() {
        assert_eq!(generator_quaternions(5).len(), 6);
        assert_eq!(generator_quaternions(13).len(), 14);
        assert_eq!(generator_quaternions(17).len(), 18);
    }

    #[test]
    fn sqrt_minus_one_works() {
        for q in [5u64, 13, 17, 29, 37, 41] {
            let i = sqrt_minus_one(q);
            assert_eq!(i * i % q, q - 1, "q = {q}");
        }
    }

    #[test]
    fn x_5_13_structure() {
        let g = lps_ramanujan(5, 13).unwrap();
        assert_eq!(g.n(), 2184);
        assert!(degrees::is_regular(&g, 6));
        assert!(degrees::is_even_degree(&g));
        assert!(connectivity::is_connected(&g));
        assert!(!g.has_parallel_edges());
        // Non-residue case: bipartite, girth >= 4 log_5 13 - log_5 4 ≈ 5.5.
        assert!(bipartite::is_bipartite(&g));
        let bound = LpsParams::new(5, 13).unwrap().girth_lower_bound().ceil() as usize;
        assert!(bound >= 6);
        assert!(
            girth::girth_at_most(&g, bound - 1).is_none(),
            "no cycle shorter than {bound}"
        );
    }

    #[test]
    fn x_5_29_nonbipartite() {
        let g = lps_ramanujan(5, 29).unwrap();
        assert_eq!(g.n(), 12180);
        assert!(degrees::is_regular(&g, 6));
        assert!(connectivity::is_connected(&g));
        assert!(!bipartite::is_bipartite(&g));
        // Residue case: girth >= 2 log_5 29 ≈ 4.18, so >= 5.
        assert!(girth::girth_at_most(&g, 4).is_none());
    }

    #[test]
    fn x_13_17_even_degree_14() {
        let g = lps_ramanujan(13, 17).unwrap();
        assert!(degrees::is_regular(&g, 14));
        // 13 ≡ 16 ≡ (±4)² (mod 17) is a residue → PSL, half order.
        assert!(LpsParams::new(13, 17).unwrap().p_is_residue());
        assert_eq!(g.n(), 17 * (17 * 17 - 1) / 2);
        assert!(connectivity::is_connected(&g));
    }

    #[test]
    fn is_prime_small_cases() {
        let primes: Vec<u64> = (0..60).filter(|&x| is_prime(x)).collect();
        assert_eq!(
            primes,
            vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]
        );
    }
}
