//! **T-stars**: §5's isolated-blue-star census on odd-degree regular
//! graphs.
//!
//! For random 3-regular graphs the paper's heuristic predicts that a
//! `(1/2)³ = 1/8` fraction of vertices is stranded as isolated blue stars,
//! forcing coupon-collector behaviour (`Θ(n log n)` cover). We track star
//! formation over full runs for `r ∈ {3, 5, 7}` and contrast with the
//! even degrees, which strand none.

use eproc_bench::{rng_for, save_table, Config, Scale};
use eproc_core::blue::track_isolated_stars;
use eproc_core::rule::UniformRule;
use eproc_core::EProcess;
use eproc_graphs::generators;
use eproc_stats::{SeedSequence, Summary, TextTable};
use eproc_theory::star_fraction_heuristic_r3;

const REPS: usize = 5;

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    println!("Isolated blue stars (Section 5): fraction of vertices stranded as stars\n");
    let mut table = TextTable::new(vec!["r", "n", "stars/n", "sd", "CV/(n ln n)", "heuristic"]);
    let sizes: Vec<usize> = match config.scale {
        Scale::Quick => vec![2_000, 8_000],
        Scale::Paper => vec![8_000, 32_000, 128_000],
    };
    for &r in &[3usize, 4, 5, 6, 7] {
        for &n in &sizes {
            let mut graph_rng = rng_for(seeds.derive(&[r as u64, n as u64]));
            let g = generators::connected_random_regular(n, r, &mut graph_rng).unwrap();
            let cap = (2_000.0 * n as f64 * (n as f64).ln()) as u64;
            let mut fractions = Vec::with_capacity(REPS);
            let mut covers = Vec::with_capacity(REPS);
            for rep in 0..REPS {
                let mut rng = rng_for(seeds.derive(&[r as u64, n as u64, rep as u64]));
                let mut walk = EProcess::new(&g, 0, UniformRule::new());
                let census = track_isolated_stars(&mut walk, cap, &mut rng);
                let cv = census.steps_to_vertex_cover.expect("cover must finish");
                fractions.push(census.ever_star_centers.len() as f64 / n as f64);
                covers.push(cv as f64);
            }
            let f = Summary::from_slice(&fractions);
            let cv = Summary::from_slice(&covers);
            let heuristic = if r == 3 {
                format!("{:.3}", star_fraction_heuristic_r3())
            } else if r % 2 == 0 {
                "0 (even)".into()
            } else {
                "-".into()
            };
            table.push_row(vec![
                r.to_string(),
                n.to_string(),
                format!("{:.4}", f.mean),
                format!("{:.4}", f.std_dev),
                format!("{:.3}", cv.mean / (n as f64 * (n as f64).ln())),
                heuristic,
            ]);
        }
    }
    println!("{table}");
    let p = save_table("table_stars", &table).expect("write csv");
    println!("csv: {}", p.display());
}
