//! Deterministic seed derivation.
//!
//! Every experiment takes one base seed; per-cell seeds (per `n`, degree,
//! repetition, …) are derived with SplitMix64 so runs are reproducible and
//! independent-looking regardless of sweep order.

/// SplitMix64-based seed sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    base: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `base`.
    pub fn new(base: u64) -> SeedSequence {
        SeedSequence { base }
    }

    /// Derives the seed for a coordinate tuple (e.g. `[degree, n, rep]`).
    /// Different tuples give statistically unrelated seeds; the same tuple
    /// always gives the same seed.
    pub fn derive(&self, coordinates: &[u64]) -> u64 {
        let mut state = splitmix(self.base ^ 0x6a09_e667_f3bc_c909);
        for &c in coordinates {
            state = splitmix(state ^ splitmix(c.wrapping_add(0x9e37_79b9_7f4a_7c15)));
        }
        state
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let s = SeedSequence::new(42);
        assert_eq!(s.derive(&[1, 2, 3]), s.derive(&[1, 2, 3]));
    }

    #[test]
    fn coordinates_matter() {
        let s = SeedSequence::new(42);
        assert_ne!(s.derive(&[1, 2, 3]), s.derive(&[1, 2, 4]));
        assert_ne!(s.derive(&[1, 2]), s.derive(&[2, 1]));
        assert_ne!(s.derive(&[]), s.derive(&[0]));
    }

    #[test]
    fn base_matters() {
        assert_ne!(
            SeedSequence::new(1).derive(&[5]),
            SeedSequence::new(2).derive(&[5])
        );
    }

    #[test]
    fn outputs_look_spread() {
        // Crude avalanche check: low bits differ across consecutive coords.
        let s = SeedSequence::new(7);
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64 {
            low_bits.insert(s.derive(&[i]) & 0xff);
        }
        assert!(
            low_bits.len() > 40,
            "only {} distinct low bytes",
            low_bits.len()
        );
    }
}
