//! The monomorphized kernel must be a pure optimisation: for any graph,
//! process, observer set and seed, [`run_observed`] driving a concrete
//! walk with a tuple observer set must produce the **identical `Step`
//! stream** and the identical [`ObservedRun`] as the fully dynamic
//! [`run_observed_dyn`] path (virtual `advance`, dyn-observer slice,
//! all-observers `satisfied()` poll). Seeded cases pin the exact shapes
//! the engine uses; the proptest sweeps random graphs × processes ×
//! seeds.

use eproc_core::choice::RandomWalkWithChoice;
use eproc_core::cover::CoverTarget;
use eproc_core::fair::LeastUsedFirst;
use eproc_core::observe::{
    run_observed, run_observed_dyn, BlanketObserver, CoverObserver, HitTarget, HittingObserver,
    Metrics, ObservedRun, Observer, PhaseObserver, StopWhen,
};
use eproc_core::rotor::RotorRouter;
use eproc_core::rule::UniformRule;
use eproc_core::srw::{LazyRandomWalk, SimpleRandomWalk};
use eproc_core::vprocess::VProcess;
use eproc_core::{EProcess, Step, StepKind, WalkProcess};
use eproc_graphs::{generators, Graph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Records the raw step stream; always satisfied so it never extends the
/// run beyond the real observers' stop condition.
#[derive(Debug, Default)]
struct StepRecorder {
    steps: Vec<Step>,
}

impl Observer for StepRecorder {
    fn begin(&mut self, _g: &Graph, _start: usize) {
        self.steps.clear();
    }

    fn on_step(&mut self, _t: u64, step: &Step) {
        self.steps.push(*step);
    }

    fn satisfied(&self) -> bool {
        true
    }

    fn finish(&mut self) -> Metrics {
        // A recorder has no metric of its own; report a trivially empty
        // hitting measurement.
        Metrics::Hitting(eproc_core::observe::HittingMetrics {
            target: 0,
            steps_to_hit: None,
        })
    }
}

fn build_walk<'g>(g: &'g Graph, which: usize) -> Box<dyn WalkProcess + 'g> {
    match which % 7 {
        0 => Box::new(EProcess::new(g, 0, UniformRule::new())),
        1 => Box::new(SimpleRandomWalk::new(g, 0)),
        2 => Box::new(LazyRandomWalk::new(g, 0)),
        3 => Box::new(RotorRouter::new(g, 0)),
        4 => Box::new(RandomWalkWithChoice::new(g, 0, 2)),
        5 => Box::new(LeastUsedFirst::new(g, 0)),
        _ => Box::new(VProcess::new(g, 0)),
    }
}

/// Runs the same (graph, process, seed, stop, cap) through the
/// monomorphized tuple kernel and the dyn path; asserts identical step
/// streams, runs, metrics and RNG consumption.
fn assert_kernel_equivalence(g: &Graph, which: usize, seed: u64, stop: StopWhen, cap: u64) {
    // Monomorphized: concrete-ish walk (Box<dyn> here, but stepped through
    // the generic driver), tuple observer set, concrete RNG.
    let mut rng_a = SmallRng::seed_from_u64(seed);
    let mut walk_a = build_walk(g, which);
    let mut cover_a = CoverObserver::new(CoverTarget::Both);
    let mut hit_a = HittingObserver::new(HitTarget::LastVertex);
    let mut rec_a = StepRecorder::default();
    let run_a: ObservedRun = run_observed(
        &mut walk_a,
        &mut (&mut cover_a, &mut hit_a, &mut rec_a),
        stop,
        cap,
        &mut rng_a,
    );

    // Fully dynamic baseline.
    let mut rng_b = SmallRng::seed_from_u64(seed);
    let mut walk_b = build_walk(g, which);
    let mut cover_b = CoverObserver::new(CoverTarget::Both);
    let mut hit_b = HittingObserver::new(HitTarget::LastVertex);
    let mut rec_b = StepRecorder::default();
    let run_b = run_observed_dyn(
        &mut *walk_b,
        &mut [&mut cover_b, &mut hit_b, &mut rec_b],
        stop,
        cap,
        &mut rng_b,
    );

    assert_eq!(run_a, run_b, "ObservedRun diverged (process {which})");
    assert_eq!(
        rec_a.steps, rec_b.steps,
        "Step stream diverged (process {which})"
    );
    assert_eq!(cover_a.cover_metrics(), cover_b.cover_metrics());
    assert_eq!(hit_a.steps_to_hit(), hit_b.steps_to_hit());
    assert_eq!(walk_a.steps(), walk_b.steps());
    assert_eq!(walk_a.current(), walk_b.current());
    // Both paths consumed the same number of RNG draws.
    assert_eq!(rng_a.next_u64(), rng_b.next_u64());
}

#[test]
fn seeded_equivalence_across_all_processes() {
    let mut graph_rng = SmallRng::seed_from_u64(1);
    let g = generators::connected_random_regular(80, 4, &mut graph_rng).unwrap();
    for which in 0..7 {
        for seed in [3u64, 4, 5] {
            assert_kernel_equivalence(&g, which, seed, StopWhen::AllSatisfied, 10_000_000);
        }
    }
}

#[test]
fn seeded_equivalence_under_truncation() {
    let g = generators::torus2d(6, 6);
    for cap in [0u64, 1, 17, 500] {
        for which in 0..7 {
            assert_kernel_equivalence(&g, which, 9, StopWhen::Cap, cap);
        }
    }
}

#[test]
fn fully_monomorphized_eprocess_matches_dyn_trajectory() {
    // The sharpest form: concrete EProcess value (no Box at all) against
    // the dyn driver, with the full five-observer tuple.
    let mut graph_rng = SmallRng::seed_from_u64(2);
    let g = generators::connected_random_regular(60, 3, &mut graph_rng).unwrap();
    for seed in 0..5u64 {
        let mut rng_a = SmallRng::seed_from_u64(100 + seed);
        let mut walk_a = EProcess::new(&g, 0, UniformRule::new());
        let mut cover_a = CoverObserver::new(CoverTarget::Both);
        let mut blanket_a = BlanketObserver::new(0.3).unwrap();
        let mut phases_a = PhaseObserver::new();
        let mut hit_a = HittingObserver::new(HitTarget::LastVertex);
        let mut rec_a = StepRecorder::default();
        let run_a = run_observed(
            &mut walk_a,
            &mut (
                &mut cover_a,
                &mut blanket_a,
                &mut phases_a,
                &mut hit_a,
                &mut rec_a,
            ),
            StopWhen::AllSatisfied,
            10_000_000,
            &mut rng_a,
        );

        let mut rng_b = SmallRng::seed_from_u64(100 + seed);
        let mut walk_b = EProcess::new(&g, 0, UniformRule::new());
        let mut cover_b = CoverObserver::new(CoverTarget::Both);
        let mut blanket_b = BlanketObserver::new(0.3).unwrap();
        let mut phases_b = PhaseObserver::new();
        let mut hit_b = HittingObserver::new(HitTarget::LastVertex);
        let mut rec_b = StepRecorder::default();
        let run_b = run_observed_dyn(
            &mut walk_b,
            &mut [
                &mut cover_b,
                &mut blanket_b,
                &mut phases_b,
                &mut hit_b,
                &mut rec_b,
            ],
            StopWhen::AllSatisfied,
            10_000_000,
            &mut rng_b,
        );

        assert_eq!(run_a, run_b, "seed {seed}");
        assert_eq!(rec_a.steps, rec_b.steps, "seed {seed}");
        assert!(rec_a.steps.iter().any(|s| s.kind == StepKind::Blue));
        assert_eq!(cover_a.cover_metrics(), cover_b.cover_metrics());
        assert_eq!(blanket_a.steps_to_blanket(), blanket_b.steps_to_blanket());
        assert_eq!(phases_a.trace(), phases_b.trace());
        assert_eq!(hit_a.steps_to_hit(), hit_b.steps_to_hit());
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random graph shape × process × seed: the tuple-observer kernel and
    /// the dyn-slice path produce identical `Step` streams and
    /// `ObservedRun`s.
    #[test]
    fn kernel_matches_dyn_path(
        shape in 0usize..4,
        which in 0usize..7,
        graph_seed in 0u64..300,
        run_seed in 0u64..300,
    ) {
        let g = match shape {
            0 => {
                let mut rng = SmallRng::seed_from_u64(graph_seed);
                generators::connected_random_regular(40, 4, &mut rng).unwrap()
            }
            1 => {
                let mut rng = SmallRng::seed_from_u64(graph_seed);
                generators::connected_random_regular(30, 3, &mut rng).unwrap()
            }
            2 => generators::hypercube(4),
            _ => generators::torus2d(5, 4),
        };
        assert_kernel_equivalence(&g, which, run_seed, StopWhen::AllSatisfied, 10_000_000);
        assert_kernel_equivalence(&g, which, run_seed, StopWhen::Cap, 64);
    }
}
