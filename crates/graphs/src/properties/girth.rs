//! Girth computation.
//!
//! Theorem 3 of the paper bounds the edge cover time of the E-process in
//! terms of the girth `g`; the LPS generator's `Ω(log n)` girth guarantee is
//! verified with [`girth_at_most`].

use crate::csr::{Graph, Vertex};

/// BFS from `root` reporting the shortest cycle-candidate
/// `dist[u] + dist[w] + 1` over non-tree arcs scanned, exploring only to
/// `depth_bound`. Every candidate is the length of a closed walk, hence at
/// least the girth; a root lying on a shortest cycle produces a candidate
/// equal to the girth.
fn bfs_candidate(
    g: &Graph,
    root: Vertex,
    depth_bound: u32,
    dist: &mut [u32],
    stamp: &mut [u32],
    round: u32,
    parent_edge: &mut [u32],
) -> Option<usize> {
    let mut best: Option<usize> = None;
    dist[root] = 0;
    stamp[root] = round;
    parent_edge[root] = u32::MAX;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        if du >= depth_bound {
            continue;
        }
        for (_, w, e) in g.ports(u) {
            if e as u32 == parent_edge[u] {
                continue;
            }
            if stamp[w] == round {
                let cand = (du + dist[w] + 1) as usize;
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            } else {
                stamp[w] = round;
                dist[w] = du + 1;
                parent_edge[w] = e as u32;
                queue.push_back(w);
            }
        }
    }
    best
}

/// The girth (length of the shortest cycle), or `None` for a forest.
/// Parallel edges form cycles of length 2.
///
/// Runs in `O(n·m)` worst case with early pruning once a short cycle is
/// found; fine for the graph sizes used in tests and tables. For a cheap
/// existence check use [`girth_at_most`].
pub fn girth(g: &Graph) -> Option<usize> {
    girth_bounded(g, usize::MAX)
}

/// Returns `Some(girth)` if the girth is `<= limit`, `None` if every cycle
/// (if any) is longer. Each BFS is truncated at depth `≈ limit/2`, so the
/// cost is `O(n · min(m, Δ^{limit/2}))`.
pub fn girth_at_most(g: &Graph, limit: usize) -> Option<usize> {
    girth_bounded(g, limit).filter(|&c| c <= limit)
}

fn girth_bounded(g: &Graph, limit: usize) -> Option<usize> {
    let n = g.n();
    let mut best: Option<usize> = None;
    let mut dist = vec![0u32; n];
    let mut stamp = vec![0u32; n];
    let mut parent_edge = vec![0u32; n];
    for (round, root) in (1..).zip(g.vertices()) {
        // A cycle of length L is found from an on-cycle root by exploring
        // to depth ceil(L/2); prune using the best found so far.
        let current_cap = best.map_or(limit, |b| b.saturating_sub(1).min(limit));
        if current_cap < 2 {
            break; // girth 2 is minimal possible (no self-loops)
        }
        let depth_bound = (current_cap as u32).div_ceil(2);
        if let Some(cand) = bfs_candidate(
            g,
            root,
            depth_bound,
            &mut dist,
            &mut stamp,
            round,
            &mut parent_edge,
        ) {
            if cand <= current_cap && best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Graph;

    #[test]
    fn cycle_girth_is_n() {
        for n in [3, 4, 7, 12] {
            assert_eq!(girth(&generators::cycle(n)), Some(n));
        }
    }

    #[test]
    fn tree_has_no_girth() {
        assert_eq!(girth(&generators::binary_tree(4)), None);
        assert_eq!(girth(&generators::path(10)), None);
    }

    #[test]
    fn named_graphs() {
        assert_eq!(girth(&generators::complete(4)), Some(3));
        assert_eq!(girth(&generators::petersen()), Some(5));
        assert_eq!(girth(&generators::hypercube(4)), Some(4));
        assert_eq!(girth(&generators::complete_bipartite(2, 3)), Some(4));
        assert_eq!(girth(&generators::torus2d(5, 5)), Some(4));
    }

    #[test]
    fn large_torus_girth_is_wrap_length() {
        // 3 x 8 torus: girth = min(3, 4) wrap... the x-wrap gives a
        // 3-cycle.
        assert_eq!(girth(&generators::torus2d(3, 8)), Some(3));
    }

    #[test]
    fn parallel_edges_give_girth_2() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (1, 2)]).unwrap();
        assert_eq!(girth(&g), Some(2));
    }

    #[test]
    fn girth_at_most_detects_and_rejects() {
        let g = generators::petersen(); // girth 5
        assert_eq!(girth_at_most(&g, 4), None);
        assert_eq!(girth_at_most(&g, 5), Some(5));
        assert_eq!(girth_at_most(&g, 10), Some(5));
    }

    #[test]
    fn girth_at_most_on_forest() {
        assert_eq!(girth_at_most(&generators::path(5), 10), None);
    }

    #[test]
    fn figure_eight_girth() {
        assert_eq!(girth(&generators::figure_eight(4)), Some(4));
    }

    #[test]
    fn disconnected_components_scanned() {
        // Triangle plus a long cycle in separate components.
        let mut edges = vec![(0, 1), (1, 2), (2, 0)];
        let off = 3;
        for i in 0..8 {
            edges.push((off + i, off + (i + 1) % 8));
        }
        let g = Graph::from_edges(11, &edges).unwrap();
        assert_eq!(girth(&g), Some(3));
    }
}
