//! Quickstart: the E-process covers an even-degree expander in Θ(n).
//!
//! Builds a random 4-regular graph (Corollary 2's setting), runs the
//! E-process and a simple random walk to vertex cover, and prints the
//! comparison the paper's headline promises: linear vs `n log n`.
//!
//! Run with: `cargo run --release --example quickstart`

use eproc::core::cover::run_to_vertex_cover;
use eproc::core::rule::UniformRule;
use eproc::core::srw::SimpleRandomWalk;
use eproc::core::EProcess;
use eproc::graphs::generators;
use eproc::theory;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = 20_000;
    let mut rng = SmallRng::seed_from_u64(42);
    println!("Building a connected random 4-regular graph on n = {n} vertices...");
    let g = generators::connected_random_regular(n, 4, &mut rng).expect("generator");
    println!("  n = {}, m = {}\n", g.n(), g.m());

    let mut eproc_walk = EProcess::new(&g, 0, UniformRule::new());
    let e_cover = run_to_vertex_cover(&mut eproc_walk, &g, &mut rng).expect("connected graph");
    println!("E-process (uniform rule A):");
    println!("  vertex cover time : {} steps", e_cover.steps);
    println!(
        "  normalised CV/n   : {:.2}",
        e_cover.steps as f64 / n as f64
    );
    println!(
        "  blue/red split    : {} blue, {} red (blue <= m = {})",
        eproc_walk.blue_steps(),
        eproc_walk.red_steps(),
        g.m()
    );

    let mut srw = SimpleRandomWalk::new(&g, 0);
    let s_cover = run_to_vertex_cover(&mut srw, &g, &mut rng).expect("connected graph");
    println!("\nSimple random walk:");
    println!("  vertex cover time : {} steps", s_cover.steps);
    println!(
        "  normalised CV/(n ln n): {:.2}",
        s_cover.steps as f64 / (n as f64 * (n as f64).ln())
    );

    println!("\nLower bounds for *any* reversible walk (Theorem 5 / Feige):");
    println!(
        "  Radzik (n/4)ln(n/2) = {:.0}",
        theory::radzik_lower_bound(n)
    );
    println!(
        "  Feige n ln n        = {:.0}",
        theory::feige_lower_bound(n)
    );
    println!(
        "\nSpeed-up of the E-process over the SRW: {:.1}x (paper: Ω(min(log n, l)))",
        s_cover.steps as f64 / e_cover.steps as f64
    );
}
