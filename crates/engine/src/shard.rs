//! Sharded execution of resampled experiments, and the `eproc merge`
//! recombination path.
//!
//! A resampled run's *(family, group)* blocks are independent work units:
//! each one samples its own graph from `(family, group)`-keyed seed
//! coordinates and streams its trials into per-process Welford
//! accumulators, with no cross-block state. [`run_shard`] exploits that
//! to partition a run across machines: shard `i` of `k` executes exactly
//! the blocks whose canonical index `family * groups + group` is
//! `≡ i (mod k)` — a deterministic residue-class partition, so the union
//! of the `k` shards is exactly the unsharded block set, with no
//! coordination and no overlap.
//!
//! The shard artifact ([`ShardReport`]) persists each block's streamed
//! [`OnlineStats`](eproc_stats::OnlineStats) accumulators and
//! [`QuantileSketch`](eproc_stats::QuantileSketch)es **bit-exactly**
//! (via the crate-internal `persist` codec): the floats are written as IEEE-754 bit
//! patterns ([`OnlineStats::to_raw`](eproc_stats::OnlineStats::to_raw)),
//! because the `m2`
//! sum of squares is not recoverable from a rounded variance and the
//! `±∞` sentinels of an empty accumulator have no decimal form.
//! [`merge_shards`] then validates the shards form one complete run
//! (same header, every residue class present, every block accounted
//! for), reassembles the blocks in canonical order and hands them to the
//! executor's own `aggregate_cells` — the identical
//! floating-point operations (and sketch compactions) in the identical
//! order an unsharded run performs — so the merged [`ExperimentReport`]
//! serialises **byte-identically** to running the whole experiment on
//! one machine (pinned by the `shard_merge` proptests).

use crate::executor::{
    aggregate_cells, run_block_isolated, validate_vertices, BlockAgg, CellInputs, EngineError,
    ExperimentReport, RunOptions, Telemetry,
};
use crate::persist::{
    json, parse_blocks, parse_rep_dims, write_blocks, write_rep_dims, PersistError, RunHeader,
};
use crate::spec::{ExperimentSpec, ResamplePlan, SpecError, Target};
use eproc_telemetry::{EventKind, NullSink, ShardId, Stopwatch, TelemetrySink};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which slice of the block space a sharded run executes: shard `index`
/// of `count` owns the blocks `≡ index (mod count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's residue class (`0..count`).
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// Parses the CLI form `i/k` (e.g. `0/4`), requiring `i < k` and
    /// `k >= 1`.
    pub fn parse(s: &str) -> Result<ShardSpec, SpecError> {
        let bad = || SpecError::new(format!("shard spec {s:?}: expected <i>/<k> with i < k"));
        let (i, k) = s.split_once('/').ok_or_else(bad)?;
        let index: usize = i.parse().map_err(|_| bad())?;
        let count: usize = k.parse().map_err(|_| bad())?;
        if count == 0 || index >= count {
            return Err(bad());
        }
        Ok(ShardSpec { index, count })
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// A merge-time failure: incompatible, incomplete or malformed shard
/// artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    message: String,
}

impl ShardError {
    fn new(message: impl Into<String>) -> ShardError {
        ShardError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ShardError {}

impl From<PersistError> for ShardError {
    fn from(e: PersistError) -> ShardError {
        ShardError::new(e.to_string())
    }
}

/// One shard's persisted share of a resampled run: the experiment header
/// (everything [`merge_shards`] needs to validate compatibility and
/// aggregate without the original spec) plus the owned blocks' streamed
/// accumulators, bit-exact.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Which residue class this artifact holds.
    pub shard: ShardSpec,
    /// Spec name.
    pub name: String,
    /// Spec description.
    pub description: String,
    /// Target measured.
    pub target: Target,
    /// Trials per cell.
    pub trials: usize,
    /// Base seed the blocks derived their streams from.
    pub base_seed: u64,
    /// Trials per resampled graph.
    pub walks_per_graph: usize,
    /// Resample groups per family.
    pub group_count: usize,
    /// `(label, family_label)` per graph family, in grid order.
    pub graphs: Vec<(String, String)>,
    /// Process labels, in grid order.
    pub processes: Vec<String>,
    /// Flattened metric column names.
    pub metric_columns: Vec<String>,
    /// `(family, n, m)` of the group-0 samples this shard built — only
    /// the families whose group-0 block this shard owns.
    pub rep_dims: Vec<(usize, usize, usize)>,
    /// The owned blocks' aggregates, sorted by canonical block index.
    pub(crate) blocks: Vec<BlockAgg>,
}

impl ShardReport {
    /// The canonical [`RunHeader`] this artifact embeds — the shared
    /// identity checked at merge and resume time.
    pub(crate) fn header(&self) -> RunHeader {
        RunHeader {
            name: self.name.clone(),
            description: self.description.clone(),
            target: self.target,
            trials: self.trials,
            base_seed: self.base_seed,
            walks_per_graph: self.walks_per_graph,
            group_count: self.group_count,
            graphs: self.graphs.clone(),
            processes: self.processes.clone(),
            metric_columns: self.metric_columns.clone(),
        }
    }
}

/// [`run_shard_with_sink`] without telemetry.
///
/// # Errors
///
/// As [`run_shard_with_sink`].
///
/// # Panics
///
/// As [`run_shard_with_sink`].
pub fn run_shard(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    shard: ShardSpec,
) -> Result<ShardReport, EngineError> {
    run_shard_with_sink(spec, opts, shard, &NullSink)
}

/// Executes shard `shard.index` of `shard.count`: the *(family, group)*
/// blocks with canonical index `≡ index (mod count)`, on `opts.threads`
/// worker threads, through the executor's own block runner (including
/// the interleaved multi-trial kernel). Emits `run_started` (carrying
/// the shard id), per-block `block_claimed`/`block_completed` and
/// `run_finished`; no `aggregation_merged` — aggregation happens at
/// [`merge_shards`] time.
///
/// Each block's accumulators are bit-identical to the ones the unsharded
/// [`crate::executor::run`] computes for the same `(spec, base_seed)`,
/// for any thread count.
///
/// # Errors
///
/// [`EngineError::Spec`] for invalid specs — including any spec
/// **without** a [`ResamplePlan`]: shared-graph runs have per-trial jobs,
/// not independent blocks, so there is nothing meaningful to partition.
/// [`EngineError::Block`] if a graph sample fails inside the pool.
///
/// # Panics
///
/// Panics if `opts.threads == 0` or a worker thread panics.
pub fn run_shard_with_sink(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    shard: ShardSpec,
    sink: &dyn TelemetrySink,
) -> Result<ShardReport, EngineError> {
    assert!(opts.threads > 0, "need at least one worker thread");
    spec.validate()?;
    let Some(plan) = spec.resample else {
        return Err(EngineError::Spec(SpecError::new(
            "sharded execution requires a resampled run (--resample / a `~` family marker): \
             shared-graph runs have no independent blocks to partition",
        )));
    };
    validate_vertices(spec, None)?;
    let tel = Telemetry::new(sink);
    let trials = spec.trials;
    let w = plan.walks_per_graph;
    let group_count = plan.groups(trials);
    let total_blocks = spec.graphs.len() * group_count;
    let owned: Vec<usize> = (0..total_blocks)
        .filter(|b| b % shard.count == shard.index)
        .collect();
    let n_proc = spec.processes.len();
    let metric_columns = spec.metric_columns();
    let n_cols = metric_columns.len();
    if tel.live {
        let owned_trials: u64 = owned
            .iter()
            .map(|b| {
                let group = b % group_count;
                let chunk = ((group + 1) * w).min(trials) - group * w;
                (chunk * n_proc) as u64
            })
            .sum();
        tel.emit(EventKind::RunStarted {
            name: spec.name.clone(),
            graphs: spec.graphs.len(),
            processes: n_proc,
            trials,
            blocks: owned.len(),
            total_trials: owned_trials,
            workers: opts.threads.min(owned.len().max(1)),
            resampled: true,
            shard: Some(ShardId {
                index: shard.index,
                count: shard.count,
            }),
        });
    }
    let next = AtomicUsize::new(0);
    let workers = opts.threads.min(owned.len().max(1));
    struct WorkerOutput {
        blocks: Vec<BlockAgg>,
        rep_dims: Vec<(usize, usize, usize)>,
        trials_run: u64,
        steps_run: u64,
    }
    type WorkerResult = Result<WorkerOutput, EngineError>;
    let collected: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let next = &next;
                let owned = &owned;
                let tel = &tel;
                scope.spawn(move || -> WorkerResult {
                    let mut blocks = Vec::new();
                    let mut rep_dims = Vec::new();
                    let mut trials_run = 0u64;
                    let mut steps_run = 0u64;
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= owned.len() {
                            break;
                        }
                        let result = run_block_isolated(
                            spec,
                            opts.base_seed,
                            owned[idx],
                            worker,
                            n_cols,
                            None,
                            tel,
                        )?;
                        trials_run += result.trials;
                        steps_run += result.steps;
                        if let Some(rep) = result.rep {
                            rep_dims.push(rep);
                        }
                        blocks.push(result.agg);
                    }
                    Ok(WorkerOutput {
                        blocks,
                        rep_dims,
                        trials_run,
                        steps_run,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let mut blocks = Vec::with_capacity(owned.len());
    let mut rep_dims = Vec::new();
    let mut trials_run = 0u64;
    let mut steps_run = 0u64;
    for worker in collected {
        let output = worker?;
        trials_run += output.trials_run;
        steps_run += output.steps_run;
        blocks.extend(output.blocks);
        rep_dims.extend(output.rep_dims);
    }
    // Canonical artifact order regardless of which worker claimed what.
    blocks.sort_by_key(|b| b.block);
    rep_dims.sort_unstable();
    if tel.live {
        tel.emit(EventKind::RunFinished {
            wall_ns: tel.clock.elapsed_ns(),
            total_trials: trials_run,
            total_steps: steps_run,
        });
    }
    Ok(ShardReport {
        shard,
        name: spec.name.clone(),
        description: spec.description.clone(),
        target: spec.target,
        trials,
        base_seed: opts.base_seed,
        walks_per_graph: w,
        group_count,
        graphs: spec
            .graphs
            .iter()
            .map(|gs| (gs.label(), gs.family_label()))
            .collect(),
        processes: spec.processes.iter().map(|ps| ps.label()).collect(),
        metric_columns,
        rep_dims,
        blocks,
    })
}

/// [`merge_shards_with_sink`] without telemetry.
///
/// # Errors
///
/// As [`merge_shards_with_sink`].
pub fn merge_shards(shards: &[ShardReport]) -> Result<ExperimentReport, ShardError> {
    merge_shards_with_sink(shards, &NullSink)
}

/// Recombines a complete set of shard artifacts into the unsharded run's
/// [`ExperimentReport`], byte-identical under [`crate::report::to_json`].
///
/// Validation is strict: every shard must carry the same experiment
/// header (name, target, trials, seed, grids, columns), the residue
/// classes `0..count` must each appear exactly once, and every canonical
/// block index must be accounted for. Aggregation then runs through the
/// executor's own `aggregate_cells`, so the merged cells are the
/// product of the identical Welford merges and sketch compactions in
/// the identical order.
/// Emits one `merge_completed` event when `sink` is enabled.
///
/// # Errors
///
/// [`ShardError`] naming the first incompatibility or gap.
pub fn merge_shards_with_sink(
    shards: &[ShardReport],
    sink: &dyn TelemetrySink,
) -> Result<ExperimentReport, ShardError> {
    let clock = Stopwatch::start();
    let first = shards
        .first()
        .ok_or_else(|| ShardError::new("no shard artifacts to merge"))?;
    let count = first.shard.count;
    if shards.len() != count {
        return Err(ShardError::new(format!(
            "expected {count} shards (shard count declared by {:?}), got {}",
            first.name,
            shards.len()
        )));
    }
    let first_header = first.header();
    let mut seen = vec![false; count];
    for s in shards {
        if s.shard.count != count {
            return Err(ShardError::new(format!(
                "shard {} declares {} total shards, but shard {} declares {}",
                s.shard.index, s.shard.count, first.shard.index, count
            )));
        }
        if std::mem::replace(&mut seen[s.shard.index], true) {
            return Err(ShardError::new(format!(
                "shard index {} appears more than once",
                s.shard.index
            )));
        }
        if let Some(field) = s.header().first_mismatch(&first_header) {
            return Err(ShardError::new(format!(
                "shard {} disagrees with shard {} on {field}: the artifacts come from \
                 different runs",
                s.shard.index, first.shard.index
            )));
        }
    }
    let total_blocks = first.graphs.len() * first.group_count;
    let mut blocks: Vec<Option<BlockAgg>> = vec![None; total_blocks];
    let mut dims: Vec<Option<(usize, usize)>> = vec![None; first.graphs.len()];
    for s in shards {
        for b in &s.blocks {
            if b.block >= total_blocks || b.block % count != s.shard.index {
                return Err(ShardError::new(format!(
                    "shard {} carries block {}, which is outside its residue class",
                    s.shard.index, b.block
                )));
            }
            if blocks[b.block].replace(b.clone()).is_some() {
                return Err(ShardError::new(format!(
                    "block {} appears more than once",
                    b.block
                )));
            }
            for proc in &b.procs {
                if proc.metrics.len() != first.metric_columns.len() {
                    return Err(ShardError::new(format!(
                        "block {} has {} metric accumulators for {} columns",
                        b.block,
                        proc.metrics.len(),
                        first.metric_columns.len()
                    )));
                }
            }
            if b.procs.len() != first.processes.len() {
                return Err(ShardError::new(format!(
                    "block {} has {} process aggregates for {} processes",
                    b.block,
                    b.procs.len(),
                    first.processes.len()
                )));
            }
        }
        for &(gi, n, m) in &s.rep_dims {
            if gi >= dims.len() {
                return Err(ShardError::new(format!(
                    "shard {} reports dimensions for family {gi}, outside the grid",
                    s.shard.index
                )));
            }
            dims[gi] = Some((n, m));
        }
    }
    let blocks: Vec<BlockAgg> = blocks
        .into_iter()
        .enumerate()
        .map(|(i, b)| {
            b.ok_or_else(|| {
                ShardError::new(format!(
                    "block {i} is missing (shard {} is incomplete)",
                    i % count
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    let dims: Vec<(usize, usize)> = dims
        .into_iter()
        .enumerate()
        .map(|(gi, d)| {
            d.ok_or_else(|| {
                ShardError::new(format!(
                    "family {gi} has no representative dimensions (its group-0 shard is \
                     incomplete)"
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    let cells = aggregate_cells(
        &CellInputs {
            graphs: &first.graphs,
            processes: &first.processes,
            metric_columns: &first.metric_columns,
            trials: first.trials,
            group_count: first.group_count,
            base_seed: first.base_seed,
            resampled: true,
        },
        &dims,
        &blocks,
    );
    if sink.enabled() {
        sink.emit(&eproc_telemetry::Event {
            t_ns: clock.elapsed_ns(),
            kind: EventKind::MergeCompleted {
                shards: count,
                blocks: total_blocks,
                cells: cells.len(),
                merge_ns: clock.elapsed_ns(),
            },
        });
    }
    Ok(ExperimentReport {
        name: first.name.clone(),
        description: first.description.clone(),
        target: first.target,
        trials: first.trials,
        base_seed: first.base_seed,
        resample: Some(ResamplePlan {
            walks_per_graph: first.walks_per_graph,
        }),
        cells,
    })
}

// --- shard artifact serialisation ----------------------------------------

impl ShardReport {
    /// Serialises the shard artifact as deterministic strict JSON.
    /// Accumulator floats are written as IEEE-754 bit patterns (see the
    /// module docs), so `from_json(to_json())` is the identity down to
    /// the last bit.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format\": \"eproc-shard\",");
        let _ = writeln!(out, "  \"version\": 2,");
        let _ = writeln!(out, "  \"shard_index\": {},", self.shard.index);
        let _ = writeln!(out, "  \"shard_count\": {},", self.shard.count);
        self.header().write_fields(&mut out);
        write_rep_dims(&mut out, &self.rep_dims);
        write_blocks(&mut out, &self.blocks);
        out
    }

    /// Writes the artifact to `path`, creating parent directories. The
    /// write is atomic (temp sibling + rename): a crash mid-write never
    /// leaves a truncated artifact for `eproc merge` to choke on.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        eproc_telemetry::write_atomic(path, &self.to_json())
    }

    /// Reads and parses a shard artifact.
    ///
    /// # Errors
    ///
    /// [`ShardError`] for unreadable files or malformed artifacts.
    pub fn load(path: &Path) -> Result<ShardReport, ShardError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ShardError::new(format!("reading {}: {e}", path.display())))?;
        ShardReport::from_json(&text)
            .map_err(|e| ShardError::new(format!("{}: {e}", path.display())))
    }

    /// Parses a [`ShardReport::to_json`] artifact, bit-exactly.
    ///
    /// # Errors
    ///
    /// [`ShardError`] describing the first structural problem.
    pub fn from_json(text: &str) -> Result<ShardReport, ShardError> {
        let value = json::parse(text)?;
        let root = value.as_obj("artifact")?;
        let format = root.str_field("format")?;
        if format != "eproc-shard" {
            return Err(ShardError::new(format!(
                "not a shard artifact (format {format:?})"
            )));
        }
        let version = root.u64_field("version")?;
        if version != 2 {
            return Err(ShardError::new(format!(
                "unsupported shard artifact version {version}"
            )));
        }
        let shard = ShardSpec {
            index: root.usize_field("shard_index")?,
            count: root.usize_field("shard_count")?,
        };
        if shard.count == 0 || shard.index >= shard.count {
            return Err(ShardError::new(format!(
                "invalid shard coordinates {}/{}",
                shard.index, shard.count
            )));
        }
        let header = RunHeader::parse(&root)?;
        let rep_dims = parse_rep_dims(&root)?;
        let blocks = parse_blocks(&root)?;
        Ok(ShardReport {
            shard,
            name: header.name,
            description: header.description,
            target: header.target,
            trials: header.trials,
            base_seed: header.base_seed,
            walks_per_graph: header.walks_per_graph,
            group_count: header.group_count,
            graphs: header.graphs,
            processes: header.processes,
            metric_columns: header.metric_columns,
            rep_dims,
            blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run;
    use crate::report::to_json;
    use crate::spec::{CapSpec, GraphSpec, MetricSpec, ProcessSpec, RuleSpec};

    fn resampled_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "shard-unit".into(),
            description: "sharding unit-test spec".into(),
            graphs: vec![
                GraphSpec::Regular { n: 24, d: 3 },
                GraphSpec::Regular { n: 16, d: 4 },
            ],
            processes: vec![
                ProcessSpec::EProcess {
                    rule: RuleSpec::Uniform,
                },
                ProcessSpec::Srw,
            ],
            trials: 5,
            target: Target::BothCover,
            metrics: vec![MetricSpec::Cover],
            start: 0,
            cap: CapSpec::Auto,
            resample: Some(ResamplePlan { walks_per_graph: 2 }),
        }
    }

    #[test]
    fn shard_spec_parse() {
        assert_eq!(
            ShardSpec::parse("0/4").unwrap(),
            ShardSpec { index: 0, count: 4 }
        );
        assert_eq!(
            ShardSpec::parse("3/4").unwrap(),
            ShardSpec { index: 3, count: 4 }
        );
        for bad in ["", "4/4", "1/0", "2", "a/b", "1/2/3", "-1/2"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn sharding_rejects_shared_graph_runs() {
        let spec = ExperimentSpec {
            resample: None,
            graphs: vec![GraphSpec::Regular { n: 16, d: 4 }],
            ..resampled_spec()
        };
        let err = run_shard(
            &spec,
            &RunOptions {
                threads: 1,
                base_seed: 1,
            },
            ShardSpec { index: 0, count: 2 },
        )
        .unwrap_err();
        assert!(err.to_string().contains("resampled"), "{err}");
    }

    #[test]
    fn merged_shards_reproduce_unsharded_artifact() {
        let spec = resampled_spec();
        let opts = RunOptions {
            threads: 3,
            base_seed: 77,
        };
        let full = run(&spec, &opts).unwrap();
        for k in [1usize, 2, 3] {
            let shards: Vec<ShardReport> = (0..k)
                .map(|i| {
                    // Deliberately varied thread counts: byte-identity
                    // must hold for any scheduling.
                    let opts = RunOptions {
                        threads: i + 1,
                        base_seed: 77,
                    };
                    run_shard(&spec, &opts, ShardSpec { index: i, count: k }).unwrap()
                })
                .collect();
            let merged = merge_shards(&shards).unwrap();
            assert_eq!(to_json(&merged), to_json(&full), "k = {k}");
        }
    }

    #[test]
    fn shard_artifact_round_trips_bit_exactly() {
        let spec = resampled_spec();
        let opts = RunOptions {
            threads: 2,
            base_seed: 9,
        };
        let shard = run_shard(&spec, &opts, ShardSpec { index: 1, count: 2 }).unwrap();
        let json = shard.to_json();
        let back = ShardReport::from_json(&json).unwrap();
        assert_eq!(back.to_json(), json);
        // The parsed artifact must merge exactly like the in-memory one.
        let other = run_shard(&spec, &opts, ShardSpec { index: 0, count: 2 }).unwrap();
        let merged_mem = merge_shards(&[other.clone(), shard]).unwrap();
        let merged_parsed = merge_shards(&[other, back]).unwrap();
        assert_eq!(to_json(&merged_mem), to_json(&merged_parsed));
    }

    #[test]
    fn merge_rejects_incompatible_and_incomplete_sets() {
        let spec = resampled_spec();
        let opts = RunOptions {
            threads: 1,
            base_seed: 4,
        };
        let s0 = run_shard(&spec, &opts, ShardSpec { index: 0, count: 2 }).unwrap();
        let s1 = run_shard(&spec, &opts, ShardSpec { index: 1, count: 2 }).unwrap();
        assert!(merge_shards(&[]).is_err());
        assert!(
            merge_shards(std::slice::from_ref(&s0)).is_err(),
            "missing shard 1"
        );
        assert!(
            merge_shards(&[s0.clone(), s0.clone()]).is_err(),
            "duplicate shard index"
        );
        let mut wrong_seed = s1.clone();
        wrong_seed.base_seed = 5;
        assert!(merge_shards(&[s0.clone(), wrong_seed]).is_err());
        let mut wrong_trials = s1.clone();
        wrong_trials.trials = 99;
        assert!(merge_shards(&[s0.clone(), wrong_trials]).is_err());
        let mut gutted = s1.clone();
        gutted.blocks.pop();
        assert!(merge_shards(&[s0, gutted]).is_err(), "missing block");
    }

    #[test]
    fn malformed_artifacts_are_rejected_with_context() {
        assert!(ShardReport::from_json("").is_err());
        assert!(ShardReport::from_json("{}").is_err());
        assert!(ShardReport::from_json("{\"format\": \"something-else\"}").is_err());
        let err =
            ShardReport::from_json("{\"format\": \"eproc-shard\", \"version\": 3}").unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }
}
