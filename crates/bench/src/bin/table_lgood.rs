//! **T-lgood**: the `ℓ`-goodness landscape.
//!
//! Exact minimal even-degree subgraphs on small named graphs (the oracle),
//! greedy upper bounds on random even-regular graphs, and §4.1's (P2)
//! prediction `ℓ ≥ log n / (4 log(re))` — now computed on the **same**
//! graphs whose E-process cover times the engine measures, so the table
//! ties the `ℓ` estimates to the observed `Θ(n)` behaviour directly.
//!
//! Thin engine wrapper: the built-in `lgood` spec owns the cover-time
//! ensemble (trial loops, seeding, parallelism, JSON artifact); this
//! binary adds the exact small-graph oracle and the per-graph greedy /
//! (P2) bound columns.

use eproc_bench::{run_engine_spec, save_table, Config};
use eproc_engine::spec::GraphSpec;
use eproc_graphs::generators;
use eproc_graphs::properties::lgood::{even_subgraph_upper_bound, lgood_exact, lgood_upper_bound};
use eproc_stats::TextTable;
use eproc_theory::p2_l_good_bound;

fn main() {
    let config = Config::from_args();
    println!("l-goodness: exact small-graph values and greedy upper bounds\n");

    let mut exact_table = TextTable::new(vec!["graph", "n", "m", "exact l"]);
    let named = vec![
        ("K5".to_string(), generators::complete(5)),
        ("cycle(9)".into(), generators::cycle(9)),
        ("figure-eight(3)".into(), generators::figure_eight(3)),
        ("torus 3x3".into(), generators::torus2d(3, 3)),
        ("torus 3x4".into(), generators::torus2d(3, 4)),
    ];
    for (name, g) in &named {
        let l = lgood_exact(g).expect("small instance").expect("even graph");
        exact_table.push_row(vec![
            name.clone(),
            g.n().to_string(),
            g.m().to_string(),
            l.to_string(),
        ]);
    }
    println!("{exact_table}");

    let (spec, graphs, report) = run_engine_spec("lgood", &config);
    let mut ub_table = TextTable::new(vec![
        "graph",
        "n",
        "greedy l ub (min/median over probes)",
        "P2 bound",
        "ln n",
        "CV mean",
        "CV/n",
    ]);
    let probes = 40;
    for (gi, (gspec, g)) in spec.graphs.iter().zip(&graphs).enumerate() {
        let GraphSpec::Regular { n, d: r } = *gspec else {
            panic!("lgood spec contains only regular graphs")
        };
        let cell = &report.cells[gi];
        assert_eq!(
            cell.completed, cell.trials,
            "{}: not every trial covered",
            cell.graph
        );
        let probe_vertices: Vec<usize> = (0..probes).map(|i| i * (n / probes)).collect();
        let min_ub = lgood_upper_bound(g, &probe_vertices).expect("greedy bound");
        let mut ubs: Vec<f64> = probe_vertices
            .iter()
            .filter_map(|&v| even_subgraph_upper_bound(g, v))
            .map(|x| x as f64)
            .collect();
        ubs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = ubs[ubs.len() / 2];
        let cv = cell.steps.mean();
        ub_table.push_row(vec![
            format!("random {r}-regular"),
            n.to_string(),
            format!("{min_ub}/{median:.0}"),
            format!("{:.2}", p2_l_good_bound(n, r)),
            format!("{:.2}", (n as f64).ln()),
            format!("{cv:.0}"),
            format!("{:.2}", cv / n as f64),
        ]);
    }
    println!("{ub_table}");
    let p1 = save_table("table_lgood_exact", &exact_table).expect("write csv");
    let p2 = save_table("table_lgood_bounds", &ub_table).expect("write csv");
    println!("csv: {} and {}", p1.display(), p2.display());
    let j = eproc_engine::report::save_json(&report, None).expect("write json");
    println!("json: {}", j.display());
}
