//! Parallel ensemble-simulation engine for the `eproc` workspace.
//!
//! The paper's claims — Theorem 1's `Θ(n)` cover time, the §5 star census,
//! the Theorem 5 lower bound — are statements about **ensembles** of runs
//! over (graph × process × seed) grids. This crate provides one shared
//! execution subsystem for all of them, replacing the hand-rolled
//! sequential trial loops of the `table_*` binaries:
//!
//! * [`spec`] — declarative experiment descriptions: a [`spec::GraphSpec`]
//!   grid (random regular, LPS Ramanujan, geometric, hypercube, torus, …),
//!   a [`spec::ProcessSpec`] grid (E-process rules, SRW variants,
//!   rotor-router, RWC(d), locally fair walks), trial counts, and a
//!   [`spec::Target`] (vertex/edge cover or blanket time);
//! * [`executor`] — a work-stealing thread-pool executor (scoped threads
//!   over a shared atomic job index) with deterministic per-trial seeding
//!   derived from [`eproc_stats::SeedSequence`], so aggregate results are
//!   **bit-identical regardless of thread count**;
//! * [`report`] — streaming aggregation into [`eproc_stats::OnlineStats`]
//!   summaries with plain-text table, CSV and JSON emitters;
//! * [`builtin`] — named specs reproducing the paper's headline tables
//!   (`comparison`, `theorem1`, `rules`, …), consumed by both the `eproc`
//!   CLI binary and the thin `table_*` wrappers in `eproc-bench`.
//!
//! # Example
//!
//! ```
//! use eproc_engine::executor::{run, RunOptions};
//! use eproc_engine::spec::{CapSpec, ExperimentSpec, GraphSpec, ProcessSpec, RuleSpec, Target};
//!
//! let spec = ExperimentSpec {
//!     name: "demo".into(),
//!     description: "E-process vs SRW on a small torus".into(),
//!     graphs: vec![GraphSpec::Torus { w: 8, h: 8 }],
//!     processes: vec![
//!         ProcessSpec::EProcess { rule: RuleSpec::Uniform },
//!         ProcessSpec::Srw,
//!     ],
//!     trials: 4,
//!     target: Target::VertexCover,
//!     cap: CapSpec::Auto,
//! };
//! let report = run(&spec, &RunOptions { threads: 2, base_seed: 7 }).unwrap();
//! assert_eq!(report.cells.len(), 2);
//! assert!(report.cells.iter().all(|c| c.completed == 4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
pub mod executor;
pub mod report;
pub mod spec;

pub use executor::{run, ExperimentReport, RunOptions};
pub use spec::{CapSpec, ExperimentSpec, GraphSpec, ProcessSpec, RuleSpec, Scale, Target};
