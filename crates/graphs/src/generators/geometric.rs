//! Random geometric graphs on the unit square.
//!
//! Used by Avin & Krishnamachari \[3\] (cited in the paper's related work) to
//! evaluate the random walk with choice; we provide them as a workload for
//! the comparison experiments.

use super::MAX_RESTARTS;
use crate::csr::Graph;
use crate::error::GraphError;
use crate::properties::connectivity;
use rand::Rng;

/// A random geometric graph together with the sampled positions.
#[derive(Debug, Clone)]
pub struct GeometricGraph {
    /// The connectivity graph: vertices within distance `radius` are joined.
    pub graph: Graph,
    /// Sampled positions in the unit square, indexed by vertex.
    pub positions: Vec<(f64, f64)>,
}

/// Samples `n` points uniformly in the unit square and joins pairs at
/// Euclidean distance `<= radius`.
///
/// Neighbor search uses a bucket grid of cell size `radius`, so generation
/// is `O(n + m)` in expectation.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `radius` is not in `(0, √2]` or not
/// finite.
///
/// # Example
///
/// ```
/// use eproc_graphs::generators::random_geometric;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let gg = random_geometric(200, 0.15, &mut rng)?;
/// assert_eq!(gg.graph.n(), 200);
/// # Ok::<(), eproc_graphs::GraphError>(())
/// ```
pub fn random_geometric<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> Result<GeometricGraph, GraphError> {
    if !(radius.is_finite() && radius > 0.0 && radius <= std::f64::consts::SQRT_2) {
        return Err(GraphError::InvalidParameter {
            reason: format!("radius must be in (0, sqrt(2)], got {radius}"),
        });
    }
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let cells = (1.0 / radius).floor().max(1.0) as usize;
    let cell_of = |x: f64| -> usize { ((x * cells as f64) as usize).min(cells - 1) };
    let mut grid: Vec<Vec<usize>> = vec![Vec::new(); cells * cells];
    for (v, &(x, y)) in positions.iter().enumerate() {
        grid[cell_of(y) * cells + cell_of(x)].push(v);
    }
    let r2 = radius * radius;
    let mut edges = Vec::new();
    for (v, &(x, y)) in positions.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                    continue;
                }
                for &w in &grid[ny as usize * cells + nx as usize] {
                    if w <= v {
                        continue; // each pair once, no loops
                    }
                    let (wx, wy) = positions[w];
                    let d2 = (x - wx) * (x - wx) + (y - wy) * (y - wy);
                    if d2 <= r2 {
                        edges.push((v, w));
                    }
                }
            }
        }
    }
    let graph = Graph::from_edges(n, &edges)?;
    Ok(GeometricGraph { graph, positions })
}

/// A *connected* random geometric graph: draws with [`random_geometric`]
/// until connected, giving up after [`MAX_RESTARTS`] attempts.
///
/// Connectivity of a random geometric graph is sharply concentrated
/// around the threshold radius `sqrt(ln n / (π n))`: above it nearly
/// every sample is connected, below it essentially none is. The bounded
/// restart budget turns "radius too small" from an infinite rejection
/// loop into a fast, reportable failure.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] for an out-of-range radius (via
/// [`random_geometric`]); [`GraphError::RetriesExhausted`] if no
/// connected sample appeared within [`MAX_RESTARTS`] draws.
pub fn connected_random_geometric<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> Result<GeometricGraph, GraphError> {
    connected_random_geometric_counted(n, radius, rng).map(|(gg, _)| gg)
}

/// [`connected_random_geometric`], additionally reporting how many draws
/// the sample consumed (`1` = the first draw was connected). The RNG
/// sequence and the output graph are identical to the uncounted variant —
/// callers wanting generation telemetry get it for free.
///
/// # Errors
///
/// As [`connected_random_geometric`].
pub fn connected_random_geometric_counted<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> Result<(GeometricGraph, usize), GraphError> {
    for attempt in 1..=MAX_RESTARTS {
        let gg = random_geometric(n, radius, rng)?;
        if connectivity::is_connected(&gg.graph) {
            return Ok((gg, attempt));
        }
    }
    Err(GraphError::RetriesExhausted {
        generator: "connected_random_geometric",
        attempts: MAX_RESTARTS,
        what: format!("a connected geometric graph on {n} vertices at radius {radius}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_radius() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(random_geometric(10, 0.0, &mut rng).is_err());
        assert!(random_geometric(10, -1.0, &mut rng).is_err());
        assert!(random_geometric(10, f64::NAN, &mut rng).is_err());
        assert!(random_geometric(10, 2.0, &mut rng).is_err());
    }

    #[test]
    fn full_radius_gives_complete_graph() {
        let mut rng = SmallRng::seed_from_u64(1);
        let gg = random_geometric(20, std::f64::consts::SQRT_2, &mut rng).unwrap();
        assert_eq!(gg.graph.m(), 20 * 19 / 2);
    }

    #[test]
    fn edges_respect_radius_exactly() {
        let mut rng = SmallRng::seed_from_u64(2);
        let r = 0.2;
        let gg = random_geometric(300, r, &mut rng).unwrap();
        // Every edge within radius...
        for (_, u, v) in gg.graph.edges() {
            let (ux, uy) = gg.positions[u];
            let (vx, vy) = gg.positions[v];
            let d2 = (ux - vx).powi(2) + (uy - vy).powi(2);
            assert!(d2 <= r * r + 1e-12);
        }
        // ...and every within-radius pair is an edge (brute force check).
        let mut expected = 0usize;
        for u in 0..300 {
            for v in (u + 1)..300 {
                let (ux, uy) = gg.positions[u];
                let (vx, vy) = gg.positions[v];
                if (ux - vx).powi(2) + (uy - vy).powi(2) <= r * r {
                    expected += 1;
                }
            }
        }
        assert_eq!(gg.graph.m(), expected);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = random_geometric(50, 0.3, &mut SmallRng::seed_from_u64(9)).unwrap();
        let b = random_geometric(50, 0.3, &mut SmallRng::seed_from_u64(9)).unwrap();
        assert_eq!(a.graph.edge_list(), b.graph.edge_list());
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    fn zero_vertices_ok() {
        let mut rng = SmallRng::seed_from_u64(3);
        let gg = random_geometric(0, 0.5, &mut rng).unwrap();
        assert_eq!(gg.graph.n(), 0);
    }

    #[test]
    fn connected_variant_is_connected_and_deterministic() {
        let a = connected_random_geometric(80, 0.25, &mut SmallRng::seed_from_u64(4)).unwrap();
        assert!(connectivity::is_connected(&a.graph));
        let b = connected_random_geometric(80, 0.25, &mut SmallRng::seed_from_u64(4)).unwrap();
        assert_eq!(a.graph.edge_list(), b.graph.edge_list());
    }

    #[test]
    fn counted_variant_matches_uncounted_draws() {
        let a = connected_random_geometric(80, 0.25, &mut SmallRng::seed_from_u64(4)).unwrap();
        let (b, attempts) =
            connected_random_geometric_counted(80, 0.25, &mut SmallRng::seed_from_u64(4)).unwrap();
        assert_eq!(a.graph.edge_list(), b.graph.edge_list());
        assert!(attempts >= 1);
    }

    #[test]
    fn connected_variant_exhausts_retries_on_tiny_radius() {
        // 60 points at radius 0.005: essentially every vertex is isolated,
        // so no sample is ever connected — the generator must give up
        // instead of looping forever.
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(matches!(
            connected_random_geometric(60, 0.005, &mut rng),
            Err(GraphError::RetriesExhausted {
                generator: "connected_random_geometric",
                attempts: MAX_RESTARTS,
                ..
            })
        ));
    }

    #[test]
    fn connected_variant_propagates_parameter_errors() {
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(matches!(
            connected_random_geometric(10, -1.0, &mut rng),
            Err(GraphError::InvalidParameter { .. })
        ));
    }
}
