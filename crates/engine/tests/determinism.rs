//! Engine determinism: the same `ExperimentSpec` and base seed must yield
//! bit-identical aggregate results for any thread count, and across
//! repeated runs.

use eproc_engine::builtin;
use eproc_engine::executor::{run, RunOptions};
use eproc_engine::report::to_json;
use eproc_engine::spec::{
    CapSpec, ExperimentSpec, GraphSpec, MetricSpec, ProcessSpec, RuleSpec, Scale, Target,
};

fn mixed_spec() -> ExperimentSpec {
    ExperimentSpec {
        name: "determinism".into(),
        description: "thread-count invariance check".into(),
        graphs: vec![
            GraphSpec::Cycle { n: 48 },
            GraphSpec::Torus { w: 6, h: 6 },
            GraphSpec::Regular { n: 64, d: 4 },
        ],
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::EProcess {
                rule: RuleSpec::RoundRobin,
            },
            ProcessSpec::Srw,
            ProcessSpec::RotorRouter,
            ProcessSpec::Rwc { d: 2 },
        ],
        trials: 6,
        target: Target::VertexCover,
        // Exercise the multi-metric single-pass path: every trial also
        // resolves cover, phase and hitting observers on the same walk.
        metrics: vec![
            MetricSpec::Cover,
            MetricSpec::Phases,
            MetricSpec::Hitting { vertex: None },
        ],
        start: 0,
        cap: CapSpec::Auto,
        resample: None,
    }
}

#[test]
fn one_thread_and_many_threads_agree_bit_for_bit() {
    let spec = mixed_spec();
    let sequential = run(
        &spec,
        &RunOptions {
            threads: 1,
            base_seed: 2024,
        },
    )
    .unwrap();
    for threads in [2, 3, 8] {
        let parallel = run(
            &spec,
            &RunOptions {
                threads,
                base_seed: 2024,
            },
        )
        .unwrap();
        assert_eq!(
            to_json(&sequential),
            to_json(&parallel),
            "aggregate JSON diverged at {threads} threads"
        );
        for (a, b) in sequential.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.completed, b.completed);
            assert_eq!(
                a.steps, b.steps,
                "OnlineStats bits diverged for {}/{}",
                a.graph, a.process
            );
            assert_eq!(a.blue_fraction, b.blue_fraction);
            assert_eq!(
                a.metrics, b.metrics,
                "metric stats diverged for {}/{}",
                a.graph, a.process
            );
        }
    }
}

#[test]
fn repeated_runs_are_reproducible() {
    let spec = mixed_spec();
    let a = run(
        &spec,
        &RunOptions {
            threads: 4,
            base_seed: 7,
        },
    )
    .unwrap();
    let b = run(
        &spec,
        &RunOptions {
            threads: 4,
            base_seed: 7,
        },
    )
    .unwrap();
    assert_eq!(to_json(&a), to_json(&b));
}

#[test]
fn different_seeds_give_different_ensembles() {
    let spec = ExperimentSpec {
        // Randomized graphs + randomized walks: seeds must matter.
        graphs: vec![GraphSpec::Regular { n: 64, d: 4 }],
        processes: vec![ProcessSpec::Srw],
        trials: 4,
        ..mixed_spec()
    };
    let a = run(
        &spec,
        &RunOptions {
            threads: 2,
            base_seed: 1,
        },
    )
    .unwrap();
    let b = run(
        &spec,
        &RunOptions {
            threads: 2,
            base_seed: 2,
        },
    )
    .unwrap();
    assert_ne!(
        a.cells[0].steps.mean(),
        b.cells[0].steps.mean(),
        "independent ensembles agreeing exactly is vanishingly unlikely"
    );
}

#[test]
fn blanket_target_is_thread_invariant_too() {
    let spec = ExperimentSpec {
        name: "blanket-det".into(),
        description: String::new(),
        graphs: vec![GraphSpec::Complete { n: 10 }],
        processes: vec![
            ProcessSpec::Srw,
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
        ],
        trials: 4,
        target: Target::Blanket { delta: 0.3 },
        metrics: vec![MetricSpec::Cover, MetricSpec::Blanket { delta: 0.5 }],
        start: 0,
        cap: CapSpec::Absolute(2_000_000),
        resample: None,
    };
    let a = run(
        &spec,
        &RunOptions {
            threads: 1,
            base_seed: 11,
        },
    )
    .unwrap();
    let b = run(
        &spec,
        &RunOptions {
            threads: 5,
            base_seed: 11,
        },
    )
    .unwrap();
    assert_eq!(to_json(&a), to_json(&b));
    assert!(a.cells.iter().all(|c| c.completed == 4));
}

#[test]
fn builtin_quick_specs_run_scaled_down() {
    // Shrink each builtin to a trivial size by replacing graphs with a small
    // stand-in, keeping the process grids intact: exercises every process
    // spec the builtins reference through the full executor path. The
    // resampled builtins need a randomized stand-in (a resampled grid of
    // deterministic families is rejected at validation).
    for name in builtin::names() {
        let mut spec = builtin::spec(name, Scale::Quick).unwrap();
        spec.graphs = if spec.resample.is_some() {
            vec![GraphSpec::Regular { n: 16, d: 4 }]
        } else {
            vec![GraphSpec::Torus { w: 4, h: 4 }]
        };
        spec.trials = 2;
        spec.cap = CapSpec::Auto;
        let a = run(
            &spec,
            &RunOptions {
                threads: 1,
                base_seed: 3,
            },
        )
        .unwrap();
        let b = run(
            &spec,
            &RunOptions {
                threads: 4,
                base_seed: 3,
            },
        )
        .unwrap();
        assert_eq!(
            to_json(&a),
            to_json(&b),
            "builtin {name} not thread-invariant"
        );
        assert_eq!(a.cells.len(), spec.processes.len());
    }
}
