//! Graph operations: unions, products, covers, subdivision.
//!
//! Two of these are proof devices from the paper: Lemma 16 *subdivides* the
//! edges of a leaf-to-leaf path (inserting a degree-2 vertex per edge) and
//! §2.1 replaces a bipartite graph's periodic walk with a lazy one — whose
//! spectral structure is that of the *bipartite double cover*. The products
//! give structured even-degree test families (e.g. `H_{a+b} = H_a □ H_b`).

use crate::csr::{EdgeId, Graph, Vertex};
use crate::error::GraphError;

/// Disjoint union: vertices of `b` are shifted by `a.n()`.
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    let off = a.n();
    let mut edges = a.edge_list();
    edges.extend(b.edge_list().into_iter().map(|(u, v)| (u + off, v + off)));
    Graph::from_edges(a.n() + b.n(), &edges).expect("union of valid graphs is valid")
}

/// Cartesian product `a □ b`: vertices are pairs `(u, v)` encoded as
/// `u * b.n() + v`; `(u,v) ~ (u',v)` when `u ~ u'`, and `(u,v) ~ (u,v')`
/// when `v ~ v'`. Degrees add, so products of even-degree graphs are
/// even-degree; `K_2 □ K_2 □ … □ K_2 = H_r`.
pub fn cartesian_product(a: &Graph, b: &Graph) -> Graph {
    let bn = b.n();
    let idx = |u: Vertex, v: Vertex| u * bn + v;
    let mut edges = Vec::with_capacity(a.m() * b.n() + b.m() * a.n());
    for (_, u, w) in a.edges() {
        for v in 0..bn {
            edges.push((idx(u, v), idx(w, v)));
        }
    }
    for u in 0..a.n() {
        for (_, v, x) in b.edges() {
            edges.push((idx(u, v), idx(u, x)));
        }
    }
    Graph::from_edges(a.n() * bn, &edges).expect("product of valid graphs is valid")
}

/// The bipartite double cover: vertices `(v, side)` for `side ∈ {0, 1}`,
/// encoded as `v + side * n`; each edge `{u, v}` becomes `{(u,0),(v,1)}`
/// and `{(u,1),(v,0)}`.
///
/// Connected iff the base graph is connected and non-bipartite; its walk
/// spectrum is `{±λ_i}` — the structure behind the paper's bipartite
/// caveat `λ_max = |λ_n| = 1`.
pub fn bipartite_double_cover(g: &Graph) -> Graph {
    let n = g.n();
    let mut edges = Vec::with_capacity(2 * g.m());
    for (_, u, v) in g.edges() {
        edges.push((u, v + n));
        edges.push((u + n, v));
    }
    Graph::from_edges(2 * n, &edges).expect("double cover of valid graph is valid")
}

/// Subdivides the listed edges, inserting one fresh degree-2 vertex per
/// edge — exactly Lemma 16's construction ("Subdivide the edges of `xPy`
/// by inserting a vertex `z_i` of degree 2 in each edge"). Unlisted edges
/// are kept. Returns the new graph and the inserted vertices (in the
/// order of `targets`).
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if a target edge id is out of range or
/// repeated.
pub fn subdivide_edges(g: &Graph, targets: &[EdgeId]) -> Result<(Graph, Vec<Vertex>), GraphError> {
    let mut chosen = vec![false; g.m()];
    for &e in targets {
        if e >= g.m() {
            return Err(GraphError::InvalidParameter {
                reason: format!("edge {e} out of range (m = {})", g.m()),
            });
        }
        if chosen[e] {
            return Err(GraphError::InvalidParameter {
                reason: format!("edge {e} listed twice"),
            });
        }
        chosen[e] = true;
    }
    let mut edges = Vec::with_capacity(g.m() + targets.len());
    for (e, u, v) in g.edges() {
        if !chosen[e] {
            edges.push((u, v));
        }
    }
    let mut inserted = Vec::with_capacity(targets.len());
    let mut next = g.n();
    for &e in targets {
        let (u, v) = g.endpoints(e);
        edges.push((u, next));
        edges.push((next, v));
        inserted.push(next);
        next += 1;
    }
    let graph = Graph::from_edges(next, &edges)?;
    Ok((graph, inserted))
}

/// The line graph `L(G)`: one vertex per edge of `G`, adjacent when the
/// edges share an endpoint. For an `r`-regular `G`, `L(G)` is
/// `(2r−2)`-regular — an easy source of even-degree graphs from odd ones.
pub fn line_graph(g: &Graph) -> Graph {
    let mut edges = Vec::new();
    for v in g.vertices() {
        let incident: Vec<EdgeId> = g.arc_range(v).map(|a| g.arc_edge(a)).collect();
        for i in 0..incident.len() {
            for j in (i + 1)..incident.len() {
                edges.push((incident[i], incident[j]));
            }
        }
    }
    Graph::from_edges(g.m(), &edges).expect("line graph of valid graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::properties::{bipartite, connectivity, degrees, girth};

    #[test]
    fn disjoint_union_counts() {
        let g = disjoint_union(&generators::cycle(3), &generators::cycle(4));
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 7);
        assert_eq!(connectivity::component_count(&g), 2);
    }

    #[test]
    fn product_of_k2s_is_hypercube() {
        let k2 = generators::complete(2);
        let mut h = k2.clone();
        for _ in 0..3 {
            h = cartesian_product(&h, &k2);
        }
        let reference = generators::hypercube(4);
        assert_eq!(h.n(), reference.n());
        assert_eq!(h.m(), reference.m());
        assert!(degrees::is_regular(&h, 4));
        assert_eq!(girth::girth(&h), Some(4));
        assert!(bipartite::is_bipartite(&h));
    }

    #[test]
    fn product_of_cycles_is_torus() {
        let t = cartesian_product(&generators::cycle(4), &generators::cycle(5));
        assert_eq!(t.n(), 20);
        assert_eq!(t.m(), 40);
        assert!(degrees::is_regular(&t, 4));
        assert!(connectivity::is_connected(&t));
    }

    #[test]
    fn double_cover_of_bipartite_disconnects() {
        let g = generators::cycle(6); // bipartite
        let d = bipartite_double_cover(&g);
        assert_eq!(connectivity::component_count(&d), 2);
        assert!(bipartite::is_bipartite(&d));
    }

    #[test]
    fn double_cover_of_odd_cycle_is_big_cycle() {
        let g = generators::cycle(5);
        let d = bipartite_double_cover(&g);
        assert!(connectivity::is_connected(&d));
        assert!(degrees::is_regular(&d, 2));
        assert_eq!(d.n(), 10);
        assert_eq!(girth::girth(&d), Some(10), "double cover of C5 is C10");
    }

    #[test]
    fn double_cover_spectrum_is_symmetrised() {
        // Walk spectrum of the double cover is {±λ_i} of the base.
        use crate::Graph;
        let g = generators::petersen();
        let d = bipartite_double_cover(&g);
        let base: Vec<f64> = walk_eigs(&g);
        let cover: Vec<f64> = walk_eigs(&d);
        let mut expected: Vec<f64> = base.iter().flat_map(|&l| [l, -l]).collect();
        expected.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (a, b) in cover.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }

        fn walk_eigs(g: &Graph) -> Vec<f64> {
            // Tiny dense power-free eigenvalue computation via the
            // characteristic recursion is overkill; use degrees and the
            // spectral crate in integration tests instead. Here exploit
            // regularity: P = A/r, so eigenvalues of P are eigenvalues of
            // A divided by r. Compute A's eigenvalues by Jacobi on a
            // locally built dense matrix.
            let n = g.n();
            let r = g.degree(0) as f64;
            let mut a = vec![0.0f64; n * n];
            for (_, u, v) in g.edges() {
                a[u * n + v] += 1.0 / r;
                a[v * n + u] += 1.0 / r;
            }
            jacobi(n, a)
        }

        fn jacobi(n: usize, mut a: Vec<f64>) -> Vec<f64> {
            for _ in 0..60 {
                for p in 0..n {
                    for q in (p + 1)..n {
                        let apq = a[p * n + q];
                        if apq.abs() < 1e-14 {
                            continue;
                        }
                        let theta = (a[q * n + q] - a[p * n + p]) / (2.0 * apq);
                        let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                        let c = 1.0 / (t * t + 1.0).sqrt();
                        let s = t * c;
                        for k in 0..n {
                            let akp = a[k * n + p];
                            let akq = a[k * n + q];
                            a[k * n + p] = c * akp - s * akq;
                            a[k * n + q] = s * akp + c * akq;
                        }
                        for k in 0..n {
                            let apk = a[p * n + k];
                            let aqk = a[q * n + k];
                            a[p * n + k] = c * apk - s * aqk;
                            a[q * n + k] = s * apk + c * aqk;
                        }
                    }
                }
            }
            let mut eigs: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
            eigs.sort_by(|x, y| y.partial_cmp(x).unwrap());
            eigs
        }
    }

    #[test]
    fn subdivide_path_edge() {
        let g = generators::path(3); // 0-1-2
        let (h, inserted) = subdivide_edges(&g, &[0]).unwrap();
        assert_eq!(h.n(), 4);
        assert_eq!(h.m(), 3);
        assert_eq!(inserted, vec![3]);
        assert_eq!(h.degree(3), 2);
        assert!(h.has_edge(0, 3) && h.has_edge(3, 1));
        assert!(!h.has_edge(0, 1));
    }

    #[test]
    fn subdivide_lemma16_shape() {
        // Lemma 16: subdividing the 2ℓ edges of a path gives |S| = 2ℓ
        // degree-2 vertices with d(S) = 4ℓ, and m grows by 2ℓ.
        let g = generators::cycle(12);
        let path_edges: Vec<EdgeId> = (0..6).collect();
        let (h, inserted) = subdivide_edges(&g, &path_edges).unwrap();
        assert_eq!(inserted.len(), 6);
        assert_eq!(h.m(), g.m() + 6);
        let d_s: usize = inserted.iter().map(|&z| h.degree(z)).sum();
        assert_eq!(d_s, 4 * 3); // 2ℓ vertices of degree 2, ℓ = 3
        assert!(connectivity::is_connected(&h));
    }

    #[test]
    fn subdivide_validates() {
        let g = generators::cycle(4);
        assert!(subdivide_edges(&g, &[9]).is_err());
        assert!(subdivide_edges(&g, &[1, 1]).is_err());
    }

    #[test]
    fn line_graph_of_cycle_is_cycle() {
        let g = generators::cycle(7);
        let l = line_graph(&g);
        assert_eq!(l.n(), 7);
        assert!(degrees::is_regular(&l, 2));
        assert!(connectivity::is_connected(&l));
    }

    #[test]
    fn line_graph_of_cubic_is_even() {
        // L(G) of a 3-regular graph is 4-regular: odd-degree inputs give
        // even-degree outputs, a handy trick for E-process workloads.
        let g = generators::petersen();
        let l = line_graph(&g);
        assert_eq!(l.n(), 15);
        assert!(degrees::is_regular(&l, 4));
        assert!(degrees::is_even_degree(&l));
    }

    #[test]
    fn line_graph_of_star_is_complete() {
        let g = generators::star(5);
        let l = line_graph(&g);
        assert_eq!(l.n(), 4);
        assert_eq!(l.m(), 6); // K4
    }
}
