//! Random regular graphs and fixed degree sequence random graphs.
//!
//! The paper's experiments (§5, Figure 1) were generated "using the random
//! regular graph generator from the NetworkX package … This package
//! implements the Steger/Wormald approach" (\[15\]). We implement both the
//! classic configuration (pairing) model and the Steger–Wormald algorithm;
//! the latter is what the Figure 1 harness uses.

use super::MAX_RESTARTS;
use crate::csr::{Graph, Vertex};
use crate::error::GraphError;
use crate::properties::connectivity;
use rand::seq::SliceRandom;
use rand::Rng;

fn check_degree_sequence(n: usize, degrees: &[usize], simple: bool) -> Result<(), GraphError> {
    if degrees.len() != n {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("{} degrees supplied for {} vertices", degrees.len(), n),
        });
    }
    let total: usize = degrees.iter().sum();
    if !total.is_multiple_of(2) {
        return Err(GraphError::InfeasibleDegrees {
            reason: format!("degree sum {total} is odd"),
        });
    }
    if simple {
        if let Some((v, &d)) = degrees.iter().enumerate().find(|&(_, &d)| d >= n) {
            return Err(GraphError::InfeasibleDegrees {
                reason: format!("vertex {v} has degree {d} >= n = {n} (simple graph impossible)"),
            });
        }
    }
    Ok(())
}

/// One pass of the configuration model: pair up stubs uniformly at random.
/// May contain self-loop pairings (dropped as `None`) — callers retry.
fn pair_stubs<R: Rng + ?Sized>(degrees: &[usize], rng: &mut R) -> Option<Vec<(Vertex, Vertex)>> {
    let mut stubs: Vec<Vertex> = Vec::with_capacity(degrees.iter().sum());
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v, d));
    }
    stubs.shuffle(rng);
    let mut edges = Vec::with_capacity(stubs.len() / 2);
    for pair in stubs.chunks_exact(2) {
        if pair[0] == pair[1] {
            return None; // self-loop: reject the whole pairing
        }
        edges.push((pair[0], pair[1]));
    }
    Some(edges)
}

/// The configuration (pairing) model *without* simplicity rejection:
/// returns a multigraph that may contain parallel edges (self-loop pairings
/// are re-drawn). Useful when the analysis is done directly on the
/// configuration model, as in Section 4 of the paper.
///
/// # Errors
///
/// [`GraphError::InfeasibleDegrees`] for an odd degree sum,
/// [`GraphError::RetriesExhausted`] if every pairing drew a self-loop
/// (practically impossible for reasonable parameters).
pub fn pairing_model_multigraph<R: Rng + ?Sized>(
    n: usize,
    r: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let degrees = vec![r; n];
    check_degree_sequence(n, &degrees, false)?;
    for _ in 0..MAX_RESTARTS {
        if let Some(edges) = pair_stubs(&degrees, rng) {
            return Graph::from_edges(n, &edges);
        }
    }
    Err(GraphError::RetriesExhausted {
        generator: "pairing_model_multigraph",
        attempts: MAX_RESTARTS,
        what: format!("an {r}-regular multigraph on {n} vertices"),
    })
}

/// Uniform random `r`-regular *simple* graph via the configuration model
/// with whole-pairing rejection.
///
/// The acceptance probability is `≈ exp(-(r²-1)/4)`, so this is only
/// sensible for small `r` (the rejection method is exactly uniform over
/// simple `r`-regular graphs). For larger `r` use [`steger_wormald`].
///
/// # Errors
///
/// [`GraphError::InfeasibleDegrees`] if `n·r` is odd or `r >= n`;
/// [`GraphError::RetriesExhausted`] if no simple pairing was found.
pub fn random_regular_pairing<R: Rng + ?Sized>(
    n: usize,
    r: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let degrees = vec![r; n];
    random_with_degree_sequence(&degrees, rng).map_err(|e| match e {
        GraphError::RetriesExhausted { attempts, .. } => GraphError::RetriesExhausted {
            generator: "random_regular_pairing",
            attempts,
            what: format!("an {r}-regular simple graph on {n} vertices"),
        },
        other => other,
    })
}

/// Uniform random simple graph with the given degree sequence
/// (configuration model + whole-pairing rejection).
///
/// # Errors
///
/// [`GraphError::InfeasibleDegrees`] on an odd sum or a degree `>= n`;
/// [`GraphError::RetriesExhausted`] after too many non-simple pairings.
pub fn random_with_degree_sequence<R: Rng + ?Sized>(
    degrees: &[usize],
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let n = degrees.len();
    check_degree_sequence(n, degrees, true)?;
    for _ in 0..MAX_RESTARTS {
        let Some(edges) = pair_stubs(degrees, rng) else {
            continue;
        };
        // Whole-pairing rejection is all-or-nothing and draws no RNG, so
        // a sort-based duplicate scan is interchangeable with (and much
        // cheaper than) hashing every key.
        let mut keys: Vec<(Vertex, Vertex)> = edges
            .iter()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        keys.sort_unstable();
        if keys.windows(2).any(|w| w[0] == w[1]) {
            continue; // parallel edge: reject
        }
        return Graph::from_edges(n, &edges);
    }
    Err(GraphError::RetriesExhausted {
        generator: "random_with_degree_sequence",
        attempts: MAX_RESTARTS,
        what: format!("a simple graph on {n} vertices with the given degree sequence"),
    })
}

/// Random `r`-regular simple graph via the Steger–Wormald algorithm \[15\]
/// — the generator behind the paper's Figure 1 (via NetworkX).
///
/// Repeatedly joins two uniformly random *suitable* stubs (no loop, no
/// repeated edge); restarts the phase when no suitable pair remains. The
/// output distribution is asymptotically uniform for `r = O(n^{1/3})` and
/// the algorithm runs in `O(n r²)` expected time — unlike whole-pairing
/// rejection it does not degrade exponentially in `r`.
///
/// # Errors
///
/// [`GraphError::InfeasibleDegrees`] if `n·r` is odd or `r >= n`;
/// [`GraphError::RetriesExhausted`] after the internal restart budget.
pub fn steger_wormald<R: Rng + ?Sized>(
    n: usize,
    r: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    steger_wormald_counted(n, r, rng).map(|(g, _)| g)
}

/// [`steger_wormald`], additionally reporting how many phase attempts the
/// draw consumed (`1` = the first phase succeeded). The RNG sequence and
/// the output graph are identical to the uncounted variant — callers
/// wanting generation telemetry get it for free.
///
/// # Errors
///
/// As [`steger_wormald`].
pub fn steger_wormald_counted<R: Rng + ?Sized>(
    n: usize,
    r: usize,
    rng: &mut R,
) -> Result<(Graph, usize), GraphError> {
    let degrees = vec![r; n];
    check_degree_sequence(n, &degrees, true)?;
    if r == 0 {
        return Graph::from_edges(n, &[]).map(|g| (g, 1));
    }
    'restart: for attempt in 1..=MAX_RESTARTS {
        let mut stubs: Vec<Vertex> = Vec::with_capacity(n * r);
        for v in 0..n {
            stubs.extend(std::iter::repeat_n(v, r));
        }
        let mut edges: Vec<(Vertex, Vertex)> = Vec::with_capacity(n * r / 2);
        // Adjacency as per-vertex neighbour lists: each holds at most `r`
        // entries, so the suitability probe is a short linear scan —
        // several times faster than hashing an edge key, and the
        // generator's cost is pure adjacency probes. The accept/reject
        // decisions (and hence the RNG draw sequence and the output
        // graph) are identical to the hash-set formulation.
        let mut adj: Vec<Vec<Vertex>> = vec![Vec::new(); n];
        while !stubs.is_empty() {
            // If only unsuitable pairs remain we must restart; detect by
            // bounding consecutive failures (suitable pairs are abundant
            // except pathologically near the end).
            let mut failures = 0usize;
            loop {
                let i = rng.gen_range(0..stubs.len());
                let mut j = rng.gen_range(0..stubs.len());
                while j == i {
                    j = rng.gen_range(0..stubs.len());
                }
                let (u, v) = (stubs[i], stubs[j]);
                let key = if u < v { (u, v) } else { (v, u) };
                if u != v && !adj[u].contains(&v) {
                    adj[u].push(v);
                    adj[v].push(u);
                    edges.push(key);
                    // Remove the two stubs (higher index first).
                    let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                    stubs.swap_remove(hi);
                    stubs.swap_remove(lo);
                    break;
                }
                failures += 1;
                if failures > 100 * (stubs.len() + 1) {
                    continue 'restart;
                }
            }
        }
        return Graph::from_edges(n, &edges).map(|g| (g, attempt));
    }
    Err(GraphError::RetriesExhausted {
        generator: "steger_wormald",
        attempts: MAX_RESTARTS,
        what: format!("an {r}-regular simple graph on {n} vertices"),
    })
}

/// A *connected* random `r`-regular simple graph: draws with
/// [`steger_wormald`] until connected.
///
/// Random `r`-regular graphs with `r >= 3` are connected whp, so the
/// expected number of draws is `1 + o(1)`; the paper's cover-time
/// experiments implicitly condition on connectivity.
///
/// # Errors
///
/// Propagates generator errors and reports
/// [`GraphError::RetriesExhausted`] if no connected sample was found.
pub fn connected_random_regular<R: Rng + ?Sized>(
    n: usize,
    r: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    connected_random_regular_counted(n, r, rng).map(|(g, _)| g)
}

/// [`connected_random_regular`], additionally reporting how many
/// Steger–Wormald phase attempts the draw consumed across connectivity
/// rejections (`1` = the first phase produced a connected graph). The
/// RNG sequence and the output graph are identical to the uncounted
/// variant.
///
/// # Errors
///
/// As [`connected_random_regular`].
pub fn connected_random_regular_counted<R: Rng + ?Sized>(
    n: usize,
    r: usize,
    rng: &mut R,
) -> Result<(Graph, usize), GraphError> {
    if r < 3 && !(r == 2 && n >= 3) {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "connected_random_regular requires r >= 3 (or r = 2, n >= 3), got r = {r}"
            ),
        });
    }
    let mut attempts = 0usize;
    for _ in 0..MAX_RESTARTS {
        let (g, a) = steger_wormald_counted(n, r, rng)?;
        attempts += a;
        if connectivity::is_connected(&g) {
            return Ok((g, attempts));
        }
    }
    Err(GraphError::RetriesExhausted {
        generator: "connected_random_regular",
        attempts: MAX_RESTARTS,
        what: format!("a connected {r}-regular simple graph on {n} vertices"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::degrees;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pairing_multigraph_is_regular() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = pairing_model_multigraph(50, 4, &mut rng).unwrap();
        assert_eq!(g.n(), 50);
        assert!(degrees::is_regular(&g, 4));
    }

    #[test]
    fn pairing_simple_graph() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = random_regular_pairing(40, 3, &mut rng).unwrap();
        assert!(degrees::is_regular(&g, 3));
        assert!(!g.has_parallel_edges());
    }

    #[test]
    fn odd_degree_sum_rejected() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(matches!(
            random_regular_pairing(5, 3, &mut rng),
            Err(GraphError::InfeasibleDegrees { .. })
        ));
    }

    #[test]
    fn degree_too_large_rejected() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(matches!(
            random_regular_pairing(4, 4, &mut rng),
            Err(GraphError::InfeasibleDegrees { .. })
        ));
    }

    #[test]
    fn degree_sequence_respected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let seq = [4, 4, 4, 4, 2, 2, 2, 2, 4, 4];
        let g = random_with_degree_sequence(&seq, &mut rng).unwrap();
        for (v, &d) in seq.iter().enumerate() {
            assert_eq!(g.degree(v), d, "vertex {v}");
        }
        assert!(!g.has_parallel_edges());
    }

    #[test]
    fn degree_sequence_length_mismatch() {
        let mut rng = SmallRng::seed_from_u64(6);
        // A sequence whose sum is even but that contains d >= n.
        let seq = [3, 1];
        assert!(random_with_degree_sequence(&seq, &mut rng).is_err());
    }

    #[test]
    fn steger_wormald_regular_and_simple() {
        let mut rng = SmallRng::seed_from_u64(7);
        for r in [3, 4, 5, 6, 7] {
            let g = steger_wormald(60, r, &mut rng).unwrap();
            assert!(degrees::is_regular(&g, r), "r = {r}");
            assert!(!g.has_parallel_edges(), "r = {r}");
        }
    }

    #[test]
    fn steger_wormald_r0() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = steger_wormald(5, 0, &mut rng).unwrap();
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn steger_wormald_complete_graph_edge_case() {
        // n = 4, r = 3 forces K4 — only one simple graph exists; the
        // algorithm must still find it.
        let mut rng = SmallRng::seed_from_u64(9);
        let g = steger_wormald(4, 3, &mut rng).unwrap();
        assert_eq!(g.m(), 6);
        assert!(!g.has_parallel_edges());
    }

    #[test]
    fn connected_random_regular_is_connected() {
        let mut rng = SmallRng::seed_from_u64(10);
        let g = connected_random_regular(100, 4, &mut rng).unwrap();
        assert!(connectivity::is_connected(&g));
        assert!(degrees::is_regular(&g, 4));
    }

    #[test]
    fn connected_random_regular_rejects_r1() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(connected_random_regular(10, 1, &mut rng).is_err());
    }

    #[test]
    fn connected_r2_is_hamiltonian_cycle() {
        let mut rng = SmallRng::seed_from_u64(12);
        let g = connected_random_regular(12, 2, &mut rng).unwrap();
        assert!(degrees::is_regular(&g, 2));
        assert!(connectivity::is_connected(&g));
        assert_eq!(g.m(), 12);
    }

    #[test]
    fn counted_variants_match_uncounted_draws() {
        // Same seed → same graph: counting attempts must not perturb the
        // RNG sequence. A successful connected draw uses >= 1 attempt.
        let a = steger_wormald(40, 4, &mut SmallRng::seed_from_u64(21)).unwrap();
        let (b, attempts) =
            steger_wormald_counted(40, 4, &mut SmallRng::seed_from_u64(21)).unwrap();
        assert_eq!(a.edge_list(), b.edge_list());
        assert!(attempts >= 1);
        let a = connected_random_regular(40, 3, &mut SmallRng::seed_from_u64(22)).unwrap();
        let (b, attempts) =
            connected_random_regular_counted(40, 3, &mut SmallRng::seed_from_u64(22)).unwrap();
        assert_eq!(a.edge_list(), b.edge_list());
        assert!(attempts >= 1);
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let g1 = steger_wormald(30, 4, &mut SmallRng::seed_from_u64(42)).unwrap();
        let g2 = steger_wormald(30, 4, &mut SmallRng::seed_from_u64(42)).unwrap();
        assert_eq!(g1.edge_list(), g2.edge_list());
        let g3 = steger_wormald(30, 4, &mut SmallRng::seed_from_u64(43)).unwrap();
        assert_ne!(g1.edge_list(), g3.edge_list());
    }
}
