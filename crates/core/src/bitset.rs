//! A word-packed bitset for visited-edge / visited-vertex tracking.
//!
//! The walk kernels and observers all keep "seen" bitmaps sized by the
//! graph (`m` edges, `n` vertices). As `Vec<bool>` those bitmaps dominate
//! the cost of re-arming state between trials on paper-scale graphs
//! (`n` up to 5·10⁵): a reset writes one byte per edge. [`BitSet`] packs
//! 64 flags per word, so [`BitSet::clear_and_resize`] touches `m / 64`
//! words instead of `m` bytes and the whole structure is 8× smaller —
//! friendlier to cache when an ensemble worker cycles through thousands
//! of trials. It is shared by [`crate::EProcess`]'s visited-edge state and
//! the [`crate::observe`] observers.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-length sequence of bits, packed 64 per `u64` word.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty bitset (length 0). Size it with
    /// [`BitSet::clear_and_resize`] before use.
    pub fn new() -> BitSet {
        BitSet::default()
    }

    /// Creates a bitset of `len` bits, all `false`.
    pub fn with_len(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitset holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Re-arms the bitset to `len` bits, all `false`, reusing the existing
    /// allocation whenever it is large enough — the per-trial reset cost
    /// is `len / 64` word writes.
    pub fn clear_and_resize(&mut self, len: usize) {
        let words = len.div_ceil(WORD_BITS);
        self.words.truncate(words);
        self.words.iter_mut().for_each(|w| *w = 0);
        self.words.resize(words, 0);
        self.len = len;
    }

    /// Sets every bit to `false` without changing the length.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Sets bit `i` to `true`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / WORD_BITS] |= 1 << (i % WORD_BITS);
    }

    /// Sets bit `i` to `true`, returning `true` iff it was previously
    /// `false` — the one-pass "first visit?" primitive of the observers.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn test_and_set(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1 << (i % WORD_BITS);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Number of `true` bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over all bits in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Indices of the `true` bits, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * WORD_BITS;
            (0..WORD_BITS)
                .filter(move |b| w >> b & 1 == 1)
                .map(move |b| base + b)
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BitSet")
            .field("len", &self.len)
            .field("ones", &self.count_ones())
            .finish()
    }
}

impl FromIterator<bool> for BitSet {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> BitSet {
        let mut set = BitSet::new();
        for (i, bit) in iter.into_iter().enumerate() {
            set.clear_and_resize_keeping(i + 1);
            if bit {
                set.set(i);
            }
        }
        set
    }
}

impl BitSet {
    /// Grows to `len` bits preserving existing bits (internal helper for
    /// [`FromIterator`]).
    fn clear_and_resize_keeping(&mut self, len: usize) {
        self.words.resize(len.div_ceil(WORD_BITS), 0);
        self.len = len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_false_and_sets_stick() {
        let mut s = BitSet::with_len(130);
        assert_eq!(s.len(), 130);
        assert!(!s.is_empty());
        assert_eq!(s.count_ones(), 0);
        for i in [0, 63, 64, 65, 129] {
            assert!(!s.get(i));
            s.set(i);
            assert!(s.get(i));
        }
        assert_eq!(s.count_ones(), 5);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 65, 129]);
    }

    #[test]
    fn test_and_set_reports_first_touch_only() {
        let mut s = BitSet::with_len(70);
        assert!(s.test_and_set(69));
        assert!(!s.test_and_set(69));
        assert!(s.get(69));
        assert_eq!(s.count_ones(), 1);
    }

    #[test]
    fn clear_and_resize_rearms_without_stale_bits() {
        let mut s = BitSet::with_len(100);
        for i in 0..100 {
            s.set(i);
        }
        s.clear_and_resize(64);
        assert_eq!(s.len(), 64);
        assert_eq!(s.count_ones(), 0);
        s.set(63);
        // Growing back must not resurrect old bits beyond the old length.
        s.clear_and_resize(100);
        assert_eq!(s.count_ones(), 0);
        assert!(!s.get(64));
        s.clear_and_resize(0);
        assert!(s.is_empty());
    }

    #[test]
    fn from_iter_and_iter_round_trip() {
        let bits = [true, false, true, true, false];
        let s: BitSet = bits.iter().copied().collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.iter().collect::<Vec<_>>(), bits);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn clear_keeps_length() {
        let mut s = BitSet::with_len(10);
        s.set(3);
        s.clear();
        assert_eq!(s.len(), 10);
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let s = BitSet::with_len(8);
        let _ = s.get(8);
    }

    #[test]
    fn debug_is_compact() {
        let mut s = BitSet::with_len(9);
        s.set(2);
        let d = format!("{s:?}");
        assert!(d.contains("len") && d.contains("ones"));
    }
}
