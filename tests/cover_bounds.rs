//! Simulation-vs-theory integration tests spanning all crates.

use eproc::core::cover::{blanket_time, run_cover, run_to_vertex_cover, CoverTarget};
use eproc::core::rule::UniformRule;
use eproc::core::srw::{SimpleRandomWalk, WeightedRandomWalk};
use eproc::core::EProcess;
use eproc::graphs::generators;
use eproc::spectral::dense::SymMatrix;
use eproc::spectral::hitting;
use eproc::stats::Summary;
use eproc::theory;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Theorem 5 applies to *weighted* random walks: random positive weights
/// must still respect the `(n/4) log(n/2)` lower bound.
#[test]
fn radzik_lower_bound_on_weighted_walks() {
    let mut rng = SmallRng::seed_from_u64(1);
    for n in [64usize, 128, 256] {
        let g = generators::connected_random_regular(n, 4, &mut rng).unwrap();
        let weights: Vec<f64> = (0..g.m()).map(|_| rng.gen_range(0.1..10.0)).collect();
        let mut covers = Vec::new();
        for _ in 0..5 {
            let mut w = WeightedRandomWalk::new(&g, 0, &weights);
            let c = run_to_vertex_cover(&mut w, &g, &mut rng).expect("connected");
            covers.push(c.steps);
        }
        let mean = Summary::from_u64(&covers).mean;
        let bound = theory::radzik_lower_bound(n);
        assert!(
            mean > bound,
            "n = {n}: weighted walk covered in {mean} < Radzik {bound}"
        );
    }
}

/// Equation (3): `m <= CE(E) <= m + CV(SRW)` in the mean.
#[test]
fn edge_cover_sandwich_in_expectation() {
    let mut rng = SmallRng::seed_from_u64(2);
    let g = generators::connected_random_regular(256, 4, &mut rng).unwrap();
    let reps = 10;
    let mut ce = Vec::new();
    let mut cv_srw = Vec::new();
    for _ in 0..reps {
        let mut e = EProcess::new(&g, 0, UniformRule::new());
        let run = run_cover(&mut e, CoverTarget::Edges, 100_000_000, &mut rng);
        ce.push(run.steps_to_edge_cover.unwrap());
        let mut s = SimpleRandomWalk::new(&g, 0);
        cv_srw.push(run_to_vertex_cover(&mut s, &g, &mut rng).unwrap().steps);
    }
    let ce_mean = Summary::from_u64(&ce).mean;
    let cv_mean = Summary::from_u64(&cv_srw).mean;
    let m = g.m() as f64;
    assert!(ce_mean >= m, "CE {ce_mean} below m {m}");
    // Allow 50% sampling slack on the upper side.
    assert!(
        ce_mean <= m + 1.5 * cv_mean,
        "CE {ce_mean} above m + CV(SRW) = {}",
        m + cv_mean
    );
}

/// Theorem 1's expression dominates the measured cover time on a small
/// even-degree expander with the *measured* eigenvalue gap and the exact
/// `ℓ` (from the exhaustive oracle).
#[test]
fn theorem1_dominates_measured_cover() {
    // 3x4 torus: exact ℓ = 6 (cycle(3) + cycle(4) through a vertex).
    let g = generators::torus2d(3, 4);
    let l = eproc::graphs::properties::lgood::lgood_exact(&g)
        .unwrap()
        .unwrap() as f64;
    let lambda = SymMatrix::from_graph(&g, true).lambda_max_walk();
    let gap = 1.0 - lambda;
    let bound = theory::theorem1_vertex_cover_bound(g.n(), l, gap);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut covers = Vec::new();
    for _ in 0..20 {
        let mut w = EProcess::new(&g, 0, UniformRule::new());
        covers.push(run_to_vertex_cover(&mut w, &g, &mut rng).unwrap().steps);
    }
    let mean = Summary::from_u64(&covers).mean;
    // The Theorem-1 expression is an order bound; on this instance the
    // constant is comfortably below 1.
    assert!(
        mean <= bound,
        "measured {mean} exceeds Theorem 1 expression {bound}"
    );
}

/// Lemma 6 and Corollary 9 against exact hitting times and the exact
/// spectrum on assorted graphs.
#[test]
fn lemma6_corollary9_exact() {
    for g in [
        generators::lollipop(6, 4),
        generators::petersen(),
        generators::figure_eight(4),
        generators::torus2d(3, 3),
    ] {
        let lazy_lambda = SymMatrix::from_graph(&g, true).lambda_max_walk();
        let _ = lazy_lambda;
        let lambda = SymMatrix::from_graph(&g, false).lambda_max_walk();
        if lambda >= 1.0 - 1e-9 {
            continue; // bipartite: Lemma 6 needs the lazy chain; skip here
        }
        let gap = 1.0 - lambda;
        let pi = eproc::spectral::stationary_distribution(&g);
        for v in g.vertices() {
            let measured = hitting::hitting_from_stationary(&g, v).unwrap();
            let bound = theory::lemma6_hitting_bound(pi[v], gap);
            assert!(
                measured <= bound + 1e-9,
                "Lemma 6 fails at {v}: {measured} > {bound}"
            );
        }
        let set = [0, g.n() - 1];
        let d_s: usize = set.iter().map(|&v| g.degree(v)).sum();
        let measured = hitting::set_hitting_from_stationary(&g, &set).unwrap();
        let bound = theory::corollary9_set_hitting_bound(g.m(), d_s, gap);
        assert!(
            measured <= bound + 1e-9,
            "Corollary 9 fails: {measured} > {bound}"
        );
    }
}

/// The E-process beats the Feige lower bound (which binds every random
/// walk) on even-degree expanders — the paper's headline speed-up.
#[test]
fn eprocess_beats_feige_on_even_expanders() {
    let mut rng = SmallRng::seed_from_u64(4);
    let n = 2048;
    let g = generators::connected_random_regular(n, 4, &mut rng).unwrap();
    let mut covers = Vec::new();
    for _ in 0..5 {
        let mut w = EProcess::new(&g, 0, UniformRule::new());
        covers.push(run_to_vertex_cover(&mut w, &g, &mut rng).unwrap().steps);
    }
    let mean = Summary::from_u64(&covers).mean;
    let feige = theory::feige_lower_bound(n);
    assert!(
        mean < feige / 2.0,
        "E-process ({mean}) should be well below n ln n ({feige}) — no random walk can be"
    );
}

/// Blanket time of the SRW is O(CV) (Ding–Lee–Peres, used for eq. (4)).
#[test]
fn blanket_time_comparable_to_cover_time() {
    let mut rng = SmallRng::seed_from_u64(5);
    let g = generators::connected_random_regular(512, 4, &mut rng).unwrap();
    let mut w = SimpleRandomWalk::new(&g, 0);
    let cv = run_to_vertex_cover(&mut w, &g, &mut rng).unwrap().steps;
    let mut w2 = SimpleRandomWalk::new(&g, 0);
    let bl = blanket_time(&mut w2, 0.25, 100_000_000, &mut rng)
        .expect("valid delta")
        .expect("blanket reached");
    assert!(bl < 50 * cv, "blanket time {bl} should be O(CV) = O({cv})");
}

/// Hypercube §1 example: E-process edge cover is far below the SRW's.
#[test]
fn hypercube_edge_cover_improvement() {
    let g = generators::hypercube(8);
    let mut rng = SmallRng::seed_from_u64(6);
    let mut e_ce = Vec::new();
    let mut s_ce = Vec::new();
    for _ in 0..3 {
        let mut e = EProcess::new(&g, 0, UniformRule::new());
        e_ce.push(
            run_cover(&mut e, CoverTarget::Edges, u64::MAX >> 1, &mut rng)
                .steps_to_edge_cover
                .unwrap(),
        );
        let mut s = SimpleRandomWalk::new(&g, 0);
        s_ce.push(
            run_cover(&mut s, CoverTarget::Edges, u64::MAX >> 1, &mut rng)
                .steps_to_edge_cover
                .unwrap(),
        );
    }
    let e_mean = Summary::from_u64(&e_ce).mean;
    let s_mean = Summary::from_u64(&s_ce).mean;
    assert!(
        e_mean * 2.0 < s_mean,
        "E-process CE ({e_mean}) should be well below SRW CE ({s_mean}) on H8"
    );
}
