//! Ablation: cost of rule `A` in the blue-step hot path.
//!
//! The engine charges `O(1)` for bookkeeping; the rule adds its own cost
//! (uniform: one RNG draw; port rules: a scan of the live slice;
//! round-robin: a sort of the live slice). Measured over the first `m`
//! blue steps of a fresh walk.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eproc_bench::rng_for;
use eproc_core::rule::{FirstPortRule, GreedyAdversary, RoundRobinRule, UniformRule};
use eproc_core::{EProcess, WalkProcess};
use eproc_graphs::generators;

fn bench_rules(c: &mut Criterion) {
    let mut graph_rng = rng_for(1);
    let g = generators::connected_random_regular(10_000, 6, &mut graph_rng).unwrap();
    let steps = g.m() as u64 / 2;
    let mut group = c.benchmark_group("rule_overhead");
    group.throughput(Throughput::Elements(steps));
    group.sample_size(20);

    group.bench_function("uniform", |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = EProcess::new(&g, 0, UniformRule::new());
            for _ in 0..steps {
                std::hint::black_box(w.advance(&mut rng));
            }
        })
    });
    group.bench_function("first_port", |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = EProcess::new(&g, 0, FirstPortRule);
            for _ in 0..steps {
                std::hint::black_box(w.advance(&mut rng));
            }
        })
    });
    group.bench_function("round_robin", |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = EProcess::new(&g, 0, RoundRobinRule::new(g.n()));
            for _ in 0..steps {
                std::hint::black_box(w.advance(&mut rng));
            }
        })
    });
    group.bench_function("greedy_adversary", |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            let mut w = EProcess::new(&g, 0, GreedyAdversary);
            for _ in 0..steps {
                std::hint::black_box(w.advance(&mut rng));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rules);
criterion_main!(benches);
