//! Work-stealing parallel execution of [`ExperimentSpec`]s.
//!
//! Jobs — one per (graph, process, trial) — are pulled from a shared
//! atomic index by scoped worker threads, so load-balancing needs no
//! queues and no extra dependencies. Every trial derives its own RNG
//! stream from [`SeedSequence`] keyed by the trial's grid coordinates, and
//! aggregation folds trials in coordinate order, which makes the
//! aggregate report **bit-identical for any thread count**.
//!
//! Each trial walks the graph **once**: the spec's target and every
//! requested [`MetricSpec`] attach [`Observer`]s to the same
//! [`eproc_core::observe::run_observed`] trajectory, which runs until all
//! of them resolve (or the cap). The trial is dispatched through the
//! (process × metric-set) enum pair [`crate::spec::WalkKernel`] ×
//! [`AnyObserver`], so the per-step loop is monomorphized — no boxed
//! walk, no dyn-observer fan-out. Workers keep their observer set
//! between consecutive trials on the same graph, so the word-packed
//! [`eproc_core::bitset::BitSet`] scratch bitmaps are re-armed (`m / 64`
//! word writes) rather than reallocated.
//!
//! The work unit is always one *(family, group)* block. Under a
//! [`ResamplePlan`] a group is `walks_per_graph` consecutive trials and
//! the worker claiming the block samples the group's graph from its
//! [`resample_graph_seed`] — blocks partition the samples, so graph
//! generation parallelises across the pool exactly like the walks. In
//! shared-graph mode a group is a `SHARED_BLOCK_WALKS`-trial chunk of
//! the family's prebuilt graph, so both modes run the **same** block
//! runner and the same aggregation tail — there is exactly one
//! aggregation path and no per-trial vector anywhere.
//!
//! Aggregation is **streamed twice over**. Inside a block the claiming
//! worker folds each trial straight into per-(block, process)
//! [`OnlineStats`] + [`QuantileSketch`] accumulators and drops the
//! trial, so a block contributes `O(processes × columns)` memory no
//! matter how many trials it runs or how large its graph is. Completed
//! blocks stream back to the main thread over a channel and fold into
//! the per-cell `CellFolder` in canonical *(family, group)* order —
//! workers are back-pressured a bounded window ahead of the fold — so
//! the run's aggregation state is `O(cells × columns)` independent of
//! the trial count: the property that unlocks billion-trial runs. The
//! per-block accumulators double as the groups of the pooled /
//! across-graph / within-graph [`VarianceSplit`]s, and every sketch's
//! compaction coins derive from [`SeedSequence`] streams keyed by grid
//! coordinates — all of it bit-identical for any thread count.

use crate::spec::{AnyObserver, ExperimentSpec, MetricSpec, ResamplePlan, SpecError, Target};
use crate::{with_kernel, with_kernel_lanes};
use eproc_core::interleave::{run_observed_interleaved, Lane};
use eproc_core::observe::{run_observed, Metrics, Observer, StopWhen};
use eproc_graphs::Graph;
use eproc_stats::{OnlineStats, QuantileSketch, SeedSequence};
use eproc_telemetry::{Event, EventKind, NullSink, Stopwatch, TelemetrySink};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

/// Seed-stream tag for graph construction.
const GRAPH_STREAM: u64 = 0;
/// Seed-stream tag for trial RNGs.
const TRIAL_STREAM: u64 = 1;
/// Seed-stream tag for resampled per-group graphs.
const RESAMPLE_STREAM: u64 = 2;
/// Seed-stream tag for per-block quantile-sketch compaction coins.
const SKETCH_STREAM: u64 = 3;
/// Seed-stream tag for per-cell quantile-sketch compaction coins (the
/// accumulators block sketches merge into).
const CELL_SKETCH_STREAM: u64 = 4;

/// Trials per *(family, group)* block in shared-graph mode. Shared runs
/// have no resample plan to set a group width, so the executor chunks
/// each family's trials into blocks of this many — large enough that
/// per-block costs (observer banks, channel sends) amortise away, small
/// enough that huge-trial runs still stream block by block.
pub(crate) const SHARED_BLOCK_WALKS: usize = 64;

/// Execution options independent of the experiment itself.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Worker threads (`0` is rejected; see [`RunOptions::auto`]).
    pub threads: usize,
    /// Base seed: all graph and trial seeds derive from it.
    pub base_seed: u64,
}

impl RunOptions {
    /// Default options: all available cores, base seed `12345`.
    pub fn auto() -> RunOptions {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        RunOptions {
            threads,
            base_seed: 12345,
        }
    }
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions::auto()
    }
}

/// Execution failure.
#[derive(Debug)]
pub enum EngineError {
    /// The spec failed validation.
    Spec(SpecError),
    /// A graph family could not be constructed (shared-graph mode builds
    /// every family up front, before the worker pool starts).
    Graph {
        /// Label of the failing family.
        graph: String,
        /// Underlying generator error.
        source: eproc_graphs::GraphError,
    },
    /// A *(family, group)* block failed inside the worker pool: the
    /// worker that claimed the block could not generate the group's
    /// graph sample (resample mode), or its trial loop panicked (caught
    /// at the block isolation boundary, leaving the pool unpoisoned).
    /// Carries the full block context so a failure deep in a long sweep
    /// names exactly which work unit died and where.
    Block {
        /// Label of the failing family.
        graph: String,
        /// Resample group whose block failed.
        group: usize,
        /// Index of the worker that claimed the block.
        worker: usize,
        /// What killed the block.
        source: BlockError,
    },
}

/// What killed a single block: the group's graph sample could not be
/// generated (resample mode), or the block's trial loop panicked. Panics are
/// caught per block (`catch_unwind` in the worker loop), so one bad
/// block surfaces as an error value instead of tearing down the pool —
/// and `--retry-blocks` can deterministically re-run it.
#[derive(Debug)]
pub enum BlockError {
    /// Graph generation for the block's group failed.
    Graph(eproc_graphs::GraphError),
    /// The block panicked; carries the panic payload rendered as text.
    Panic(String),
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::Graph(e) => write!(f, "{e}"),
            BlockError::Panic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for BlockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlockError::Graph(e) => Some(e),
            BlockError::Panic(_) => None,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Spec(e) => write!(f, "invalid spec: {e}"),
            EngineError::Graph { graph, source } => {
                write!(f, "building graph {graph}: {source}")
            }
            EngineError::Block {
                graph,
                group,
                worker,
                source,
            } => {
                write!(
                    f,
                    "block (family {graph}, resample group {group}) failed on worker {worker}: \
                     {source}"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Spec(e) => Some(e),
            EngineError::Graph { source, .. } => Some(source),
            EngineError::Block { source, .. } => Some(source),
        }
    }
}

impl From<SpecError> for EngineError {
    fn from(e: SpecError) -> EngineError {
        EngineError::Spec(e)
    }
}

/// Everything measured in one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Steps to reach the target, if reached within the cap.
    pub steps_to_target: Option<u64>,
    /// Steps actually taken (may exceed the target step when extra
    /// metrics keep the walk going).
    pub steps: u64,
    /// Blue (unvisited-edge-preferring) transitions; `0` for blanket runs,
    /// whose target observer does not classify steps.
    pub blue_steps: u64,
    /// Red transitions; `0` for blanket runs.
    pub red_steps: u64,
    /// One scalar per metric column (spec order; `None` = unresolved
    /// within the cap).
    pub metric_values: Vec<Option<f64>>,
}

/// Across/within decomposition of one column's trial values under graph
/// resampling — the one-way random-effects layout with graph samples as
/// groups. `pooled` lives on the owning summary; this struct carries the
/// two components it splits into.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceSplit {
    /// Graph samples that contributed at least one resolved value.
    pub graph_samples: usize,
    /// Statistics over per-graph means — their variance is the
    /// across-graph component the whp-over-the-graph theorems speak to.
    pub across: OnlineStats,
    /// Pooled within-graph sample variance — walk-to-walk noise on a
    /// fixed graph. `None` when no graph sample had two resolved values
    /// (e.g. `walks_per_graph = 1`).
    pub within_variance: Option<f64>,
}

/// Streaming builder of a [`VarianceSplit`]: feeds per-group statistics
/// one group at a time (canonical group order), so the split needs no
/// retained group list. The floating-point operation order is exactly
/// the old collect-then-fold order — `across` pushes and the within-SS
/// additions happen once per group, in group order.
#[derive(Debug, Clone, Default)]
struct SplitAcc {
    graph_samples: usize,
    across: OnlineStats,
    within_ss: f64,
    within_dof: u64,
}

impl SplitAcc {
    /// Folds one group's statistics (skipping empty groups).
    fn feed(&mut self, g: &OnlineStats) {
        if g.count() == 0 {
            return;
        }
        self.graph_samples += 1;
        self.across.push(g.mean());
        if g.count() >= 2 {
            self.within_ss += g.variance() * (g.count() - 1) as f64;
            self.within_dof += g.count() - 1;
        }
    }

    fn finish(self) -> VarianceSplit {
        VarianceSplit {
            graph_samples: self.graph_samples,
            across: self.across,
            within_variance: (self.within_dof > 0).then(|| self.within_ss / self.within_dof as f64),
        }
    }
}

/// Aggregate of one metric column over a cell's trials.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Column name (see [`MetricSpec::columns`]).
    pub name: String,
    /// Streaming statistics over trials whose value resolved.
    pub stats: OnlineStats,
    /// Mergeable quantile sketch over the same resolved values.
    pub sketch: QuantileSketch,
    /// Variance decomposition under resampling (`None` in shared-graph
    /// mode).
    pub split: Option<VarianceSplit>,
}

/// Aggregated statistics for one (graph, process) cell.
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Graph family label.
    pub graph: String,
    /// Size-free family key (see [`crate::spec::GraphSpec::family_label`])
    /// — what the scaling subsystem groups sweep series by. Not
    /// serialised into artifacts.
    pub family: String,
    /// Vertex count of the built graph.
    pub n: usize,
    /// Edge count of the built graph.
    pub m: usize,
    /// Process label.
    pub process: String,
    /// Trials attempted.
    pub trials: usize,
    /// Trials that reached the target within the cap.
    pub completed: usize,
    /// Streaming statistics over steps-to-target of completed trials.
    pub steps: OnlineStats,
    /// Mergeable quantile sketch over the same steps-to-target values —
    /// what the report's `p50`/`p90`/`p99` columns read.
    pub steps_sketch: QuantileSketch,
    /// Streaming statistics over the per-trial blue-step fraction
    /// (`blue / (blue + red)`); empty for blanket targets.
    pub blue_fraction: OnlineStats,
    /// Variance decomposition of steps-to-target under resampling
    /// (`None` in shared-graph mode).
    pub steps_split: Option<VarianceSplit>,
    /// One aggregate per metric column, in spec order.
    pub metrics: Vec<MetricSummary>,
}

/// The full result of running one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Spec name.
    pub name: String,
    /// Spec description.
    pub description: String,
    /// Target measured.
    pub target: Target,
    /// Trials per cell.
    pub trials: usize,
    /// Base seed used.
    pub base_seed: u64,
    /// The resample plan the trials ran under (`None` = shared graphs).
    pub resample: Option<ResamplePlan>,
    /// One summary per (graph, process) pair, in grid order. Under
    /// resampling, `n`/`m` describe the family's **group-0 sample** as a
    /// representative (the per-trial samples of a geometric family vary
    /// in `m`; `n` is identical across samples).
    pub cells: Vec<CellSummary>,
}

/// The seed a graph at grid index `gi` is built from. Exposed so thin
/// wrappers (e.g. `table_theorem1`) can rebuild the *identical* graph for
/// per-graph enrichment columns.
pub fn graph_seed(base_seed: u64, graph_index: usize) -> u64 {
    SeedSequence::new(base_seed).derive(&[GRAPH_STREAM, graph_index as u64])
}

/// The seed for trial `t` of cell `(gi, pi)`.
pub fn trial_seed(base_seed: u64, graph_index: usize, process_index: usize, trial: usize) -> u64 {
    SeedSequence::new(base_seed).derive(&[
        TRIAL_STREAM,
        graph_index as u64,
        process_index as u64,
        trial as u64,
    ])
}

/// The seed the `group`-th resampled graph of family `gi` is built from
/// (see [`ResamplePlan`]). Deliberately **not** keyed by process index:
/// every process in a cell walks the same ensemble member, so process
/// comparisons stay paired sample by sample.
pub fn resample_graph_seed(base_seed: u64, graph_index: usize, group: usize) -> u64 {
    SeedSequence::new(base_seed).derive(&[RESAMPLE_STREAM, graph_index as u64, group as u64])
}

/// The coin-stream seed for the block-level [`QuantileSketch`] of column
/// `col` (0 = steps-to-target, `i + 1` = metric column `i`) in block
/// *(family `gi`, group, process `pi`)*. Keyed by the full grid
/// coordinate — never wall clock or thread schedule — so every block
/// sketch is a pure function of `(base_seed, block)` and artifacts stay
/// byte-identical across thread counts, shards and resume.
pub(crate) fn block_sketch_seed(
    base_seed: u64,
    gi: usize,
    group: usize,
    pi: usize,
    col: usize,
) -> u64 {
    SeedSequence::new(base_seed).derive(&[
        SKETCH_STREAM,
        gi as u64,
        group as u64,
        pi as u64,
        col as u64,
    ])
}

/// The coin-stream seed for the *cell-level* sketch accumulator of
/// column `col` in cell `(gi, pi)` — the sketch block sketches merge
/// into, in canonical group order. A separate stream from
/// [`block_sketch_seed`] so the accumulator never collides with the
/// group-0 block sketch it first absorbs.
pub(crate) fn cell_sketch_seed(base_seed: u64, gi: usize, pi: usize, col: usize) -> u64 {
    SeedSequence::new(base_seed).derive(&[CELL_SKETCH_STREAM, gi as u64, pi as u64, col as u64])
}

/// Trials per *(family, group)* block: the plan's `walks_per_graph`
/// under resampling, [`SHARED_BLOCK_WALKS`] on a shared graph.
pub(crate) fn block_width(spec: &ExperimentSpec) -> usize {
    match spec.resample {
        Some(plan) => plan.walks_per_graph.max(1),
        None => SHARED_BLOCK_WALKS,
    }
}

/// Blocks per family — `ceil(trials / block_width)` in both modes (and
/// exactly [`ResamplePlan::groups`] under resampling).
pub(crate) fn block_group_count(spec: &ExperimentSpec) -> usize {
    spec.trials.div_ceil(block_width(spec))
}

/// Builds every graph in the spec deterministically from `base_seed`.
pub fn build_graphs(spec: &ExperimentSpec, base_seed: u64) -> Result<Vec<Graph>, EngineError> {
    build_graphs_observed(spec, base_seed, &Telemetry::new(&NullSink))
}

/// The executor's telemetry context: the sink, the run clock every event
/// is stamped with, and the `enabled()` answer latched once — workers
/// test one boolean and skip event construction (and all clock reads)
/// entirely when nobody is listening, so an uninstrumented run pays
/// nothing on the hot path.
pub(crate) struct Telemetry<'a> {
    pub(crate) sink: &'a dyn TelemetrySink,
    pub(crate) clock: Stopwatch,
    pub(crate) live: bool,
}

impl<'a> Telemetry<'a> {
    pub(crate) fn new(sink: &'a dyn TelemetrySink) -> Telemetry<'a> {
        Telemetry {
            sink,
            clock: Stopwatch::start(),
            live: sink.enabled(),
        }
    }

    /// Stamps `kind` with the run clock and emits it. Callers guard with
    /// `self.live` so disabled runs never construct an [`EventKind`].
    pub(crate) fn emit(&self, kind: EventKind) {
        self.sink.emit(&Event {
            t_ns: self.clock.elapsed_ns(),
            kind,
        });
    }
}

/// [`build_graphs`] with telemetry: emits one `graph_built` event per
/// family when the sink is live. The builds (and their RNG draws) are
/// identical either way.
fn build_graphs_observed(
    spec: &ExperimentSpec,
    base_seed: u64,
    tel: &Telemetry<'_>,
) -> Result<Vec<Graph>, EngineError> {
    spec.graphs
        .iter()
        .enumerate()
        .map(|(gi, gs)| {
            let gen = tel.live.then(Stopwatch::start);
            let (g, attempts) = gs
                .build_counted(graph_seed(base_seed, gi))
                .map_err(|source| EngineError::Graph {
                    graph: gs.label(),
                    source,
                })?;
            if let Some(gen) = gen {
                tel.emit(EventKind::GraphBuilt {
                    graph: gs.label(),
                    n: g.n(),
                    m: g.m(),
                    gen_ns: gen.elapsed_ns(),
                    gen_attempts: attempts as u64,
                });
            }
            Ok(g)
        })
        .collect()
}

/// Streamed aggregates of one process's trials within one *(family,
/// group)* block — the executor's unit of aggregation in **both**
/// modes. Folding happens inside the worker that ran the block, so no
/// per-trial vector outlives the block. `pub(crate)` because shard
/// artifacts ([`crate::shard`]) and checkpoints persist these
/// accumulators (moments *and* sketches) verbatim.
#[derive(Debug, Clone)]
pub(crate) struct ProcAgg {
    /// Trials that reached the target within the cap.
    pub(crate) completed: usize,
    /// Steps-to-target of completed trials.
    pub(crate) steps: OnlineStats,
    /// Quantile sketch over the same steps-to-target values.
    pub(crate) steps_sketch: QuantileSketch,
    /// Per-trial blue fraction (trials with classified steps). No
    /// sketch: the fraction is a bounded diagnostic, not a tail
    /// statistic the report quantiles.
    pub(crate) blue_fraction: OnlineStats,
    /// One accumulator per metric column (resolved values only).
    pub(crate) metrics: Vec<OnlineStats>,
    /// One quantile sketch per metric column, same resolved values.
    pub(crate) metric_sketches: Vec<QuantileSketch>,
}

impl ProcAgg {
    /// An empty aggregate for block *(family `gi`, `group`, process
    /// `pi`)*, its sketches seeded from the block's grid coordinate (see
    /// [`block_sketch_seed`]).
    pub(crate) fn seeded(
        base_seed: u64,
        gi: usize,
        group: usize,
        pi: usize,
        metric_columns: usize,
    ) -> ProcAgg {
        ProcAgg {
            completed: 0,
            steps: OnlineStats::new(),
            steps_sketch: QuantileSketch::new(block_sketch_seed(base_seed, gi, group, pi, 0)),
            blue_fraction: OnlineStats::new(),
            metrics: vec![OnlineStats::new(); metric_columns],
            metric_sketches: (0..metric_columns)
                .map(|ci| QuantileSketch::new(block_sketch_seed(base_seed, gi, group, pi, ci + 1)))
                .collect(),
        }
    }

    /// Folds one trial, consuming it — the streaming step.
    fn fold(&mut self, outcome: TrialOutcome) {
        if let Some(s) = outcome.steps_to_target {
            self.steps.push(s as f64);
            self.steps_sketch.push(s as f64);
            self.completed += 1;
        }
        let classified = outcome.blue_steps + outcome.red_steps;
        if classified > 0 {
            self.blue_fraction
                .push(outcome.blue_steps as f64 / classified as f64);
        }
        for (acc, value) in self.metrics.iter_mut().zip(&outcome.metric_values) {
            if let Some(v) = value {
                acc.push(*v);
            }
        }
        for (sk, value) in self.metric_sketches.iter_mut().zip(&outcome.metric_values) {
            if let Some(v) = value {
                sk.push(*v);
            }
        }
    }
}

/// All processes' streamed aggregates for one *(family, group)* block.
#[derive(Debug, Clone)]
pub(crate) struct BlockAgg {
    /// Canonical block index `family * groups + group`.
    pub(crate) block: usize,
    /// One aggregate per process, in grid order.
    pub(crate) procs: Vec<ProcAgg>,
}

/// A worker's reusable observer set for one graph: slot 0 is the target
/// observer, slots 1.. are the metric observers, all stored as
/// [`AnyObserver`] enum variants (static dispatch, no boxing). Re-armed
/// (`begin`) for every trial; rebuilt only when the worker moves to a
/// different graph.
struct ObserverBank<'g> {
    /// `[target, metric_0, metric_1, …]` — a homogeneous `Vec` so the
    /// whole bank feeds `run_observed` through the slice `ObserverSet`.
    observers: Vec<AnyObserver<'g>>,
}

impl<'g> ObserverBank<'g> {
    fn new(spec: &ExperimentSpec, g: &'g Graph) -> ObserverBank<'g> {
        let mut observers = Vec::with_capacity(1 + spec.metrics.len());
        observers.push(spec.target.build_observer(g));
        observers.extend(spec.metrics.iter().map(|m| m.build_observer(g)));
        ObserverBank { observers }
    }
}

/// Runs one trial: **one** walk feeding the target observer and every
/// metric observer, until all of them resolve or the cap.
///
/// This is the engine's (process × metric-set) monomorphization point:
/// the [`with_kernel!`] match binds the concrete process type once per
/// trial, so each arm instantiates [`run_observed`] with a concrete walk
/// and the enum-dispatched observer bank — no per-step virtual calls.
/// Trial outcomes (and hence all aggregates and JSON artifacts) are
/// bit-identical to the old boxed path: both draw the same RNG sequence.
fn run_trial(
    spec: &ExperimentSpec,
    g: &Graph,
    process_index: usize,
    seed: u64,
    bank: &mut ObserverBank<'_>,
) -> TrialOutcome {
    let mut rng = SmallRng::seed_from_u64(seed);
    let kernel = spec.processes[process_index].build_kernel(g, spec.start);
    let cap = spec.cap.resolve(g);
    let run = with_kernel!(kernel, walk => run_observed(
        &mut walk,
        &mut bank.observers,
        StopWhen::AllSatisfied,
        cap,
        &mut rng,
    ));
    extract_outcome(spec, run.steps, bank)
}

/// Harvests one trial's [`TrialOutcome`] from its finished observer bank —
/// the target-extraction half of a trial, shared verbatim by the
/// sequential ([`run_trial`]) and interleaved ([`run_trials_interleaved`])
/// paths so both produce identical outcomes from identical walks.
fn extract_outcome(spec: &ExperimentSpec, steps: u64, bank: &mut ObserverBank<'_>) -> TrialOutcome {
    let (steps_to_target, blue_steps, red_steps) = match (spec.target, bank.observers[0].finish()) {
        (Target::Blanket { .. }, Metrics::Blanket(b)) => (b.steps_to_blanket, 0, 0),
        (target, Metrics::Cover(c)) => {
            let steps_to_target = match target {
                Target::VertexCover => c.steps_to_vertex_cover,
                Target::EdgeCover => c.steps_to_edge_cover,
                Target::BothCover => c
                    .steps_to_vertex_cover
                    .and(c.steps_to_edge_cover)
                    .map(|_| c.steps_to_vertex_cover.max(c.steps_to_edge_cover).unwrap()),
                Target::Blanket { .. } => unreachable!(),
            };
            (steps_to_target, c.blue_steps, c.red_steps)
        }
        (target, metrics) => panic!("target {target:?} produced mismatched {metrics:?}"),
    };
    let mut metric_values = Vec::new();
    for (ms, obs) in spec.metrics.iter().zip(&mut bank.observers[1..]) {
        metric_values.extend(ms.values(&obs.finish()));
    }
    TrialOutcome {
        steps_to_target,
        steps,
        blue_steps,
        red_steps,
        metric_values,
    }
}

/// Most trials one interleaved lane set runs: beyond ~8 independent
/// pointer-chases the memory system's miss-handling capacity is saturated
/// and extra lanes only grow the working set.
pub const MAX_INTERLEAVE: usize = 8;

/// Which step-loop the executor dispatches a group of same-cell trials
/// through (see [`select_kernel_path`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// One trial at a time through [`eproc_core::observe::run_observed`].
    Sequential,
    /// `width` trials per lockstep lane set through
    /// [`eproc_core::interleave::run_observed_interleaved`].
    Interleaved {
        /// Concurrent lanes per set (`2..=MAX_INTERLEAVE`).
        width: usize,
    },
}

/// Picks the kernel path for a group of `group_trials` independent trials
/// sharing one graph. Pure cell-shape policy: two or more trials engage
/// the interleaved kernel (lane width capped at [`MAX_INTERLEAVE`]);
/// single-trial groups keep the sequential loop. Because the interleaved
/// per-trial streams are bit-identical to the sequential kernel's, the
/// choice is free — it never perturbs artifacts.
pub fn select_kernel_path(group_trials: usize) -> KernelPath {
    if group_trials >= 2 {
        KernelPath::Interleaved {
            width: group_trials.min(MAX_INTERLEAVE),
        }
    } else {
        KernelPath::Sequential
    }
}

/// Runs `seeds.len()` same-cell trials as one interleaved lane set (one
/// lane per seed, one observer bank per lane) and returns their outcomes
/// in seed order.
///
/// The [`with_kernel_lanes!`] dispatch binds the concrete process type
/// once for the whole set, so the lockstep loop is exactly as
/// monomorphized as the sequential kernel. Per-trial RNG streams, step
/// sequences and observer outputs are bit-identical to calling
/// [`run_trial`] per seed — pinned by `interleaved_trials_match_sequential`
/// below and the core `interleave_equivalence` proptests.
fn run_trials_interleaved(
    spec: &ExperimentSpec,
    g: &Graph,
    process_index: usize,
    seeds: &[u64],
    banks: &mut [ObserverBank<'_>],
) -> Vec<TrialOutcome> {
    assert!(seeds.len() <= banks.len(), "one bank per lane");
    let cap = spec.cap.resolve(g);
    let rngs: Vec<SmallRng> = seeds
        .iter()
        .map(|&seed| SmallRng::seed_from_u64(seed))
        .collect();
    let kernels: Vec<_> = seeds
        .iter()
        .map(|_| spec.processes[process_index].build_kernel(g, spec.start))
        .collect();
    let runs = with_kernel_lanes!(kernels, walks => {
        let mut lanes: Vec<Lane<'_, _, _, SmallRng>> = walks
            .into_iter()
            .zip(banks.iter_mut())
            .zip(rngs)
            .map(|((walk, bank), rng)| Lane::new(walk, &mut bank.observers, rng))
            .collect();
        run_observed_interleaved(&mut lanes, StopWhen::AllSatisfied, cap)
    });
    runs.iter()
        .zip(banks.iter_mut())
        .map(|(run, bank)| extract_outcome(spec, run.steps, bank))
        .collect()
}

/// Runs the experiment on `opts.threads` worker threads.
///
/// # Determinism
///
/// The report is a pure function of `(spec, opts.base_seed)`: graphs are
/// built from per-graph derived seeds, each trial owns an RNG derived from
/// its grid coordinates, and aggregation folds outcomes in coordinate
/// order. Thread count affects wall-clock time only.
///
/// # Errors
///
/// Returns [`EngineError`] if the spec is invalid or a graph cannot be
/// built.
///
/// # Panics
///
/// Panics if `opts.threads == 0` or a worker thread panics.
pub fn run(spec: &ExperimentSpec, opts: &RunOptions) -> Result<ExperimentReport, EngineError> {
    run_with_sink(spec, opts, &NullSink)
}

/// [`run`] with telemetry: emits structured [`Event`]s to `sink` as the
/// run progresses — `run_started`, per-family `graph_built` (shared
/// mode), per-block `block_claimed` / `block_completed`,
/// `aggregation_merged` and `run_finished`.
///
/// # Determinism
///
/// The report is **byte-identical** to [`run`]'s for the same `(spec,
/// opts.base_seed)` whatever the sink does: events carry labels and
/// integers measured *around* the deterministic work, never feed back
/// into it, and no RNG draw depends on the sink. A disabled sink (one
/// whose [`TelemetrySink::enabled`] is `false`, like [`NullSink`]) skips
/// event construction and clock reads entirely.
///
/// # Errors
///
/// As [`run`]; a graph failing *inside* the resample pool additionally
/// carries its block context as [`EngineError::Block`].
///
/// # Panics
///
/// As [`run`].
pub fn run_with_sink(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    sink: &dyn TelemetrySink,
) -> Result<ExperimentReport, EngineError> {
    // Validate before building: an infeasible family is a spec error the
    // caller should see immediately, not a generator failure. (`execute`
    // revalidates for direct `run_on_graphs` callers; the checks are
    // cheap and side-effect free.)
    spec.validate()?;
    let tel = Telemetry::new(sink);
    emit_run_started(spec, opts, &tel);
    if spec.resample.is_some() {
        // Resampled runs never touch a shared graph: every sample —
        // including the group-0 representative the report describes — is
        // generated inside the worker pool.
        execute(spec, opts, None, &tel)
    } else {
        let graphs = build_graphs_observed(spec, opts.base_seed, &tel)?;
        execute(spec, opts, Some(&graphs), &tel)
    }
}

/// Like [`run`], but on graphs already built with [`build_graphs`] for the
/// same `(spec, opts.base_seed)` — for wrappers that also need the graphs
/// themselves (e.g. per-graph enrichment columns) without building every
/// family twice.
///
/// # Errors
///
/// Returns [`EngineError`] if the spec is invalid, including any spec
/// with a [`ResamplePlan`]: resampled trials generate their own samples
/// in the worker pool, so prebuilt graphs cannot be honoured.
///
/// # Panics
///
/// Panics if `opts.threads == 0`, `graphs.len() != spec.graphs.len()`, or
/// a worker thread panics.
pub fn run_on_graphs(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    graphs: &[Graph],
) -> Result<ExperimentReport, EngineError> {
    run_on_graphs_with_sink(spec, opts, graphs, &NullSink)
}

/// [`run_on_graphs`] with telemetry — see [`run_with_sink`] for the event
/// contract. No `graph_built` events are emitted: the caller built the
/// graphs.
///
/// # Errors
///
/// As [`run_on_graphs`].
///
/// # Panics
///
/// As [`run_on_graphs`].
pub fn run_on_graphs_with_sink(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    graphs: &[Graph],
    sink: &dyn TelemetrySink,
) -> Result<ExperimentReport, EngineError> {
    assert_eq!(
        graphs.len(),
        spec.graphs.len(),
        "graphs do not match the spec grid"
    );
    // A resample spec would not walk the supplied graphs at all — the
    // workers generate their own samples — so per-graph enrichment
    // columns computed from `graphs` would describe graphs the report
    // never touched. Refuse rather than mislead; resampled runs go
    // through [`run`].
    if spec.resample.is_some() {
        return Err(EngineError::Spec(SpecError::new(
            "run_on_graphs cannot honour prebuilt graphs under resampling; use run()",
        )));
    }
    spec.validate()?;
    let tel = Telemetry::new(sink);
    emit_run_started(spec, opts, &tel);
    execute(spec, opts, Some(graphs), &tel)
}

/// Announces the full shape of the work ahead. Emitted by the public
/// entry points *before* any graph is built, so `run_started` is always
/// the stream's first event (the shape is a pure function of the
/// validated spec and options — nothing here runs).
fn emit_run_started(spec: &ExperimentSpec, opts: &RunOptions, tel: &Telemetry<'_>) {
    if !tel.live {
        return;
    }
    let total = spec.total_jobs();
    let total_blocks = spec.graphs.len() * block_group_count(spec);
    tel.emit(EventKind::RunStarted {
        name: spec.name.clone(),
        graphs: spec.graphs.len(),
        processes: spec.processes.len(),
        trials: spec.trials,
        blocks: total_blocks,
        total_trials: total as u64,
        workers: opts.threads.min(total_blocks.max(1)),
        resampled: spec.resample.is_some(),
        shard: None,
    });
}

/// Range checks every start and hitting vertex against every family —
/// shared by [`execute`] and the sharded runner ([`crate::shard`]), so a
/// bad spec fails identically whether or not the run is partitioned.
/// `prebuilt` supplies exact vertex counts in shared-graph mode; under
/// resampling every sample of a family has the same count, so the checks
/// need no generated graph.
pub(crate) fn validate_vertices(
    spec: &ExperimentSpec,
    prebuilt: Option<&[Graph]>,
) -> Result<(), EngineError> {
    for (gi, gs) in spec.graphs.iter().enumerate() {
        let n = match prebuilt {
            Some(graphs) => graphs[gi].n(),
            None => gs.vertex_count().map_err(EngineError::Spec)?,
        };
        if spec.start >= n {
            return Err(EngineError::Spec(SpecError::new(format!(
                "start vertex {} out of range for {} (n = {})",
                spec.start,
                gs.label(),
                n
            ))));
        }
        for metric in &spec.metrics {
            if let MetricSpec::Hitting { vertex: Some(v) } = metric {
                if *v >= n {
                    return Err(EngineError::Spec(SpecError::new(format!(
                        "hitting vertex {} out of range for {} (n = {})",
                        v,
                        gs.label(),
                        n
                    ))));
                }
            }
        }
    }
    Ok(())
}

/// Everything one resample block produced.
pub(crate) struct BlockResult {
    /// The block's streamed per-process aggregates.
    pub(crate) agg: BlockAgg,
    /// `(family, n, m)` when this was the family's group-0 block — the
    /// representative dimensions the report describes the family with.
    pub(crate) rep: Option<(usize, usize, usize)>,
    /// Trials the block ran.
    pub(crate) trials: u64,
    /// Walk steps the block simulated.
    pub(crate) steps: u64,
}

/// Runs one *(family, group)* block: obtains the block's graph — the
/// family's prebuilt graph in shared mode, a freshly sampled group graph
/// under resampling — runs all of the block's trials on it (dispatching
/// each process's trial group through [`select_kernel_path`] — the
/// interleaved lane set when the group has two or more trials) and
/// streams every trial into per-process [`ProcAgg`]s. Emits
/// `block_claimed` / `block_completed` when `tel` is live.
/// Deterministic: the result is a pure function of `(spec, base_seed,
/// block)` — worker id and telemetry only label events — which is what
/// lets sharded runs farm blocks out by residue class and still merge
/// byte-identically.
pub(crate) fn run_block(
    spec: &ExperimentSpec,
    base_seed: u64,
    block: usize,
    worker: usize,
    n_cols: usize,
    prebuilt: Option<&Graph>,
    tel: &Telemetry<'_>,
) -> Result<BlockResult, EngineError> {
    let w = block_width(spec);
    let trials = spec.trials;
    let groups = block_group_count(spec);
    let gi = block / groups;
    let group = block % groups;
    let live = tel.live;
    if live {
        tel.emit(EventKind::BlockClaimed {
            block,
            family: spec.graphs[gi].label(),
            group,
            worker,
        });
    }
    let mut owned: Option<Graph> = None;
    let (g, attempts, gen_ns): (&Graph, u64, u64) = match prebuilt {
        Some(g) => (g, 0, 0),
        None => {
            let seed = resample_graph_seed(base_seed, gi, group);
            let gen = live.then(Stopwatch::start);
            let (g, attempts) =
                spec.graphs[gi]
                    .build_counted(seed)
                    .map_err(|source| EngineError::Block {
                        graph: spec.graphs[gi].label(),
                        group,
                        worker,
                        source: BlockError::Graph(source),
                    })?;
            let gen_ns = gen.map_or(0, |gen| gen.elapsed_ns());
            (owned.insert(g), attempts as u64, gen_ns)
        }
    };
    let rep = (prebuilt.is_none() && group == 0).then(|| (gi, g.n(), g.m()));
    let lo = group * w;
    let hi = ((group + 1) * w).min(trials);
    let path = select_kernel_path(hi - lo);
    // One observer bank per lane, built once per block and re-armed
    // across processes and chunks (`begin` re-arms completely — pinned by
    // `observer_bank_reuse_matches_fresh_observers`).
    let lanes = match path {
        KernelPath::Sequential => 1,
        KernelPath::Interleaved { width } => width,
    };
    let mut banks: Vec<ObserverBank<'_>> = (0..lanes).map(|_| ObserverBank::new(spec, g)).collect();
    let mut procs: Vec<ProcAgg> = (0..spec.processes.len())
        .map(|pi| ProcAgg::seeded(base_seed, gi, group, pi, n_cols))
        .collect();
    let walk = live.then(Stopwatch::start);
    let mut block_trials = 0u64;
    let mut block_steps = 0u64;
    for (pi, agg) in procs.iter_mut().enumerate() {
        match path {
            KernelPath::Sequential => {
                for t in lo..hi {
                    let seed = trial_seed(base_seed, gi, pi, t);
                    let outcome = run_trial(spec, g, pi, seed, &mut banks[0]);
                    block_trials += 1;
                    block_steps += outcome.steps;
                    agg.fold(outcome);
                }
            }
            KernelPath::Interleaved { width } => {
                // Outcomes fold in trial-index order — chunk by chunk,
                // lane order within a chunk — the exact order the
                // sequential loop folds them.
                let mut t = lo;
                while t < hi {
                    let chunk = (hi - t).min(width);
                    let seeds: Vec<u64> = (t..t + chunk)
                        .map(|t| trial_seed(base_seed, gi, pi, t))
                        .collect();
                    for outcome in run_trials_interleaved(spec, g, pi, &seeds, &mut banks[..chunk])
                    {
                        block_trials += 1;
                        block_steps += outcome.steps;
                        agg.fold(outcome);
                    }
                    t += chunk;
                }
            }
        }
    }
    if let Some(walk) = walk {
        tel.emit(EventKind::BlockCompleted {
            block,
            family: spec.graphs[gi].label(),
            group,
            process: None,
            worker,
            trials: block_trials,
            steps: block_steps,
            gen_ns,
            gen_attempts: attempts,
            walk_ns: walk.elapsed_ns(),
        });
    }
    Ok(BlockResult {
        agg: BlockAgg { block, procs },
        rep,
        trials: block_trials,
        steps: block_steps,
    })
}

/// Renders a caught panic payload as text: `&str` and `String` payloads
/// (everything `panic!` produces) verbatim, anything else a placeholder.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`run_block`] behind a per-block `catch_unwind` isolation boundary:
/// a panic anywhere in the block — graph sampling, the walk kernel, an
/// observer — is caught and surfaced as [`EngineError::Block`] with a
/// [`BlockError::Panic`] source, instead of unwinding through the
/// worker and poisoning the pool. Every in-pool block runner (plain
/// runs, sharded runs, recoverable runs) goes through this wrapper, so
/// one bad block is always a reportable, retryable error value.
pub(crate) fn run_block_isolated(
    spec: &ExperimentSpec,
    base_seed: u64,
    block: usize,
    worker: usize,
    n_cols: usize,
    prebuilt: Option<&Graph>,
    tel: &Telemetry<'_>,
) -> Result<BlockResult, EngineError> {
    // AssertUnwindSafe: on Err every captured reference is dropped
    // without further use — the worker reports the error and stops — so
    // no closure state is observed in a broken intermediate state.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_block(spec, base_seed, block, worker, n_cols, prebuilt, tel)
    }))
    .unwrap_or_else(|payload| {
        let groups = block_group_count(spec);
        Err(EngineError::Block {
            graph: spec.graphs[block / groups].label(),
            group: block % groups,
            worker,
            source: BlockError::Panic(panic_message(payload)),
        })
    })
}

/// The spec-shaped context cell aggregation needs — split from
/// [`ExperimentSpec`] so `eproc merge` can aggregate from shard headers
/// alone, through the **same** code path (and hence the same
/// floating-point operation order) as an unsharded run.
pub(crate) struct CellInputs<'a> {
    /// `(label, family_label)` per graph family, in grid order.
    pub(crate) graphs: &'a [(String, String)],
    /// Process labels, in grid order.
    pub(crate) processes: &'a [String],
    /// Flattened metric column names.
    pub(crate) metric_columns: &'a [String],
    /// Trials per cell.
    pub(crate) trials: usize,
    /// Blocks per family (see [`block_group_count`]).
    pub(crate) group_count: usize,
    /// The run's base seed — cell sketch accumulators derive their coin
    /// streams from it (see [`cell_sketch_seed`]).
    pub(crate) base_seed: u64,
    /// Whether the blocks are resampled graph groups. Drives the
    /// variance splits: shared-mode chunks all walk one graph, so an
    /// across/within decomposition over them would be meaningless.
    pub(crate) resampled: bool,
}

/// One cell's streaming accumulators inside a [`CellFolder`].
struct CellAcc {
    completed: usize,
    steps: OnlineStats,
    steps_sketch: QuantileSketch,
    steps_split: SplitAcc,
    blue_fraction: OnlineStats,
    metrics: Vec<OnlineStats>,
    metric_sketches: Vec<QuantileSketch>,
    metric_splits: Vec<SplitAcc>,
}

/// The engine's **single** aggregation tail: folds streamed block
/// aggregates into grid-ordered cell accumulators, one block at a time,
/// strictly in canonical *(family, group)* order. Both execution modes,
/// `eproc merge` and `--resume` all feed it the same way, so every
/// recombination performs the identical Welford merges, sketch merges
/// and split feeds in the identical order — the whole byte-identity
/// story reduces to this one type. Memory is `O(cells × columns)`,
/// independent of both the trial count and the block count.
pub(crate) struct CellFolder<'a> {
    inputs: &'a CellInputs<'a>,
    cells: Vec<CellAcc>,
    fed: usize,
}

impl<'a> CellFolder<'a> {
    /// Empty accumulators for every `(family, process)` cell, sketch
    /// coin streams seeded from the cell's grid coordinate.
    pub(crate) fn new(inputs: &'a CellInputs<'a>) -> CellFolder<'a> {
        let n_cols = inputs.metric_columns.len();
        let mut cells = Vec::with_capacity(inputs.graphs.len() * inputs.processes.len());
        for gi in 0..inputs.graphs.len() {
            for pi in 0..inputs.processes.len() {
                cells.push(CellAcc {
                    completed: 0,
                    steps: OnlineStats::new(),
                    steps_sketch: QuantileSketch::new(cell_sketch_seed(
                        inputs.base_seed,
                        gi,
                        pi,
                        0,
                    )),
                    steps_split: SplitAcc::default(),
                    blue_fraction: OnlineStats::new(),
                    metrics: vec![OnlineStats::new(); n_cols],
                    metric_sketches: (0..n_cols)
                        .map(|ci| {
                            QuantileSketch::new(cell_sketch_seed(inputs.base_seed, gi, pi, ci + 1))
                        })
                        .collect(),
                    metric_splits: vec![SplitAcc::default(); n_cols],
                });
            }
        }
        CellFolder {
            inputs,
            cells,
            fed: 0,
        }
    }

    /// The next canonical block index this folder expects.
    pub(crate) fn fed(&self) -> usize {
        self.fed
    }

    /// Folds the next block. The per-block accumulators double as the
    /// groups of the variance splits: one Welford merge and one split
    /// feed per (block, process, column), no per-trial state.
    ///
    /// # Panics
    ///
    /// Panics if `agg` is not the block the canonical order expects —
    /// out-of-order folding would silently change sketch coin streams
    /// and Welford float bits.
    pub(crate) fn feed(&mut self, agg: &BlockAgg) {
        assert_eq!(agg.block, self.fed, "blocks must fold in canonical order");
        let gi = agg.block / self.inputs.group_count;
        let n_proc = self.inputs.processes.len();
        for (pi, proc_agg) in agg.procs.iter().enumerate() {
            let cell = &mut self.cells[gi * n_proc + pi];
            cell.completed += proc_agg.completed;
            cell.steps.merge(&proc_agg.steps);
            cell.steps_sketch.merge(&proc_agg.steps_sketch);
            cell.blue_fraction.merge(&proc_agg.blue_fraction);
            for (acc, part) in cell.metrics.iter_mut().zip(&proc_agg.metrics) {
                acc.merge(part);
            }
            for (sk, part) in cell
                .metric_sketches
                .iter_mut()
                .zip(&proc_agg.metric_sketches)
            {
                sk.merge(part);
            }
            if self.inputs.resampled {
                cell.steps_split.feed(&proc_agg.steps);
                for (split, part) in cell.metric_splits.iter_mut().zip(&proc_agg.metrics) {
                    split.feed(part);
                }
            }
        }
        self.fed += 1;
    }

    /// Renders the folded accumulators as grid-ordered [`CellSummary`]s.
    /// `dims` holds each family's representative `(n, m)`.
    pub(crate) fn finish(self, dims: &[(usize, usize)]) -> Vec<CellSummary> {
        let inputs = self.inputs;
        let mut out = Vec::with_capacity(self.cells.len());
        let mut accs = self.cells.into_iter();
        for (gi, (label, family)) in inputs.graphs.iter().enumerate() {
            let (rep_n, rep_m) = dims[gi];
            for process in inputs.processes {
                let acc = accs.next().expect("one accumulator per cell");
                let metrics = inputs
                    .metric_columns
                    .iter()
                    .zip(acc.metrics)
                    .zip(acc.metric_sketches)
                    .zip(acc.metric_splits)
                    .map(|(((name, stats), sketch), split)| MetricSummary {
                        name: name.clone(),
                        stats,
                        sketch,
                        split: inputs.resampled.then(|| split.finish()),
                    })
                    .collect();
                out.push(CellSummary {
                    graph: label.clone(),
                    family: family.clone(),
                    n: rep_n,
                    m: rep_m,
                    process: process.clone(),
                    trials: inputs.trials,
                    completed: acc.completed,
                    steps: acc.steps,
                    steps_sketch: acc.steps_sketch,
                    blue_fraction: acc.blue_fraction,
                    steps_split: inputs.resampled.then(|| acc.steps_split.finish()),
                    metrics,
                });
            }
        }
        out
    }
}

/// Folds a complete, canonically ordered block slice into grid-ordered
/// [`CellSummary`]s — the batch convenience over [`CellFolder`] used by
/// `eproc merge` and the recoverable runner, which retain their blocks
/// anyway (shard artifacts and checkpoints persist them). `blocks` is
/// indexed `gi * group_count + group`.
pub(crate) fn aggregate_cells(
    inputs: &CellInputs<'_>,
    dims: &[(usize, usize)],
    blocks: &[BlockAgg],
) -> Vec<CellSummary> {
    let mut folder = CellFolder::new(inputs);
    for block in blocks {
        folder.feed(block);
    }
    folder.finish(dims)
}

/// Shared core of [`run`] and [`run_on_graphs`]: validates, runs every
/// trial on the worker pool and aggregates. `prebuilt` is `Some` in
/// shared-graph mode; `None` means resample mode, where the reported
/// `n`/`m` are harvested from each family's group-0 sample. `tel` is the
/// run's telemetry context; all instrumentation is keyed off `tel.live`
/// so a [`NullSink`] run takes the exact uninstrumented path.
fn execute(
    spec: &ExperimentSpec,
    opts: &RunOptions,
    prebuilt: Option<&[Graph]>,
    tel: &Telemetry<'_>,
) -> Result<ExperimentReport, EngineError> {
    assert!(opts.threads > 0, "need at least one worker thread");
    assert!(
        prebuilt.is_some() || spec.resample.is_some(),
        "shared-graph execution needs prebuilt graphs"
    );
    spec.validate()?;
    validate_vertices(spec, prebuilt)?;

    let trials = spec.trials;
    let metric_columns = spec.metric_columns();
    let n_cols = metric_columns.len();
    let group_count = block_group_count(spec);
    let total_blocks = spec.graphs.len() * group_count;
    let workers = opts.threads.min(total_blocks.max(1));
    // Per-family representative dimensions `(n, m)` for the report: the
    // prebuilt graphs in shared mode, harvested from each family's
    // group-0 sample in resample mode.
    let mut dims: Vec<Option<(usize, usize)>> = match prebuilt {
        Some(graphs) => graphs.iter().map(|g| Some((g.n(), g.m()))).collect(),
        None => vec![None; spec.graphs.len()],
    };

    let graph_meta: Vec<(String, String)> = spec
        .graphs
        .iter()
        .map(|gs| (gs.label(), gs.family_label()))
        .collect();
    let proc_labels: Vec<String> = spec.processes.iter().map(|ps| ps.label()).collect();
    let inputs = CellInputs {
        graphs: &graph_meta,
        processes: &proc_labels,
        metric_columns: &metric_columns,
        trials,
        group_count,
        base_seed: opts.base_seed,
        resampled: spec.resample.is_some(),
    };
    let mut folder = CellFolder::new(&inputs);
    // Workers claim canonical block indices from the shared atomic and
    // stream each completed block straight back over a channel; the main
    // thread folds arrivals into `folder` the moment the canonical order
    // allows. A bounded claim window back-pressures the pool so the
    // out-of-order `pending` buffer (and hence total aggregation state)
    // stays `O(workers)` blocks — never `O(blocks)`, never `O(trials)`.
    enum WorkerMsg {
        Done(Box<BlockResult>),
        Failed(Box<EngineError>),
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let fed_floor = Mutex::new(0usize);
    let may_run = Condvar::new();
    let window = (workers * 2).max(8);
    let (send, recv) = mpsc::channel::<WorkerMsg>();

    let mut pending: BTreeMap<usize, BlockAgg> = BTreeMap::new();
    let mut first_error: Option<EngineError> = None;
    let mut total_trials_run = 0u64;
    let mut total_steps_run = 0u64;
    let mut agg_ns = 0u64;

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let send = send.clone();
            let next = &next;
            let stop = &stop;
            let fed_floor = &fed_floor;
            let may_run = &may_run;
            scope.spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let block = next.fetch_add(1, Ordering::Relaxed);
                if block >= total_blocks {
                    break;
                }
                // Back-pressure: claims are handed out in canonical
                // order, so waiting until the fold floor is within
                // `window` of this claim cannot deadlock — the floor
                // block's owner always holds an earlier (unwaited or
                // already-satisfied) claim.
                {
                    let mut fed = fed_floor.lock().expect("fold floor lock");
                    while block >= *fed + window && !stop.load(Ordering::Relaxed) {
                        fed = may_run.wait(fed).expect("fold floor lock");
                    }
                }
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let graph = prebuilt.map(|graphs| &graphs[block / group_count]);
                let msg = match run_block_isolated(
                    spec,
                    opts.base_seed,
                    block,
                    worker,
                    n_cols,
                    graph,
                    tel,
                ) {
                    Ok(result) => WorkerMsg::Done(Box::new(result)),
                    Err(e) => WorkerMsg::Failed(Box::new(e)),
                };
                let failed = matches!(msg, WorkerMsg::Failed(_));
                if send.send(msg).is_err() || failed {
                    break;
                }
            });
        }
        drop(send);
        for msg in recv {
            match msg {
                WorkerMsg::Done(result) => {
                    total_trials_run += result.trials;
                    total_steps_run += result.steps;
                    if let Some((gi, n, m)) = result.rep {
                        dims[gi] = Some((n, m));
                    }
                    pending.insert(result.agg.block, result.agg);
                    let mut advanced = false;
                    while let Some(agg) = pending.remove(&folder.fed()) {
                        let fold = tel.live.then(Stopwatch::start);
                        folder.feed(&agg);
                        if let Some(fold) = fold {
                            agg_ns += fold.elapsed_ns();
                        }
                        advanced = true;
                    }
                    if advanced {
                        *fed_floor.lock().expect("fold floor lock") = folder.fed();
                        may_run.notify_all();
                    }
                }
                WorkerMsg::Failed(e) => {
                    // First failure wins; wake waiting workers so the
                    // pool drains instead of parking on the window.
                    if first_error.is_none() {
                        first_error = Some(*e);
                    }
                    stop.store(true, Ordering::Relaxed);
                    may_run.notify_all();
                }
            }
        }
    });
    if let Some(e) = first_error {
        return Err(e);
    }
    assert_eq!(folder.fed(), total_blocks, "every block was folded");

    let rep_dims: Vec<(usize, usize)> = dims
        .iter()
        .map(|dim| dim.expect("every family ran its group-0 block"))
        .collect();
    let cells = folder.finish(&rep_dims);
    if tel.live {
        tel.emit(EventKind::AggregationMerged {
            blocks: total_blocks,
            cells: cells.len(),
            agg_ns,
        });
        tel.emit(EventKind::RunFinished {
            wall_ns: tel.clock.elapsed_ns(),
            total_trials: total_trials_run,
            total_steps: total_steps_run,
        });
    }
    Ok(ExperimentReport {
        name: spec.name.clone(),
        description: spec.description.clone(),
        target: spec.target,
        trials,
        base_seed: opts.base_seed,
        resample: spec.resample,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CapSpec, GraphSpec, MetricSpec, ProcessSpec, RuleSpec};

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "tiny".into(),
            description: "unit-test spec".into(),
            graphs: vec![GraphSpec::Cycle { n: 24 }, GraphSpec::Torus { w: 5, h: 5 }],
            processes: vec![
                ProcessSpec::EProcess {
                    rule: RuleSpec::Uniform,
                },
                ProcessSpec::Srw,
            ],
            trials: 3,
            target: Target::VertexCover,
            metrics: vec![],
            start: 0,
            cap: CapSpec::Auto,
            resample: None,
        }
    }

    #[test]
    fn run_produces_grid_ordered_cells() {
        let report = run(
            &tiny_spec(),
            &RunOptions {
                threads: 2,
                base_seed: 1,
            },
        )
        .unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.cells[0].graph, "cycle n=24");
        assert_eq!(report.cells[0].process, "e-process(uniform)");
        assert_eq!(report.cells[1].process, "srw");
        assert_eq!(report.cells[2].graph, "torus 5x5");
        for cell in &report.cells {
            assert_eq!(cell.trials, 3);
            assert_eq!(
                cell.completed, 3,
                "{}/{} failed to cover",
                cell.graph, cell.process
            );
            assert!(cell.steps.mean() >= (cell.n - 1) as f64);
        }
    }

    #[test]
    fn eprocess_on_cycle_covers_in_exactly_n_minus_1() {
        let spec = ExperimentSpec {
            graphs: vec![GraphSpec::Cycle { n: 24 }],
            processes: vec![ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            }],
            ..tiny_spec()
        };
        let report = run(
            &spec,
            &RunOptions {
                threads: 1,
                base_seed: 5,
            },
        )
        .unwrap();
        let cell = &report.cells[0];
        assert_eq!(cell.steps.mean(), 23.0);
        assert_eq!(cell.steps.min(), Some(23.0));
        assert_eq!(cell.steps.max(), Some(23.0));
        assert_eq!(cell.steps_sketch.count(), 3);
        assert_eq!(cell.steps_sketch.quantile(0.5), Ok(23.0));
        // The blue walk never takes a red step before covering a cycle.
        assert_eq!(cell.blue_fraction.mean(), 1.0);
    }

    #[test]
    fn capped_runs_report_incomplete() {
        let spec = ExperimentSpec {
            cap: CapSpec::Absolute(3),
            ..tiny_spec()
        };
        let report = run(
            &spec,
            &RunOptions {
                threads: 2,
                base_seed: 2,
            },
        )
        .unwrap();
        for cell in &report.cells {
            assert_eq!(cell.completed, 0);
            assert_eq!(cell.steps.count(), 0);
        }
    }

    #[test]
    fn blanket_target_runs() {
        let spec = ExperimentSpec {
            graphs: vec![GraphSpec::Complete { n: 8 }],
            processes: vec![ProcessSpec::Srw],
            target: Target::Blanket { delta: 0.3 },
            cap: CapSpec::Absolute(1_000_000),
            trials: 2,
            ..tiny_spec()
        };
        let report = run(
            &spec,
            &RunOptions {
                threads: 2,
                base_seed: 3,
            },
        )
        .unwrap();
        assert_eq!(report.cells[0].completed, 2);
        // Blanket runs do not classify steps.
        assert_eq!(report.cells[0].blue_fraction.count(), 0);
    }

    #[test]
    fn seeds_differ_across_grid_coordinates() {
        let a = trial_seed(1, 0, 0, 0);
        let b = trial_seed(1, 0, 0, 1);
        let c = trial_seed(1, 0, 1, 0);
        let d = trial_seed(1, 1, 0, 0);
        let e = graph_seed(1, 0);
        let all = [a, b, c, d, e];
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j], "seed collision between {i} and {j}");
            }
        }
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let mut spec = tiny_spec();
        spec.processes.clear();
        assert!(matches!(
            run(
                &spec,
                &RunOptions {
                    threads: 1,
                    base_seed: 1
                }
            ),
            Err(EngineError::Spec(_))
        ));
    }

    #[test]
    fn multi_metric_trial_walks_the_graph_exactly_once() {
        // On a cycle the E-process is deterministic: it walks straight
        // around, so vertex cover lands at n-1 and edge cover at n. A
        // trial measuring the target plus cover AND phase metrics must
        // take exactly n steps total — not a multiple of it, which is
        // what re-walking per metric would produce.
        let n = 16usize;
        let spec = ExperimentSpec {
            graphs: vec![GraphSpec::Cycle { n }],
            processes: vec![ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            }],
            metrics: vec![MetricSpec::Cover, MetricSpec::Phases],
            trials: 1,
            ..tiny_spec()
        };
        let g = spec.graphs[0].build(1).unwrap();
        let mut bank = ObserverBank::new(&spec, &g);
        let outcome = run_trial(&spec, &g, 0, 42, &mut bank);
        assert_eq!(outcome.steps_to_target, Some((n - 1) as u64));
        assert_eq!(
            outcome.steps, n as u64,
            "one walk must feed every observer: {} steps taken for target + 2 metrics",
            outcome.steps
        );
        // Metric columns resolved from the same single pass.
        assert_eq!(
            outcome.metric_values,
            vec![
                Some((n - 1) as f64), // cover.c_v
                Some(n as f64),       // cover.c_e
                Some(n as f64),       // phases.first_blue
                Some(1.0),            // phases.blue_count
                Some(n as f64),       // phases.total_blue
                Some(1.0),            // phases.closed
            ]
        );
    }

    #[test]
    fn observer_bank_reuse_matches_fresh_observers() {
        // Consecutive trials through one reused bank must equal trials
        // through fresh banks: begin() re-arms completely.
        let spec = ExperimentSpec {
            graphs: vec![GraphSpec::Torus { w: 5, h: 5 }],
            processes: vec![ProcessSpec::Srw],
            metrics: vec![
                MetricSpec::Cover,
                MetricSpec::Blanket { delta: 0.3 },
                MetricSpec::Hitting { vertex: None },
            ],
            ..tiny_spec()
        };
        let g = spec.graphs[0].build(2).unwrap();
        let mut reused = ObserverBank::new(&spec, &g);
        for seed in [7u64, 8, 9] {
            let a = run_trial(&spec, &g, 0, seed, &mut reused);
            let mut fresh = ObserverBank::new(&spec, &g);
            let b = run_trial(&spec, &g, 0, seed, &mut fresh);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn metrics_aggregate_into_cells() {
        let spec = ExperimentSpec {
            graphs: vec![GraphSpec::Cycle { n: 12 }],
            processes: vec![ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            }],
            metrics: vec![MetricSpec::Cover, MetricSpec::Hitting { vertex: Some(6) }],
            ..tiny_spec()
        };
        let report = run(
            &spec,
            &RunOptions {
                threads: 2,
                base_seed: 3,
            },
        )
        .unwrap();
        let cell = &report.cells[0];
        assert_eq!(cell.metrics.len(), 3);
        assert_eq!(cell.metrics[0].name, "cover.c_v");
        assert_eq!(cell.metrics[0].stats.mean(), 11.0);
        assert_eq!(cell.metrics[1].name, "cover.c_e");
        assert_eq!(cell.metrics[1].stats.mean(), 12.0);
        assert_eq!(cell.metrics[2].name, "hitting(6)");
        // Deterministic blue sweep reaches the antipode in 6 steps.
        assert_eq!(cell.metrics[2].stats.mean(), 6.0);
    }

    #[test]
    fn bad_start_and_hitting_vertices_are_rejected() {
        let mut spec = tiny_spec();
        spec.start = 1_000;
        assert!(matches!(
            run(
                &spec,
                &RunOptions {
                    threads: 1,
                    base_seed: 1
                }
            ),
            Err(EngineError::Spec(_))
        ));
        let mut spec = tiny_spec();
        spec.metrics = vec![MetricSpec::Hitting {
            vertex: Some(10_000),
        }];
        assert!(matches!(
            run(
                &spec,
                &RunOptions {
                    threads: 1,
                    base_seed: 1
                }
            ),
            Err(EngineError::Spec(_))
        ));
    }

    #[test]
    fn nonzero_start_runs() {
        let spec = ExperimentSpec {
            start: 5,
            graphs: vec![GraphSpec::Cycle { n: 10 }],
            processes: vec![ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            }],
            ..tiny_spec()
        };
        let report = run(
            &spec,
            &RunOptions {
                threads: 1,
                base_seed: 4,
            },
        )
        .unwrap();
        assert_eq!(report.cells[0].steps.mean(), 9.0);
    }

    #[test]
    fn kernel_path_selection_by_cell_shape() {
        assert_eq!(select_kernel_path(0), KernelPath::Sequential);
        assert_eq!(select_kernel_path(1), KernelPath::Sequential);
        assert_eq!(select_kernel_path(2), KernelPath::Interleaved { width: 2 });
        assert_eq!(select_kernel_path(8), KernelPath::Interleaved { width: 8 });
        assert_eq!(
            select_kernel_path(100),
            KernelPath::Interleaved {
                width: MAX_INTERLEAVE
            }
        );
    }

    #[test]
    fn interleaved_trials_match_sequential() {
        // The executor-level pin: run_trials_interleaved over a full
        // observer bank (target + metrics) must reproduce run_trial's
        // outcomes exactly, per seed, for every width the selector picks.
        let spec = ExperimentSpec {
            graphs: vec![GraphSpec::Regular { n: 60, d: 4 }],
            processes: vec![
                ProcessSpec::EProcess {
                    rule: RuleSpec::Uniform,
                },
                ProcessSpec::Srw,
                ProcessSpec::RotorRouter,
            ],
            metrics: vec![MetricSpec::Cover, MetricSpec::Hitting { vertex: None }],
            trials: 8,
            ..tiny_spec()
        };
        let g = spec.graphs[0].build(11).unwrap();
        for pi in 0..spec.processes.len() {
            for width in [2usize, 3, 8] {
                let seeds: Vec<u64> = (0..width).map(|t| trial_seed(99, 0, pi, t)).collect();
                let expected: Vec<TrialOutcome> = seeds
                    .iter()
                    .map(|&seed| {
                        let mut bank = ObserverBank::new(&spec, &g);
                        run_trial(&spec, &g, pi, seed, &mut bank)
                    })
                    .collect();
                let mut banks: Vec<ObserverBank<'_>> =
                    (0..width).map(|_| ObserverBank::new(&spec, &g)).collect();
                let got = run_trials_interleaved(&spec, &g, pi, &seeds, &mut banks);
                assert_eq!(got, expected, "process {pi} width {width}");
            }
        }
    }

    #[test]
    fn resampled_report_is_identical_across_thread_counts() {
        // The interleaved path engages inside resample blocks; the
        // report must stay a pure function of (spec, base_seed).
        let spec = ExperimentSpec {
            graphs: vec![GraphSpec::Regular { n: 24, d: 3 }],
            processes: vec![
                ProcessSpec::EProcess {
                    rule: RuleSpec::Uniform,
                },
                ProcessSpec::Srw,
            ],
            trials: 6,
            resample: Some(ResamplePlan { walks_per_graph: 4 }),
            ..tiny_spec()
        };
        let run_with = |threads: usize| {
            run(
                &spec,
                &RunOptions {
                    threads,
                    base_seed: 21,
                },
            )
            .unwrap()
        };
        let a = run_with(1);
        let b = run_with(4);
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.completed, cb.completed);
            assert_eq!(ca.steps, cb.steps);
            assert_eq!(ca.blue_fraction, cb.blue_fraction);
            assert_eq!(ca.steps_split, cb.steps_split);
            // The sketches' full state — retained items, levels and coin
            // stream — is thread-count invariant, not just the answers.
            assert_eq!(ca.steps_sketch.to_raw(), cb.steps_sketch.to_raw());
        }
    }

    #[test]
    fn oversubscribed_threads_are_fine() {
        let spec = ExperimentSpec {
            trials: 2,
            ..tiny_spec()
        };
        let report = run(
            &spec,
            &RunOptions {
                threads: 64,
                base_seed: 4,
            },
        )
        .unwrap();
        assert_eq!(report.cells.len(), 4);
        assert!(report.cells.iter().all(|c| c.completed == 2));
    }
}
