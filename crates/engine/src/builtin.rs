//! Built-in experiment specs reproducing the paper's headline tables.
//!
//! These are consumed by the `eproc` CLI (`eproc run <name>`) and by the
//! thin `table_*` wrapper binaries in `eproc-bench`. Every spec is a pure
//! function of the [`Scale`], so `quick` and `paper` runs of the same name
//! are distinct but individually reproducible.

use crate::spec::{CapSpec, ExperimentSpec, GraphSpec, ProcessSpec, RuleSpec, Scale, Target};

/// Names of all built-in specs, in display order.
pub fn names() -> Vec<&'static str> {
    vec![
        "comparison",
        "theorem1",
        "rules",
        "lowerbound",
        "hypercube",
        "blanket",
    ]
}

/// Resolves a built-in spec by name at the given scale.
pub fn spec(name: &str, scale: Scale) -> Option<ExperimentSpec> {
    match name {
        "comparison" => Some(comparison(scale)),
        "theorem1" => Some(theorem1(scale)),
        "rules" => Some(rules(scale)),
        "lowerbound" => Some(lowerbound(scale)),
        "hypercube" => Some(hypercube(scale)),
        "blanket" => Some(blanket(scale)),
        _ => None,
    }
}

/// **T-cmp** — the E-process against every related process from §1 (SRW,
/// rotor-router, RWC(2), Oldest-First, Least-Used-First) on an even-degree
/// expander, a torus and a random geometric graph.
pub fn comparison(scale: Scale) -> ExperimentSpec {
    let (reg_n, side, geo_n) = match scale {
        Scale::Quick => (4_096, 32, 2_000),
        Scale::Paper => (65_536, 128, 20_000),
    };
    ExperimentSpec {
        name: "comparison".into(),
        description: "E-process vs related processes from §1: mean vertex cover time".into(),
        graphs: vec![
            GraphSpec::Regular { n: reg_n, d: 4 },
            GraphSpec::Torus { w: side, h: side },
            GraphSpec::Geometric {
                n: geo_n,
                radius_factor: 1.5,
            },
        ],
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
            ProcessSpec::RotorRouter,
            ProcessSpec::Rwc { d: 2 },
            ProcessSpec::OldestFirst,
            ProcessSpec::LeastUsedFirst,
        ],
        trials: 5,
        target: Target::VertexCover,
        cap: CapSpec::NLogN(50_000.0),
    }
}

/// **T-thm1** — Theorem 1's `CV = O(n + n log n / (ℓ(1−λmax)))` sweep over
/// even-degree random regular graphs and LPS Ramanujan graphs. The engine
/// measures the cover times; the `table_theorem1` wrapper adds the
/// spectral-gap and bound columns.
pub fn theorem1(scale: Scale) -> ExperimentSpec {
    let regular_sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 4_000, 16_000],
        Scale::Paper => vec![4_000, 16_000, 64_000, 256_000],
    };
    let lps_params: Vec<(u64, u64)> = match scale {
        Scale::Quick => vec![(5, 13), (5, 17)],
        Scale::Paper => vec![(5, 13), (5, 17), (5, 29)],
    };
    let mut graphs = Vec::new();
    for &d in &[4usize, 6] {
        for &n in &regular_sizes {
            graphs.push(GraphSpec::Regular { n, d });
        }
    }
    for &(p, q) in &lps_params {
        graphs.push(GraphSpec::Lps { p, q });
    }
    ExperimentSpec {
        name: "theorem1".into(),
        description: "Theorem 1: E-process cover time on even-degree expanders".into(),
        graphs,
        processes: vec![ProcessSpec::EProcess {
            rule: RuleSpec::Uniform,
        }],
        trials: 5,
        target: Target::VertexCover,
        cap: CapSpec::NLogN(500.0),
    }
}

/// **T-rules** — rule independence: the E-process under every rule `A`
/// (uniform, first/last port, round-robin, two adversaries) covers in
/// `Θ(n)` on even-degree expanders.
pub fn rules(scale: Scale) -> ExperimentSpec {
    let reg_n = match scale {
        Scale::Quick => 4_000,
        Scale::Paper => 64_000,
    };
    ExperimentSpec {
        name: "rules".into(),
        description: "Theorem 1 rule independence: every rule A covers in Θ(n)".into(),
        graphs: vec![
            GraphSpec::Regular { n: reg_n, d: 4 },
            GraphSpec::Lps { p: 5, q: 13 },
        ],
        processes: RuleSpec::all()
            .into_iter()
            .map(|rule| ProcessSpec::EProcess { rule })
            .collect(),
        trials: 5,
        target: Target::VertexCover,
        cap: CapSpec::NLogN(2_000.0),
    }
}

/// **T-lb** — Theorem 5 flavour: the weighted random walk (whose cover
/// time is `Ω(n log n)`) against the E-process and SRW on even-degree
/// random regular graphs.
pub fn lowerbound(scale: Scale) -> ExperimentSpec {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 2_000, 4_000],
        Scale::Paper => vec![4_000, 16_000, 64_000],
    };
    ExperimentSpec {
        name: "lowerbound".into(),
        description: "Theorem 5 flavour: weighted SRW Ω(n log n) vs E-process Θ(n)".into(),
        graphs: sizes
            .into_iter()
            .map(|n| GraphSpec::Regular { n, d: 4 })
            .collect(),
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
            ProcessSpec::WeightedSrw,
        ],
        trials: 5,
        target: Target::VertexCover,
        cap: CapSpec::NLogN(5_000.0),
    }
}

/// **T-hyp** — edge cover on hypercubes, where the paper's edge-cover
/// sandwich (3) is tight while the Orenshtein–Shinkar bound (2) is not.
pub fn hypercube(scale: Scale) -> ExperimentSpec {
    let dims: Vec<usize> = match scale {
        Scale::Quick => vec![6, 8, 10],
        Scale::Paper => vec![10, 12, 14],
    };
    ExperimentSpec {
        name: "hypercube".into(),
        description: "Edge cover time of the E-process and SRW on hypercubes".into(),
        graphs: dims
            .into_iter()
            .map(|dim| GraphSpec::Hypercube { dim })
            .collect(),
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials: 5,
        target: Target::EdgeCover,
        cap: CapSpec::NLogN(50_000.0),
    }
}

/// **T-bl** — blanket time `τ_bl(0.4)` of the E-process and SRW on an
/// even-degree expander (Ding–Lee–Peres, §1 of the paper).
pub fn blanket(scale: Scale) -> ExperimentSpec {
    let n = match scale {
        Scale::Quick => 2_048,
        Scale::Paper => 16_384,
    };
    ExperimentSpec {
        name: "blanket".into(),
        description: "Blanket time τ_bl(0.4) on a random 4-regular graph".into(),
        graphs: vec![GraphSpec::Regular { n, d: 4 }],
        processes: vec![
            ProcessSpec::EProcess {
                rule: RuleSpec::Uniform,
            },
            ProcessSpec::Srw,
        ],
        trials: 3,
        target: Target::Blanket { delta: 0.4 },
        cap: CapSpec::NLogN(50_000.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_and_validates() {
        for name in names() {
            for scale in [Scale::Quick, Scale::Paper] {
                let s = spec(name, scale).unwrap_or_else(|| panic!("missing spec {name}"));
                assert_eq!(s.name, name);
                s.validate()
                    .unwrap_or_else(|e| panic!("spec {name} invalid: {e}"));
                assert!(!s.description.is_empty());
            }
        }
        assert!(spec("nonsense", Scale::Quick).is_none());
    }

    #[test]
    fn comparison_matches_legacy_table_grid() {
        let s = comparison(Scale::Quick);
        assert_eq!(s.graphs.len(), 3);
        assert_eq!(s.processes.len(), 6);
        assert_eq!(s.trials, 5);
        assert_eq!(s.total_jobs(), 90);
    }

    #[test]
    fn rules_covers_all_rules() {
        let s = rules(Scale::Quick);
        assert_eq!(s.processes.len(), RuleSpec::all().len());
    }

    #[test]
    fn paper_scale_is_strictly_larger() {
        let q = comparison(Scale::Quick);
        let p = comparison(Scale::Paper);
        let size = |g: &GraphSpec| match *g {
            GraphSpec::Regular { n, .. } => n,
            GraphSpec::Torus { w, h } => w * h,
            GraphSpec::Geometric { n, .. } => n,
            _ => 0,
        };
        for (a, b) in q.graphs.iter().zip(&p.graphs) {
            assert!(size(a) < size(b));
        }
    }
}
