//! Eccentricities and diameter.

use crate::csr::{Graph, Vertex};
use crate::traversal::{self, UNREACHED};

/// Eccentricity of `v`: the largest BFS distance from `v`, or `None` if the
/// graph is disconnected (some vertex is unreachable).
///
/// # Panics
///
/// Panics if `v >= g.n()`.
pub fn eccentricity(g: &Graph, v: Vertex) -> Option<u32> {
    let dist = traversal::bfs_distances(g, v);
    let mut ecc = 0;
    for &d in &dist {
        if d == UNREACHED {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// Exact diameter via all-pairs BFS (`O(n·m)`); `None` if disconnected.
/// Suitable for the small/medium graphs used in tables.
pub fn diameter_exact(g: &Graph) -> Option<u32> {
    if g.n() == 0 {
        return Some(0);
    }
    let mut best = 0;
    for v in g.vertices() {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// Double-sweep lower bound on the diameter: BFS from `start`, then BFS
/// from the farthest vertex found. Exact on trees; a lower bound in
/// general. `None` if disconnected.
pub fn diameter_double_sweep(g: &Graph, start: Vertex) -> Option<u32> {
    let d1 = traversal::bfs_distances(g, start);
    let mut far = start;
    let mut best = 0;
    for (v, &d) in d1.iter().enumerate() {
        if d == UNREACHED {
            return None;
        }
        if d > best {
            best = d;
            far = v;
        }
    }
    eccentricity(g, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_diameter() {
        let g = generators::path(10);
        assert_eq!(diameter_exact(&g), Some(9));
        assert_eq!(eccentricity(&g, 5), Some(5));
    }

    #[test]
    fn cycle_diameter() {
        assert_eq!(diameter_exact(&generators::cycle(10)), Some(5));
        assert_eq!(diameter_exact(&generators::cycle(11)), Some(5));
    }

    #[test]
    fn hypercube_diameter_is_dimension() {
        assert_eq!(diameter_exact(&generators::hypercube(5)), Some(5));
    }

    #[test]
    fn complete_graph_diameter_one() {
        assert_eq!(diameter_exact(&generators::complete(7)), Some(1));
    }

    #[test]
    fn disconnected_is_none() {
        let g = crate::Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(diameter_exact(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
        assert_eq!(diameter_double_sweep(&g, 0), None);
    }

    #[test]
    fn double_sweep_exact_on_tree() {
        let g = generators::binary_tree(4);
        assert_eq!(diameter_double_sweep(&g, 0), diameter_exact(&g));
    }

    #[test]
    fn double_sweep_is_lower_bound() {
        let g = generators::torus2d(5, 7);
        let ds = diameter_double_sweep(&g, 0).unwrap();
        let ex = diameter_exact(&g).unwrap();
        assert!(ds <= ex);
    }
}
