//! Exact counting of short cycles.
//!
//! Corollary 4's proof controls the number `N_k` of `k`-cycles in a random
//! regular graph (`E N_k = θ_k r^k / k`); the `table_cycles` experiment
//! compares these predictions with exact counts produced here.

use crate::csr::{Graph, Vertex};

/// Exact number of simple cycles of each length `2..=k_max`.
///
/// Returns `counts` with `counts[k]` = number of cycles of length `k`
/// (`counts[0]` and `counts[1]` are always 0). Length-2 cycles are pairs of
/// parallel edges.
///
/// Cost is `O(n · Δ^{k_max - 1})` — exponential in `k_max`, intended for
/// `k_max ≲ 8` on sparse graphs. Each cycle is enumerated from its minimal
/// vertex in both directions and the total halved.
///
/// # Panics
///
/// Panics if `k_max < 2`.
pub fn count_cycles_up_to(g: &Graph, k_max: usize) -> Vec<u64> {
    assert!(k_max >= 2, "k_max must be at least 2");
    let mut counts = vec![0u64; k_max + 1];

    // Length-2 cycles: C(multiplicity, 2) per vertex pair.
    let mut pair_mult = std::collections::HashMap::new();
    for (_, u, v) in g.edges() {
        let key = if u < v { (u, v) } else { (v, u) };
        *pair_mult.entry(key).or_insert(0u64) += 1;
    }
    counts[2] = pair_mult.values().map(|&c| c * (c - 1) / 2).sum();

    if k_max < 3 {
        return counts;
    }
    // DFS paths root -> ... -> cur with interior vertices > root; close by
    // an edge back to root. Each k-cycle (k >= 3) is found exactly twice.
    let mut on_path = vec![false; g.n()];
    let mut doubled = vec![0u64; k_max + 1];
    for root in g.vertices() {
        on_path[root] = true;
        dfs_count(g, root, root, 1, k_max, &mut on_path, &mut doubled);
        on_path[root] = false;
    }
    for k in 3..=k_max {
        debug_assert!(doubled[k].is_multiple_of(2));
        counts[k] = doubled[k] / 2;
    }
    counts
}

fn dfs_count(
    g: &Graph,
    root: Vertex,
    cur: Vertex,
    path_len: usize, // vertices on path so far
    k_max: usize,
    on_path: &mut [bool],
    doubled: &mut [u64],
) {
    for w in g.neighbors(cur) {
        if w == root {
            // Closing edge: cycle length == path_len (edges) requires
            // path_len >= 3 to be a simple cycle (2-cycles counted apart).
            if path_len >= 3 {
                doubled[path_len] += 1;
            }
            continue;
        }
        if w < root || on_path[w] || path_len >= k_max {
            continue;
        }
        on_path[w] = true;
        dfs_count(g, root, w, path_len + 1, k_max, on_path, doubled);
        on_path[w] = false;
    }
}

/// Total number of cycles of length `<= k_max` (sum of
/// [`count_cycles_up_to`]).
pub fn total_short_cycles(g: &Graph, k_max: usize) -> u64 {
    count_cycles_up_to(g, k_max).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Graph;

    #[test]
    fn k4_cycle_counts() {
        let counts = count_cycles_up_to(&generators::complete(4), 4);
        assert_eq!(counts[3], 4);
        assert_eq!(counts[4], 3);
    }

    #[test]
    fn k5_cycle_counts() {
        // K_n: C(n,k) * (k-1)!/2 cycles of length k.
        let counts = count_cycles_up_to(&generators::complete(5), 5);
        assert_eq!(counts[3], 10);
        assert_eq!(counts[4], 15);
        assert_eq!(counts[5], 12);
    }

    #[test]
    fn petersen_pentagons() {
        let counts = count_cycles_up_to(&generators::petersen(), 6);
        assert_eq!(counts[3], 0);
        assert_eq!(counts[4], 0);
        assert_eq!(counts[5], 12);
        assert_eq!(counts[6], 10);
    }

    #[test]
    fn hypercube_faces() {
        // Every 4-cycle of Q_d alternates between exactly 2 dimensions:
        // C(d,2) · 2^{d-2} of them; for Q3 that is the 6 faces.
        let counts = count_cycles_up_to(&generators::hypercube(3), 4);
        assert_eq!(counts[3], 0);
        assert_eq!(counts[4], 6);
    }

    #[test]
    fn single_cycle_graph() {
        let counts = count_cycles_up_to(&generators::cycle(7), 7);
        assert_eq!(counts.iter().sum::<u64>(), 1);
        assert_eq!(counts[7], 1);
    }

    #[test]
    fn trees_have_no_cycles() {
        assert_eq!(total_short_cycles(&generators::binary_tree(3), 8), 0);
    }

    #[test]
    fn parallel_edges_counted_as_2_cycles() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        let counts = count_cycles_up_to(&g, 3);
        assert_eq!(counts[2], 3); // C(3,2)
    }

    #[test]
    fn truncation_ignores_longer_cycles() {
        let counts = count_cycles_up_to(&generators::cycle(9), 5);
        assert_eq!(counts.iter().sum::<u64>(), 0);
    }

    #[test]
    #[should_panic(expected = "k_max")]
    fn kmax_too_small_panics() {
        let _ = count_cycles_up_to(&generators::cycle(3), 1);
    }
}
