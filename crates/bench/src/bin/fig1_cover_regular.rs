//! **Figure 1**: normalised vertex cover time of the E-process on random
//! `d`-regular graphs, `d ∈ {3,…,7}`, as a function of `n`.
//!
//! Reproduces the paper's §5 experiment: graphs from the Steger–Wormald
//! generator, unvisited edges chosen uniformly at random, each data point
//! the average of 5 runs, cover time normalised by `n`. The paper finds the
//! even-degree series flat (`Θ(n)`) and the odd-degree series growing like
//! `c·n ln n` with `c ≈ 0.93 (d=3)`, `0.41 (d=5)`, `0.38 (d=7)`; the final
//! block prints our least-squares `c` for comparison.

use eproc_bench::{parallel_map, rng_for, save_table, Config, Scale};
use eproc_core::cover::{run_cover, CoverTarget};
use eproc_core::rule::UniformRule;
use eproc_core::EProcess;
use eproc_graphs::generators;
use eproc_stats::{fit_c_nlogn, fit_proportional, SeedSequence, Summary, TextTable};

const DEGREES: [usize; 5] = [3, 4, 5, 6, 7];
const REPS: usize = 5;

fn sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1_000, 2_000, 4_000, 8_000, 16_000, 32_000],
        Scale::Paper => vec![16_000, 32_000, 64_000, 128_000, 256_000, 500_000],
    }
}

fn main() {
    let config = Config::from_args();
    let seeds = SeedSequence::new(config.seed);
    let ns = sizes(config.scale);
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    println!("Figure 1: normalised vertex cover time CV/n of the E-process");
    println!(
        "(uniform rule, Steger-Wormald random d-regular graphs, {REPS} runs per point, {threads} threads)\n"
    );

    // Every (d, n, rep) cell is an independent simulation: fan out.
    let cells: Vec<(usize, usize, usize)> = DEGREES
        .iter()
        .flat_map(|&d| {
            ns.iter()
                .flat_map(move |&n| (0..REPS).map(move |rep| (d, n, rep)))
        })
        .collect();
    let normalised: Vec<f64> = parallel_map(cells.clone(), threads, |(d, n, rep)| {
        let mut graph_rng = rng_for(seeds.derive(&[d as u64, n as u64, rep as u64]));
        let g =
            generators::connected_random_regular(n, d, &mut graph_rng).expect("generator failed");
        let mut walk_rng = rng_for(seeds.derive(&[d as u64, n as u64, rep as u64, 1]));
        let mut walk = EProcess::new(&g, 0, UniformRule::new());
        // Cap far above the expected Θ(n log n): 200·n·ln n.
        let cap = (200.0 * n as f64 * (n as f64).ln()) as u64;
        let run = run_cover(&mut walk, CoverTarget::Vertices, cap, &mut walk_rng);
        let steps = run
            .steps_to_vertex_cover
            .expect("E-process must cover a connected graph within the cap");
        steps as f64 / n as f64
    });

    let mut table = TextTable::new(vec!["d", "n", "CV/n mean", "CV/n sd", "runs"]);
    // (d, n) -> mean CV for the fits.
    let mut series: Vec<(usize, Vec<(usize, f64)>)> = Vec::new();
    for &d in &DEGREES {
        let mut points = Vec::new();
        for &n in &ns {
            let cover_times: Vec<f64> = cells
                .iter()
                .zip(&normalised)
                .filter(|&(&(cd, cn, _), _)| cd == d && cn == n)
                .map(|(_, &y)| y)
                .collect();
            let s = Summary::from_slice(&cover_times);
            table.push_row(vec![
                d.to_string(),
                n.to_string(),
                format!("{:.3}", s.mean),
                format!("{:.3}", s.std_dev),
                REPS.to_string(),
            ]);
            points.push((n, s.mean * n as f64));
        }
        series.push((d, points));
    }
    println!("{table}");

    println!("growth-model fits per degree (paper: even flat, odd c*n*ln(n)):\n");
    let mut fits = TextTable::new(vec![
        "d",
        "c in c*n*ln(n)",
        "R2(nlogn)",
        "c in c*n",
        "R2(linear)",
        "paper c",
    ]);
    for (d, points) in &series {
        let ns_fit: Vec<usize> = points.iter().map(|&(n, _)| n).collect();
        let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
        let xs_lin: Vec<f64> = ns_fit.iter().map(|&n| n as f64).collect();
        let log_fit = fit_c_nlogn(&ns_fit, &ys);
        let lin_fit = fit_proportional(&xs_lin, &ys);
        let paper =
            eproc_theory::fig1_fitted_constant(*d).map_or("-".to_string(), |c| format!("{c:.2}"));
        fits.push_row(vec![
            d.to_string(),
            format!("{:.3}", log_fit.slope),
            format!("{:.4}", log_fit.r_squared),
            format!("{:.3}", lin_fit.slope),
            format!("{:.4}", lin_fit.r_squared),
            paper,
        ]);
    }
    println!("{fits}");
    let p1 = save_table("fig1_cover_regular", &table).expect("write csv");
    let p2 = save_table("fig1_fits", &fits).expect("write csv");
    println!("csv: {} and {}", p1.display(), p2.display());
}
